//! The concrete thread-safe recorder: a sharded in-memory event sink.
//!
//! Design constraints, in order:
//!
//! 1. **Recording must not distort the measurement.** Worker threads
//!    land on different shards (`thread id % SHARDS`), so span recording
//!    from `pwrel-parallel` workers contends only on a per-shard
//!    `Mutex<Vec<Event>>` push — "lock-free enough" for stage-granular
//!    spans (tens per compress), with per-block costs kept out of the
//!    sink entirely by [`crate::StageTimer`].
//! 2. **No `unsafe`, no dependencies.** The workspace audit confines
//!    `unsafe` to `pwrel-parallel`; this crate is plain std.
//! 3. **Panic-free.** Exporters run inside operator tooling; lock
//!    poisoning is absorbed with `unwrap_or_else(PoisonError::into_inner)`
//!    and every index is checked.

use crate::{Recorder, SpanId};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Number of event shards. Threads map onto shards by logical thread
/// id, so contention needs more than `SHARDS` simultaneously-recording
/// threads plus an unlucky modulus.
const SHARDS: usize = 16;

/// One closed-or-open span occurrence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Stage name (a [`crate::stage`] constant at every in-tree call site).
    pub name: &'static str,
    /// Logical thread id (process-wide, assigned on first record).
    pub tid: u32,
    /// Start offset in nanoseconds since the sink was created.
    pub start_ns: u64,
    /// Duration in nanoseconds; `None` while the span is still open.
    pub dur_ns: Option<u64>,
}

/// Running summary of an observation series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservedStat {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl ObservedStat {
    fn merge(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Pre-aggregated per-block stage timing published by
/// [`crate::StageTimer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanTotal {
    /// Total nanoseconds across all calls.
    pub total_ns: u64,
    /// Number of calls folded into `total_ns`.
    pub calls: u64,
}

thread_local! {
    /// Process-wide logical thread id cache (`u32::MAX` = unassigned).
    static TID: Cell<u32> = const { Cell::new(u32::MAX) };
}

/// Global logical-thread-id source shared by all sinks, so a thread
/// keeps one id even when several sinks are alive.
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

/// In-memory [`Recorder`] collecting spans, counters, observations, and
/// aggregated stage totals, with a monotonic epoch taken at
/// construction. Export with [`crate::export::summary_table`] or
/// [`crate::export::chrome_trace_json`].
#[derive(Debug)]
pub struct TraceSink {
    epoch: Instant,
    shards: Vec<Mutex<Vec<Event>>>,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    observations: Mutex<BTreeMap<&'static str, ObservedStat>>,
    span_totals: Mutex<BTreeMap<&'static str, SpanTotal>>,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink {
    /// An empty sink whose clock starts now.
    pub fn new() -> Self {
        TraceSink {
            epoch: Instant::now(),
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            counters: Mutex::new(BTreeMap::new()),
            observations: Mutex::new(BTreeMap::new()),
            span_totals: Mutex::new(BTreeMap::new()),
        }
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn thread_id(&self) -> u32 {
        TID.with(|cell| {
            let cached = cell.get();
            if cached != u32::MAX {
                return cached;
            }
            let fresh = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            cell.set(fresh);
            fresh
        })
    }

    /// Nanoseconds elapsed since the sink was created — the wall-clock
    /// figure `--stats` reconciles span totals against.
    pub fn elapsed_ns(&self) -> u64 {
        self.now_ns()
    }

    /// All recorded events, merged across shards and sorted by start
    /// time (ties: longer span first, so parents precede children).
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            out.extend(guard.iter().copied());
        }
        out.sort_by(|a, b| {
            a.start_ns.cmp(&b.start_ns).then(
                b.dur_ns
                    .unwrap_or(u64::MAX)
                    .cmp(&a.dur_ns.unwrap_or(u64::MAX)),
            )
        });
        out
    }

    /// Counter snapshot, name-sorted.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        let guard = self.counters.lock().unwrap_or_else(PoisonError::into_inner);
        guard.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Observation snapshot, name-sorted.
    pub fn observations(&self) -> Vec<(&'static str, ObservedStat)> {
        let guard = self
            .observations
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        guard.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Aggregated per-block stage totals, name-sorted.
    pub fn span_totals(&self) -> Vec<(&'static str, SpanTotal)> {
        let guard = self
            .span_totals
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        guard.iter().map(|(&k, &v)| (k, v)).collect()
    }
}

impl Recorder for TraceSink {
    fn is_enabled(&self) -> bool {
        true
    }

    fn begin_span(&self, name: &'static str) -> SpanId {
        let tid = self.thread_id();
        let shard_ix = tid as usize % SHARDS;
        let start_ns = self.now_ns();
        let Some(shard) = self.shards.get(shard_ix) else {
            return SpanId::NONE;
        };
        let mut guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
        let event_ix = guard.len();
        guard.push(Event {
            name,
            tid,
            start_ns,
            dur_ns: None,
        });
        // Pack (shard, index); indices beyond 2^56 are unreachable in
        // practice (that many events would OOM long before).
        SpanId::from_raw(((shard_ix as u64) << 56) | (event_ix as u64 & ((1 << 56) - 1)))
    }

    fn end_span(&self, id: SpanId) {
        if id == SpanId::NONE {
            return;
        }
        let end_ns = self.now_ns();
        let shard_ix = (id.raw() >> 56) as usize;
        let event_ix = (id.raw() & ((1 << 56) - 1)) as usize;
        let Some(shard) = self.shards.get(shard_ix) else {
            return;
        };
        let mut guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(event) = guard.get_mut(event_ix) {
            if event.dur_ns.is_none() {
                event.dur_ns = Some(end_ns.saturating_sub(event.start_ns));
            }
        }
    }

    fn add(&self, name: &'static str, delta: u64) {
        let mut guard = self.counters.lock().unwrap_or_else(PoisonError::into_inner);
        let slot = guard.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    fn observe(&self, name: &'static str, value: f64) {
        let mut guard = self
            .observations
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        guard
            .entry(name)
            .or_insert(ObservedStat {
                count: 0,
                sum: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            })
            .merge(value);
    }

    fn add_span_total(&self, name: &'static str, total_ns: u64, calls: u64) {
        let mut guard = self
            .span_totals
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let slot = guard.entry(name).or_default();
        slot.total_ns = slot.total_ns.saturating_add(total_ns);
        slot.calls = slot.calls.saturating_add(calls);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Span;

    #[test]
    fn spans_nest_and_close_in_lifo_order() {
        let sink = TraceSink::new();
        {
            let _outer = Span::enter(&sink, "outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = Span::enter(&sink, "inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let events = sink.events();
        assert_eq!(events.len(), 2);
        let outer = events.iter().find(|e| e.name == "outer").expect("outer");
        let inner = events.iter().find(|e| e.name == "inner").expect("inner");
        let (od, id) = (outer.dur_ns.expect("closed"), inner.dur_ns.expect("closed"));
        // Containment: inner starts after outer and ends no later.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + id <= outer.start_ns + od);
        assert!(od >= id);
        // Sorted parents-first.
        assert_eq!(events.first().map(|e| e.name), Some("outer"));
    }

    #[test]
    fn early_return_still_closes_span() {
        fn faulty(rec: &TraceSink) -> Result<(), ()> {
            let _span = Span::enter(rec, "faulty");
            Err(())
        }
        let sink = TraceSink::new();
        assert!(faulty(&sink).is_err());
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert!(events.first().and_then(|e| e.dur_ns).is_some());
    }

    #[test]
    fn unmatched_begin_stays_open() {
        let sink = TraceSink::new();
        let id = sink.begin_span("open");
        let events = sink.events();
        assert_eq!(events.first().map(|e| e.dur_ns), Some(None));
        sink.end_span(id);
        sink.end_span(id); // double-close is ignored
        let events = sink.events();
        assert!(events.first().and_then(|e| e.dur_ns).is_some());
    }

    #[test]
    fn counters_accumulate_and_observations_summarize() {
        let sink = TraceSink::new();
        sink.add("bytes", 10);
        sink.add("bytes", 5);
        sink.observe("wait", 2.0);
        sink.observe("wait", 4.0);
        assert_eq!(sink.counters(), vec![("bytes", 15)]);
        let obs = sink.observations();
        let (name, stat) = obs.first().copied().expect("one observation");
        assert_eq!(name, "wait");
        assert_eq!(stat.count, 2);
        assert_eq!(stat.min, 2.0);
        assert_eq!(stat.max, 4.0);
        assert_eq!(stat.mean(), 3.0);
    }

    #[test]
    fn span_totals_merge() {
        let sink = TraceSink::new();
        sink.add_span_total("lift", 100, 4);
        sink.add_span_total("lift", 50, 2);
        assert_eq!(
            sink.span_totals(),
            vec![(
                "lift",
                SpanTotal {
                    total_ns: 150,
                    calls: 6
                }
            )]
        );
    }

    #[test]
    fn concurrent_recording_from_many_threads() {
        let sink = std::sync::Arc::new(TraceSink::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let sink = std::sync::Arc::clone(&sink);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let _span = Span::enter(sink.as_ref(), "worker");
                        sink.add("work", 1);
                    }
                    t
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker thread");
        }
        let events = sink.events();
        assert_eq!(events.len(), 800);
        assert!(events.iter().all(|e| e.dur_ns.is_some()));
        assert_eq!(sink.counters(), vec![("work", 800)]);
        // Logical thread ids: every event's tid is stable per thread.
        let distinct: std::collections::BTreeSet<u32> = events.iter().map(|e| e.tid).collect();
        assert_eq!(distinct.len(), 8);
    }
}
