#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Zero-dependency observability substrate for the pwrel pipeline.
//!
//! The paper's performance claims (Sec. V.C, Table III) are *per-stage*
//! claims — the log transform is cheap, the Lemma 2 correction is tiny,
//! and the SZ/ZFP coding stages dominate — so the pipeline needs a way to
//! attribute wall-clock and bytes to individual stages without perturbing
//! the measurement. This crate provides that substrate:
//!
//! * [`Recorder`] — the trait threaded (as `&dyn Recorder`) through the
//!   codec registry, the chunked codec, and the worker pool. Every method
//!   has a no-op default, so the disabled path is a virtual call guarded
//!   by [`Recorder::is_enabled`] and nothing else.
//! * [`noop`] — the process-wide disabled recorder. Call sites that do
//!   not care about tracing pass this; it never allocates, never takes a
//!   clock reading, and never locks.
//! * [`Span`] — an RAII guard pairing `begin_span`/`end_span` so exits
//!   stay LIFO-ordered even across `?` returns.
//! * [`StageTimer`] — an aggregating timer for per-block hot loops
//!   (e.g. ZFP's lift/plane-code stages run once per 4^d block); it
//!   accumulates locally and publishes one aggregate instead of millions
//!   of events.
//! * [`TraceSink`] — the concrete thread-safe recorder, with exporters
//!   in [`export`]: a human-readable per-stage summary table and Chrome
//!   `trace_event` JSON loadable in `chrome://tracing` / Perfetto.
//!
//! Stage names are shared constants in [`stage`] so the span taxonomy,
//! the codec registry's [`stages`](stage) declarations, and the exporters
//! can never drift apart.

pub mod export;
pub mod sink;
pub mod stage;

pub use sink::{Event, ObservedStat, TraceSink};

/// Opaque handle for an in-flight span, returned by
/// [`Recorder::begin_span`] and consumed by [`Recorder::end_span`].
///
/// [`SpanId::NONE`] means "no event was recorded" (the recorder was
/// disabled); [`Recorder::end_span`] ignores it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u64);

impl SpanId {
    /// The sentinel handle for "nothing was recorded".
    pub const NONE: SpanId = SpanId(u64::MAX);

    /// Wraps a raw recorder-defined value.
    pub fn from_raw(raw: u64) -> Self {
        SpanId(raw)
    }

    /// The raw recorder-defined value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A sink for spans, counters, and observations.
///
/// Implementations must be cheap when disabled: every default method is a
/// no-op, and instrumented code gates its clock reads on
/// [`Recorder::is_enabled`] (usually via [`Span`] / [`StageTimer`], which
/// do the gating for you). The trait is object-safe and `Send + Sync` so
/// a `&dyn Recorder` can cross into `pwrel-parallel` worker closures.
pub trait Recorder: Send + Sync {
    /// Whether this recorder stores anything at all. Instrumentation
    /// skips clock reads and value computation when this is `false`.
    fn is_enabled(&self) -> bool {
        false
    }

    /// Opens a span named `name` at the current instant. Returns a
    /// handle for [`Recorder::end_span`]; [`SpanId::NONE`] when nothing
    /// was recorded.
    fn begin_span(&self, name: &'static str) -> SpanId {
        let _ = name;
        SpanId::NONE
    }

    /// Closes the span `id` at the current instant. Ignores
    /// [`SpanId::NONE`] and unknown handles.
    fn end_span(&self, id: SpanId) {
        let _ = id;
    }

    /// Adds `delta` to the monotonic counter `name` (bytes in/out,
    /// outlier counts, task counts, …).
    fn add(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Records one observation of the distribution metric `name`
    /// (queue-wait micros, correction magnitudes, densities, …).
    fn observe(&self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Merges a pre-aggregated stage timing: `calls` invocations of
    /// stage `name` totalling `total_ns`. Used by per-block hot loops
    /// (see [`StageTimer`]) where one event per block would swamp the
    /// sink and distort the measurement.
    fn add_span_total(&self, name: &'static str, total_ns: u64, calls: u64) {
        let _ = (name, total_ns, calls);
    }
}

/// The always-disabled recorder backing [`noop`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

/// The process-wide no-op recorder: the default argument for every
/// traced entry point. All methods are empty and [`Recorder::is_enabled`]
/// is `false`, so instrumented code degenerates to one predictable
/// branch per stage boundary.
pub fn noop() -> &'static dyn Recorder {
    static NOOP: NoopRecorder = NoopRecorder;
    &NOOP
}

/// RAII span guard: opens the span on construction, closes it on drop.
///
/// Because drops run in reverse declaration order, nested guards always
/// close inner-before-outer, which is what the Chrome trace viewer and
/// the summary exporter assume.
#[must_use = "the span closes when this guard drops"]
pub struct Span<'a> {
    rec: &'a dyn Recorder,
    id: SpanId,
}

impl<'a> Span<'a> {
    /// Opens a span named `name` on `rec`. When the recorder is
    /// disabled this takes no clock reading and records nothing.
    pub fn enter(rec: &'a dyn Recorder, name: &'static str) -> Self {
        let id = if rec.is_enabled() {
            rec.begin_span(name)
        } else {
            SpanId::NONE
        };
        Span { rec, id }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if self.id != SpanId::NONE {
            self.rec.end_span(self.id);
        }
    }
}

/// Aggregating timer for stages that run once per block.
///
/// A ZFP compress runs the lift and plane-code stages millions of times;
/// recording an event per block would dominate the cost being measured.
/// `StageTimer` accumulates a local nanosecond total (two `Instant`
/// reads per call, only when the recorder is enabled) and publishes a
/// single aggregate via [`Recorder::add_span_total`] on
/// [`StageTimer::finish`].
pub struct StageTimer<'a> {
    rec: &'a dyn Recorder,
    name: &'static str,
    enabled: bool,
    total_ns: u64,
    calls: u64,
}

impl<'a> StageTimer<'a> {
    /// A timer for stage `name` reporting to `rec`.
    pub fn new(rec: &'a dyn Recorder, name: &'static str) -> Self {
        StageTimer {
            rec,
            name,
            enabled: rec.is_enabled(),
            total_ns: 0,
            calls: 0,
        }
    }

    /// Runs `f`, attributing its duration to this stage. When the
    /// recorder is disabled this is a bool test around the call.
    #[inline]
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        if !self.enabled {
            return f();
        }
        let t0 = std::time::Instant::now();
        let out = f();
        let ns = t0.elapsed().as_nanos();
        self.total_ns = self
            .total_ns
            .saturating_add(u64::try_from(ns).unwrap_or(u64::MAX));
        self.calls += 1;
        out
    }

    /// Publishes the aggregate (if anything was timed) and consumes the
    /// timer.
    pub fn finish(self) {
        if self.enabled && self.calls > 0 {
            self.rec
                .add_span_total(self.name, self.total_ns, self.calls);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_records_nothing() {
        let rec = noop();
        assert!(!rec.is_enabled());
        let id = rec.begin_span("x");
        assert_eq!(id, SpanId::NONE);
        rec.end_span(id);
        rec.add("c", 1);
        rec.observe("o", 1.0);
        rec.add_span_total("s", 10, 2);
    }

    #[test]
    fn span_guard_on_noop_is_inert() {
        let rec = noop();
        let outer = Span::enter(rec, "outer");
        let inner = Span::enter(rec, "inner");
        drop(inner);
        drop(outer);
    }

    #[test]
    fn stage_timer_on_noop_runs_closure() {
        let rec = noop();
        let mut t = StageTimer::new(rec, "stage");
        let mut hits = 0;
        for _ in 0..3 {
            t.time(|| hits += 1);
        }
        t.finish();
        assert_eq!(hits, 3);
    }

    #[test]
    fn span_id_raw_round_trip() {
        let id = SpanId::from_raw(42);
        assert_eq!(id.raw(), 42);
        assert_ne!(id, SpanId::NONE);
    }
}
