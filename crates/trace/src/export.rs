//! Exporters over a [`TraceSink`] snapshot: a per-stage summary table
//! for terminals and Chrome `trace_event` JSON for
//! `chrome://tracing` / Perfetto.
//!
//! Both exporters are pure functions of the sink snapshot and are
//! panic-free (they run inside operator tooling; see the workspace
//! audit's L1 policy).

use crate::sink::{SpanTotal, TraceSink};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Merged per-stage accounting used by the summary table: discrete span
/// events and [`crate::StageTimer`] aggregates reduce to the same shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageRow {
    /// Number of span occurrences (or timed calls for aggregates).
    pub calls: u64,
    /// Total nanoseconds attributed to the stage.
    pub total_ns: u64,
}

/// Folds discrete events and aggregated totals into one name → row map.
/// Open (unclosed) spans contribute a call with zero duration.
pub fn stage_rows(sink: &TraceSink) -> BTreeMap<&'static str, StageRow> {
    let mut rows: BTreeMap<&'static str, StageRow> = BTreeMap::new();
    for event in sink.events() {
        let row = rows.entry(event.name).or_default();
        row.calls += 1;
        row.total_ns = row.total_ns.saturating_add(event.dur_ns.unwrap_or(0));
    }
    for (name, SpanTotal { total_ns, calls }) in sink.span_totals() {
        let row = rows.entry(name).or_default();
        row.calls = row.calls.saturating_add(calls);
        row.total_ns = row.total_ns.saturating_add(total_ns);
    }
    rows
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Renders the human-readable per-stage summary: spans (with share of
/// sink wall-clock), counters, and observation statistics.
///
/// The "% wall" column divides by the sink's lifetime, so nested spans
/// legitimately sum past 100% — the roots (`compress` / `decompress`)
/// are the rows to reconcile against wall-clock.
pub fn summary_table(sink: &TraceSink) -> String {
    let mut out = String::new();
    let wall_ns = sink.elapsed_ns().max(1);
    let rows = stage_rows(sink);

    let _ = writeln!(out, "stage                     calls     total ms   % wall");
    let _ = writeln!(out, "-----                     -----     --------   ------");
    for (name, row) in &rows {
        let pct = 100.0 * row.total_ns as f64 / wall_ns as f64;
        let _ = writeln!(
            out,
            "{name:<24} {calls:>6} {total:>12} {pct:>8.1}",
            calls = row.calls,
            total = fmt_ms(row.total_ns),
        );
    }
    let _ = writeln!(out, "wall clock               {:>19} ms", fmt_ms(wall_ns));

    let counters = sink.counters();
    if !counters.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "counter                              value");
        let _ = writeln!(out, "-------                              -----");
        for (name, value) in counters {
            let _ = writeln!(out, "{name:<24} {value:>16}");
        }
    }

    let observations = sink.observations();
    if !observations.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "observation               count         mean          min          max"
        );
        let _ = writeln!(
            out,
            "-----------               -----         ----          ---          ---"
        );
        for (name, stat) in observations {
            let _ = writeln!(
                out,
                "{name:<24} {count:>6} {mean:>12.6} {min:>12.6} {max:>12.6}",
                count = stat.count,
                mean = stat.mean(),
                min = if stat.count == 0 { 0.0 } else { stat.min },
                max = if stat.count == 0 { 0.0 } else { stat.max },
            );
        }
    }
    out
}

/// Escapes a string for a JSON string literal. Stage names are in-tree
/// constants, but the exporter stays robust to arbitrary recorder input.
fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for ch in raw.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes the sink as Chrome `trace_event` JSON (the "JSON object
/// format": `{"traceEvents": [...]}`), loadable in `chrome://tracing`
/// and Perfetto.
///
/// * Closed spans become `"ph":"X"` complete events (`ts`/`dur` in
///   microseconds, fractional); open spans become `"ph":"B"` begins so
///   they remain visible rather than silently dropped.
/// * [`crate::StageTimer`] aggregates have no timeline position; they
///   are synthesized as `"ph":"X"` events on the reserved thread id
///   `9999` (named "aggregates") starting at `ts` 0, so per-block stage
///   names still appear in the trace with their true totals.
/// * Counters and observation means are emitted as `"ph":"C"` counter
///   events at the end of the timeline.
pub fn chrome_trace_json(sink: &TraceSink) -> String {
    const AGG_TID: u32 = 9999;
    let us = |ns: u64| ns as f64 / 1e3;
    let end_ts = us(sink.elapsed_ns());
    let mut parts: Vec<String> = Vec::new();

    for event in sink.events() {
        let name = json_escape(event.name);
        match event.dur_ns {
            Some(dur) => parts.push(format!(
                "{{\"name\":\"{name}\",\"cat\":\"pwrel\",\"ph\":\"X\",\"ts\":{ts:.3},\
                 \"dur\":{dur:.3},\"pid\":1,\"tid\":{tid}}}",
                ts = us(event.start_ns),
                dur = us(dur),
                tid = event.tid,
            )),
            None => parts.push(format!(
                "{{\"name\":\"{name}\",\"cat\":\"pwrel\",\"ph\":\"B\",\"ts\":{ts:.3},\
                 \"pid\":1,\"tid\":{tid}}}",
                ts = us(event.start_ns),
                tid = event.tid,
            )),
        }
    }

    for (name, SpanTotal { total_ns, calls }) in sink.span_totals() {
        parts.push(format!(
            "{{\"name\":\"{name}\",\"cat\":\"pwrel-aggregate\",\"ph\":\"X\",\"ts\":0.0,\
             \"dur\":{dur:.3},\"pid\":1,\"tid\":{AGG_TID},\"args\":{{\"calls\":{calls}}}}}",
            name = json_escape(name),
            dur = us(total_ns),
        ));
    }
    parts.push(format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{AGG_TID},\
         \"args\":{{\"name\":\"aggregates\"}}}}"
    ));

    for (name, value) in sink.counters() {
        parts.push(format!(
            "{{\"name\":\"{name}\",\"cat\":\"pwrel\",\"ph\":\"C\",\"ts\":{end_ts:.3},\
             \"pid\":1,\"args\":{{\"value\":{value}}}}}",
            name = json_escape(name),
        ));
    }
    for (name, stat) in sink.observations() {
        parts.push(format!(
            "{{\"name\":\"{name}\",\"cat\":\"pwrel\",\"ph\":\"C\",\"ts\":{end_ts:.3},\
             \"pid\":1,\"args\":{{\"mean\":{mean}}}}}",
            name = json_escape(name),
            mean = stat.mean(),
        ));
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&parts.join(",\n"));
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, Span};

    fn populated_sink() -> TraceSink {
        let sink = TraceSink::new();
        {
            let _root = Span::enter(&sink, "compress");
            let _stage = Span::enter(&sink, "huffman");
        }
        sink.add_span_total("lift", 1_500_000, 64);
        sink.add("bytes_in", 4096);
        sink.observe("outlier_rate", 0.01);
        sink
    }

    #[test]
    fn summary_names_every_stage_and_counter() {
        let sink = populated_sink();
        let table = summary_table(&sink);
        for needle in [
            "compress",
            "huffman",
            "lift",
            "bytes_in",
            "outlier_rate",
            "wall clock",
        ] {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
    }

    #[test]
    fn chrome_json_is_structurally_valid() {
        let sink = populated_sink();
        let json = chrome_trace_json(&sink);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        // Balanced braces/brackets with no raw control chars — a cheap
        // structural validity check without a JSON dependency.
        let (mut depth_obj, mut depth_arr) = (0i64, 0i64);
        let mut in_str = false;
        let mut escaped = false;
        for ch in json.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if ch == '\\' {
                    escaped = true;
                } else if ch == '"' {
                    in_str = false;
                } else {
                    assert!(ch as u32 >= 0x20, "raw control char in string");
                }
                continue;
            }
            match ch {
                '"' => in_str = true,
                '{' => depth_obj += 1,
                '}' => depth_obj -= 1,
                '[' => depth_arr += 1,
                ']' => depth_arr -= 1,
                _ => {}
            }
            assert!(depth_obj >= 0 && depth_arr >= 0);
        }
        assert_eq!((depth_obj, depth_arr), (0, 0));
        assert!(!in_str);
        for needle in ["\"ph\":\"X\"", "\"ph\":\"C\"", "\"lift\"", "\"compress\""] {
            assert!(json.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn open_spans_survive_as_begin_events() {
        let sink = TraceSink::new();
        let _ = sink.begin_span("stuck");
        let json = chrome_trace_json(&sink);
        assert!(json.contains("\"ph\":\"B\""));
    }

    #[test]
    fn escape_handles_hostile_names() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
