//! Canonical stage names: the span taxonomy shared by the instrumented
//! crates, the codec registry's per-codec stage declarations, and the
//! exporters.
//!
//! One constant per stage boundary named by the `pwrel-data` stage
//! traits (`Transform`, `Predictor`/`Quantizer`, `Encoder`,
//! `LosslessStage`, `BlockTransform`, `PlaneCoder`), plus the container
//! and orchestration layers above them. Using these constants — never
//! string literals — keeps the acceptance check "trace span names cover
//! every stage the registry reports" structural rather than textual.

/// Whole-codec root span opened by the registry around `compress`.
pub const COMPRESS: &str = "compress";
/// Whole-codec root span opened by the registry around `decompress`.
pub const DECOMPRESS: &str = "decompress";

/// Log-domain mapping: forward transform / plan + fused chunk mapping.
pub const TRANSFORM: &str = "transform";
/// Inverse log-domain mapping (exponentiation) on decompress.
pub const TRANSFORM_INV: &str = "transform_inv";
/// Sign-bitmap RLE+LZ coding (Algorithm 1's sign section).
pub const SIGNS: &str = "signs";

/// SZ prediction + error-bounded quantization raster sweep.
pub const PREDICT_QUANTIZE: &str = "predict_quantize";
/// Huffman coding of the quantization-factor stream (both directions).
pub const HUFFMAN: &str = "huffman";
/// The optional LZ pass over the serialized SZ stream (both directions).
pub const LZ: &str = "lz";
/// SZ reconstruction sweep (prediction replay) on decompress.
pub const RECONSTRUCT: &str = "reconstruct";

/// ZFP block-floating-point + decorrelating lifting transform
/// (per-block, aggregated).
pub const LIFT: &str = "lift";
/// ZFP negabinary mapping + group-testing plane coder (per-block,
/// aggregated).
pub const PLANE_CODE: &str = "plane_code";

/// Single-stage codecs without internal instrumentation (FPZIP,
/// ISABELA): the whole native encode/decode.
pub const ENCODE: &str = "encode";

/// Chunked-container slab fan-out (compress or decompress of all slabs).
pub const CHUNKS: &str = "chunks";

/// Framed-stream root span opened around a whole `compress_stream` run.
pub const STREAM_COMPRESS: &str = "stream_compress";
/// Framed-stream root span opened around a whole `decompress_stream` run.
pub const STREAM_DECOMPRESS: &str = "stream_decompress";
/// Per-chunk compress span inside a framed-stream run (one per frame).
pub const CHUNK_COMPRESS: &str = "chunk_compress";
/// Per-chunk decompress span inside a framed-stream run (one per frame).
pub const CHUNK_DECOMPRESS: &str = "chunk_decompress";

/// Counter: uncompressed bytes entering a codec.
pub const C_BYTES_IN: &str = "bytes_in";
/// Counter: compressed bytes leaving a codec.
pub const C_BYTES_OUT: &str = "bytes_out";
/// Counter: compressed bytes entering decompression. Kept separate from
/// [`C_BYTES_IN`] so a round trip on one sink doesn't mix directions.
pub const C_DECOMP_BYTES_IN: &str = "decompress_bytes_in";
/// Counter: reconstructed bytes leaving decompression.
pub const C_DECOMP_BYTES_OUT: &str = "decompress_bytes_out";
/// Counter: values quantized by the SZ stage.
pub const C_QUANT_VALUES: &str = "quant_values";
/// Counter: values outside the quantization capacity (escaped literals).
pub const C_QUANT_OUTLIERS: &str = "quant_outliers";
/// Counter: tasks executed through the worker pool.
pub const C_POOL_TASKS: &str = "pool_tasks";
/// Counter: frames written or decoded by the framed-stream engines.
pub const C_STREAM_CHUNKS: &str = "stream_chunks";
/// Counter: scratch-arena buffer requests served from the free list.
pub const C_ARENA_HITS: &str = "arena_hits";
/// Counter: scratch-arena buffer requests that had to allocate.
pub const C_ARENA_MISSES: &str = "arena_misses";
/// Counter: interleaved entropy payloads decoded (one per Huffman buffer
/// carrying the multi-stream descriptor; legacy buffers don't count).
pub const C_ENTROPY_INTERLEAVED: &str = "entropy_interleaved";
/// Counter: entropy sub-streams decoded across interleaved payloads
/// (`C_ENTROPY_INTERLEAVED` × lane count when every payload is 4-way).
pub const C_ENTROPY_SUBSTREAMS: &str = "entropy_substreams";

/// Observation: per-sub-stream payload bytes in an interleaved entropy
/// buffer — the balance across lanes bounds the pooled-decode speedup.
pub const O_ENTROPY_LANE_BYTES: &str = "entropy_lane_bytes";

/// Observation: SZ outlier rate (outliers / values) per compress.
pub const O_OUTLIER_RATE: &str = "outlier_rate";
/// Observation: fraction of negative samples in the sign bitmap.
pub const O_SIGN_DENSITY: &str = "sign_density";
/// Observation: Lemma 2 + kernel round-off correction as a fraction of
/// the uncorrected log-domain bound (`1 - corrected/uncorrected`).
pub const O_LEMMA2_CORRECTION: &str = "lemma2_correction";
/// Observation: per-task queue wait in the worker pool, microseconds.
pub const O_QUEUE_WAIT_US: &str = "queue_wait_us";

// ---------------------------------------------------------------------------
// pwrel-serve (the PWRP/1 service). Serve spans are recorded as
// aggregated totals (`Recorder::add_span_total`), never as raw events:
// a long-running server must not grow its sink per request.
// ---------------------------------------------------------------------------

/// Serve span: one whole request, any type (header read to last byte of
/// the response).
pub const SERVE_REQUEST: &str = "serve.request";
/// Serve span: the codec work of one `compress` request.
pub const SERVE_COMPRESS: &str = "serve.compress";
/// Serve span: the codec work of one `decompress` request.
pub const SERVE_DECOMPRESS: &str = "serve.decompress";
/// Serve span: one `info` request (stream identification).
pub const SERVE_INFO: &str = "serve.info";
/// Serve span: one `codecs` listing request.
pub const SERVE_CODECS: &str = "serve.codecs";
/// Serve span: one `metrics` exposition request.
pub const SERVE_METRICS: &str = "serve.metrics";

/// Counter: requests fully parsed (any type, before dispatch).
pub const C_SERVE_REQUESTS: &str = "serve_requests";
/// Counter: requests rejected with `busy` by the in-flight cap.
pub const C_SERVE_BUSY: &str = "serve_busy";
/// Counter: requests rejected for exhausting the connection byte quota.
pub const C_SERVE_QUOTA: &str = "serve_quota";
/// Counter: connections dropped by the read timeout mid-request.
pub const C_SERVE_TIMEOUTS: &str = "serve_timeouts";
/// Counter: request body bytes consumed off the wire.
pub const C_SERVE_BYTES_IN: &str = "serve_bytes_in";
/// Counter: response body bytes produced onto the wire.
pub const C_SERVE_BYTES_OUT: &str = "serve_bytes_out";

/// Observation: end-to-end latency of one served request, microseconds.
pub const O_SERVE_REQUEST_US: &str = "serve_request_us";
