//! Property tests: the fused lane-batched block lift (dispatched through
//! `pwrel_kernels::blocklift`) matches the reference per-axis lifting
//! bit-for-bit in both directions, over random coefficient blocks that
//! cover the full magnitude range the block-floating-point stage can
//! produce (including negatives and near-overflow values).

use proptest::prelude::*;
use pwrel_zfp::lift;

/// Block-floating-point coefficients: the alignment stage bounds them
/// well inside i64, but exercise a wide range anyway.
fn coeff() -> impl Strategy<Value = i64> {
    prop_oneof![
        8 => -(1i64 << 40)..(1i64 << 40),
        2 => -(1i64 << 58)..(1i64 << 58),
        1 => Just(0i64),
    ]
}

fn check_both_directions(block: &[i64], rank: u8) -> Result<(), TestCaseError> {
    let mut fused_f = block.to_vec();
    let mut ref_f = block.to_vec();
    lift::fwd_xform(&mut fused_f, rank);
    lift::fwd_xform_reference(&mut ref_f, rank);
    prop_assert_eq!(&fused_f, &ref_f, "forward lift diverges (rank {})", rank);

    // Feed the (shared) forward output through both inverses.
    let mut fused_i = ref_f.clone();
    let mut ref_i = ref_f;
    lift::inv_xform(&mut fused_i, rank);
    lift::inv_xform_reference(&mut ref_i, rank);
    prop_assert_eq!(&fused_i, &ref_i, "inverse lift diverges (rank {})", rank);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn fused_lift_matches_reference_1d(block in prop::collection::vec(coeff(), 4..5)) {
        check_both_directions(&block, 1)?;
    }

    #[test]
    fn fused_lift_matches_reference_2d(block in prop::collection::vec(coeff(), 16..17)) {
        check_both_directions(&block, 2)?;
    }

    #[test]
    fn fused_lift_matches_reference_3d(block in prop::collection::vec(coeff(), 64..65)) {
        check_both_directions(&block, 3)?;
    }
}
