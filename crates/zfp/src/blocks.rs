//! 4^d block gather/scatter with edge replication.

use pwrel_data::{Dims, Float};

/// Number of 4-sample blocks along each axis.
pub fn block_grid(dims: Dims) -> (usize, usize, usize) {
    (
        dims.nx.div_ceil(4).max(if dims.nx == 0 { 0 } else { 1 }),
        if dims.rank() >= 2 {
            dims.ny.div_ceil(4)
        } else {
            1
        },
        if dims.rank() >= 3 {
            dims.nz.div_ceil(4)
        } else {
            1
        },
    )
}

/// Total number of blocks.
#[allow(dead_code)]
pub fn n_blocks(dims: Dims) -> usize {
    let (bx, by, bz) = block_grid(dims);
    bx * by * bz
}

/// Gathers block `(bx, by, bz)` into `out` (length 4^rank), replicating the
/// last in-grid sample across padded positions, as f64.
pub fn gather<F: Float>(data: &[F], dims: Dims, bx: usize, by: usize, bz: usize, out: &mut [f64]) {
    let rank = dims.rank();
    let ext = |n: usize, b: usize, o: usize| -> usize { (4 * b + o).min(n - 1) };
    match rank {
        1 => {
            for (i, o) in out.iter_mut().enumerate().take(4) {
                *o = data[ext(dims.nx, bx, i)].to_f64();
            }
        }
        2 => {
            for j in 0..4 {
                let jj = ext(dims.ny, by, j);
                for i in 0..4 {
                    out[4 * j + i] = data[dims.index(ext(dims.nx, bx, i), jj, 0)].to_f64();
                }
            }
        }
        _ => {
            for k in 0..4 {
                let kk = ext(dims.nz, bz, k);
                for j in 0..4 {
                    let jj = ext(dims.ny, by, j);
                    for i in 0..4 {
                        out[16 * k + 4 * j + i] =
                            data[dims.index(ext(dims.nx, bx, i), jj, kk)].to_f64();
                    }
                }
            }
        }
    }
}

/// Scatters a reconstructed block back, writing only in-grid positions.
// audit:allow-fn(L1): every write is behind an explicit in-grid check
// (`x < dims.nx` etc.), `out` is allocated with `dims.len()` elements,
// and `block` is always the fixed 4^rank scratch (64 elements).
pub fn scatter<F: Float>(
    out: &mut [F],
    dims: Dims,
    bx: usize,
    by: usize,
    bz: usize,
    block: &[f64],
) {
    let rank = dims.rank();
    match rank {
        1 => {
            for (i, &b) in block.iter().enumerate().take(4) {
                let x = 4 * bx + i;
                if x < dims.nx {
                    out[x] = F::from_f64(b);
                }
            }
        }
        2 => {
            for j in 0..4 {
                let y = 4 * by + j;
                if y >= dims.ny {
                    continue;
                }
                for i in 0..4 {
                    let x = 4 * bx + i;
                    if x < dims.nx {
                        out[dims.index(x, y, 0)] = F::from_f64(block[4 * j + i]);
                    }
                }
            }
        }
        _ => {
            for k in 0..4 {
                let z = 4 * bz + k;
                if z >= dims.nz {
                    continue;
                }
                for j in 0..4 {
                    let y = 4 * by + j;
                    if y >= dims.ny {
                        continue;
                    }
                    for i in 0..4 {
                        let x = 4 * bx + i;
                        if x < dims.nx {
                            out[dims.index(x, y, z)] = F::from_f64(block[16 * k + 4 * j + i]);
                        }
                    }
                }
            }
        }
    }
}

/// Like [`gather`], but keeps the native element type instead of widening
/// to f64 — the fused transform path maps the block *after* gathering so
/// the mapped values match the buffered route bit-for-bit.
pub fn gather_raw<F: Float>(
    data: &[F],
    dims: Dims,
    bx: usize,
    by: usize,
    bz: usize,
    out: &mut [F],
) {
    let rank = dims.rank();
    let ext = |n: usize, b: usize, o: usize| -> usize { (4 * b + o).min(n - 1) };
    match rank {
        1 => {
            for (i, o) in out.iter_mut().enumerate().take(4) {
                *o = data[ext(dims.nx, bx, i)];
            }
        }
        2 => {
            for j in 0..4 {
                let jj = ext(dims.ny, by, j);
                for i in 0..4 {
                    out[4 * j + i] = data[dims.index(ext(dims.nx, bx, i), jj, 0)];
                }
            }
        }
        _ => {
            for k in 0..4 {
                let kk = ext(dims.nz, bz, k);
                for j in 0..4 {
                    let jj = ext(dims.ny, by, j);
                    for i in 0..4 {
                        out[16 * k + 4 * j + i] = data[dims.index(ext(dims.nx, bx, i), jj, kk)];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_grid_counts() {
        assert_eq!(block_grid(Dims::d1(9)), (3, 1, 1));
        assert_eq!(block_grid(Dims::d2(5, 8)), (2, 2, 1));
        assert_eq!(block_grid(Dims::d3(4, 4, 4)), (1, 1, 1));
        assert_eq!(n_blocks(Dims::d3(5, 5, 5)), 8);
    }

    #[test]
    fn gather_scatter_round_trip_unaligned() {
        let dims = Dims::d2(5, 6);
        let data: Vec<f32> = (0..30).map(|i| i as f32).collect();
        let mut out = vec![0.0f32; 30];
        let (gx, gy, _) = block_grid(dims);
        let mut block = vec![0.0f64; 16];
        for by in 0..gy {
            for bx in 0..gx {
                gather(&data, dims, bx, by, 0, &mut block);
                scatter(&mut out, dims, bx, by, 0, &block);
            }
        }
        assert_eq!(out, data);
    }

    #[test]
    fn padding_replicates_edges() {
        let dims = Dims::d1(5);
        let data = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        let mut block = vec![0.0f64; 4];
        gather(&data, dims, 1, 0, 0, &mut block);
        assert_eq!(block, vec![5.0, 5.0, 5.0, 5.0]);
    }

    #[test]
    fn gather_scatter_3d() {
        let dims = Dims::d3(3, 6, 7);
        let data: Vec<f64> = (0..dims.len()).map(|i| (i as f64).sin()).collect();
        let mut out = vec![0.0f64; dims.len()];
        let (gx, gy, gz) = block_grid(dims);
        let mut block = vec![0.0f64; 64];
        for bz in 0..gz {
            for by in 0..gy {
                for bx in 0..gx {
                    gather(&data, dims, bx, by, bz, &mut block);
                    scatter(&mut out, dims, bx, by, bz, &block);
                }
            }
        }
        assert_eq!(out, data);
    }
}
