#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` deliberately treats NaN as invalid; clippy prefers
// partial_cmp, which would hide that intent.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

//! ZFP-like transform-based error-bounded lossy compressor.
//!
//! Re-implements the ZFP 0.5 design the paper analyses (Sec. IV-B):
//!
//! 1. the dataset is partitioned into 4^d **blocks** (edge blocks are padded
//!    by replicating boundary samples),
//! 2. each block is aligned to a common exponent and converted to
//!    **fixed-point** integers (block-floating-point),
//! 3. an integer **decorrelating lifting transform** (ZFP's exact lifting
//!    steps; near-lossless — its truncating shifts stay far below any
//!    requested tolerance thanks to the fixed-point headroom) is applied
//!    along each dimension,
//! 4. coefficients are reordered by total sequency, mapped to **negabinary**
//!    and coded bit-plane by bit-plane with ZFP's group-testing **embedded
//!    coder**, most significant plane first.
//!
//! Two modes, matching the paper's ZFP_T and ZFP_P baselines:
//!
//! * [`ZfpCompressor::compress_accuracy`] — fixed accuracy (absolute error
//!   bound). Like ZFP, the plane cutoff is chosen *conservatively*
//!   (`maxprec = emax - emin + 2(d+1)`), so the observed error is typically
//!   far below the bound — the "over-preservation" the paper reports for
//!   ZFP_T's compression ratios.
//! * [`ZfpCompressor::compress_precision`] — fixed precision (the `-p` mode
//!   used as a pseudo relative-error bound). Blocks mixing magnitudes can
//!   violate any point-wise relative bound, reproducing ZFP_P's huge max
//!   errors in Table IV.

pub mod analysis;
pub(crate) mod blocks;
mod codec;
pub mod lift;
pub mod nb;

pub use codec::{precision_for_rel_bound, BlockSamples};
pub use lift::Lift;
pub use nb::GroupTestCoder;

use pwrel_data::{AbsErrorCodec, CodecError, Dims, Float};
use pwrel_kernels::{FusedOutput, LogFusedCodec, LogPlan};
use pwrel_trace::{noop, Recorder};

/// Configuration + entry points for the ZFP-like codec.
///
/// ```
/// use pwrel_zfp::ZfpCompressor;
/// use pwrel_data::Dims;
///
/// let dims = Dims::d2(32, 32);
/// let data: Vec<f32> = (0..dims.len()).map(|i| (i as f32 * 0.02).cos()).collect();
/// let zfp = ZfpCompressor;
/// let stream = zfp.compress_accuracy(&data, dims, 1e-4).unwrap();
/// let (back, _) = zfp.decompress::<f32>(&stream).unwrap();
/// for (a, b) in data.iter().zip(&back) {
///     assert!((a - b).abs() <= 1e-4);
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ZfpCompressor;

impl ZfpCompressor {
    /// Fixed-accuracy compression: target `|x - x'| <= tolerance`.
    pub fn compress_accuracy<F: Float>(
        &self,
        data: &[F],
        dims: Dims,
        tolerance: f64,
    ) -> Result<Vec<u8>, CodecError> {
        if !(tolerance > 0.0) || !tolerance.is_finite() {
            return Err(CodecError::InvalidArgument(
                "tolerance must be finite and > 0",
            ));
        }
        if data.len() != dims.len() {
            return Err(CodecError::InvalidArgument("data length != dims"));
        }
        codec::compress(data, dims, codec::Mode::Accuracy(tolerance), noop())
    }

    /// Fixed-precision compression: keep `precision` bit planes per block
    /// (ZFP's `-p` flag; 1 ..= F::BITS+2).
    pub fn compress_precision<F: Float>(
        &self,
        data: &[F],
        dims: Dims,
        precision: u32,
    ) -> Result<Vec<u8>, CodecError> {
        if precision == 0 || precision > F::BITS + 2 {
            return Err(CodecError::InvalidArgument("precision out of range"));
        }
        if data.len() != dims.len() {
            return Err(CodecError::InvalidArgument("data length != dims"));
        }
        codec::compress(data, dims, codec::Mode::Precision(precision), noop())
    }

    /// [`ZfpCompressor::compress_precision`] with per-stage recording
    /// (lift and plane-coder aggregates). Emits the same bytes.
    pub fn compress_precision_traced<F: Float>(
        &self,
        data: &[F],
        dims: Dims,
        precision: u32,
        rec: &dyn Recorder,
    ) -> Result<Vec<u8>, CodecError> {
        if precision == 0 || precision > F::BITS + 2 {
            return Err(CodecError::InvalidArgument("precision out of range"));
        }
        if data.len() != dims.len() {
            return Err(CodecError::InvalidArgument("data length != dims"));
        }
        codec::compress(data, dims, codec::Mode::Precision(precision), rec)
    }

    /// Fixed-rate compression: every 4^d block spends exactly
    /// `rate` bits per value (1 ..= F::BITS+2), giving constant-size,
    /// randomly-accessible blocks — ZFP's original mode. Error is not
    /// bounded; it is whatever the budget buys. Rejects non-finite input.
    pub fn compress_rate<F: Float>(
        &self,
        data: &[F],
        dims: Dims,
        rate: u32,
    ) -> Result<Vec<u8>, CodecError> {
        if rate == 0 || rate > F::BITS + 2 {
            return Err(CodecError::InvalidArgument("rate out of range"));
        }
        if data.len() != dims.len() {
            return Err(CodecError::InvalidArgument("data length != dims"));
        }
        codec::compress(data, dims, codec::Mode::FixedRate(rate), noop())
    }

    /// Decompresses any ZFP stream (any mode).
    pub fn decompress<F: Float>(&self, bytes: &[u8]) -> Result<(Vec<F>, Dims), CodecError> {
        codec::decompress(bytes, noop())
    }

    /// [`ZfpCompressor::decompress`] with per-stage recording (plane-coder
    /// and inverse-lift aggregates).
    pub fn decompress_traced<F: Float>(
        &self,
        bytes: &[u8],
        rec: &dyn Recorder,
    ) -> Result<(Vec<F>, Dims), CodecError> {
        codec::decompress(bytes, rec)
    }

    /// Randomly accesses one 4^d block of a **fixed-rate** stream — the
    /// capability constant-size blocks exist for. Returns the block's
    /// samples in block raster order (padded positions included) and the
    /// in-grid extent along each axis. Errors on non-fixed-rate streams.
    pub fn decompress_block<F: Float>(
        &self,
        bytes: &[u8],
        bx: usize,
        by: usize,
        bz: usize,
    ) -> Result<BlockSamples<F>, CodecError> {
        codec::decompress_block(bytes, bx, by, bz)
    }
}

impl<F: Float> LogFusedCodec<F> for ZfpCompressor {
    /// Fused accuracy-mode compression: each 4^d block is gathered from
    /// the original data and log-mapped on a stack scratch right before
    /// encoding — no intermediate mapped field. The sign bitmap comes
    /// from a dedicated integer sweep in the same call.
    fn compress_fused(
        &self,
        data: &[F],
        dims: Dims,
        plan: &LogPlan,
    ) -> Result<FusedOutput, CodecError> {
        self.compress_fused_traced(data, dims, plan, noop())
    }

    fn compress_fused_traced(
        &self,
        data: &[F],
        dims: Dims,
        plan: &LogPlan,
        rec: &dyn Recorder,
    ) -> Result<FusedOutput, CodecError> {
        if !(plan.abs_bound > 0.0) || !plan.abs_bound.is_finite() {
            return Err(CodecError::InvalidArgument(
                "tolerance must be finite and > 0",
            ));
        }
        if data.len() != dims.len() {
            return Err(CodecError::InvalidArgument("data length != dims"));
        }
        let (stream, signs) =
            codec::compress_fused(data, dims, plan, codec::Mode::Accuracy(plan.abs_bound), rec)?;
        Ok(FusedOutput { stream, signs })
    }
}

impl<F: Float> AbsErrorCodec<F> for ZfpCompressor {
    fn name(&self) -> &'static str {
        "zfp"
    }

    fn compress_abs(&self, data: &[F], dims: Dims, bound: f64) -> Result<Vec<u8>, CodecError> {
        self.compress_accuracy(data, dims, bound)
    }

    fn decompress_abs(&self, bytes: &[u8]) -> Result<(Vec<F>, Dims), CodecError> {
        self.decompress(bytes)
    }

    fn compress_abs_traced(
        &self,
        data: &[F],
        dims: Dims,
        bound: f64,
        rec: &dyn Recorder,
    ) -> Result<Vec<u8>, CodecError> {
        if !(bound > 0.0) || !bound.is_finite() {
            return Err(CodecError::InvalidArgument(
                "tolerance must be finite and > 0",
            ));
        }
        if data.len() != dims.len() {
            return Err(CodecError::InvalidArgument("data length != dims"));
        }
        codec::compress(data, dims, codec::Mode::Accuracy(bound), rec)
    }

    fn decompress_abs_traced(
        &self,
        bytes: &[u8],
        rec: &dyn Recorder,
    ) -> Result<(Vec<F>, Dims), CodecError> {
        codec::decompress(bytes, rec)
    }
}
