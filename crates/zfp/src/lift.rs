//! ZFP's integer lifting transform.
//!
//! The forward transform decorrelates 4 samples; applied separably along
//! each dimension of a 4^d block. These are ZFP's exact lifting steps
//! (`fwd_lift` / `inv_lift`). The `>>= 1` normalization steps *truncate*
//! low-order bits, so `inv(fwd(x))` reconstructs `x` only to within a few
//! integer units — by design: the block-floating-point scaling puts those
//! units many orders of magnitude below any requested tolerance, and the
//! truncation keeps coefficient growth under the reserved guard bits.

/// Forward lifting on 4 strided elements.
#[inline]
pub fn fwd_lift(p: &mut [i64], base: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) = (p[base], p[base + s], p[base + 2 * s], p[base + 3 * s]);
    x = x.wrapping_add(w);
    x >>= 1;
    w = w.wrapping_sub(x);
    z = z.wrapping_add(y);
    z >>= 1;
    y = y.wrapping_sub(z);
    x = x.wrapping_add(z);
    x >>= 1;
    z = z.wrapping_sub(x);
    w = w.wrapping_add(y);
    w >>= 1;
    y = y.wrapping_sub(w);
    w = w.wrapping_add(y >> 1);
    y = y.wrapping_sub(w >> 1);
    p[base] = x;
    p[base + s] = y;
    p[base + 2 * s] = z;
    p[base + 3 * s] = w;
}

/// Inverse lifting on 4 strided elements (exact inverse of [`fwd_lift`]).
// audit:allow-fn(L1): callers pass the fixed 4^rank block scratch with
// (base, s) drawn from the separable-transform geometry, so
// `base + 3*s < 4^rank` always holds; the access pattern is identical to
// the encoder-side `fwd_lift`.
#[inline]
pub fn inv_lift(p: &mut [i64], base: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) = (p[base], p[base + s], p[base + 2 * s], p[base + 3 * s]);
    y = y.wrapping_add(w >> 1);
    w = w.wrapping_sub(y >> 1);
    y = y.wrapping_add(w);
    w <<= 1;
    w = w.wrapping_sub(y);
    z = z.wrapping_add(x);
    x <<= 1;
    x = x.wrapping_sub(z);
    y = y.wrapping_add(z);
    z <<= 1;
    z = z.wrapping_sub(y);
    w = w.wrapping_add(x);
    x <<= 1;
    x = x.wrapping_sub(w);
    p[base] = x;
    p[base + s] = y;
    p[base + 2 * s] = z;
    p[base + 3 * s] = w;
}

/// Forward transform over a 4^rank block (separable).
///
/// Dispatches to the fused lane-batched kernels in `pwrel-kernels`
/// (bit-identical: every lifted op is an integer wrapping add/sub or
/// shift); `PWREL_LIFT=reference` selects the per-line loops below.
pub fn fwd_xform(block: &mut [i64], rank: u8) {
    if pwrel_kernels::dispatch::lift_kernel() == pwrel_kernels::BatchKernel::Batched {
        match (rank, block.len()) {
            (1, 4) => {
                if let Ok(b) = <&mut [i64; 4]>::try_from(&mut *block) {
                    return pwrel_kernels::blocklift::fwd_xform_1d(b);
                }
            }
            (2, 16) => {
                if let Ok(b) = <&mut [i64; 16]>::try_from(&mut *block) {
                    return pwrel_kernels::blocklift::fwd_xform_2d(b);
                }
            }
            (_, 64) if rank >= 3 => {
                if let Ok(b) = <&mut [i64; 64]>::try_from(&mut *block) {
                    return pwrel_kernels::blocklift::fwd_xform_3d(b);
                }
            }
            _ => {}
        }
    }
    fwd_xform_reference(block, rank)
}

/// Inverse transform over a 4^rank block (reverses [`fwd_xform`] exactly).
pub fn inv_xform(block: &mut [i64], rank: u8) {
    if pwrel_kernels::dispatch::lift_kernel() == pwrel_kernels::BatchKernel::Batched {
        match (rank, block.len()) {
            (1, 4) => {
                if let Ok(b) = <&mut [i64; 4]>::try_from(&mut *block) {
                    return pwrel_kernels::blocklift::inv_xform_1d(b);
                }
            }
            (2, 16) => {
                if let Ok(b) = <&mut [i64; 16]>::try_from(&mut *block) {
                    return pwrel_kernels::blocklift::inv_xform_2d(b);
                }
            }
            (_, 64) if rank >= 3 => {
                if let Ok(b) = <&mut [i64; 64]>::try_from(&mut *block) {
                    return pwrel_kernels::blocklift::inv_xform_3d(b);
                }
            }
            _ => {}
        }
    }
    inv_xform_reference(block, rank)
}

/// Per-line reference forward transform (the parity oracle for the fused
/// kernels, and the fallback for odd-sized scratch slices).
pub fn fwd_xform_reference(block: &mut [i64], rank: u8) {
    match rank {
        1 => fwd_lift(block, 0, 1),
        2 => {
            for j in 0..4 {
                fwd_lift(block, 4 * j, 1); // rows (x)
            }
            for i in 0..4 {
                fwd_lift(block, i, 4); // columns (y)
            }
        }
        _ => {
            for k in 0..4 {
                for j in 0..4 {
                    fwd_lift(block, 16 * k + 4 * j, 1); // x lines
                }
            }
            for k in 0..4 {
                for i in 0..4 {
                    fwd_lift(block, 16 * k + i, 4); // y lines
                }
            }
            for j in 0..4 {
                for i in 0..4 {
                    fwd_lift(block, 4 * j + i, 16); // z lines
                }
            }
        }
    }
}

/// Per-line reference inverse transform (exact inverse of
/// [`fwd_xform_reference`]).
pub fn inv_xform_reference(block: &mut [i64], rank: u8) {
    match rank {
        1 => inv_lift(block, 0, 1),
        2 => {
            for i in 0..4 {
                inv_lift(block, i, 4);
            }
            for j in 0..4 {
                inv_lift(block, 4 * j, 1);
            }
        }
        _ => {
            for j in 0..4 {
                for i in 0..4 {
                    inv_lift(block, 4 * j + i, 16);
                }
            }
            for k in 0..4 {
                for i in 0..4 {
                    inv_lift(block, 16 * k + i, 4);
                }
            }
            for k in 0..4 {
                for j in 0..4 {
                    inv_lift(block, 16 * k + 4 * j, 1);
                }
            }
        }
    }
}

/// Sequency-order permutation: coefficient indices sorted by total
/// frequency (sum of per-axis indices), low frequencies first. ZFP streams
/// coefficients in this order so the embedded coder sees energy-sorted data.
pub fn sequency_order(rank: u8) -> Vec<usize> {
    let size = block_size(rank);
    let mut idx: Vec<usize> = (0..size).collect();
    idx.sort_by_key(|&i| {
        let (x, y, z) = (i % 4, (i / 4) % 4, i / 16);
        (x + y + z, i)
    });
    idx
}

/// Number of samples in a 4^rank block.
pub fn block_size(rank: u8) -> usize {
    match rank {
        1 => 4,
        2 => 16,
        _ => 64,
    }
}

/// The lifting scheme as the pipeline's [`pwrel_data::BlockTransform`] stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lift;

impl pwrel_data::BlockTransform for Lift {
    fn name(&self) -> &'static str {
        "lift"
    }

    #[inline]
    fn forward(&self, block: &mut [i64], rank: u8) {
        fwd_xform(block, rank)
    }

    #[inline]
    fn inverse(&self, block: &mut [i64], rank: u8) {
        inv_xform(block, rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Asserts `inv(fwd(x))` reconstructs within the truncation tolerance
    /// (a few integer units per separable pass).
    fn round_trip_within(vals: &[i64], rank: u8, tol: i64) {
        let mut b = vals.to_vec();
        fwd_xform(&mut b, rank);
        inv_xform(&mut b, rank);
        for (i, (&a, &r)) in vals.iter().zip(&b).enumerate() {
            assert!(
                (a - r).abs() <= tol,
                "rank {rank} idx {i}: {a} vs {r} (tol {tol})"
            );
        }
    }

    #[test]
    fn lift_round_trips_within_truncation_1d() {
        round_trip_within(&[1, -5, 100, 42], 1, 4);
        round_trip_within(&[0, 0, 0, 0], 1, 0);
        round_trip_within(&[i64::from(i32::MAX), i64::from(i32::MIN), 7, -7], 1, 4);
    }

    #[test]
    fn xform_round_trips_within_truncation_2d_3d() {
        let v2: Vec<i64> = (0..16).map(|i| (i * i - 40) as i64).collect();
        round_trip_within(&v2, 2, 8);
        let v3: Vec<i64> = (0..64)
            .map(|i| ((i * 37) % 101 - 50) as i64 * 1_000_003)
            .collect();
        round_trip_within(&v3, 3, 32);
    }

    #[test]
    fn truncation_error_is_relatively_tiny_on_large_values() {
        // In the guard-bit regime (|v| near 2^61) the absolute truncation
        // error stays a handful of units — i.e. relative error ~2^-58.
        let mut x = 0x9E3779B97F4A7C15u64;
        let vals: Vec<i64> = (0..64)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x as i64) >> 3 // |v| < 2^61
            })
            .collect();
        round_trip_within(&vals[..4], 1, 8);
        round_trip_within(&vals[..16], 2, 32);
        round_trip_within(&vals, 3, 64);
    }

    #[test]
    fn constant_block_concentrates_energy() {
        // DC-only input: all energy must land in coefficient 0.
        let mut b = vec![1000i64; 4];
        fwd_lift(&mut b, 0, 1);
        assert_eq!(b[0], 1000);
        assert_eq!(&b[1..], &[0, 0, 0]);
    }

    #[test]
    fn linear_ramp_has_sparse_spectrum() {
        // The transform annihilates (near-)linear signals beyond 2 coeffs.
        let mut b: Vec<i64> = (0..4).map(|i| 100 + 8 * i as i64).collect();
        fwd_lift(&mut b, 0, 1);
        assert_eq!(b[2], 0, "second difference of a ramp is zero");
        assert_eq!(b[3], 0);
    }

    #[test]
    fn sequency_order_is_permutation() {
        for rank in 1..=3u8 {
            let mut p = sequency_order(rank);
            assert_eq!(p.len(), block_size(rank));
            assert_eq!(p[0], 0, "DC coefficient first");
            p.sort_unstable();
            assert_eq!(p, (0..block_size(rank)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn sequency_order_3d_ends_with_highest_frequency() {
        let p = sequency_order(3);
        assert_eq!(*p.last().unwrap(), 63);
    }

    #[test]
    fn dispatched_xform_matches_reference() {
        let mut x = 0xD1B54A32D192ED03u64;
        for rank in 1..=3u8 {
            let vals: Vec<i64> = (0..block_size(rank))
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x as i64) >> 2
                })
                .collect();
            let mut a = vals.clone();
            let mut b = vals;
            fwd_xform(&mut a, rank);
            fwd_xform_reference(&mut b, rank);
            assert_eq!(a, b, "fwd rank {rank}");
            inv_xform(&mut a, rank);
            inv_xform_reference(&mut b, rank);
            assert_eq!(a, b, "inv rank {rank}");
        }
    }
}
