// `!(x > 0.0)` deliberately treats NaN as invalid; clippy prefers
// partial_cmp, which would hide that intent.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
//! ZFP container and per-block compression pipeline.
//!
//! Container layout:
//!
//! ```text
//! magic "ZFR1" | float_bits u8 | mode u8 | rank u8 | nx ny nz uvarint
//! mode=0 (accuracy):  tolerance f64
//! mode=1 (precision): precision uvarint
//! payload uvarint length ++ bit stream of blocks
//! ```
//!
//! Each block starts with a tag: `0` all-zero, `10` transform-coded
//! (followed by a 16-bit biased exponent and the embedded bit planes), `11`
//! raw (verbatim IEEE bits; used for blocks containing non-finite values,
//! which real ZFP does not support).

use crate::blocks;
use crate::lift::{self, Lift};
use crate::nb::{self, GroupTestCoder};
use pwrel_bitstream::{bytesio, varint, BitReader, BitWriter};
use pwrel_data::{BlockTransform, CodecError, Dims, Float, PlaneCoder};
use pwrel_kernels::LogPlan;
use pwrel_trace::{stage, Recorder, StageTimer};

const MAGIC: &[u8; 4] = b"ZFR1";
const EMAX_BIAS: i32 = 8192;

/// Aggregating timers for the two coded stages. The lift and plane-code
/// stages are timed once per *chunk* of [`CHUNK_BLOCKS`] blocks (not per
/// block: two `Instant::now` pairs per 4^d block measurably distorts the
/// hot loop) and report one [`StageTimer`] aggregate per compression.
struct StageClocks<'a> {
    lift: StageTimer<'a>,
    plane: StageTimer<'a>,
}

impl<'a> StageClocks<'a> {
    fn new(rec: &'a dyn Recorder) -> Self {
        Self {
            lift: StageTimer::new(rec, stage::LIFT),
            plane: StageTimer::new(rec, stage::PLANE_CODE),
        }
    }

    fn finish(self) {
        self.lift.finish();
        self.plane.finish();
    }
}

/// Compression mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Absolute error tolerance.
    Accuracy(f64),
    /// Fixed number of bit planes per block.
    Precision(u32),
    /// Fixed bits per value: every block spends exactly `rate × 4^d` bits
    /// (ZFP's original headline mode — constant-size blocks enable random
    /// access; the error is whatever the budget buys).
    FixedRate(u32),
}

/// Heuristic mapping from a point-wise relative bound to a ZFP `-p`
/// precision, mirroring the parameter choices in the paper's Table IV
/// (e.g. `b_r = 1e-3 → -p 26`, `1e-2 → -p 23`).
pub fn precision_for_rel_bound(rel_bound: f64) -> u32 {
    assert!(rel_bound > 0.0 && rel_bound.is_finite());
    ((-rel_bound.log2()).ceil() as i64 + 16).clamp(1, 64) as u32
}

/// Plane count / negabinary width per element type.
fn intprec<F: Float>() -> u32 {
    if F::BITS == 32 {
        34
    } else {
        64
    }
}

/// Guard bits reserved for transform gain (≤ 2 per dimension level).
fn guard<F: Float>() -> i32 {
    if F::BITS == 32 {
        5
    } else {
        7
    }
}

/// frexp-style exponent: the `e` with `m ∈ [2^(e-1), 2^e)`, for finite m > 0.
fn frexp_exp(m: f64) -> i32 {
    debug_assert!(m > 0.0 && m.is_finite());
    let bits = m.to_bits();
    let e = ((bits >> 52) & 0x7FF) as i32;
    if e == 0 {
        // Subnormal: locate the leading mantissa bit.
        let mant = bits & ((1u64 << 52) - 1);
        let lz = mant.leading_zeros() as i32 - 12;
        -1022 - lz - 1
    } else {
        e - 1022
    }
}

/// Power of two as f64, clamped to the representable exponent range.
fn exp2_clamped(s: i32) -> f64 {
    (s.clamp(-1070, 1023) as f64).exp2()
}

/// kmin (lowest encoded plane) for a block with exponent `emax`.
///
/// Accuracy mode derivation: dropped planes below `kmin` perturb each
/// coefficient by < 2^(kmin+1) integer units; the inverse transform
/// amplifies per-sample error by < 3.75 per dimension (row sums of ZFP's
/// inverse lifting matrix), and one unit is 2^(emax - (ip - g)) in value
/// space. Requiring the product ≤ 2^emin ≤ tol gives
/// `maxprec = emax - emin + g + 1 + 2*rank` — the same shape as ZFP's
/// `emax - emin + 2(d+1)` cutoff, adjusted for our guard-bit count. Like
/// ZFP's, it is conservative: observed errors sit well below the bound.
fn kmin_for(mode: Mode, emax: i32, rank: u8, ip: u32, g: i32) -> u32 {
    match mode {
        Mode::Accuracy(tol) => {
            let emin = tol.log2().floor() as i32;
            let maxprec = (emax - emin + g + 1 + 2 * rank as i32).clamp(0, ip as i32) as u32;
            ip - maxprec
        }
        Mode::Precision(p) => ip.saturating_sub(p.min(ip)),
        Mode::FixedRate(_) => 0,
    }
}

/// Per-block bit budget in fixed-rate mode (tag + exponent + planes).
fn rate_budget(rate: u32, bs: usize) -> u64 {
    (rate as u64 * bs as u64).max(18)
}

/// Zero-pads the writer so the current block spans exactly `budget` bits.
fn pad_to(w: &mut BitWriter, block_start: u64, budget: u64) {
    let used = w.bit_len() - block_start;
    debug_assert!(used <= budget, "block overran its rate budget");
    let mut pad = budget - used;
    while pad > 0 {
        let chunk = pad.min(64) as u32;
        w.write_bits(0, chunk);
        pad -= chunk as u64;
    }
}

/// Advances the reader so the current block spans exactly `budget` bits.
fn skip_to(r: &mut BitReader, block_start: u64, budget: u64) -> Result<(), CodecError> {
    let used = r.bits_read() - block_start;
    if used > budget {
        return Err(CodecError::Corrupt("block overran its rate budget"));
    }
    // Whole-byte jump via skip_bits, chunked only because block offsets
    // (random access) can exceed u32 bits.
    let mut remaining = budget - used;
    while remaining > 0 {
        let chunk = remaining.min(u32::MAX as u64) as u32;
        r.skip_bits(chunk)?;
        remaining -= chunk as u64;
    }
    Ok(())
}

/// Decodes one block's samples from `r` into `fblock` (length 4^rank).
/// `block_start` is the reader position at the block's first bit.
// audit:allow-fn(L1): `fblock`, `iblock` and `coeffs` are the caller's
// fixed 4^rank scratch buffers and `order` is the compile-time
// coefficient permutation over 0..4^rank, so every index is in range
// regardless of stream contents.
#[allow(clippy::too_many_arguments)]
fn decode_one_block(
    r: &mut BitReader,
    block_start: u64,
    mode: Mode,
    rank: u8,
    ip: u32,
    g: i32,
    order: &[usize],
    iblock: &mut [i64],
    coeffs: &mut [u64],
    fblock: &mut [f64],
    clocks: &mut StageClocks<'_>,
) -> Result<(), CodecError> {
    let bs = fblock.len();
    if !r.read_bit()? {
        // Zero block.
        fblock.iter_mut().for_each(|v| *v = 0.0);
        if let Mode::FixedRate(rate) = mode {
            skip_to(r, block_start, rate_budget(rate, bs))?;
        }
        return Ok(());
    }
    if r.read_bit()? {
        // Raw escape block (never produced in fixed-rate mode).
        for v in fblock.iter_mut() {
            let bits = r.read_bits(if ip == 34 { 32 } else { 64 })?;
            *v = if ip == 34 {
                f32::from_bits(bits as u32) as f64
            } else {
                f64::from_bits(bits)
            };
        }
        return Ok(());
    }
    let emax = r.read_bits(16)? as i32 - EMAX_BIAS;
    let kmin = kmin_for(mode, emax, rank, ip, g);
    coeffs.iter_mut().for_each(|c| *c = 0);
    if let Mode::FixedRate(rate) = mode {
        let budget = rate_budget(rate, bs) - 18;
        clocks
            .plane
            .time(|| GroupTestCoder.decode(r, coeffs, ip, kmin, Some(budget)))?;
        skip_to(r, block_start, rate_budget(rate, bs))?;
    } else {
        clocks
            .plane
            .time(|| GroupTestCoder.decode(r, coeffs, ip, kmin, None))?;
    }
    clocks.lift.time(|| {
        for (slot, &dst) in order.iter().enumerate() {
            iblock[dst] = nb::nb_decode(coeffs[slot], ip);
        }
        Lift.inverse(iblock, rank);
        let s = (ip as i32 - g) - emax;
        let inv_scale = exp2_clamped(-s);
        for (i, &q) in iblock.iter().enumerate() {
            fblock[i] = q as f64 * inv_scale;
        }
    });
    Ok(())
}

/// Blocks per pipeline chunk: the bulk paths classify, lift, and
/// plane-code [`CHUNK_BLOCKS`] blocks per phase, so each stage timer
/// fires once per chunk and each kernel runs as a tight batched loop.
const CHUNK_BLOCKS: usize = 32;

/// What the per-block classification decided for one block of a chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockClass {
    /// All samples are exactly zero: tag `0`, no body.
    Zero,
    /// Raw escape: tag `11` + verbatim IEEE bits (non-finite samples or a
    /// below-resolution-floor accuracy tolerance).
    Raw,
    /// Transform-coded: tag `10` + biased exponent + embedded planes.
    Coded {
        /// Block-floating-point exponent of the largest magnitude.
        emax: i32,
    },
}

/// Classifies one gathered block, replicating the reference branch order:
/// raw escape first (non-finite, or an accuracy tolerance below the
/// per-block resolution floor), then all-zero, then transform-coded.
///
/// Accuracy mode's resolution floor: the float→fixed cast and the
/// lifting's truncating shifts cost up to ~2^(rank+3) integer units, i.e.
/// 2^(emax - (ip-g) + rank + 3) in value space. A block whose tolerance
/// sits below that floor cannot be transform-coded within bound — store
/// it verbatim (real ZFP simply misses such tolerances).
fn classify(
    fblock: &[f64],
    mode: Mode,
    rank: u8,
    ip: u32,
    g: i32,
) -> Result<BlockClass, CodecError> {
    let nonfinite = fblock.iter().any(|v| !v.is_finite());
    let needs_raw = nonfinite
        || if let Mode::Accuracy(tol) = mode {
            let max_mag = fblock.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            max_mag > 0.0 && {
                let emax = frexp_exp(max_mag);
                let floor_exp = emax - (ip as i32 - g) + rank as i32 + 4;
                tol < (floor_exp as f64).exp2()
            }
        } else {
            false
        };
    if needs_raw {
        if matches!(mode, Mode::FixedRate(_)) {
            return Err(CodecError::InvalidArgument(
                "fixed-rate mode requires finite input",
            ));
        }
        return Ok(BlockClass::Raw);
    }
    let max_mag = fblock.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if max_mag == 0.0 {
        return Ok(BlockClass::Zero);
    }
    Ok(BlockClass::Coded {
        emax: frexp_exp(max_mag),
    })
}

/// Lift phase over one chunk: block-floating-point scaling (so
/// |q| < 2^(ip - guard)), forward lifting, and negabinary mapping for
/// every transform-coded block. Runs under a single `lift` timer tick.
// audit:allow-fn(L1): `fchunk`/`coeffs_chunk` hold `classes.len()` blocks
// of `bs` samples by construction and `iblock`/`order` are the fixed
// 4^rank scratch/permutation.
#[allow(clippy::too_many_arguments)]
fn lift_chunk(
    classes: &[BlockClass],
    fchunk: &[f64],
    bs: usize,
    rank: u8,
    ip: u32,
    g: i32,
    order: &[usize],
    iblock: &mut [i64],
    coeffs_chunk: &mut [u64],
) {
    for (slot, class) in classes.iter().enumerate() {
        if let BlockClass::Coded { emax } = *class {
            let fblock = &fchunk[slot * bs..(slot + 1) * bs];
            let s = (ip as i32 - g) - emax;
            let scale = exp2_clamped(s);
            for (i, &v) in fblock.iter().enumerate() {
                iblock[i] = (v * scale) as i64;
            }
            Lift.forward(iblock, rank);
            let coeffs = &mut coeffs_chunk[slot * bs..(slot + 1) * bs];
            for (c, &src) in order.iter().enumerate() {
                coeffs[c] = nb::nb_encode(iblock[src], ip);
            }
        }
    }
}

/// Write phase over one chunk: tags, exponents, embedded planes, raw
/// bits, and fixed-rate padding, in block order — the emitted stream is
/// bit-identical to the reference per-block loop because every write
/// happens in the same sequence. Runs under a single `plane_code` timer
/// tick.
#[allow(clippy::too_many_arguments)]
fn write_chunk<F: Float>(
    w: &mut BitWriter,
    classes: &[BlockClass],
    fchunk: &[f64],
    bs: usize,
    mode: Mode,
    rank: u8,
    ip: u32,
    g: i32,
    coeffs_chunk: &[u64],
) {
    // Small blocks (1D: 4, 2D: 16 coefficients) batch 64/bs neighbours
    // through one shared bit-matrix transpose instead of per-plane
    // extraction loops; 3D blocks already transpose individually.
    let small = bs < 64;
    let group = if small { nb::PlaneBatch::group(bs) } else { 1 };
    let mut batch: Option<nb::PlaneBatch> = None;
    for (slot, class) in classes.iter().enumerate() {
        if small && slot % group == 0 {
            let lo = slot * bs;
            let hi = ((slot + group) * bs).min(classes.len() * bs);
            batch = Some(nb::PlaneBatch::gather(&coeffs_chunk[lo..hi], bs));
        }
        let block_start = w.bit_len();
        match *class {
            BlockClass::Raw => {
                w.write_bits(0b11, 2);
                for &v in &fchunk[slot * bs..(slot + 1) * bs] {
                    w.write_bits(F::from_f64(v).to_bits_u64(), F::BITS);
                }
            }
            BlockClass::Zero => {
                w.write_bit(false); // tag 0 = all-zero block
                if let Mode::FixedRate(rate) = mode {
                    pad_to(w, block_start, rate_budget(rate, bs));
                }
            }
            BlockClass::Coded { emax } => {
                w.write_bits(0b10, 2); // tag 10 = transform-coded block
                w.write_bits((emax + EMAX_BIAS) as u64, 16);
                let kmin = kmin_for(mode, emax, rank, ip, g);
                let budget = match mode {
                    Mode::FixedRate(rate) => rate_budget(rate, bs) - 18, // tag + exponent
                    _ => u64::MAX,
                };
                if let Some(b) = &batch {
                    let words = b.block_planes(slot % group);
                    nb::encode_plane_words(w, &words, bs, ip, kmin, budget);
                } else {
                    let coeffs = &coeffs_chunk[slot * bs..(slot + 1) * bs];
                    nb::encode_planes_budget(w, coeffs, ip, kmin, budget);
                }
                if let Mode::FixedRate(rate) = mode {
                    pad_to(w, block_start, rate_budget(rate, bs));
                }
            }
        }
    }
}

/// Maps a chunk index range to block grid coordinates in the raster order
/// the reference triple loop used: `bx` fastest, then `by`, then `bz`.
#[inline]
fn block_coords(t: usize, gx: usize, gy: usize) -> (usize, usize, usize) {
    (t % gx, (t / gx) % gy, t / (gx * gy))
}

/// Compresses `data` into a self-contained ZFP stream. The recorder gets
/// per-block lift and plane-code aggregates; output bytes are unchanged.
pub(crate) fn compress<F: Float>(
    data: &[F],
    dims: Dims,
    mode: Mode,
    rec: &dyn Recorder,
) -> Result<Vec<u8>, CodecError> {
    let rank = dims.rank();
    let bs = lift::block_size(rank);
    let order = lift::sequency_order(rank);
    let ip = intprec::<F>();
    let g = guard::<F>();

    let mut w = BitWriter::with_capacity(data.len());
    let mut clocks = StageClocks::new(rec);
    if !dims.is_empty() {
        let (gx, gy, gz) = blocks::block_grid(dims);
        let total = gx * gy * gz;
        let mut fchunk = vec![0.0f64; CHUNK_BLOCKS * bs];
        let mut coeffs_chunk = vec![0u64; CHUNK_BLOCKS * bs];
        let mut iblock = vec![0i64; bs];
        let mut classes = Vec::with_capacity(CHUNK_BLOCKS);
        let mut start = 0;
        while start < total {
            let end = (start + CHUNK_BLOCKS).min(total);
            classes.clear();
            for (slot, t) in (start..end).enumerate() {
                let (bx, by, bz) = block_coords(t, gx, gy);
                let fblock = &mut fchunk[slot * bs..(slot + 1) * bs];
                blocks::gather(data, dims, bx, by, bz, fblock);
                classes.push(classify(fblock, mode, rank, ip, g)?);
            }
            clocks.lift.time(|| {
                lift_chunk(
                    &classes,
                    &fchunk,
                    bs,
                    rank,
                    ip,
                    g,
                    &order,
                    &mut iblock,
                    &mut coeffs_chunk,
                )
            });
            clocks.plane.time(|| {
                write_chunk::<F>(
                    &mut w,
                    &classes,
                    &fchunk,
                    bs,
                    mode,
                    rank,
                    ip,
                    g,
                    &coeffs_chunk,
                )
            });
            start = end;
        }
    }
    clocks.finish();
    Ok(finish::<F>(w.into_bytes(), dims, mode))
}

/// Fused transform + compression: gathers each 4^d block from the
/// *original* data, maps it through `plan` on a stack-sized scratch, and
/// encodes it — the full mapped field is never materialized. The sign
/// bitmap (raster order, aligned with `data`) comes from a dedicated
/// integer sweep: block traversal revisits replicated edge samples, so
/// collecting signs during the gather would double-count them.
///
/// Produces exactly the stream [`compress`] would on the buffered mapped
/// data.
pub(crate) fn compress_fused<F: Float>(
    data: &[F],
    dims: Dims,
    plan: &LogPlan,
    mode: Mode,
    rec: &dyn Recorder,
) -> Result<(Vec<u8>, Option<Vec<bool>>), CodecError> {
    let rank = dims.rank();
    let bs = lift::block_size(rank);
    let order = lift::sequency_order(rank);
    let ip = intprec::<F>();
    let g = guard::<F>();

    // Sign collection is the plan's job only in linear sweeps; block
    // gathers replicate elements, so disable it and sweep separately.
    let block_plan = LogPlan {
        any_negative: false,
        ..*plan
    };
    let signs = plan
        .any_negative
        .then(|| data.iter().map(|x| x.to_f64() < 0.0).collect::<Vec<bool>>());

    let mut w = BitWriter::with_capacity(data.len());
    let mut clocks = StageClocks::new(rec);
    let mut map_timer = StageTimer::new(rec, stage::TRANSFORM);
    if !dims.is_empty() {
        let (gx, gy, gz) = blocks::block_grid(dims);
        let total = gx * gy * gz;
        let mut raw_chunk = vec![F::zero(); CHUNK_BLOCKS * bs];
        let mut mapped = vec![F::zero(); bs];
        let mut scratch = vec![0.0f64; bs];
        let mut fchunk = vec![0.0f64; CHUNK_BLOCKS * bs];
        let mut coeffs_chunk = vec![0u64; CHUNK_BLOCKS * bs];
        let mut iblock = vec![0i64; bs];
        let mut classes = Vec::with_capacity(CHUNK_BLOCKS);
        let mut no_signs = Vec::new();
        let mut start = 0;
        while start < total {
            let end = (start + CHUNK_BLOCKS).min(total);
            let cn = end - start;
            for (slot, t) in (start..end).enumerate() {
                let (bx, by, bz) = block_coords(t, gx, gy);
                blocks::gather_raw(
                    data,
                    dims,
                    bx,
                    by,
                    bz,
                    &mut raw_chunk[slot * bs..(slot + 1) * bs],
                );
            }
            map_timer.time(|| {
                for slot in 0..cn {
                    let raw = &raw_chunk[slot * bs..(slot + 1) * bs];
                    block_plan.map_chunk(raw, &mut mapped, &mut scratch, &mut no_signs);
                    for (f, m) in fchunk[slot * bs..(slot + 1) * bs].iter_mut().zip(&mapped) {
                        *f = m.to_f64();
                    }
                }
            });
            classes.clear();
            for slot in 0..cn {
                classes.push(classify(
                    &fchunk[slot * bs..(slot + 1) * bs],
                    mode,
                    rank,
                    ip,
                    g,
                )?);
            }
            clocks.lift.time(|| {
                lift_chunk(
                    &classes,
                    &fchunk,
                    bs,
                    rank,
                    ip,
                    g,
                    &order,
                    &mut iblock,
                    &mut coeffs_chunk,
                )
            });
            clocks.plane.time(|| {
                write_chunk::<F>(
                    &mut w,
                    &classes,
                    &fchunk,
                    bs,
                    mode,
                    rank,
                    ip,
                    g,
                    &coeffs_chunk,
                )
            });
            start = end;
        }
    }
    map_timer.finish();
    clocks.finish();
    Ok((finish::<F>(w.into_bytes(), dims, mode), signs))
}

/// Wraps an encoded payload in the self-describing container header.
fn finish<F: Float>(payload: Vec<u8>, dims: Dims, mode: Mode) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 48);
    out.extend_from_slice(MAGIC);
    out.push(F::BITS as u8);
    let (rank, nx, ny, nz) = dims.to_header();
    match mode {
        Mode::Accuracy(tol) => {
            out.push(0);
            out.push(rank);
            varint::write_uvarint(&mut out, nx);
            varint::write_uvarint(&mut out, ny);
            varint::write_uvarint(&mut out, nz);
            bytesio::put_f64(&mut out, tol);
        }
        Mode::Precision(p) => {
            out.push(1);
            out.push(rank);
            varint::write_uvarint(&mut out, nx);
            varint::write_uvarint(&mut out, ny);
            varint::write_uvarint(&mut out, nz);
            varint::write_uvarint(&mut out, p as u64);
        }
        Mode::FixedRate(rate) => {
            out.push(2);
            out.push(rank);
            varint::write_uvarint(&mut out, nx);
            varint::write_uvarint(&mut out, ny);
            varint::write_uvarint(&mut out, nz);
            varint::write_uvarint(&mut out, rate as u64);
        }
    }
    varint::write_uvarint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Decompresses a stream produced by [`compress`].
// audit:allow-fn(L1): the chunk scratch buffers (`fchunk`, `coeffs_chunk`)
// are allocated with `CHUNK_BLOCKS * bs` elements and every slot index is
// `< cn <= CHUNK_BLOCKS`; `iblock` holds `bs` elements and `order` is a
// permutation of `0..bs`. All untrusted quantities (dims, tags, counts)
// are validated before the chunk loop.
pub(crate) fn decompress<F: Float>(
    bytes: &[u8],
    rec: &dyn Recorder,
) -> Result<(Vec<F>, Dims), CodecError> {
    if !bytes.starts_with(MAGIC) {
        return Err(CodecError::Mismatch("bad ZFP magic"));
    }
    let mut pos = 4usize;
    let float_bits = *bytes.get(pos).ok_or(CodecError::Corrupt("eof in header"))?;
    pos += 1;
    if float_bits as u32 != F::BITS {
        return Err(CodecError::Mismatch("element type differs from stream"));
    }
    let mode_byte = *bytes.get(pos).ok_or(CodecError::Corrupt("eof in header"))?;
    pos += 1;
    let rank = *bytes.get(pos).ok_or(CodecError::Corrupt("eof in header"))?;
    pos += 1;
    let nx = varint::read_uvarint(bytes, &mut pos)?;
    let ny = varint::read_uvarint(bytes, &mut pos)?;
    let nz = varint::read_uvarint(bytes, &mut pos)?;
    let dims = Dims::from_header(rank, nx, ny, nz).ok_or(CodecError::Corrupt("bad dims"))?;
    let mode = match mode_byte {
        0 => Mode::Accuracy(bytesio::get_f64(bytes, &mut pos)?),
        1 => Mode::Precision(varint::read_uvarint(bytes, &mut pos)? as u32),
        2 => Mode::FixedRate(varint::read_uvarint(bytes, &mut pos)? as u32),
        _ => return Err(CodecError::Corrupt("unknown zfp mode")),
    };
    if let Mode::Accuracy(t) = mode {
        if !(t > 0.0) || !t.is_finite() {
            return Err(CodecError::Corrupt("bad tolerance"));
        }
    }
    let payload_len = varint::read_uvarint(bytes, &mut pos)? as usize;
    let payload = bytesio::get_bytes(bytes, &mut pos, payload_len)?;

    let rank = dims.rank();
    // `Dims::from_header` only constructs rank 1..=3, bounding
    // `block_size(rank)` to at most 64 before the scratch allocations.
    debug_assert!((1..=3).contains(&rank));
    let bs = lift::block_size(rank);
    let order = lift::sequency_order(rank);
    let ip = intprec::<F>();
    let g = guard::<F>();

    if dims.is_empty() {
        return Ok((Vec::new(), dims));
    }
    let (gx, gy, gz) = blocks::block_grid(dims);
    // Dims are untrusted: every block costs at least its tag bit, so a
    // header claiming more blocks than the payload has bits is corrupt —
    // reject before allocating the output.
    if gx as u64 * gy as u64 * gz as u64 > payload.len() as u64 * 8 {
        return Err(CodecError::Corrupt("dims exceed payload"));
    }
    let mut out = vec![F::zero(); dims.len()];
    let mut r = BitReader::new(payload);
    let total = gx * gy * gz;
    let mut fchunk = vec![0.0f64; CHUNK_BLOCKS * bs];
    let mut coeffs_chunk = vec![0u64; CHUNK_BLOCKS * bs];
    let mut iblock = vec![0i64; bs];
    let mut classes: Vec<BlockClass> = Vec::with_capacity(CHUNK_BLOCKS);
    let mut clocks = StageClocks::new(rec);
    let mut start = 0;
    while start < total {
        let end = (start + CHUNK_BLOCKS).min(total);
        let cn = end - start;
        classes.clear();
        // Read phase: tags, exponents, raw bits, and embedded planes for
        // the whole chunk, in stream order (one plane_code timer tick).
        clocks.plane.time(|| -> Result<(), CodecError> {
            // Small blocks decode into plane words and scatter groups of
            // 64/bs through one shared transpose (mirror of write_chunk's
            // batched gather); 3D blocks transpose individually.
            let small = bs < 64;
            let group = if small { nb::PlaneBatch::group(bs) } else { 1 };
            let mut batch: Option<nb::PlaneBatch> = None;
            for slot in 0..cn {
                if small && slot % group == 0 {
                    batch = Some(nb::PlaneBatch::collect(bs));
                }
                let block_start = r.bits_read();
                if !r.read_bit()? {
                    classes.push(BlockClass::Zero);
                    if let Mode::FixedRate(rate) = mode {
                        skip_to(&mut r, block_start, rate_budget(rate, bs))?;
                    }
                } else if r.read_bit()? {
                    // Raw escape block (never produced in fixed-rate mode).
                    for v in fchunk[slot * bs..(slot + 1) * bs].iter_mut() {
                        let bits = r.read_bits(if ip == 34 { 32 } else { 64 })?;
                        *v = if ip == 34 {
                            f32::from_bits(bits as u32) as f64
                        } else {
                            f64::from_bits(bits)
                        };
                    }
                    classes.push(BlockClass::Raw);
                } else {
                    let emax = r.read_bits(16)? as i32 - EMAX_BIAS;
                    let kmin = kmin_for(mode, emax, rank, ip, g);
                    let budget = match mode {
                        Mode::FixedRate(rate) => rate_budget(rate, bs) - 18,
                        _ => u64::MAX,
                    };
                    if let Some(b) = batch.as_mut() {
                        let mut words = [0u64; 64];
                        nb::decode_plane_words(&mut r, &mut words, bs, ip, kmin, budget)?;
                        b.set_block_planes(slot % group, &words);
                    } else {
                        let coeffs = &mut coeffs_chunk[slot * bs..(slot + 1) * bs];
                        coeffs.iter_mut().for_each(|c| *c = 0);
                        nb::decode_planes_budget(&mut r, coeffs, ip, kmin, budget)?;
                    }
                    if let Mode::FixedRate(rate) = mode {
                        skip_to(&mut r, block_start, rate_budget(rate, bs))?;
                    }
                    classes.push(BlockClass::Coded { emax });
                }
                if small && (slot % group == group - 1 || slot == cn - 1) {
                    if let Some(b) = batch.take() {
                        let lo = (slot / group) * group * bs;
                        b.scatter(&mut coeffs_chunk[lo..(slot + 1) * bs]);
                    }
                }
            }
            Ok(())
        })?;
        // Unlift phase: negabinary decode, inverse lifting, and scaling
        // for every coded block (one lift timer tick).
        clocks.lift.time(|| {
            for (slot, class) in classes.iter().enumerate() {
                let fblock = &mut fchunk[slot * bs..(slot + 1) * bs];
                match *class {
                    BlockClass::Zero => fblock.iter_mut().for_each(|v| *v = 0.0),
                    BlockClass::Raw => {}
                    BlockClass::Coded { emax } => {
                        let coeffs = &coeffs_chunk[slot * bs..(slot + 1) * bs];
                        for (c, &dst) in order.iter().enumerate() {
                            iblock[dst] = nb::nb_decode(coeffs[c], ip);
                        }
                        Lift.inverse(&mut iblock, rank);
                        let s = (ip as i32 - g) - emax;
                        let inv_scale = exp2_clamped(-s);
                        for (i, &q) in iblock.iter().enumerate() {
                            fblock[i] = q as f64 * inv_scale;
                        }
                    }
                }
            }
        });
        for (slot, t) in (start..end).enumerate() {
            let (bx, by, bz) = block_coords(t, gx, gy);
            blocks::scatter(
                &mut out,
                dims,
                bx,
                by,
                bz,
                &fchunk[slot * bs..(slot + 1) * bs],
            );
        }
        start = end;
    }
    clocks.finish();
    Ok((out, dims))
}

/// A randomly-accessed block: samples in block raster order (padded
/// positions included) and the in-grid extent along each axis.
pub type BlockSamples<F> = (Vec<F>, (usize, usize, usize));

/// Randomly accesses one 4^d block of a **fixed-rate** stream without
/// decoding anything else — the feature constant-size blocks buy.
pub(crate) fn decompress_block<F: Float>(
    bytes: &[u8],
    bx: usize,
    by: usize,
    bz: usize,
) -> Result<BlockSamples<F>, CodecError> {
    if !bytes.starts_with(MAGIC) {
        return Err(CodecError::Mismatch("bad ZFP magic"));
    }
    let mut pos = 4usize;
    let float_bits = *bytes.get(pos).ok_or(CodecError::Corrupt("eof in header"))?;
    pos += 1;
    if float_bits as u32 != F::BITS {
        return Err(CodecError::Mismatch("element type differs from stream"));
    }
    let mode_byte = *bytes.get(pos).ok_or(CodecError::Corrupt("eof in header"))?;
    pos += 1;
    let rank_byte = *bytes.get(pos).ok_or(CodecError::Corrupt("eof in header"))?;
    pos += 1;
    let nx = varint::read_uvarint(bytes, &mut pos)?;
    let ny = varint::read_uvarint(bytes, &mut pos)?;
    let nz = varint::read_uvarint(bytes, &mut pos)?;
    let dims = Dims::from_header(rank_byte, nx, ny, nz).ok_or(CodecError::Corrupt("bad dims"))?;
    let rate = match mode_byte {
        2 => varint::read_uvarint(bytes, &mut pos)? as u32,
        _ => {
            return Err(CodecError::InvalidArgument(
                "random access requires a fixed-rate stream",
            ))
        }
    };
    let payload_len = varint::read_uvarint(bytes, &mut pos)? as usize;
    let payload = bytesio::get_bytes(bytes, &mut pos, payload_len)?;

    let rank = dims.rank();
    // `Dims::from_header` only constructs rank 1..=3, bounding
    // `block_size(rank)` to at most 64 before the scratch allocations.
    debug_assert!((1..=3).contains(&rank));
    let bs = lift::block_size(rank);
    let order = lift::sequency_order(rank);
    let ip = intprec::<F>();
    let g = guard::<F>();
    let (gx, gy, gz) = blocks::block_grid(dims);
    if bx >= gx || by >= gy || bz >= gz {
        return Err(CodecError::InvalidArgument("block index out of range"));
    }

    let index = ((bz * gy) + by) * gx + bx;
    let offset = index as u64 * rate_budget(rate, bs);
    let mut r = BitReader::new(payload);
    skip_to(&mut r, 0, offset)?;
    let block_start = r.bits_read();

    let mut fblock = vec![0.0f64; bs];
    let mut iblock = vec![0i64; bs];
    let mut coeffs = vec![0u64; bs];
    // Random access decodes a single block; not worth tracing.
    let mut clocks = StageClocks::new(pwrel_trace::noop());
    decode_one_block(
        &mut r,
        block_start,
        Mode::FixedRate(rate),
        rank,
        ip,
        g,
        &order,
        &mut iblock,
        &mut coeffs,
        &mut fblock,
        &mut clocks,
    )?;
    clocks.finish();
    let extent = (
        (dims.nx - 4 * bx).min(4),
        if rank >= 2 {
            (dims.ny - 4 * by).min(4)
        } else {
            1
        },
        if rank >= 3 {
            (dims.nz - 4 * bz).min(4)
        } else {
            1
        },
    );
    Ok((fblock.into_iter().map(F::from_f64).collect(), extent))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ZfpCompressor;
    use pwrel_data::grf;

    fn zfp() -> ZfpCompressor {
        ZfpCompressor
    }

    fn check_accuracy<F: Float>(data: &[F], dims: Dims, tol: f64) -> Vec<u8> {
        let bytes = zfp().compress_accuracy(data, dims, tol).unwrap();
        let (dec, d2) = zfp().decompress::<F>(&bytes).unwrap();
        assert_eq!(d2, dims);
        for (idx, (&a, &b)) in data.iter().zip(&dec).enumerate() {
            let err = (a.to_f64() - b.to_f64()).abs();
            assert!(err <= tol, "idx {idx}: |{a} - {b}| = {err} > {tol}");
        }
        bytes
    }

    #[test]
    fn frexp_exponent_basics() {
        assert_eq!(frexp_exp(1.0), 1);
        assert_eq!(frexp_exp(0.5), 0);
        assert_eq!(frexp_exp(0.75), 0);
        assert_eq!(frexp_exp(2.0), 2);
        assert_eq!(frexp_exp(3.9), 2);
        assert_eq!(frexp_exp(f64::MIN_POSITIVE), -1021);
    }

    #[test]
    fn accuracy_bound_holds_1d() {
        let dims = Dims::d1(4000);
        let data: Vec<f32> = (0..4000).map(|i| (i as f32 * 0.013).sin() * 50.0).collect();
        for tol in [1.0, 1e-2, 1e-4] {
            check_accuracy(&data, dims, tol);
        }
    }

    #[test]
    fn accuracy_bound_holds_2d_3d() {
        let d2 = Dims::d2(60, 52);
        let f2 = grf::gaussian_field(d2, 5, 2, 2);
        check_accuracy(&f2, d2, 1e-3);
        let d3 = Dims::d3(13, 18, 21);
        let f3 = grf::gaussian_field(d3, 6, 1, 2);
        check_accuracy(&f3, d3, 1e-3);
    }

    #[test]
    fn accuracy_bound_holds_f64() {
        let dims = Dims::d3(8, 8, 8);
        let data: Vec<f64> = (0..512).map(|i| (i as f64 * 0.07).cos() * 1e8).collect();
        check_accuracy(&data, dims, 1e-1);
    }

    #[test]
    fn mixed_magnitudes_still_bounded_in_accuracy_mode() {
        let dims = Dims::d1(64);
        let mut data = vec![1e-6f32; 64];
        data[3] = 1e6;
        data[40] = -4e5;
        check_accuracy(&data, dims, 1e-3);
    }

    #[test]
    fn smooth_field_compresses() {
        let dims = Dims::d2(128, 128);
        let data = grf::gaussian_field(dims, 7, 4, 3);
        let bytes = check_accuracy(&data, dims, 1e-2);
        let cr = (data.len() * 4) as f64 / bytes.len() as f64;
        assert!(cr > 3.0, "cr = {cr}");
    }

    #[test]
    fn zero_field_is_tiny() {
        let dims = Dims::d3(16, 16, 16);
        let data = vec![0.0f32; dims.len()];
        let bytes = check_accuracy(&data, dims, 1e-6);
        assert!(bytes.len() < 200, "len = {}", bytes.len());
    }

    #[test]
    fn precision_mode_round_trips_and_is_rate_monotone() {
        let dims = Dims::d2(40, 40);
        let data = grf::gaussian_field(dims, 8, 2, 2);
        let mut prev_len = 0usize;
        for p in [8u32, 16, 24, 32] {
            let bytes = zfp().compress_precision(&data, dims, p).unwrap();
            let (dec, _) = zfp().decompress::<f32>(&bytes).unwrap();
            assert_eq!(dec.len(), data.len());
            assert!(bytes.len() >= prev_len, "p={p}");
            prev_len = bytes.len();
        }
        // High precision must be near-lossless.
        let bytes = zfp().compress_precision(&data, dims, 34).unwrap();
        let (dec, _) = zfp().decompress::<f32>(&bytes).unwrap();
        for (&a, &b) in data.iter().zip(&dec) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn precision_mode_violates_rel_bound_on_mixed_blocks() {
        // The Table IV story: a block holding 1e-6 next to 1e6 cannot keep
        // the small value's relative error under a fixed per-block precision.
        let dims = Dims::d1(64);
        let mut data = vec![1.0f32; 64];
        for i in (0..64).step_by(4) {
            data[i] = 1e6;
            data[i + 1] = 1e-6;
        }
        let bytes = zfp().compress_precision(&data, dims, 20).unwrap();
        let (dec, _) = zfp().decompress::<f32>(&bytes).unwrap();
        let max_rel = data
            .iter()
            .zip(&dec)
            .map(|(&a, &b)| ((a - b) / a).abs() as f64)
            .fold(0.0f64, f64::max);
        assert!(
            max_rel > 1.0,
            "expected blown relative error, got {max_rel}"
        );
    }

    #[test]
    fn raw_escape_preserves_nonfinite() {
        let dims = Dims::d1(6);
        let data = vec![1.0f32, f32::NAN, f32::INFINITY, -2.0, 3.0, -4.0];
        let bytes = zfp().compress_accuracy(&data, dims, 0.5).unwrap();
        let (dec, _) = zfp().decompress::<f32>(&bytes).unwrap();
        assert!(dec[1].is_nan());
        assert_eq!(dec[2], f32::INFINITY);
    }

    #[test]
    fn unaligned_dims_round_trip() {
        for dims in [Dims::d1(1), Dims::d1(5), Dims::d2(3, 7), Dims::d3(2, 5, 9)] {
            let data: Vec<f32> = (0..dims.len()).map(|i| (i as f32).sqrt() - 2.0).collect();
            check_accuracy(&data, dims, 1e-4);
        }
    }

    #[test]
    fn empty_input() {
        let bytes = zfp()
            .compress_accuracy::<f32>(&[], Dims::d1(0), 0.1)
            .unwrap();
        let (dec, _) = zfp().decompress::<f32>(&bytes).unwrap();
        assert!(dec.is_empty());
    }

    #[test]
    fn invalid_arguments() {
        let data = [1.0f32; 4];
        let dims = Dims::d1(4);
        assert!(zfp().compress_accuracy(&data, dims, 0.0).is_err());
        assert!(zfp().compress_precision(&data, dims, 0).is_err());
        assert!(zfp().compress_precision(&data, dims, 99).is_err());
        assert!(zfp().compress_accuracy(&data, Dims::d1(3), 0.1).is_err());
    }

    #[test]
    fn wrong_type_rejected() {
        let data = [1.0f32; 8];
        let bytes = zfp().compress_accuracy(&data, Dims::d1(8), 0.1).unwrap();
        assert!(zfp().decompress::<f64>(&bytes).is_err());
    }

    #[test]
    fn fixed_rate_stream_size_is_exact() {
        // rate × points (plus the fixed container header) regardless of
        // content: compressible and incompressible fields produce
        // identically-sized streams.
        let dims = Dims::d2(32, 32);
        let smooth = grf::gaussian_field(dims, 51, 4, 3);
        let noise = grf::white_noise(dims.len(), 52);
        for rate in [2u32, 8, 16] {
            let a = zfp().compress_rate(&smooth, dims, rate).unwrap();
            let b = zfp().compress_rate(&noise, dims, rate).unwrap();
            assert_eq!(a.len(), b.len(), "rate {rate}");
            let payload_bits = (rate as usize) * dims.len();
            assert!(a.len() * 8 >= payload_bits);
            assert!(a.len() * 8 < payload_bits + 512, "rate {rate}: {}", a.len());
        }
    }

    #[test]
    fn fixed_rate_error_decreases_with_rate() {
        let dims = Dims::d3(8, 8, 8);
        let data = grf::gaussian_field(dims, 53, 2, 2);
        let mut last = f64::INFINITY;
        for rate in [2u32, 6, 12, 24] {
            let s = zfp().compress_rate(&data, dims, rate).unwrap();
            let (dec, _) = zfp().decompress::<f32>(&s).unwrap();
            let err = data
                .iter()
                .zip(&dec)
                .map(|(&a, &b)| (a as f64 - b as f64).abs())
                .fold(0.0f64, f64::max);
            assert!(err <= last, "rate {rate}: {err} > {last}");
            last = err;
        }
        assert!(last < 1e-4, "high rate must be near-lossless, err {last}");
    }

    #[test]
    fn fixed_rate_round_trips_with_zero_blocks_and_edges() {
        let dims = Dims::d2(10, 13); // unaligned
        let mut data = vec![0.0f32; dims.len()];
        for (i, v) in data.iter_mut().enumerate() {
            if i % 3 == 0 {
                *v = (i as f32).sin();
            }
        }
        let s = zfp().compress_rate(&data, dims, 12).unwrap();
        let (dec, d) = zfp().decompress::<f32>(&s).unwrap();
        assert_eq!(d, dims);
        assert_eq!(dec.len(), data.len());
    }

    #[test]
    fn random_access_matches_full_decode() {
        let dims = Dims::d3(9, 10, 11); // unaligned on every axis
        let data = grf::gaussian_field(dims, 71, 1, 2);
        let rate = 14u32;
        let stream = zfp().compress_rate(&data, dims, rate).unwrap();
        let (full, _) = zfp().decompress::<f32>(&stream).unwrap();
        let (gx, gy, gz) = crate::blocks::block_grid(dims);
        for bz in 0..gz {
            for by in 0..gy {
                for bx in 0..gx {
                    let (block, (ex, ey, ez)) =
                        zfp().decompress_block::<f32>(&stream, bx, by, bz).unwrap();
                    assert_eq!(block.len(), 64);
                    for dk in 0..ez {
                        for dj in 0..ey {
                            for di in 0..ex {
                                let got = block[16 * dk + 4 * dj + di];
                                let want = full[dims.index(4 * bx + di, 4 * by + dj, 4 * bz + dk)];
                                assert_eq!(
                                    got.to_bits(),
                                    want.to_bits(),
                                    "block ({bx},{by},{bz}) local ({di},{dj},{dk})"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn random_access_rejects_wrong_mode_and_range() {
        let dims = Dims::d2(8, 8);
        let data = grf::gaussian_field(dims, 72, 1, 1);
        let acc = zfp().compress_accuracy(&data, dims, 1e-3).unwrap();
        assert!(zfp().decompress_block::<f32>(&acc, 0, 0, 0).is_err());
        let fixed = zfp().compress_rate(&data, dims, 8).unwrap();
        assert!(zfp().decompress_block::<f32>(&fixed, 0, 0, 0).is_ok());
        assert!(zfp().decompress_block::<f32>(&fixed, 2, 0, 0).is_err());
        assert!(zfp().decompress_block::<f32>(&fixed, 0, 0, 1).is_err());
    }

    #[test]
    fn fixed_rate_rejects_nonfinite_and_bad_rate() {
        let dims = Dims::d1(4);
        assert!(zfp()
            .compress_rate(&[1.0f32, f32::NAN, 0.0, 0.0], dims, 8)
            .is_err());
        assert!(zfp().compress_rate(&[1.0f32; 4], dims, 0).is_err());
        assert!(zfp().compress_rate(&[1.0f32; 4], dims, 99).is_err());
    }

    #[test]
    fn precision_heuristic_matches_paper_settings() {
        assert_eq!(precision_for_rel_bound(1e-3), 26);
        assert_eq!(precision_for_rel_bound(1e-2), 23);
        assert_eq!(precision_for_rel_bound(1e-1), 20);
    }

    #[test]
    fn tighter_tolerance_larger_stream() {
        let dims = Dims::d2(64, 64);
        let data = grf::gaussian_field(dims, 9, 3, 3);
        let loose = zfp().compress_accuracy(&data, dims, 1e-1).unwrap();
        let tight = zfp().compress_accuracy(&data, dims, 1e-5).unwrap();
        assert!(tight.len() > loose.len());
    }
}
