//! Negabinary mapping and ZFP's embedded group-testing bit-plane coder.
//!
//! Negabinary (base −2) representation makes the sign bit implicit, so
//! truncating low bit planes always rounds *toward* the value instead of
//! toward zero from one side. The plane coder is a transcription of ZFP's
//! `encode_ints` / `decode_ints`: within each plane the first `n` bits
//! (coefficients already known to be significant) are sent verbatim, and the
//! remainder is group-tested with unary runs.

use pwrel_bitstream::{BitReader, BitWriter, Result};

const NBMASK: u64 = 0xAAAA_AAAA_AAAA_AAAA;

#[inline]
fn width_mask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Two's-complement (width `n`) → negabinary (width `n`).
#[inline]
pub fn nb_encode(x: i64, n: u32) -> u64 {
    let m = NBMASK & width_mask(n);
    ((x as u64).wrapping_add(m) ^ m) & width_mask(n)
}

/// Negabinary (width `n`) → two's-complement sign-extended i64.
#[inline]
pub fn nb_decode(u: u64, n: u32) -> i64 {
    let m = NBMASK & width_mask(n);
    let v = (u ^ m).wrapping_sub(m) & width_mask(n);
    // Sign-extend from bit n-1.
    if n < 64 && v & (1u64 << (n - 1)) != 0 {
        (v | !width_mask(n)) as i64
    } else {
        v as i64
    }
}

/// In-place 64×64 bit-matrix transpose, LSB-first convention: afterwards
/// bit `i` of `a[k]` is what bit `k` of `a[i]` was. One butterfly network
/// (6 rounds of masked swaps) replaces the per-plane extraction loop in the
/// coder below — gathering all 64 planes costs ~6 ops per row instead of
/// one 64-iteration loop per plane. The transpose is an involution, so the
/// decoder reuses it to scatter planes back into coefficients.
#[inline]
fn transpose64(a: &mut [u64; 64]) {
    // One butterfly round: masked swaps between rows `k` and `k + J` for
    // every k whose bit J is clear. The const-generic stride gives each
    // round compile-time trip counts and shift amounts, so the inner loop
    // is branch-free and auto-vectorizes (the dynamic `(k + j + 1) & !j`
    // stepping of the generic form defeats both).
    #[inline(always)]
    fn round<const J: usize>(a: &mut [u64; 64], m: u64) {
        let mut base = 0;
        while base < 64 {
            for k in base..base + J {
                let t = ((a[k] >> J) ^ a[k + J]) & m;
                a[k] ^= t << J;
                a[k + J] ^= t;
            }
            base += 2 * J;
        }
    }
    round::<32>(a, 0x0000_0000_FFFF_FFFF);
    round::<16>(a, 0x0000_FFFF_0000_FFFF);
    round::<8>(a, 0x00FF_00FF_00FF_00FF);
    round::<4>(a, 0x0F0F_0F0F_0F0F_0F0F);
    round::<2>(a, 0x3333_3333_3333_3333);
    round::<1>(a, 0x5555_5555_5555_5555);
}

/// One 64-row bit matrix shared by `64 / bs` consecutive small blocks:
/// rows `bs*j .. bs*(j+1)` hold block `j`'s coefficients, so a single
/// 64x64 bit-matrix transpose yields every block's plane words at once
/// instead of one per-plane extraction loop per block. The same layout
/// runs in both
/// directions: `gather` + [`Self::block_planes`] feed the encoder,
/// [`Self::set_block_planes`] + `scatter` collect the decoder's output.
pub struct PlaneBatch {
    planes: [u64; 64],
    bs: usize,
}

impl PlaneBatch {
    /// Number of `bs`-coefficient blocks one batch covers.
    #[inline]
    pub fn group(bs: usize) -> usize {
        64 / bs
    }

    /// Gathers up to `64/bs` blocks' coefficients (concatenated in
    /// `coeffs`) for encoding. Rows past `coeffs.len()` stay zero.
    pub fn gather(coeffs: &[u64], bs: usize) -> Self {
        debug_assert!(bs < 64 && 64 % bs == 0 && coeffs.len() <= 64);
        let mut planes = [0u64; 64];
        planes[..coeffs.len()].copy_from_slice(coeffs);
        transpose64(&mut planes);
        Self { planes, bs }
    }

    /// Empty batch accumulating decoded sub-blocks.
    pub fn collect(bs: usize) -> Self {
        debug_assert!(bs < 64 && 64 % bs == 0);
        Self {
            planes: [0u64; 64],
            bs,
        }
    }

    /// Plane words of sub-block `j` (bit `i` of word `k` = coefficient
    /// `i`'s bit `k`), ready for [`encode_plane_words`].
    #[inline]
    pub fn block_planes(&self, j: usize) -> [u64; 64] {
        let sh = self.bs * j;
        let mask = (1u64 << self.bs) - 1;
        let mut out = [0u64; 64];
        for (o, p) in out.iter_mut().zip(&self.planes) {
            *o = (p >> sh) & mask;
        }
        out
    }

    /// Deposits sub-block `j`'s decoded plane words into the batch.
    #[inline]
    pub fn set_block_planes(&mut self, j: usize, words: &[u64; 64]) {
        let sh = self.bs * j;
        for (p, w) in self.planes.iter_mut().zip(words) {
            *p |= w << sh;
        }
    }

    /// Scatters the accumulated planes back into coefficient rows with
    /// one transpose; `coeffs` receives the first `coeffs.len()` rows.
    // audit:allow-fn(L1): `planes` is a fixed [u64; 64] and every caller
    // scatters a batch of `group * bs == 64` coefficients at most (the
    // final partial group is shorter), so `planes[..coeffs.len()]` is in
    // range for any stream.
    pub fn scatter(mut self, coeffs: &mut [u64]) {
        transpose64(&mut self.planes);
        coeffs.copy_from_slice(&self.planes[..coeffs.len()]);
    }
}

/// Encodes bit planes `intprec-1 .. kmin` of `coeffs` (negabinary, one u64
/// per coefficient, `coeffs.len() <= 64`).
pub fn encode_planes(w: &mut BitWriter, coeffs: &[u64], intprec: u32, kmin: u32) {
    encode_planes_budget(w, coeffs, intprec, kmin, u64::MAX);
}

/// Budgeted variant of [`encode_planes`]: stops after `maxbits` emitted
/// bits (ZFP's fixed-rate mode). Returns the number of bits written.
pub fn encode_planes_budget(
    w: &mut BitWriter,
    coeffs: &[u64],
    intprec: u32,
    kmin: u32,
    maxbits: u64,
) -> u64 {
    let size = coeffs.len();
    debug_assert!(size <= 64);
    // Full 3D blocks: gather every plane up front with one bit transpose.
    // Smaller standalone blocks (4, 16 coefficients) extract plane words
    // with the short loop; chunked call sites batch them through a shared
    // transpose instead (see [`PlaneBatch`]).
    let mut planes = [0u64; 64];
    if size == 64 {
        planes.copy_from_slice(coeffs);
        transpose64(&mut planes);
    } else {
        for k in kmin..intprec {
            let mut x = 0;
            for (i, &c) in coeffs.iter().enumerate() {
                x |= ((c >> k) & 1) << i;
            }
            planes[k as usize] = x;
        }
    }
    encode_plane_words(w, &planes, size, intprec, kmin, maxbits)
}

/// Group-test encodes pre-gathered plane words (bit `i` of `planes[k]` =
/// coefficient `i`'s bit `k`) for a block of `size` coefficients. Core of
/// every encode entry point; the stream is bit-identical to the reference
/// per-plane/per-bit loop.
pub fn encode_plane_words(
    w: &mut BitWriter,
    planes: &[u64; 64],
    size: usize,
    intprec: u32,
    kmin: u32,
    maxbits: u64,
) -> u64 {
    let mut bits = maxbits;
    let mut n: usize = 0;
    let mut k = intprec;
    while k > kmin {
        if bits == 0 {
            break;
        }
        k -= 1;
        // While no coefficient is significant yet, an empty plane costs
        // exactly one 0 control bit. Those planes dominate scaled blocks
        // (~40 of 48 on the Nyx field), so emit the whole run as a single
        // multi-bit write instead of per-plane write_bit calls.
        if n == 0 && planes[k as usize] == 0 {
            let mut j: u64 = 1;
            while k > kmin && planes[(k - 1) as usize] == 0 && j < bits.min(64) {
                k -= 1;
                j += 1;
            }
            w.write_bits(0, j as u32);
            bits -= j;
            continue;
        }
        let mut x = planes[k as usize];
        // First n coefficients are already significant: verbatim bits
        // (truncated to the remaining budget).
        let m = (n as u64).min(bits) as u32;
        bits -= m as u64;
        w.write_bits_lsb(x, m);
        x = if m >= 64 { 0 } else { x >> m };
        // Group-test the rest. If the budget died mid-verbatim (m < n) the
        // plane is over and the outer loop exits on bits == 0.
        let mut n_cur = if (m as usize) < n { size } else { n };
        if bits >= 192 {
            // A plane's group test emits at most 129 bits, so the budget
            // cannot expire mid-plane: emit whole unary runs in bulk.
            // `z` is the next significant coefficient's offset; `z == d`
            // means it sits in the final slot and its 1 is implicit.
            while n_cur < size {
                if x == 0 {
                    w.write_bit(false);
                    bits -= 1;
                    break;
                }
                let d = size - 1 - n_cur;
                let z = x.trailing_zeros() as usize;
                if z < d {
                    // Control 1, z zeros, then the explicit terminating 1 —
                    // one MSB-first write (z ≤ 62, so z + 2 ≤ 64 bits).
                    w.write_bits((1 << (z + 1)) | 1, z as u32 + 2);
                    bits -= z as u64 + 2;
                    x >>= z + 1;
                    n_cur += z + 1;
                } else {
                    // Control 1 then d zeros; the final slot's 1 is implicit
                    // (d ≤ 63, so d + 1 ≤ 64 bits).
                    w.write_bits(1 << d, d as u32 + 1);
                    bits -= d as u64 + 1;
                    n_cur = size;
                }
            }
        } else {
            while n_cur < size && bits > 0 {
                bits -= 1;
                let more = x != 0;
                w.write_bit(more);
                if !more {
                    break;
                }
                while n_cur < size - 1 && bits > 0 {
                    bits -= 1;
                    let bit = x & 1 == 1;
                    w.write_bit(bit);
                    if bit {
                        break;
                    }
                    x >>= 1;
                    n_cur += 1;
                }
                if bits == 0 && n_cur < size - 1 {
                    break;
                }
                x >>= 1;
                n_cur += 1;
            }
        }
        n = if (m as usize) < n { n } else { n_cur };
    }
    maxbits - bits
}

/// Reads one group-test unary run: up to `d` zeros terminated by an
/// explicit 1, or exactly `d` zeros with the terminator implicit (the
/// significant coefficient is the block's last slot). Returns the zero
/// count and whether the explicit 1 was consumed.
///
/// Runs are scanned a buffered word at a time — `refill` + `peek_word` +
/// `leading_zeros` — instead of bit-by-bit; a run of `z` zeros costs
/// ~`z/57` refills rather than `z` reader calls.
#[inline]
fn read_unary_capped(r: &mut BitReader, d: usize) -> Result<(usize, bool)> {
    // Cap of zero: the significant coefficient is already known to sit in
    // the final slot, its 1 is implicit and no bits are consumed. This must
    // be answered before probing the stream — the run may be the very last
    // thing in the payload, with nothing left to refill.
    if d == 0 {
        return Ok((0, false));
    }
    let mut zeros = 0usize;
    loop {
        r.refill();
        let avail = r.buffered_bits();
        if avail == 0 {
            return Err(pwrel_bitstream::Error::UnexpectedEof);
        }
        // Bits below the top `avail` of the window are zero and must not
        // count toward the run, hence the cap.
        let lz = (r.peek_word().leading_zeros().min(avail)) as usize;
        if zeros + lz >= d {
            r.consume((d - zeros) as u32);
            return Ok((d, false));
        }
        if lz < avail as usize {
            r.consume(lz as u32 + 1);
            return Ok((zeros + lz, true));
        }
        r.consume(avail);
        zeros += lz;
    }
}

/// Decodes bit planes written by [`encode_planes`] into `coeffs`
/// (must be zero-initialized, length = block size).
pub fn decode_planes(r: &mut BitReader, coeffs: &mut [u64], intprec: u32, kmin: u32) -> Result<()> {
    decode_planes_budget(r, coeffs, intprec, kmin, u64::MAX).map(|_| ())
}

/// Budgeted variant of [`decode_planes`] (mirror of
/// [`encode_planes_budget`]). Returns the number of bits consumed.
// audit:allow-fn(L1): `planes` is a fixed [u64; 64] and the plane index
// `k` iterates downward from `intprec <= 64`, so `planes[k as usize]`
// stays in range for any stream.
pub fn decode_planes_budget(
    r: &mut BitReader,
    coeffs: &mut [u64],
    intprec: u32,
    kmin: u32,
    maxbits: u64,
) -> Result<u64> {
    let size = coeffs.len();
    debug_assert!(size <= 64);
    // Mirror of the encoder's gather: plane words accumulate in a local
    // matrix and scatter into coefficients once at the end (full blocks
    // via one transpose, small blocks via the short per-plane loop).
    let mut planes = [0u64; 64];
    let used = decode_plane_words(r, &mut planes, size, intprec, kmin, maxbits)?;
    if size == 64 {
        transpose64(&mut planes);
        for (c, p) in coeffs.iter_mut().zip(&planes) {
            *c |= p;
        }
    } else {
        for k in kmin..intprec {
            let x = planes[k as usize];
            if x == 0 {
                continue;
            }
            for (i, c) in coeffs.iter_mut().enumerate() {
                *c |= ((x >> i) & 1) << k;
            }
        }
    }
    Ok(used)
}

/// Group-test decodes one block's planes into pre-zeroed plane words
/// (mirror of [`encode_plane_words`]); scattering words back into
/// coefficients is the caller's job, so chunked call sites can batch it
/// through one shared transpose (see [`PlaneBatch`]).
pub fn decode_plane_words(
    r: &mut BitReader,
    planes: &mut [u64; 64],
    size: usize,
    intprec: u32,
    kmin: u32,
    maxbits: u64,
) -> Result<u64> {
    let mut bits = maxbits;
    let mut n: usize = 0;
    let mut k = intprec;
    'outer: while k > kmin {
        if bits == 0 {
            break;
        }
        k -= 1;
        // Mirror of the encoder's zero-plane batch: while nothing is
        // significant yet, each empty plane is a lone 0 control bit, so a
        // run of empty planes sits as a run of zeros in the buffered
        // window — skip them all with one peek + consume per refill.
        if n == 0 {
            loop {
                r.refill();
                let avail = r.buffered_bits();
                if avail == 0 {
                    return Err(pwrel_bitstream::Error::UnexpectedEof);
                }
                let lz = r.peek_word().leading_zeros().min(avail);
                let take = (lz as u64).min((k - kmin + 1) as u64).min(bits) as u32;
                if take == 0 {
                    break; // plane k's control bit is a 1
                }
                r.consume(take);
                bits -= take as u64;
                if take == k - kmin + 1 || bits == 0 {
                    break 'outer; // every remaining plane was empty
                }
                k -= take;
                if lz < avail {
                    break; // a 1 follows in the buffer: plane k is live
                }
                // The window held nothing but zeros — refill and rescan.
            }
        }
        let m = (n as u64).min(bits) as u32;
        bits -= m as u64;
        let mut x: u64 = r.read_bits_lsb(m)?;
        let mut n_cur = if (m as usize) < n { size } else { n };
        if bits >= 192 {
            // Mirror of the encoder's bulk path: the budget cannot expire
            // mid-plane, so control bit + unary run are parsed together
            // from the peeked window ("1", z zeros, "1" — terminator
            // implicit when the run reaches the last slot). `avail` tracks
            // the window locally so several short runs share one refill.
            let mut avail = r.buffered_bits();
            while n_cur < size {
                if avail < 34 {
                    r.refill();
                    avail = r.buffered_bits();
                    if avail == 0 {
                        return Err(pwrel_bitstream::Error::UnexpectedEof);
                    }
                }
                let wd = r.peek_word();
                if wd >> 63 == 0 {
                    r.consume(1);
                    bits -= 1;
                    break; // control 0: plane over
                }
                let d = size - 1 - n_cur;
                if d == 0 {
                    // Last slot: its terminating 1 is implicit.
                    r.consume(1);
                    bits -= 1;
                    x += 1u64 << n_cur;
                    n_cur += 1;
                    continue;
                }
                let lz = ((wd << 1).leading_zeros()).min(avail - 1) as usize;
                if lz >= d {
                    // d buffered zeros: the run caps out, terminator implicit.
                    r.consume(d as u32 + 1);
                    avail -= d as u32 + 1;
                    bits -= d as u64 + 1;
                    n_cur += d;
                    x += 1u64 << n_cur;
                    n_cur += 1;
                } else if (lz as u32) < avail - 1 {
                    // Explicit terminating 1 inside the window.
                    r.consume(lz as u32 + 2);
                    avail -= lz as u32 + 2;
                    bits -= lz as u64 + 2;
                    n_cur += lz;
                    x += 1u64 << n_cur;
                    n_cur += 1;
                } else {
                    // The zero run outlives the window: fall back to the
                    // multi-refill scan for this (rare) case.
                    r.consume(1);
                    bits -= 1;
                    let (z, explicit) = read_unary_capped(r, d)?;
                    bits -= z as u64 + explicit as u64;
                    n_cur += z;
                    x += 1u64 << n_cur;
                    n_cur += 1;
                    avail = r.buffered_bits();
                }
            }
        } else {
            while n_cur < size && bits > 0 {
                bits -= 1;
                if !r.read_bit()? {
                    break;
                }
                while n_cur < size - 1 && bits > 0 {
                    bits -= 1;
                    if r.read_bit()? {
                        break;
                    }
                    n_cur += 1;
                }
                if bits == 0 && n_cur < size - 1 {
                    break;
                }
                x += 1u64 << n_cur;
                n_cur += 1;
            }
        }
        planes[k as usize] = x;
        n = if (m as usize) < n { n } else { n_cur };
    }
    Ok(maxbits - bits)
}

/// The group-testing embedded coder as the pipeline's [`pwrel_data::PlaneCoder`]
/// stage. `maxbits: None` selects the unbudgeted accuracy/precision path,
/// `Some(budget)` the fixed-rate path.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupTestCoder;

impl pwrel_data::PlaneCoder for GroupTestCoder {
    fn name(&self) -> &'static str {
        "group-test"
    }

    fn encode(
        &self,
        w: &mut BitWriter,
        coeffs: &[u64],
        intprec: u32,
        kmin: u32,
        maxbits: Option<u64>,
    ) -> u64 {
        match maxbits {
            Some(budget) => encode_planes_budget(w, coeffs, intprec, kmin, budget),
            None => {
                let before = w.bit_len();
                encode_planes(w, coeffs, intprec, kmin);
                w.bit_len() - before
            }
        }
    }

    fn decode(
        &self,
        r: &mut BitReader<'_>,
        coeffs: &mut [u64],
        intprec: u32,
        kmin: u32,
        maxbits: Option<u64>,
    ) -> std::result::Result<u64, pwrel_data::CodecError> {
        match maxbits {
            Some(budget) => Ok(decode_planes_budget(r, coeffs, intprec, kmin, budget)?),
            None => {
                let before = r.bits_read();
                decode_planes(r, coeffs, intprec, kmin)?;
                Ok(r.bits_read() - before)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_matches_naive_extraction() {
        let mut a = [0u64; 64];
        for (i, v) in a.iter_mut().enumerate() {
            *v = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(i as u32);
        }
        let orig = a;
        transpose64(&mut a);
        for (k, &plane) in a.iter().enumerate() {
            let mut naive = 0u64;
            for (i, &c) in orig.iter().enumerate() {
                naive |= ((c >> k) & 1) << i;
            }
            assert_eq!(plane, naive, "plane {k}");
        }
        // Involution: a second transpose restores the input.
        transpose64(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn negabinary_round_trip_64() {
        for x in [0i64, 1, -1, 2, -2, 1000, -1000, i64::MAX / 4, i64::MIN / 4] {
            assert_eq!(nb_decode(nb_encode(x, 64), 64), x, "x = {x}");
        }
    }

    #[test]
    fn negabinary_round_trip_32() {
        for x in [0i64, 1, -1, 123456, -123456, (1 << 30) - 1, -(1 << 30)] {
            assert_eq!(nb_decode(nb_encode(x, 32), 32), x, "x = {x}");
        }
    }

    #[test]
    fn negabinary_zero_is_zero() {
        assert_eq!(nb_encode(0, 32), 0);
        assert_eq!(nb_encode(0, 64), 0);
    }

    #[test]
    fn negabinary_magnitude_monotone_truncation() {
        // Truncating low planes of negabinary must give error < 2^planes.
        for x in [-100_000i64, -37, 12, 99_999] {
            let u = nb_encode(x, 64);
            for drop in [0u32, 4, 8] {
                let trunc = u >> drop << drop;
                let back = nb_decode(trunc, 64);
                assert!(
                    (back - x).abs() < (1i64 << (drop + 1)),
                    "x={x} drop={drop} back={back}"
                );
            }
        }
    }

    fn plane_round_trip(vals: &[i64], intprec: u32, kmin: u32) -> Vec<i64> {
        let coeffs: Vec<u64> = vals.iter().map(|&v| nb_encode(v, intprec)).collect();
        let mut w = BitWriter::new();
        encode_planes(&mut w, &coeffs, intprec, kmin);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut out = vec![0u64; vals.len()];
        decode_planes(&mut r, &mut out, intprec, kmin).unwrap();
        out.into_iter().map(|u| nb_decode(u, intprec)).collect()
    }

    #[test]
    fn all_planes_is_lossless() {
        let vals = [7i64, -13, 0, 255, -1_000_000, 1, 1 << 40, -(1 << 40)];
        assert_eq!(plane_round_trip(&vals, 64, 0), vals);
    }

    #[test]
    fn lossless_various_block_sizes() {
        for size in [4usize, 16, 64] {
            let vals: Vec<i64> = (0..size).map(|i| (i as i64 - 7) * 1001).collect();
            assert_eq!(plane_round_trip(&vals, 64, 0), vals);
        }
    }

    #[test]
    fn truncated_planes_bound_error() {
        let vals: Vec<i64> = (0..16).map(|i| (i as i64 * 7919) % 10007 - 5000).collect();
        for kmin in [4u32, 8, 12] {
            let out = plane_round_trip(&vals, 64, kmin);
            for (a, b) in vals.iter().zip(&out) {
                assert!(
                    (a - b).abs() < 1i64 << (kmin + 1),
                    "kmin={kmin}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn sparse_block_costs_few_bits() {
        // One significant coefficient among 64: group testing must keep the
        // stream tiny compared to 64 * 64 raw bits.
        let mut vals = vec![0i64; 64];
        vals[0] = 3;
        let coeffs: Vec<u64> = vals.iter().map(|&v| nb_encode(v, 64)).collect();
        let mut w = BitWriter::new();
        encode_planes(&mut w, &coeffs, 64, 0);
        let bits = w.bit_len();
        assert!(bits < 300, "bits = {bits}");
        assert_eq!(plane_round_trip(&vals, 64, 0), vals);
    }

    #[test]
    fn budgeted_encoder_matches_unbudgeted_with_infinite_budget() {
        let vals: Vec<i64> = (0..16).map(|i| (i as i64 * 7919) % 10007 - 5000).collect();
        let coeffs: Vec<u64> = vals.iter().map(|&v| nb_encode(v, 64)).collect();
        let mut a = BitWriter::new();
        encode_planes(&mut a, &coeffs, 64, 0);
        let mut b = BitWriter::new();
        encode_planes_budget(&mut b, &coeffs, 64, 0, u64::MAX);
        assert_eq!(a.into_bytes(), b.into_bytes());
    }

    #[test]
    fn budgeted_round_trip_consumes_exactly_written_bits() {
        let vals: Vec<i64> = (0..64)
            .map(|i| ((i * 2654435761u64 as usize) as i64 % 100001) - 50000)
            .collect();
        let coeffs: Vec<u64> = vals.iter().map(|&v| nb_encode(v, 64)).collect();
        for budget in [1u64, 7, 16, 33, 100, 500, 1000, 2500] {
            let mut w = BitWriter::new();
            let written = encode_planes_budget(&mut w, &coeffs, 64, 0, budget);
            assert!(written <= budget);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            let mut out = vec![0u64; 64];
            let read = decode_planes_budget(&mut r, &mut out, 64, 0, budget).unwrap();
            assert_eq!(read, written, "budget {budget}");
        }
    }

    #[test]
    fn error_shrinks_as_budget_grows() {
        let vals: Vec<i64> = (0..16).map(|i| (i as i64 - 8) * 1_000_001).collect();
        let coeffs: Vec<u64> = vals.iter().map(|&v| nb_encode(v, 64)).collect();
        let mut last_err = i64::MAX;
        for budget in [64u64, 192, 448, 960, 4096] {
            let mut w = BitWriter::new();
            encode_planes_budget(&mut w, &coeffs, 64, 0, budget);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            let mut out = vec![0u64; 16];
            decode_planes_budget(&mut r, &mut out, 64, 0, budget).unwrap();
            let err: i64 = vals
                .iter()
                .zip(&out)
                .map(|(&v, &u)| (v - nb_decode(u, 64)).abs())
                .max()
                .unwrap();
            assert!(err <= last_err, "budget {budget}: {err} > {last_err}");
            last_err = err;
        }
        assert_eq!(last_err, 0, "full budget must be lossless");
    }

    #[test]
    fn implicit_final_slot_one_at_byte_boundary_round_trips() {
        // Regression: the last significant coefficient sits in the block's
        // final slot, so its terminating 1 is implicit (zero run bits), and
        // the payload ends exactly on a byte boundary. The decoder must not
        // report EOF for the zero-bit run. These coefficients encode to
        // exactly 8 bits: three empty planes (3 bits) + plane 0's group
        // test (1 + "001" + 1 = 5 bits).
        let coeffs = [0u64, 0, 1, 1];
        let mut w = BitWriter::new();
        encode_planes(&mut w, &coeffs, 4, 0);
        assert_eq!(w.bit_len(), 8);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut out = vec![0u64; 4];
        decode_planes(&mut r, &mut out, 4, 0).unwrap();
        assert_eq!(out, coeffs);
    }

    #[test]
    fn zero_block_is_one_bit_per_plane() {
        let vals = [0i64; 16];
        let coeffs: Vec<u64> = vals.iter().map(|&v| nb_encode(v, 64)).collect();
        let mut w = BitWriter::new();
        encode_planes(&mut w, &coeffs, 64, 0);
        assert_eq!(w.bit_len(), 64);
    }
}
