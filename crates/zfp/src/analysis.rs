//! Transform effectiveness metrics (paper Definition 1).
//!
//! Treating each of the 4^d positions in a block as a random variable, the
//! covariance matrix `σ` of the *transformed coefficients* across all
//! blocks of a dataset determines
//!
//! * decorrelation efficiency `η = Σ σ_ii² / Σ_ij σ_ij²` (how much of the
//!   covariance energy the transform packs onto the diagonal),
//! * coding gain `γ = (Σ σ_ii² / n) / (Π σ_ii²)^(1/n)` (arithmetic over
//!   geometric mean of the coefficient variances).
//!
//! Lemma 4 argues a logarithm base change multiplies every covariance by
//! the same constant `1/(ln a)²`, which cancels in both metrics — verified
//! numerically in the tests here.

use crate::blocks;
use crate::lift;
use pwrel_data::{Dims, Float};

/// Real-valued analogue of ZFP's lifting (divisions instead of truncating
/// shifts), used only for statistics — the codec itself stays integer.
fn fwd_lift_f64(p: &mut [f64], base: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) = (p[base], p[base + s], p[base + 2 * s], p[base + 3 * s]);
    x += w;
    x /= 2.0;
    w -= x;
    z += y;
    z /= 2.0;
    y -= z;
    x += z;
    x /= 2.0;
    z -= x;
    w += y;
    w /= 2.0;
    y -= w;
    w += y / 2.0;
    y -= w / 2.0;
    p[base] = x;
    p[base + s] = y;
    p[base + 2 * s] = z;
    p[base + 3 * s] = w;
}

/// Applies the real-valued separable forward transform to a block.
pub fn fwd_xform_f64(block: &mut [f64], rank: u8) {
    match rank {
        1 => fwd_lift_f64(block, 0, 1),
        2 => {
            for j in 0..4 {
                fwd_lift_f64(block, 4 * j, 1);
            }
            for i in 0..4 {
                fwd_lift_f64(block, i, 4);
            }
        }
        _ => {
            for k in 0..4 {
                for j in 0..4 {
                    fwd_lift_f64(block, 16 * k + 4 * j, 1);
                }
            }
            for k in 0..4 {
                for i in 0..4 {
                    fwd_lift_f64(block, 16 * k + i, 4);
                }
            }
            for j in 0..4 {
                for i in 0..4 {
                    fwd_lift_f64(block, 4 * j + i, 16);
                }
            }
        }
    }
}

/// Covariance matrix of transformed coefficients over all blocks.
///
/// Pass `transform = false` to analyse the raw block entries instead (the
/// baseline the transform is compared against).
pub fn coefficient_covariance<F: Float>(data: &[F], dims: Dims, transform: bool) -> Vec<Vec<f64>> {
    let rank = dims.rank();
    let bs = lift::block_size(rank);
    let (gx, gy, gz) = blocks::block_grid(dims);
    let n_blocks = gx * gy * gz;
    assert!(n_blocks > 1, "need at least two blocks for covariance");

    let mut sums = vec![0.0f64; bs];
    let mut prods = vec![vec![0.0f64; bs]; bs];
    let mut block = vec![0.0f64; bs];
    for bz in 0..gz {
        for by in 0..gy {
            for bx in 0..gx {
                blocks::gather(data, dims, bx, by, bz, &mut block);
                if transform {
                    fwd_xform_f64(&mut block, rank);
                }
                for i in 0..bs {
                    sums[i] += block[i];
                    for j in 0..bs {
                        prods[i][j] += block[i] * block[j];
                    }
                }
            }
        }
    }
    let nb = n_blocks as f64;
    let mut cov = vec![vec![0.0f64; bs]; bs];
    for (i, row) in cov.iter_mut().enumerate() {
        for (j, c) in row.iter_mut().enumerate() {
            *c = prods[i][j] / nb - (sums[i] / nb) * (sums[j] / nb);
        }
    }
    cov
}

/// Decorrelation efficiency `η` from a covariance matrix.
pub fn decorrelation_efficiency(cov: &[Vec<f64>]) -> f64 {
    let mut diag = 0.0f64;
    let mut total = 0.0f64;
    for (i, row) in cov.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            let s2 = v * v;
            total += s2;
            if i == j {
                diag += s2;
            }
        }
    }
    if total == 0.0 {
        1.0
    } else {
        diag / total
    }
}

/// Coding gain `γ` from a covariance matrix.
pub fn coding_gain(cov: &[Vec<f64>]) -> f64 {
    let n = cov.len();
    let mut arith = 0.0f64;
    let mut log_geom = 0.0f64;
    for (i, row) in cov.iter().enumerate() {
        let v = row[i].max(f64::MIN_POSITIVE);
        arith += v;
        log_geom += v.ln();
    }
    (arith / n as f64) / (log_geom / n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwrel_data::grf;

    fn smooth_field(dims: Dims) -> Vec<f32> {
        grf::gaussian_field(dims, 99, 3, 3)
    }

    #[test]
    fn transform_improves_both_metrics_on_smooth_data() {
        let dims = Dims::d2(64, 64);
        let data = smooth_field(dims);
        let raw = coefficient_covariance(&data, dims, false);
        let xf = coefficient_covariance(&data, dims, true);
        assert!(
            decorrelation_efficiency(&xf) > decorrelation_efficiency(&raw),
            "η: {} vs {}",
            decorrelation_efficiency(&xf),
            decorrelation_efficiency(&raw)
        );
        assert!(
            coding_gain(&xf) > coding_gain(&raw) * 2.0,
            "γ: {} vs {}",
            coding_gain(&xf),
            coding_gain(&raw)
        );
    }

    #[test]
    fn lemma4_metrics_invariant_under_scaling() {
        // A base change multiplies the (log-domain) data by 1/ln a; η and γ
        // must not move.
        let dims = Dims::d2(48, 48);
        let data = smooth_field(dims);
        for factor in [std::f32::consts::LOG2_E, std::f32::consts::LOG10_E] {
            let scaled: Vec<f32> = data.iter().map(|&v| v * factor).collect();
            let a = coefficient_covariance(&data, dims, true);
            let b = coefficient_covariance(&scaled, dims, true);
            let (ea, eb) = (decorrelation_efficiency(&a), decorrelation_efficiency(&b));
            let (ga, gb) = (coding_gain(&a), coding_gain(&b));
            assert!((ea - eb).abs() < 1e-3, "η {ea} vs {eb}");
            assert!((ga / gb - 1.0).abs() < 1e-3, "γ {ga} vs {gb}");
        }
    }

    #[test]
    fn white_noise_has_no_coding_gain() {
        let dims = Dims::d1(4096);
        let data = grf::white_noise(dims.len(), 5);
        let xf = coefficient_covariance(&data, dims, true);
        let g = coding_gain(&xf);
        assert!(g < 1.6, "γ on noise should be ~1, got {g}");
    }

    #[test]
    fn eta_is_in_unit_interval() {
        let dims = Dims::d3(8, 8, 8);
        let data = smooth_field(dims);
        for transform in [false, true] {
            let cov = coefficient_covariance(&data, dims, transform);
            let e = decorrelation_efficiency(&cov);
            assert!((0.0..=1.0).contains(&e), "η = {e}");
        }
    }

    #[test]
    fn float_lift_matches_integer_lift_shape() {
        // Same DC concentration behaviour as the integer transform.
        let mut b = vec![7.0f64; 4];
        fwd_lift_f64(&mut b, 0, 1);
        assert!((b[0] - 7.0).abs() < 1e-12);
        assert!(b[1].abs() + b[2].abs() + b[3].abs() < 1e-12);
    }
}
