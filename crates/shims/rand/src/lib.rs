//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no registry access, so the
//! external `rand` dependency is replaced by this path crate. It implements
//! the subset of the rand 0.8 API the workspace actually uses — `SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range` — on top of a
//! xoshiro256++ generator seeded through SplitMix64. Streams are
//! deterministic for a given seed (every synthetic dataset in
//! `pwrel-data` depends on that), but they are *not* bit-identical to the
//! real crate's `SmallRng`.

use std::ops::Range;

/// Core source of 64-bit randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step — the standard seed expander for xoshiro.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sampling of a type from uniform random bits (rand's `Standard`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random bits — matches rand's convention.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Uniform sampling from a half-open range (rand's `SampleUniform`).
pub trait SampleUniform: Sized {
    /// Draws one value from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let u = f64::sample(rng);
        let v = range.start + (range.end - range.start) * u;
        // Multiplication may round up to the excluded endpoint; step back.
        if v >= range.end {
            f64::from_bits(range.end.to_bits() - 1)
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let u = f32::sample(rng);
        let v = range.start + (range.end - range.start) * u;
        if v >= range.end {
            f32::from_bits(range.end.to_bits() - 1)
        } else {
            v
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // 128-bit multiply-shift: unbiased enough for test data and
                // free of modulo clustering.
                let hi = ((rng.next_u64() as u128) * span) >> 64;
                (range.start as i128 + hi as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods (rand's `Rng` extension trait).
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-sampleable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli(p) draw.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but keep the guard explicit.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval_contract() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v >= f64::MIN_POSITIVE && v < 1.0);
            let i = rng.gen_range(-3i32..7);
            assert!((-3..7).contains(&i));
        }
    }

    #[test]
    fn roughly_uniform_mean() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
