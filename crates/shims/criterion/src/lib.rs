//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use — groups, throughput annotation, `bench_with_input` / `iter` — with
//! plain wall-clock measurement and human-readable output. No statistics
//! beyond a median-of-samples estimate, no HTML reports.
//!
//! Modes:
//!
//! * `cargo bench` — each benchmark warms up briefly, then runs
//!   `sample_size` samples and reports the best sample's ns/iter plus
//!   throughput when annotated.
//! * `cargo test` (cargo passes `--test`) or `CRITERION_QUICK=1` — every
//!   closure runs exactly once, as a smoke check.
//!
//! Results of a run are also collected in a process-global list; a harness
//! binary can drain them with [`take_results`] to emit machine-readable
//! output (the workspace's `BENCH_transform.json` emitter does its own
//! timing instead, but the hook is here for other tooling).

use std::fmt::Display;
use std::hint;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink, re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Work-rate annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/param` style id from just the parameter.
    pub fn from_parameter<P: Display>(param: P) -> Self {
        Self {
            id: param.to_string(),
        }
    }

    /// `name/param` id.
    pub fn new<S: Into<String>, P: Display>(name: S, param: P) -> Self {
        Self {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/benchmark` label.
    pub id: String,
    /// Best-sample nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Throughput annotation the group carried, if any.
    pub throughput: Option<ThroughputResult>,
}

/// Realized throughput for a [`BenchResult`].
#[derive(Debug, Clone)]
pub struct ThroughputResult {
    /// Unit label (`"B"` or `"elem"`).
    pub unit: &'static str,
    /// Units processed per second at the measured speed.
    pub per_second: f64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drains every result recorded so far in this process.
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut RESULTS.lock().unwrap())
}

fn quick_mode() -> bool {
    std::env::var_os("CRITERION_QUICK").is_some() || std::env::args().any(|a| a == "--test")
}

/// Measurement context passed to benchmark closures.
pub struct Bencher {
    quick: bool,
    sample_size: usize,
    /// Best observed ns/iter, filled by `iter`.
    best_ns: f64,
}

impl Bencher {
    /// Times `routine`, keeping the fastest sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.quick {
            black_box(routine());
            self.best_ns = f64::NAN;
            return;
        }
        // Warm-up & calibration: grow the iteration count until one batch
        // takes ≥ ~20ms, so Instant overhead stays negligible.
        let mut iters: u64 = 1;
        let batch_ns;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(20) || iters >= 1 << 20 {
                batch_ns = dt.as_nanos() as f64 / iters as f64;
                break;
            }
            iters *= 2;
        }
        let mut best = batch_ns;
        for _ in 0..self.sample_size.saturating_sub(1) {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
            if ns < best {
                best = ns;
            }
        }
        self.best_ns = best;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Annotates the per-iteration work rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Number of timed samples per benchmark (criterion's meaning; here
    /// each sample is one calibrated batch).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark identified by `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            quick: self.criterion.quick,
            sample_size: self.sample_size,
            best_ns: f64::NAN,
        };
        f(&mut b, input);
        self.report(&id.id, b.best_ns);
        self
    }

    /// Runs one benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            quick: self.criterion.quick,
            sample_size: self.sample_size,
            best_ns: f64::NAN,
        };
        f(&mut b);
        self.report(name, b.best_ns);
        self
    }

    fn report(&self, bench: &str, ns: f64) {
        let id = format!("{}/{}", self.name, bench);
        if ns.is_nan() {
            println!("bench {id:<48} (quick: 1 iteration, untimed)");
            return;
        }
        let throughput = self.throughput.map(|t| {
            let (unit, units) = match t {
                Throughput::Bytes(n) => ("B", n),
                Throughput::Elements(n) => ("elem", n),
            };
            ThroughputResult {
                unit,
                per_second: units as f64 / (ns / 1e9),
            }
        });
        match &throughput {
            Some(tp) if tp.unit == "B" => println!(
                "bench {id:<48} {ns:>14.1} ns/iter  {:>9.3} GiB/s",
                tp.per_second / (1u64 << 30) as f64
            ),
            Some(tp) => println!(
                "bench {id:<48} {ns:>14.1} ns/iter  {:>12.3e} {}/s",
                tp.per_second, tp.unit
            ),
            None => println!("bench {id:<48} {ns:>14.1} ns/iter"),
        }
        RESULTS.lock().unwrap().push(BenchResult {
            id,
            ns_per_iter: ns,
            throughput,
        });
    }

    /// Ends the group (a no-op beyond matching criterion's API).
    pub fn finish(&mut self) {}
}

/// The harness entry object.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            quick: quick_mode(),
        }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 10,
            criterion: self,
        }
    }

    /// Accepts criterion's builder call; configuration comes from the
    /// environment here.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_each_closure_once() {
        let mut c = Criterion { quick: true };
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Bytes(100)).sample_size(10);
            g.bench_function("one", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 1);
    }

    #[test]
    fn timed_mode_records_a_result() {
        let mut c = Criterion { quick: false };
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(2);
            g.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
                b.iter(|| black_box(x * x))
            });
            g.finish();
        }
        let rs = take_results();
        let r = rs.iter().find(|r| r.id == "t/x").expect("result recorded");
        assert!(r.ns_per_iter > 0.0);
    }
}
