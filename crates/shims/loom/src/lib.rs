#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Offline stand-in for the `loom` model checker.
//!
//! The container this workspace builds in has no registry access, so the
//! `loom` dev-dependency is replaced by this path crate. It exposes the
//! subset of loom 0.7's API the workspace uses — [`model`], [`thread`],
//! [`sync`] — but degrades exhaustive interleaving exploration to stress
//! iteration: [`model`] reruns the closure [`ITERATIONS`] times on real
//! threads, so races surface probabilistically instead of exhaustively.
//! In CI with registry access the real crate drops in with no source
//! changes and the same tests explore the full interleaving space.

/// Times a [`model`] call reruns its closure (the real loom instead
/// enumerates interleavings until exhaustion).
pub const ITERATIONS: usize = 64;

/// Runs `f` under the "model": here, repeated stress execution.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..ITERATIONS {
        f();
    }
}

/// Mirror of `loom::thread` (std-backed).
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// Mirror of `loom::sync` (std-backed).
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard};

    /// Mirror of `loom::sync::atomic` (std-backed).
    pub mod atomic {
        pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    }
}

/// Mirror of `loom::hint` (std-backed).
pub mod hint {
    pub use std::hint::spin_loop;
}
