//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so this path crate supplies
//! the subset of the proptest 1.x API the workspace's property tests use:
//! the [`Strategy`] trait (`prop_map`, ranges, tuples, `Just`, `any`,
//! weighted `prop_oneof!`, `collection::vec`, `sample::Index`, and a tiny
//! `[class]{m,n}` regex string generator), the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros, and a deterministic
//! case runner.
//!
//! Differences from real proptest, deliberately accepted for offline use:
//! no shrinking (failures report the original inputs), no persistence of
//! regressions (seeds are a pure function of the test name and case
//! index, so failures reproduce across runs), and strategies are sampled
//! rather than explored.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-test random source handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    /// 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.gen()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.0.gen_range(0..n)
    }
}

/// A failed test case (returned by the `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

/// Runner configuration (`ProptestConfig::with_cases(n)`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// FNV-1a over the test name: the per-test seed base. Purely deterministic
/// so failures reproduce without a persistence file.
fn seed_for(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Executes `f` for each case; panics with the formatted inputs on the
/// first failure. Used by the `proptest!` macro — not public API upstream,
/// but harmless to expose here.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng, &mut String) -> Result<(), TestCaseError>,
{
    for case in 0..config.cases {
        let mut rng = TestRng(SmallRng::seed_from_u64(seed_for(name, case)));
        let mut inputs = String::new();
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng, &mut inputs)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(TestCaseError(msg))) => panic!(
                "proptest `{name}` failed at case {case}/{}: {msg}\n  inputs: {inputs}",
                config.cases
            ),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic>");
                panic!(
                    "proptest `{name}` panicked at case {case}/{}: {msg}\n  inputs: {inputs}",
                    config.cases
                );
            }
        }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<T, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        strategy::Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy combinators and primitive strategies.
pub mod strategy {
    use super::*;

    /// Constant strategy (`Just(v)`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Weighted union of boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Self { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights cover the sampled range")
        }
    }

    /// Boxes a strategy for storage in a [`Union`].
    pub fn box_strategy<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }
}

pub use strategy::Just;

/// Numeric primitives sampled uniformly from ranges.
mod ranges {
    use super::*;

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let hi = ((rng.next_u64() as u128) * span) >> 64;
                    (self.start as i128 + hi as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let off = ((rng.next_u64() as u128) * span) >> 64;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.unit_f64() as $t;
                    let v = self.start + (self.end - self.start) * u;
                    if v >= self.end {
                        <$t>::from_bits(self.end.to_bits() - 1)
                    } else {
                        v
                    }
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::*;

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<A>(std::marker::PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn sample(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(std::marker::PhantomData)
    }
}

pub use arbitrary::any;

/// `prop::collection` — sized containers of strategy-generated elements.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of `element` values with length in `len` (exclusive end).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `prop::sample` — index selection helpers.
pub mod sample {
    use super::arbitrary::Arbitrary;
    use super::TestRng;

    /// An abstract index into a collection of not-yet-known length.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Concretizes against a collection of `len` elements (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Tuple strategies (up to 6 elements).
macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                $(let $v = $s.sample(rng);)+
                ($($v,)+)
            }
        }
    };
}
impl_tuple_strategy!(S1 / v1);
impl_tuple_strategy!(S1 / v1, S2 / v2);
impl_tuple_strategy!(S1 / v1, S2 / v2, S3 / v3);
impl_tuple_strategy!(S1 / v1, S2 / v2, S3 / v3, S4 / v4);
impl_tuple_strategy!(S1 / v1, S2 / v2, S3 / v3, S4 / v4, S5 / v5);
impl_tuple_strategy!(S1 / v1, S2 / v2, S3 / v3, S4 / v4, S5 / v5, S6 / v6);

/// String strategies from a tiny regex subset: a literal, or one
/// `[class]{m,n}` character-class repetition (what the workspace uses).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        match parse_class_repeat(self) {
            Some((chars, lo, hi)) => {
                let n = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..n)
                    .map(|_| chars[rng.below(chars.len() as u64) as usize])
                    .collect()
            }
            None => (*self).to_string(),
        }
    }
}

/// Parses `[a-z_0-9]{m,n}` (also `{n}`, `*`, `+`, `?`); `None` means the
/// pattern is treated as a literal.
fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let quant = &rest[close + 1..];
    let mut chars = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            let (a, b) = (cs[i], cs[i + 2]);
            if a > b {
                return None;
            }
            for c in a..=b {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let (lo, hi) = match quant {
        "*" => (0, 16),
        "+" => (1, 16),
        "?" => (0, 1),
        q => {
            let body = q.strip_prefix('{')?.strip_suffix('}')?;
            match body.split_once(',') {
                Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
                None => {
                    let n: usize = body.trim().parse().ok()?;
                    (n, n)
                }
            }
        }
    };
    (lo <= hi).then_some((chars, lo, hi))
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::Just;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            a,
            b,
            stringify!($a),
            stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: `{:?}` != `{:?}`", a, b);
    }};
}

/// Weighted (or unweighted) choice between strategies of a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (($weight) as u32, $crate::strategy::box_strategy($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::box_strategy($strat)) ),+
        ])
    };
}

/// Declares property tests. Supports the block form (with optional
/// `#![proptest_config(..)]`) and the inline closure form.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($cfg:expr, |($($arg:ident in $strat:expr),+ $(,)?)| $body:expr) => {{
        let __config: $crate::ProptestConfig = $cfg;
        let __strategies = ( $( $strat, )+ );
        $crate::run_cases(&__config, "inline", |__rng, __inputs| {
            let ( $( ref $arg, )+ ) = __strategies;
            $( let $arg = $crate::Strategy::sample($arg, __rng); )+
            *__inputs = format!(
                concat!($( stringify!($arg), " = {:?}; " ),+),
                $( $arg ),+
            );
            let mut __case = || -> ::core::result::Result<(), $crate::TestCaseError> {
                $body;
                Ok(())
            };
            __case()
        });
    }};
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion target of [`proptest!`]'s block form.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr;
     $(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __strategies = ( $( $strat, )+ );
                $crate::run_cases(&__config, stringify!($name), |__rng, __inputs| {
                    let ( $( ref $arg, )+ ) = __strategies;
                    $( let $arg = $crate::Strategy::sample($arg, __rng); )+
                    *__inputs = format!(
                        concat!($( stringify!($arg), " = {:?}; " ),+),
                        $( $arg ),+
                    );
                    let mut __case = || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_sample_within_bounds() {
        proptest!(ProptestConfig::with_cases(64), |(
            v in prop::collection::vec(0u32..=64, 0..20),
            x in -10i32..10,
            f in 0.5f64..2.0
        )| {
            prop_assert!(v.len() < 20);
            for e in &v {
                prop_assert!(*e <= 64);
            }
            prop_assert!((-10..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn block_form_runs(a in any::<u64>(), b in 1usize..5) {
            prop_assert!(b >= 1 && b < 5);
            let _ = a;
        }

        #[test]
        fn oneof_and_map_work(op in prop_oneof![
            2 => (0u32..10).prop_map(|v| v * 2),
            1 => Just(99u32),
        ]) {
            prop_assert!(op == 99 || (op % 2 == 0 && op < 20));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        proptest!(ProptestConfig::with_cases(64), |(s in "[a-z_]{0,24}")| {
            prop_assert!(s.len() <= 24);
            prop_assert!(s.chars().all(|c| c == '_' || c.is_ascii_lowercase()));
        });
    }

    #[test]
    #[should_panic(expected = "proptest `inline` failed")]
    fn failures_panic_with_inputs() {
        proptest!(ProptestConfig::with_cases(8), |(x in 0u32..10)| {
            prop_assert!(x > 100, "x was {}", x);
        });
    }

    #[test]
    fn index_concretizes() {
        proptest!(ProptestConfig::with_cases(32), |(i in any::<prop::sample::Index>())| {
            prop_assert!(i.index(7) < 7);
        });
    }
}
