//! LZ77 hash-chain compressor — the workspace's gzip/DEFLATE stand-in.
//!
//! SZ's optional stage III pipes its entropy-coded stream through gzip. This
//! module provides the equivalent: greedy LZ77 with a 32 KiB window and
//! hash-chain match finding, followed by a canonical-Huffman pass over the
//! token bytes. A stored-mode fallback guarantees incompressible input
//! expands by only a few bytes.
//!
//! Token format (before the Huffman pass), repeated until the input ends:
//! `uvarint literal_run_len`, that many literal bytes, then — unless the
//! input is exhausted — `uvarint (match_len - MIN_MATCH)` and
//! `uvarint (distance - 1)`.

use crate::huffman;
use pwrel_bitstream::{varint, Error, Result};

const WINDOW: usize = 32 * 1024;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 1 << 16;
/// Upper bound on hash-chain probes per position (gzip's "good" level).
const MAX_CHAIN: usize = 64;
const HASH_BITS: u32 = 15;

/// Container modes.
const MODE_STORED: u8 = 0;
const MODE_TOKENS: u8 = 1;
const MODE_TOKENS_HUFF: u8 = 2;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Produces the raw LZ77 token stream for `input`.
fn tokenize(input: &[u8]) -> Vec<u8> {
    let n = input.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    if n < MIN_MATCH {
        varint::write_uvarint(&mut out, n as u64);
        out.extend_from_slice(input);
        return out;
    }

    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; n];
    let mut i = 0usize;
    let mut lit_start = 0usize;

    while i + MIN_MATCH <= n {
        let h = hash4(input, i);
        let mut candidate = head[h];
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut chain = 0usize;
        while candidate != usize::MAX && i - candidate <= WINDOW && chain < MAX_CHAIN {
            let max_len = (n - i).min(MAX_MATCH);
            let mut l = 0usize;
            while l < max_len && input[candidate + l] == input[i + l] {
                l += 1;
            }
            if l > best_len {
                best_len = l;
                best_dist = i - candidate;
                if l >= max_len {
                    break;
                }
            }
            candidate = prev[candidate];
            chain += 1;
        }

        if best_len >= MIN_MATCH {
            // Flush pending literals, then the match.
            varint::write_uvarint(&mut out, (i - lit_start) as u64);
            out.extend_from_slice(&input[lit_start..i]);
            varint::write_uvarint(&mut out, (best_len - MIN_MATCH) as u64);
            varint::write_uvarint(&mut out, (best_dist - 1) as u64);
            // Insert the covered positions into the chains, stopping where a
            // 4-byte hash no longer fits, then jump past the whole match.
            let match_end = i + best_len;
            let insert_end = match_end.min(n.saturating_sub(MIN_MATCH - 1));
            while i < insert_end {
                let h = hash4(input, i);
                prev[i] = head[h];
                head[h] = i;
                i += 1;
            }
            i = match_end;
            lit_start = i;
            continue;
        }

        prev[i] = head[h];
        head[h] = i;
        i += 1;
    }

    // Trailing literals.
    varint::write_uvarint(&mut out, (n - lit_start) as u64);
    out.extend_from_slice(&input[lit_start..]);
    out
}

/// Preallocation cap for [`detokenize`]: the claimed output length is
/// header data, so the upfront reservation is bounded and the vector
/// only grows past it as actual decoded bytes accumulate (an attacker
/// must pay stream bytes for every further doubling).
const MAX_PREALLOC: usize = 1 << 20;

/// Decodes the raw token stream into `expected_len` bytes.
fn detokenize(tokens: &[u8], expected_len: usize) -> Result<Vec<u8>> {
    let mut out: Vec<u8> = Vec::with_capacity(expected_len.min(MAX_PREALLOC));
    let mut pos = 0usize;
    while out.len() < expected_len {
        let lit_len = varint::read_uvarint(tokens, &mut pos)? as usize;
        let end = pos.checked_add(lit_len).ok_or(Error::UnexpectedEof)?;
        // `expected_len - out.len()` is the remaining budget; the loop
        // condition guarantees the subtraction (phrasing the checks this
        // way also keeps hostile lengths from overflowing the additions).
        if lit_len > expected_len - out.len() {
            return Err(Error::UnexpectedEof);
        }
        out.extend_from_slice(tokens.get(pos..end).ok_or(Error::UnexpectedEof)?);
        pos = end;
        if out.len() == expected_len {
            break;
        }
        let match_len =
            (varint::read_uvarint(tokens, &mut pos)? as usize).saturating_add(MIN_MATCH);
        let dist = (varint::read_uvarint(tokens, &mut pos)? as usize).saturating_add(1);
        if dist > out.len() || match_len > expected_len - out.len() {
            return Err(Error::InvalidValue("lz match out of range"));
        }
        let start = out.len() - dist;
        // Byte-by-byte copy: matches may overlap their own output. The
        // range is in bounds by the check above; `get` keeps the error
        // path panic-free instead of grandfathering an indexing site.
        for k in start..start + match_len {
            match out.get(k).copied() {
                Some(b) => out.push(b),
                None => return Err(Error::InvalidValue("lz match out of range")),
            }
        }
    }
    Ok(out)
}

/// Compresses `input`; never fails, and the output is at most
/// `input.len() + O(varint)` bytes thanks to the stored-mode fallback.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let tokens = tokenize(input);
    let huffed =
        huffman::encode_symbols(&tokens.iter().map(|&b| b as u32).collect::<Vec<_>>(), 256);

    let (mode, payload) = if huffed.len() < tokens.len() && huffed.len() < input.len() {
        (MODE_TOKENS_HUFF, huffed)
    } else if tokens.len() < input.len() {
        (MODE_TOKENS, tokens)
    } else {
        (MODE_STORED, input.to_vec())
    };

    let mut out = Vec::with_capacity(payload.len() + 10);
    out.push(mode);
    varint::write_uvarint(&mut out, input.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Inverse of [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>> {
    let mode = *data.first().ok_or(Error::UnexpectedEof)?;
    let mut pos = 1usize;
    let raw_len = varint::read_uvarint(data, &mut pos)? as usize;
    match mode {
        MODE_STORED => {
            let end = pos.checked_add(raw_len).ok_or(Error::UnexpectedEof)?;
            Ok(data.get(pos..end).ok_or(Error::UnexpectedEof)?.to_vec())
        }
        MODE_TOKENS => detokenize(data.get(pos..).ok_or(Error::UnexpectedEof)?, raw_len),
        MODE_TOKENS_HUFF => {
            let syms = huffman::decode_symbols(data, &mut pos)?;
            let tokens: Vec<u8> = syms.into_iter().map(|s| s as u8).collect();
            detokenize(&tokens, raw_len)
        }
        _ => Err(Error::InvalidValue("unknown lz container mode")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data, "len {}", data.len());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
        round_trip(b"abcd");
    }

    #[test]
    fn highly_repetitive_input_compresses_hard() {
        let data = vec![42u8; 100_000];
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(c.len() < 1000, "c.len() = {}", c.len());
    }

    #[test]
    fn periodic_pattern_compresses() {
        let data: Vec<u8> = (0..50_000).map(|i| ((i % 173) * 7) as u8).collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(c.len() < data.len() / 4, "c.len() = {}", c.len());
    }

    #[test]
    fn incompressible_input_barely_expands() {
        // Simple xorshift noise; stored mode must cap the expansion.
        let mut x = 0x12345678u32;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x as u8
            })
            .collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(c.len() <= data.len() + 16);
    }

    #[test]
    fn overlapping_match_copies() {
        // "abcabcabc..." forces dist=3 matches longer than the distance.
        let data: Vec<u8> = b"abc".iter().cycle().take(1000).copied().collect();
        round_trip(&data);
    }

    #[test]
    fn text_like_input() {
        let data = b"the quick brown fox jumps over the lazy dog. \
                     the quick brown fox jumps over the lazy dog again!"
            .repeat(50);
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(c.len() < data.len() / 5);
    }

    #[test]
    fn corrupt_mode_byte_is_error() {
        let c = compress(b"hello world hello world");
        let mut bad = c.clone();
        bad[0] = 99;
        assert!(decompress(&bad).is_err());
    }

    #[test]
    fn truncated_stream_is_error() {
        let data = vec![7u8; 5000];
        let c = compress(&data);
        assert!(decompress(&c[..c.len() / 2]).is_err());
    }
}
