#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Lossless compression stages used by the lossy codecs.
//!
//! SZ-style compressors pipe their quantization codes through a custom
//! Huffman coder and then an optional general-purpose lossless pass (gzip in
//! the original implementation). This crate supplies both from scratch:
//!
//! * [`huffman`] — canonical Huffman coding over arbitrary `u32` symbol
//!   alphabets (SZ quantization codes use up to 2^16 symbols),
//! * [`lz`] — an LZ77 hash-chain compressor with a Huffman-coded token
//!   stream, standing in for gzip/DEFLATE,
//! * [`rle`] — run-length coding for bitmaps (sign planes, outlier masks).
//!
//! Every stage round-trips exactly; this is asserted by unit and property
//! tests, since a single flipped bit here would silently break the error
//! bounds of every downstream lossy codec.

pub mod huffman;
pub mod lz;
pub mod rle;

pub use pwrel_bitstream::{Error, Result};
