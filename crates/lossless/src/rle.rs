//! Run-length coding for bitmaps.
//!
//! The log-transform scheme stores one sign bit per data point when a field
//! mixes positive and negative values. Scientific sign planes are usually
//! long runs (velocity components flip sign over large spatial regions), so
//! run lengths + varints beat plain bit packing; a bit-packed fallback keeps
//! the worst case bounded.

use pwrel_bitstream::{varint, BitReader, BitWriter, Error, Result};

const MODE_RLE: u8 = 0;
const MODE_PACKED: u8 = 1;

/// Compresses a boolean slice.
pub fn compress_bits(bits: &[bool]) -> Vec<u8> {
    // RLE attempt: leading value, then run lengths.
    let mut rle = Vec::new();
    varint::write_uvarint(&mut rle, bits.len() as u64);
    if !bits.is_empty() {
        rle.push(bits[0] as u8);
        let mut run = 1u64;
        for w in bits.windows(2) {
            if w[1] == w[0] {
                run += 1;
            } else {
                varint::write_uvarint(&mut rle, run);
                run = 1;
            }
        }
        varint::write_uvarint(&mut rle, run);
    }

    let packed_len = bits.len().div_ceil(8);
    if rle.len() <= packed_len + 9 {
        let mut out = vec![MODE_RLE];
        out.extend_from_slice(&rle);
        return out;
    }

    let mut out = vec![MODE_PACKED];
    varint::write_uvarint(&mut out, bits.len() as u64);
    let mut w = BitWriter::with_capacity(packed_len);
    // Bulk-pack 64 bits per write: bit i of the word is the i-th bit of the
    // chunk, and the LSB-first write emits bit 0 first — the same stream
    // order as the per-bit loop this replaces.
    for chunk in bits.chunks(64) {
        let mut word = 0u64;
        for (i, &b) in chunk.iter().enumerate() {
            word |= (b as u64) << i;
        }
        w.write_bits_lsb(word, chunk.len() as u32);
    }
    out.extend_from_slice(&w.into_bytes());
    out
}

/// Inverse of [`compress_bits`]; advances `pos` past the buffer.
///
/// `max_bits` bounds the stored bit count *before* any allocation. The
/// caller always knows how many bits it expects (sign planes are one bit
/// per element), so a forged header claiming 2^60 bits is rejected here
/// instead of sizing a `Vec` — the stream must never pick the allocation.
pub fn decompress_bits(data: &[u8], pos: &mut usize, max_bits: usize) -> Result<Vec<bool>> {
    let mode = *data.get(*pos).ok_or(Error::UnexpectedEof)?;
    *pos += 1;
    let n64 = varint::read_uvarint(data, pos)?;
    if n64 > max_bits as u64 {
        return Err(Error::InvalidValue("bitmap length exceeds expected size"));
    }
    let n = n64 as usize;
    match mode {
        MODE_RLE => {
            let mut out = Vec::with_capacity(n);
            if n == 0 {
                return Ok(out);
            }
            let mut value = match data.get(*pos) {
                Some(0) => false,
                Some(1) => true,
                Some(_) => return Err(Error::InvalidValue("rle leading bit")),
                None => return Err(Error::UnexpectedEof),
            };
            *pos += 1;
            while out.len() < n {
                let run = varint::read_uvarint(data, pos)? as usize;
                if run == 0 || out.len() + run > n {
                    return Err(Error::InvalidValue("rle run overflows bitmap"));
                }
                out.extend(std::iter::repeat_n(value, run));
                value = !value;
            }
            Ok(out)
        }
        MODE_PACKED => {
            let nbytes = n.div_ceil(8);
            let end = pos.checked_add(nbytes).ok_or(Error::UnexpectedEof)?;
            let packed = data.get(*pos..end).ok_or(Error::UnexpectedEof)?;
            let mut r = BitReader::new(packed);
            let mut out = Vec::with_capacity(n);
            let mut left = n;
            while left > 0 {
                let take = left.min(64) as u32;
                let word = r.read_bits_lsb(take)?;
                for i in 0..take {
                    out.push((word >> i) & 1 == 1);
                }
                left -= take as usize;
            }
            *pos = end;
            Ok(out)
        }
        _ => Err(Error::InvalidValue("unknown bitmap mode")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(bits: &[bool]) {
        let c = compress_bits(bits);
        let mut pos = 0;
        assert_eq!(decompress_bits(&c, &mut pos, bits.len()).unwrap(), bits);
        assert_eq!(pos, c.len());
    }

    #[test]
    fn empty_bitmap() {
        round_trip(&[]);
    }

    #[test]
    fn uniform_bitmaps_compress_to_bytes() {
        let bits = vec![true; 100_000];
        let c = compress_bits(&bits);
        assert!(c.len() < 16, "c.len() = {}", c.len());
        round_trip(&bits);
        round_trip(&vec![false; 100_000]);
    }

    #[test]
    fn long_runs() {
        let mut bits = vec![false; 5000];
        bits.extend(vec![true; 7000]);
        bits.extend(vec![false; 1]);
        round_trip(&bits);
    }

    #[test]
    fn alternating_falls_back_to_packing() {
        let bits: Vec<bool> = (0..10_000).map(|i| i % 2 == 0).collect();
        let c = compress_bits(&bits);
        // RLE would need ~1 byte/bit; packed mode caps at n/8 + header.
        assert!(c.len() <= 10_000 / 8 + 16, "c.len() = {}", c.len());
        round_trip(&bits);
    }

    #[test]
    fn pseudo_random_bits() {
        let mut x = 0xACE1u32;
        let bits: Vec<bool> = (0..4321)
            .map(|_| {
                x = x.wrapping_mul(75).wrapping_add(74) % 65537;
                x & 1 == 1
            })
            .collect();
        round_trip(&bits);
    }

    #[test]
    fn sequential_buffers_decode_in_order() {
        let a = vec![true; 17];
        let b: Vec<bool> = (0..33).map(|i| i % 3 == 0).collect();
        let mut buf = compress_bits(&a);
        buf.extend(compress_bits(&b));
        let mut pos = 0;
        assert_eq!(decompress_bits(&buf, &mut pos, a.len()).unwrap(), a);
        assert_eq!(decompress_bits(&buf, &mut pos, b.len()).unwrap(), b);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn corrupt_run_rejected() {
        let bits = vec![true; 100];
        let mut c = compress_bits(&bits);
        let last = c.len() - 1;
        c[last] = 0xFF; // break final varint
        let mut pos = 0;
        assert!(decompress_bits(&c, &mut pos, 100).is_err());
    }

    #[test]
    fn oversized_bit_count_rejected_before_allocating() {
        // A forged RLE header claiming u64::MAX bits must fail the
        // `max_bits` gate, not size a Vec from the stream.
        let mut forged = vec![MODE_RLE];
        varint::write_uvarint(&mut forged, u64::MAX);
        forged.push(1);
        let mut pos = 0;
        assert!(decompress_bits(&forged, &mut pos, 4096).is_err());

        let mut forged = vec![MODE_PACKED];
        varint::write_uvarint(&mut forged, 1 << 60);
        let mut pos = 0;
        assert!(decompress_bits(&forged, &mut pos, 4096).is_err());
    }
}
