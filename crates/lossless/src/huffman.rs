//! Canonical Huffman coding over sparse `u32` symbol alphabets.
//!
//! SZ's stage-II entropy coder builds a Huffman tree over the linear-scaling
//! quantization codes actually present in a dataset (a tiny subset of the
//! nominal 2^16-code alphabet). We reproduce that with canonical codes:
//! only (symbol, code length) pairs are serialized, never the tree shape.

use pwrel_bitstream::{varint, BitReader, BitWriter, Error, Result};
use std::collections::BinaryHeap;

/// Maximum admissible code length. Frequencies are rescaled (halved,
/// rounding up so nonzero stays nonzero) until the tree fits; with 2^16
/// symbols this triggers only on adversarial distributions.
const MAX_CODE_LEN: u32 = 48;

/// Computes Huffman code lengths for `freqs` (index = symbol).
///
/// Returns a vector of lengths, zero for unused symbols. Lengths are
/// guaranteed ≤ `MAX_CODE_LEN` (48); a single used symbol gets length 1.
pub fn code_lengths(freqs: &[u64]) -> Vec<u32> {
    let pairs: Vec<(u32, u64)> = freqs
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(s, &f)| (s as u32, f))
        .collect();
    code_lengths_sparse(&pairs, freqs.len())
}

/// [`code_lengths`] over sparse `(symbol, frequency)` pairs (ascending
/// symbols, frequencies > 0) — the hot-path form: the work scales with the
/// number of *distinct* symbols, not the nominal alphabet.
pub fn code_lengths_sparse(pairs: &[(u32, u64)], alphabet: usize) -> Vec<u32> {
    let mut scaled: Vec<(u32, u64)> = pairs.to_vec();
    loop {
        let lens = tree_lengths(&scaled, alphabet);
        if lens.iter().all(|&l| l <= MAX_CODE_LEN) {
            return lens;
        }
        for (_, f) in scaled.iter_mut() {
            *f = (*f).div_ceil(2);
        }
    }
}

/// One pass of plain Huffman tree construction returning per-symbol depths.
fn tree_lengths(pairs: &[(u32, u64)], alphabet: usize) -> Vec<u32> {
    #[derive(PartialEq, Eq)]
    struct Node {
        freq: u64,
        // Tie-break on id for determinism.
        id: u32,
        kind: NodeKind,
    }
    #[derive(PartialEq, Eq)]
    enum NodeKind {
        Leaf(u32),
        Internal(Box<Node>, Box<Node>),
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse: BinaryHeap is a max-heap, we need min-by-frequency.
            other.freq.cmp(&self.freq).then(other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heap: BinaryHeap<Node> = pairs
        .iter()
        .map(|&(s, f)| Node {
            freq: f,
            id: s,
            kind: NodeKind::Leaf(s),
        })
        .collect();

    let mut lens = vec![0u32; alphabet];
    match heap.len() {
        0 => return lens,
        1 => {
            if let NodeKind::Leaf(s) = heap.pop().unwrap().kind {
                lens[s as usize] = 1;
            }
            return lens;
        }
        _ => {}
    }

    let mut next_id = alphabet as u32;
    while heap.len() > 1 {
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        heap.push(Node {
            freq: a.freq.saturating_add(b.freq),
            id: next_id,
            kind: NodeKind::Internal(Box::new(a), Box::new(b)),
        });
        next_id += 1;
    }

    // Iterative depth assignment to avoid recursion on deep trees.
    let root = heap.pop().unwrap();
    let mut stack = vec![(root, 0u32)];
    while let Some((node, depth)) = stack.pop() {
        match node.kind {
            NodeKind::Leaf(s) => lens[s as usize] = depth.max(1),
            NodeKind::Internal(l, r) => {
                stack.push((*l, depth + 1));
                stack.push((*r, depth + 1));
            }
        }
    }
    lens
}

/// Width of the decode lookup table: codes up to this length decode with a
/// single peek instead of a bit-by-bit walk.
const LUT_BITS: u32 = 11;

/// A canonical Huffman code: encode and decode tables plus a compact
/// serialized form (sorted sparse `(symbol, length)` pairs).
#[derive(Debug, Clone)]
pub struct CanonicalCode {
    /// `(code, len)` per symbol; `len == 0` means the symbol is unused.
    encode_table: Vec<(u64, u32)>,
    /// Used symbols sorted canonically (by length, then symbol).
    sorted_symbols: Vec<u32>,
    /// `count[l]` = number of codes of length `l`.
    counts: Vec<u32>,
    /// `first_code[l]` = canonical code value of the first code of length `l`.
    first_code: Vec<u64>,
    /// `offset[l]` = index into `sorted_symbols` of the first length-`l` code.
    offsets: Vec<u32>,
    /// `lut[prefix]` = (symbol, len) for codes of length ≤ LUT_BITS;
    /// len == 0 marks prefixes belonging to longer codes.
    lut: Vec<(u32, u8)>,
}

impl CanonicalCode {
    /// Builds the canonical code from per-symbol lengths.
    pub fn from_lengths(lens: &[u32]) -> Self {
        let max_len = lens.iter().copied().max().unwrap_or(0) as usize;
        let mut counts = vec![0u32; max_len + 1];
        for &l in lens {
            if l > 0 {
                counts[l as usize] += 1;
            }
        }
        let mut sorted: Vec<u32> = (0..lens.len() as u32)
            .filter(|&s| lens[s as usize] > 0)
            .collect();
        sorted.sort_by_key(|&s| (lens[s as usize], s));

        let mut first_code = vec![0u64; max_len + 1];
        let mut offsets = vec![0u32; max_len + 1];
        let mut code: u64 = 0;
        let mut offset: u32 = 0;
        for l in 1..=max_len {
            code <<= 1;
            first_code[l] = code;
            offsets[l] = offset;
            code += counts[l] as u64;
            offset += counts[l];
        }

        let mut encode_table = vec![(0u64, 0u32); lens.len()];
        let mut next = first_code.clone();
        for &s in &sorted {
            let l = lens[s as usize] as usize;
            encode_table[s as usize] = (next[l], l as u32);
            next[l] += 1;
        }

        // Decode LUT: every LUT_BITS-wide prefix of a short code maps
        // straight to its symbol.
        let mut lut = vec![(0u32, 0u8); 1usize << LUT_BITS];
        for &s in &sorted {
            let (code, l) = encode_table[s as usize];
            if l <= LUT_BITS {
                let lo = (code << (LUT_BITS - l)) as usize;
                let hi = ((code + 1) << (LUT_BITS - l)) as usize;
                for entry in lut.iter_mut().take(hi).skip(lo) {
                    *entry = (s, l as u8);
                }
            }
        }

        Self {
            encode_table,
            sorted_symbols: sorted,
            counts,
            first_code,
            offsets,
            lut,
        }
    }

    /// Number of symbols in the (nominal) alphabet.
    pub fn alphabet_len(&self) -> usize {
        self.encode_table.len()
    }

    /// Total encoded size in bits for the given frequency histogram.
    pub fn encoded_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .zip(&self.encode_table)
            .map(|(&f, &(_, len))| f * len as u64)
            .sum()
    }

    /// Length of the longest code in use (0 for an empty code).
    #[inline]
    fn max_code_len(&self) -> u32 {
        (self.counts.len() as u32).saturating_sub(1)
    }

    /// Length of the shortest code in use, if any symbol is coded. Every
    /// decoded symbol consumes at least this many bits — the bound
    /// [`decode_symbols`] uses to reject hostile symbol counts before
    /// allocating.
    pub fn min_code_len(&self) -> Option<u32> {
        (1..self.counts.len() as u32).find(|&l| self.counts[l as usize] > 0)
    }

    /// Writes one symbol.
    #[inline]
    pub fn encode(&self, w: &mut BitWriter, symbol: u32) {
        let (code, len) = self.encode_table[symbol as usize];
        debug_assert!(len > 0, "encoding symbol absent from the code");
        w.write_bits(code, len);
    }

    /// Writes a whole symbol slice — the bulk counterpart of
    /// [`CanonicalCode::encode`], used by every entropy stage hot path.
    ///
    /// Codes concatenate MSB-first into a local accumulator and reach the
    /// writer as near-full 64-bit words — one [`BitWriter::write_bits`]
    /// per ~8 symbols instead of one per symbol. The stream is identical
    /// by construction: the writer is MSB-first, so pre-concatenating
    /// code bits commutes with writing them one code at a time.
    /// `MAX_CODE_LEN` (48) < 64 guarantees any code fits a drained
    /// accumulator.
    pub fn encode_all(&self, w: &mut BitWriter, symbols: &[u32]) {
        let mut acc: u64 = 0;
        let mut n: u32 = 0;
        for &s in symbols {
            let (code, len) = self.encode_table[s as usize];
            debug_assert!(len > 0, "encoding symbol absent from the code");
            if n + len > 64 {
                w.write_bits(acc >> (64 - n), n);
                acc = 0;
                n = 0;
            }
            acc |= code << (64 - n - len);
            n += len;
        }
        if n > 0 {
            w.write_bits(acc >> (64 - n), n);
        }
    }

    /// Reads one symbol.
    #[inline]
    pub fn decode(&self, r: &mut BitReader) -> Result<u32> {
        // Fast path: one table lookup when enough bits remain.
        if r.bits_remaining() >= LUT_BITS as u64 {
            let prefix = r.peek_bits(LUT_BITS)?;
            let (sym, len) = self.lut[prefix as usize];
            if len > 0 {
                r.skip_bits(len as u32)?;
                return Ok(sym);
            }
        }
        self.decode_slow(r)
    }

    /// Decodes a left-aligned bit window (next stream bit at bit 63) that
    /// is known to hold at least one whole code. Returns the symbol and
    /// its length in bits; `None` if no code matches.
    #[inline]
    fn decode_from_word(&self, word: u64) -> Option<(u32, u32)> {
        let prefix = (word >> (64 - LUT_BITS)) as usize;
        let (sym, len) = self.lut[prefix];
        if len > 0 {
            return Some((sym, len as u32));
        }
        // Long code: canonical walk on the window, no per-bit reads.
        for l in 1..self.counts.len() {
            let n = self.counts[l] as u64;
            if n > 0 {
                let code = word >> (64 - l as u32);
                let first = self.first_code[l];
                if code < first + n {
                    let idx = self.offsets[l] as u64 + (code - first);
                    return Some((self.sorted_symbols[idx as usize], l as u32));
                }
            }
        }
        None
    }

    /// Appends `n` decoded symbols to `out` — the bulk counterpart of
    /// [`CanonicalCode::decode`].
    ///
    /// The hot loop hoists every per-symbol check out: one
    /// [`BitReader::refill`] buffers ≥ 57 bits (≥ one whole code, since
    /// `MAX_CODE_LEN` is 48), then symbols decode straight off the
    /// buffered word with a LUT hit or a canonical walk until the window
    /// runs low. Near the stream tail — fewer buffered bits than the
    /// longest code — it falls back to the checked per-symbol path, so a
    /// truncated payload still surfaces as [`Error::UnexpectedEof`], never
    /// an over-consume.
    pub fn decode_all(&self, r: &mut BitReader, n: usize, out: &mut Vec<u32>) -> Result<()> {
        let max_len = self.max_code_len().max(1);
        out.reserve(n);
        let mut remaining = n;
        while remaining > 0 {
            r.refill();
            let mut buffered = r.buffered_bits();
            if buffered < max_len {
                break; // tail: per-symbol checked path below
            }
            while remaining > 0 && buffered >= max_len {
                let (sym, len) = self
                    .decode_from_word(r.peek_word())
                    .ok_or(Error::InvalidValue("huffman code not in table"))?;
                r.consume(len);
                buffered -= len;
                out.push(sym);
                remaining -= 1;
            }
        }
        for _ in 0..remaining {
            out.push(self.decode(r)?);
        }
        Ok(())
    }

    /// Bit-by-bit canonical decode (long codes and stream tails).
    fn decode_slow(&self, r: &mut BitReader) -> Result<u32> {
        let mut code: u64 = 0;
        for len in 1..self.counts.len() {
            code = (code << 1) | r.read_bit()? as u64;
            let n = self.counts[len] as u64;
            if n > 0 {
                let first = self.first_code[len];
                if code < first + n {
                    let idx = self.offsets[len] as u64 + (code - first);
                    return Ok(self.sorted_symbols[idx as usize]);
                }
            }
        }
        Err(Error::InvalidValue("huffman code not in table"))
    }

    /// Serializes the code as sparse `(symbol delta, length)` pairs.
    pub fn serialize(&self, out: &mut Vec<u8>) {
        varint::write_uvarint(out, self.encode_table.len() as u64);
        let used: Vec<u32> = (0..self.encode_table.len() as u32)
            .filter(|&s| self.encode_table[s as usize].1 > 0)
            .collect();
        varint::write_uvarint(out, used.len() as u64);
        let mut prev = 0u32;
        for &s in &used {
            varint::write_uvarint(out, (s - prev) as u64);
            varint::write_uvarint(out, self.encode_table[s as usize].1 as u64);
            prev = s;
        }
    }

    /// Inverse of [`CanonicalCode::serialize`].
    pub fn deserialize(data: &[u8], pos: &mut usize) -> Result<Self> {
        let alphabet = varint::read_uvarint(data, pos)? as usize;
        if alphabet > (1 << 28) {
            return Err(Error::InvalidValue("huffman alphabet too large"));
        }
        let n_used = varint::read_uvarint(data, pos)? as usize;
        if n_used > alphabet {
            return Err(Error::InvalidValue("more used symbols than alphabet"));
        }
        let mut lens = vec![0u32; alphabet];
        let mut sym = 0u64;
        for i in 0..n_used {
            let delta = varint::read_uvarint(data, pos)?;
            sym = if i == 0 { delta } else { sym + delta };
            let len = varint::read_uvarint(data, pos)? as u32;
            if sym as usize >= alphabet || len == 0 || len > MAX_CODE_LEN {
                return Err(Error::InvalidValue("bad huffman table entry"));
            }
            lens[sym as usize] = len;
        }
        Ok(Self::from_lengths(&lens))
    }
}

std::thread_local! {
    /// Frequency table reused across [`encode_symbols`] calls. The nominal
    /// alphabet is 2^16 codes (512 KiB as `u64`) while a chunk typically
    /// touches a few hundred distinct symbols, so allocating and zeroing a
    /// dense histogram per chunk dominated the entropy stage; instead the
    /// table persists per thread and only the touched slots are cleared.
    static FREQS: std::cell::RefCell<Vec<u32>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Convenience: Huffman-encode a symbol slice into a self-contained buffer
/// (table + count + payload).
pub fn encode_symbols(symbols: &[u32], alphabet: usize) -> Vec<u8> {
    let pairs = FREQS.with(|cell| {
        let mut freqs = cell.borrow_mut();
        if freqs.len() < alphabet {
            freqs.resize(alphabet, 0);
        }
        let mut touched: Vec<u32> = Vec::new();
        for &s in symbols {
            let f = &mut freqs[s as usize];
            if *f == 0 {
                touched.push(s);
            }
            *f = f.saturating_add(1);
        }
        // Sorting restores the ascending-symbol order the dense scan had,
        // keeping the tree (and the stream) byte-identical to it.
        touched.sort_unstable();
        let pairs: Vec<(u32, u64)> = touched
            .iter()
            .map(|&s| (s, freqs[s as usize] as u64))
            .collect();
        for &s in &touched {
            freqs[s as usize] = 0;
        }
        pairs
    });
    let code = CanonicalCode::from_lengths(&code_lengths_sparse(&pairs, alphabet));
    let mut out = Vec::new();
    code.serialize(&mut out);
    varint::write_uvarint(&mut out, symbols.len() as u64);
    let mut w = BitWriter::with_capacity(symbols.len() / 2);
    code.encode_all(&mut w, symbols);
    let payload = w.into_bytes();
    varint::write_uvarint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Inverse of [`encode_symbols`]; advances `pos` past the buffer.
pub fn decode_symbols(data: &[u8], pos: &mut usize) -> Result<Vec<u32>> {
    let code = CanonicalCode::deserialize(data, pos)?;
    let n = varint::read_uvarint(data, pos)? as usize;
    let payload_len = varint::read_uvarint(data, pos)? as usize;
    let end = pos.checked_add(payload_len).ok_or(Error::UnexpectedEof)?;
    if end > data.len() {
        return Err(Error::UnexpectedEof);
    }
    // `n` is untrusted: bound it by the bits the payload can actually hold
    // before reserving output. Every symbol costs at least the shortest
    // code length, so a hostile count that could not possibly fit is
    // rejected here instead of driving a huge allocation into EOF errors.
    let fits = match code.min_code_len() {
        Some(min_len) => (n as u64).saturating_mul(min_len as u64) <= payload_len as u64 * 8,
        None => n == 0,
    };
    if !fits {
        return Err(Error::InvalidValue("symbol count exceeds payload bits"));
    }
    let mut r = BitReader::new(&data[*pos..end]);
    let mut out = Vec::new();
    code.decode_all(&mut r, n, &mut out)?;
    *pos = end;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_round_trips() {
        let buf = encode_symbols(&[], 16);
        let mut pos = 0;
        assert_eq!(decode_symbols(&buf, &mut pos).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn single_symbol_round_trips() {
        let syms = vec![7u32; 100];
        let buf = encode_symbols(&syms, 16);
        let mut pos = 0;
        assert_eq!(decode_symbols(&buf, &mut pos).unwrap(), syms);
    }

    #[test]
    fn skewed_distribution_round_trips_and_compresses() {
        let mut syms = Vec::new();
        for i in 0..10_000u32 {
            syms.push(if i % 100 == 0 { i % 64 } else { 32 });
        }
        let buf = encode_symbols(&syms, 64);
        let mut pos = 0;
        assert_eq!(decode_symbols(&buf, &mut pos).unwrap(), syms);
        // 10k symbols dominated by one value must compress far below 2 B/sym.
        assert!(buf.len() < 4000, "buf.len() = {}", buf.len());
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let freqs = [5u64, 9, 12, 13, 16, 45, 0, 3];
        let lens = code_lengths(&freqs);
        let code = CanonicalCode::from_lengths(&lens);
        let used: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
        for &a in &used {
            for &b in &used {
                if a == b {
                    continue;
                }
                let (ca, la) = code.encode_table[a];
                let (cb, lb) = code.encode_table[b];
                if la <= lb {
                    assert_ne!(ca, cb >> (lb - la), "code {a} prefixes {b}");
                }
            }
        }
    }

    #[test]
    fn kraft_inequality_holds() {
        let freqs: Vec<u64> = (1..=300).map(|i| i * i).collect();
        let lens = code_lengths(&freqs);
        let kraft: f64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft = {kraft}");
    }

    #[test]
    fn near_optimal_for_uniform() {
        // 256 equally likely symbols need exactly 8 bits each.
        let syms: Vec<u32> = (0..25600).map(|i| i % 256).collect();
        let buf = encode_symbols(&syms, 256);
        let payload_bits = (buf.len() as f64) * 8.0 / syms.len() as f64;
        assert!(payload_bits < 8.5, "bits/sym = {payload_bits}");
    }

    #[test]
    fn table_round_trips_through_serialization() {
        let freqs = [0u64, 10, 0, 0, 7, 1, 1, 0, 99];
        let code = CanonicalCode::from_lengths(&code_lengths(&freqs));
        let mut buf = Vec::new();
        code.serialize(&mut buf);
        let mut pos = 0;
        let back = CanonicalCode::deserialize(&buf, &mut pos).unwrap();
        assert_eq!(code.encode_table, back.encode_table);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_payload_is_error() {
        let syms: Vec<u32> = (0..100).map(|i| i % 7).collect();
        let buf = encode_symbols(&syms, 8);
        let mut pos = 0;
        assert!(decode_symbols(&buf[..buf.len() - 5], &mut pos).is_err());
    }

    #[test]
    fn bulk_decode_matches_per_symbol_decode() {
        // Mixed short/long codes: quadratic frequencies over 300 symbols
        // produce a wide spread of code lengths, exercising both the LUT
        // hit and the canonical-walk branch of the bulk loop.
        let freqs: Vec<u64> = (1..=300).map(|i| i * i).collect();
        let code = CanonicalCode::from_lengths(&code_lengths(&freqs));
        let syms: Vec<u32> = (0..20_000u32).map(|i| (i * i + 7 * i) % 300).collect();
        let mut w = BitWriter::new();
        code.encode_all(&mut w, &syms);
        let bytes = w.into_bytes();

        let mut bulk = Vec::new();
        code.decode_all(&mut BitReader::new(&bytes), syms.len(), &mut bulk)
            .unwrap();
        assert_eq!(bulk, syms);

        let mut r = BitReader::new(&bytes);
        let one: Vec<u32> = (0..syms.len())
            .map(|_| code.decode(&mut r).unwrap())
            .collect();
        assert_eq!(one, syms);
    }

    #[test]
    fn hostile_symbol_count_is_rejected_before_allocation() {
        let syms: Vec<u32> = (0..64).map(|i| i % 16).collect();
        let buf = encode_symbols(&syms, 16);
        // Re-serialize with an absurd declared count: table, then count,
        // then the original (now far too short) payload.
        let mut pos = 0;
        let code = CanonicalCode::deserialize(&buf, &mut pos).unwrap();
        let _n = varint::read_uvarint(&buf, &mut pos).unwrap();
        let payload_len = varint::read_uvarint(&buf, &mut pos).unwrap() as usize;
        let payload = &buf[pos..pos + payload_len];
        let mut forged = Vec::new();
        code.serialize(&mut forged);
        varint::write_uvarint(&mut forged, u32::MAX as u64);
        varint::write_uvarint(&mut forged, payload_len as u64);
        forged.extend_from_slice(payload);
        let mut pos = 0;
        assert_eq!(
            decode_symbols(&forged, &mut pos),
            Err(Error::InvalidValue("symbol count exceeds payload bits"))
        );
    }

    #[test]
    fn large_alphabet_sparse_usage() {
        // SZ uses a 65536-code alphabet with few distinct codes in practice.
        let syms: Vec<u32> = (0..5000).map(|i| 32768 + (i % 5) * 17).collect();
        let buf = encode_symbols(&syms, 65536);
        let mut pos = 0;
        assert_eq!(decode_symbols(&buf, &mut pos).unwrap(), syms);
        assert!(buf.len() < 2500);
    }
}
