//! Canonical Huffman coding over sparse `u32` symbol alphabets.
//!
//! SZ's stage-II entropy coder builds a Huffman tree over the linear-scaling
//! quantization codes actually present in a dataset (a tiny subset of the
//! nominal 2^16-code alphabet). We reproduce that with canonical codes:
//! only (symbol, code length) pairs are serialized, never the tree shape.
//!
//! Two packed-buffer modes share the serialized table format:
//!
//! * **Single-stream (legacy)** — one bit-stream of all symbols in order;
//!   every buffer written before the interleaved mode existed, and the
//!   fallback the decoder keeps accepting byte-for-byte.
//! * **Interleaved** — the Huff0/zstd trick: symbols split round-robin
//!   into [`LANES`] independently addressable sub-streams, each encoded
//!   with the *same* canonical code. Per-symbol order within a sub-stream
//!   is the global order restricted to `i ≡ lane (mod LANES)`, so code
//!   assignment, table bytes, and total payload bits are unchanged; only
//!   the transport layout differs. The decoder runs [`LANES`] readers in
//!   one fused loop (refill/LUT latency overlaps across lanes on one
//!   core) or fans the lanes across a [`LaneExecutor`].

use pwrel_bitstream::{varint, BitReader, BitWriter, Error, Result};
use pwrel_data::{LaneExecutor, SerialLanes};
use pwrel_kernels::dispatch::{hist_kernel, BatchKernel};
use pwrel_kernels::hist::LaneHistogram;

/// Maximum admissible code length. Frequencies are rescaled (halved,
/// rounding up so nonzero stays nonzero) until the tree fits; with 2^16
/// symbols this triggers only on adversarial distributions.
const MAX_CODE_LEN: u32 = 48;

/// Number of round-robin sub-streams in the interleaved packed mode:
/// symbol `i` of the original stream belongs to sub-stream `i % LANES`.
pub const LANES: usize = 4;

/// Leading uvarint of an interleaved buffer. A legacy buffer starts with
/// its serialized table's alphabet size, which [`CanonicalCode::deserialize`]
/// rejects above `1 << 28` — so this value can never begin a valid legacy
/// stream, and a legacy decoder handed an interleaved buffer fails loudly
/// ("alphabet too large") instead of misparsing it.
const INTERLEAVED_MARKER: u64 = (1 << 29) | LANES as u64;

/// Below this many symbols a pooled decode's fan-out bookkeeping costs
/// more than the decode itself; the fused single-thread loop runs instead.
const MIN_POOLED_SYMBOLS: usize = 1 << 12;

/// Number of symbols sub-stream `lane` holds out of `n` total.
#[inline]
fn lane_count(n: usize, lane: usize) -> usize {
    (n + LANES - 1 - lane) / LANES
}

/// Computes Huffman code lengths for `freqs` (index = symbol).
///
/// Returns a vector of lengths, zero for unused symbols. Lengths are
/// guaranteed ≤ `MAX_CODE_LEN` (48); a single used symbol gets length 1.
pub fn code_lengths(freqs: &[u64]) -> Vec<u32> {
    let pairs: Vec<(u32, u64)> = freqs
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(s, &f)| (s as u32, f))
        .collect();
    code_lengths_sparse(&pairs, freqs.len())
}

/// [`code_lengths`] over sparse `(symbol, frequency)` pairs (ascending
/// symbols, frequencies > 0) — the hot-path form: the work scales with the
/// number of *distinct* symbols, not the nominal alphabet.
pub fn code_lengths_sparse(pairs: &[(u32, u64)], alphabet: usize) -> Vec<u32> {
    let mut lens = vec![0u32; alphabet];
    for (s, l) in code_length_pairs(pairs, alphabet) {
        lens[s as usize] = l;
    }
    lens
}

/// [`code_lengths_sparse`] returning sparse ascending `(symbol, length)`
/// pairs instead of a dense table — the form the hot paths consume, so
/// per-call work never scans the nominal alphabet. `alphabet` only seeds
/// the internal-node id counter (tie-breaking), keeping the assigned
/// lengths identical to the dense variant's.
pub fn code_length_pairs(pairs: &[(u32, u64)], alphabet: usize) -> Vec<(u32, u32)> {
    let mut scaled: Vec<(u32, u64)> = pairs.to_vec();
    loop {
        let lens = tree_depths(&scaled, alphabet);
        if lens.iter().all(|&(_, l)| l <= MAX_CODE_LEN) {
            return lens;
        }
        for (_, f) in scaled.iter_mut() {
            *f = (*f).div_ceil(2);
        }
    }
}

/// One pass of plain Huffman tree construction returning ascending sparse
/// `(symbol, depth)` pairs for the used symbols.
///
/// Two-queue merge instead of a binary heap: leaves sorted once by
/// `(frequency, symbol)`, internals appended to a FIFO as they are
/// created. Merged frequencies are non-decreasing and internal ids
/// (`alphabet + creation#`) increase, so the internal queue stays sorted
/// by the same `(frequency, id)` key the historical heap popped on — each
/// step's two minima come from comparing the two queue fronts, and the
/// tree shape (hence every golden stream byte) is identical. Nodes live
/// in a flat arena; an internal's index always exceeds its children's, so
/// one reverse sweep resolves every depth top-down.
fn tree_depths(pairs: &[(u32, u64)], alphabet: usize) -> Vec<(u32, u32)> {
    let mut lens: Vec<(u32, u32)> = Vec::with_capacity(pairs.len());
    match pairs.len() {
        0 => return lens,
        1 => {
            lens.push((pairs[0].0, 1));
            return lens;
        }
        _ => {}
    }

    // Arena: leaves are indices `0..n_leaf` in `pairs` order;
    // `children[k]` holds the child pair of internal node `n_leaf + k`.
    let n_leaf = pairs.len();
    let mut order: Vec<u32> = (0..n_leaf as u32).collect();
    order.sort_unstable_by_key(|&i| {
        let (s, f) = pairs[i as usize];
        (f, s)
    });
    let mut children: Vec<(u32, u32)> = Vec::with_capacity(n_leaf - 1);
    let mut ifreq: Vec<u64> = Vec::with_capacity(n_leaf - 1);
    let (mut li, mut ii) = (0usize, 0usize);
    for _ in 0..n_leaf - 1 {
        let mut take = |ifreq: &[u64]| -> (u64, u32) {
            let leaf = order.get(li).map(|&i| {
                let (s, f) = pairs[i as usize];
                ((f, s), i)
            });
            let internal = ifreq
                .get(ii)
                .map(|&f| ((f, (alphabet + ii) as u32), (n_leaf + ii) as u32));
            match (leaf, internal) {
                (Some((lk, l)), Some((ik, _))) if lk < ik => {
                    li += 1;
                    (lk.0, l)
                }
                (Some((lk, l)), None) => {
                    li += 1;
                    (lk.0, l)
                }
                (_, Some((ik, i))) => {
                    ii += 1;
                    (ik.0, i)
                }
                (None, None) => unreachable!("two-queue merge ran dry"),
            }
        };
        let (fa, a) = take(&ifreq);
        let (fb, b) = take(&ifreq);
        children.push((a, b));
        ifreq.push(fa.saturating_add(fb));
    }

    // Top-down depth sweep over the arena, root last.
    let mut depth = vec![0u32; n_leaf + children.len()];
    for (k, &(a, b)) in children.iter().enumerate().rev() {
        let d = depth[n_leaf + k] + 1;
        depth[a as usize] = d;
        depth[b as usize] = d;
    }
    for (i, &(s, _)) in pairs.iter().enumerate() {
        lens.push((s, depth[i].max(1)));
    }
    lens.sort_unstable_by_key(|&(s, _)| s);
    lens
}

/// Width of the decode lookup table: codes up to this length decode with a
/// single peek instead of a canonical walk. 11 bits (16 KiB of entries)
/// covers the overwhelming frequency mass of SZ's residual distributions
/// while leaving L1 room for the four lanes' hot state — 12 bits measured
/// slower for exactly that reason.
const LUT_BITS: u32 = 11;

/// A canonical Huffman code: encode and decode tables plus a compact
/// serialized form (sorted sparse `(symbol, length)` pairs).
#[derive(Debug, Clone)]
pub struct CanonicalCode {
    /// Packed `code << 6 | len` per symbol (`MAX_CODE_LEN` = 48 keeps the
    /// shifted code within 54 bits); `len == 0` means the symbol is
    /// unused. Packing halves the table's footprint over `(u64, u32)`
    /// tuples — the encode loop's lookups are random within it, so its
    /// cache residency is the encode throughput.
    encode_table: Vec<u64>,
    /// Used symbols in ascending order (the serialize/rebuild order).
    used_symbols: Vec<u32>,
    /// Used symbols sorted canonically (by length, then symbol).
    sorted_symbols: Vec<u32>,
    /// `count[l]` = number of codes of length `l`.
    counts: Vec<u32>,
    /// `first_code[l]` = canonical code value of the first code of length `l`.
    first_code: Vec<u64>,
    /// `offset[l]` = index into `sorted_symbols` of the first length-`l` code.
    offsets: Vec<u32>,
    /// `lut[prefix]` = (symbol, len) for codes of length ≤ LUT_BITS;
    /// len == 0 marks prefixes belonging to longer codes.
    lut: Vec<(u32, u8)>,
}

impl CanonicalCode {
    /// Builds the canonical code from per-symbol lengths (dense table,
    /// zero = unused). Compatibility shim over [`CanonicalCode::from_pairs`].
    pub fn from_lengths(lens: &[u32]) -> Self {
        let pairs: Vec<(u32, u32)> = lens
            .iter()
            .enumerate()
            .filter(|(_, &l)| l > 0)
            .map(|(s, &l)| (s as u32, l))
            .collect();
        Self::from_pairs(&pairs, lens.len())
    }

    /// Builds the canonical code from ascending sparse `(symbol, length)`
    /// pairs (lengths > 0, symbols < `alphabet`) — the hot-path
    /// constructor. Only the dense encode table itself scales with the
    /// nominal alphabet (one zeroed allocation); every scan and sort runs
    /// over the used symbols. Canonical assignment depends only on the
    /// `(length, symbol)` order, so the resulting code — and every encoded
    /// byte — is identical to the dense [`CanonicalCode::from_lengths`]
    /// path's.
    // audit:allow-fn(L1): every index is structurally in range —
    // `counts`, `first_code`, `offsets` and `next` are sized
    // `max_len + 1` with `l <= max_len` by construction, and
    // `deserialize` rejects `symbol >= alphabet` and zero/oversized
    // lengths before `encode_table[s]` can be reached.
    pub fn from_pairs(pairs: &[(u32, u32)], alphabet: usize) -> Self {
        let max_len = pairs.iter().map(|&(_, l)| l).max().unwrap_or(0) as usize;
        let mut counts = vec![0u32; max_len + 1];
        for &(_, l) in pairs {
            counts[l as usize] += 1;
        }
        let used_symbols: Vec<u32> = pairs.iter().map(|&(s, _)| s).collect();
        let mut by_len: Vec<(u32, u32)> = pairs.iter().map(|&(s, l)| (l, s)).collect();
        by_len.sort_unstable();
        let sorted: Vec<u32> = by_len.iter().map(|&(_, s)| s).collect();

        let mut first_code = vec![0u64; max_len + 1];
        let mut offsets = vec![0u32; max_len + 1];
        let mut code: u64 = 0;
        let mut offset: u32 = 0;
        for l in 1..=max_len {
            code <<= 1;
            first_code[l] = code;
            offsets[l] = offset;
            code += counts[l] as u64;
            offset += counts[l];
        }

        let mut encode_table = vec![0u64; alphabet];
        let mut lut = vec![(0u32, 0u8); 1usize << LUT_BITS];
        let mut next = first_code.clone();
        for &(l, s) in &by_len {
            let code = next[l as usize];
            next[l as usize] += 1;
            encode_table[s as usize] = (code << 6) | l as u64;
            // Decode LUT: every LUT_BITS-wide prefix of a short code maps
            // straight to its symbol.
            if l <= LUT_BITS {
                let lo = (code << (LUT_BITS - l)) as usize;
                let hi = ((code + 1) << (LUT_BITS - l)) as usize;
                for entry in lut.iter_mut().take(hi).skip(lo) {
                    *entry = (s, l as u8);
                }
            }
        }

        Self {
            encode_table,
            used_symbols,
            sorted_symbols: sorted,
            counts,
            first_code,
            offsets,
            lut,
        }
    }

    /// Unpacks a symbol's `(code, len)` from the packed encode table.
    // audit:allow-fn(L1): encode-side helper — `symbol` comes from the
    // caller's own input slice, which `encode_all`/`encode_interleaved`
    // require to be `< alphabet` (the table's length).
    #[inline(always)]
    fn entry(&self, symbol: u32) -> (u64, u32) {
        let e = self.encode_table[symbol as usize];
        (e >> 6, (e & 63) as u32)
    }

    /// Number of symbols in the (nominal) alphabet.
    pub fn alphabet_len(&self) -> usize {
        self.encode_table.len()
    }

    /// Total encoded size in bits for the given frequency histogram.
    pub fn encoded_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .zip(&self.encode_table)
            .map(|(&f, &e)| f * (e & 63))
            .sum()
    }

    /// Length of the longest code in use (0 for an empty code).
    #[inline]
    fn max_code_len(&self) -> u32 {
        (self.counts.len() as u32).saturating_sub(1)
    }

    /// Length of the shortest code in use, if any symbol is coded. Every
    /// decoded symbol consumes at least this many bits — the bound
    /// [`decode_symbols`] uses to reject hostile symbol counts before
    /// allocating.
    pub fn min_code_len(&self) -> Option<u32> {
        (1..self.counts.len() as u32).find(|&l| self.counts.get(l as usize).is_some_and(|&c| c > 0))
    }

    /// Writes one symbol.
    #[inline]
    pub fn encode(&self, w: &mut BitWriter, symbol: u32) {
        let (code, len) = self.entry(symbol);
        debug_assert!(len > 0, "encoding symbol absent from the code");
        w.write_bits(code, len);
    }

    /// Writes a whole symbol slice — the bulk counterpart of
    /// [`CanonicalCode::encode`], used by every entropy stage hot path.
    ///
    /// Codes concatenate MSB-first into a local accumulator and reach the
    /// writer as near-full 64-bit words — one [`BitWriter::write_bits`]
    /// per ~8 symbols instead of one per symbol. The stream is identical
    /// by construction: the writer is MSB-first, so pre-concatenating
    /// code bits commutes with writing them one code at a time.
    /// `MAX_CODE_LEN` (48) < 64 guarantees any code fits a drained
    /// accumulator.
    pub fn encode_all(&self, w: &mut BitWriter, symbols: &[u32]) {
        let mut acc: u64 = 0;
        let mut n: u32 = 0;
        for &s in symbols {
            let (code, len) = self.entry(s);
            debug_assert!(len > 0, "encoding symbol absent from the code");
            if n + len > 64 {
                w.write_bits(acc >> (64 - n), n);
                acc = 0;
                n = 0;
            }
            acc |= code << (64 - n - len);
            n += len;
        }
        if n > 0 {
            w.write_bits(acc >> (64 - n), n);
        }
    }

    /// Reads one symbol.
    #[inline]
    pub fn decode(&self, r: &mut BitReader) -> Result<u32> {
        // Fast path: one table lookup when enough bits remain. The peeked
        // prefix is `LUT_BITS` wide, matching the table size, but a `get`
        // keeps stream-derived bits out of any unchecked index.
        if r.bits_remaining() >= LUT_BITS as u64 {
            let prefix = r.peek_bits(LUT_BITS)?;
            if let Some(&(sym, len)) = self.lut.get(prefix as usize) {
                if len > 0 {
                    r.skip_bits(len as u32)?;
                    return Ok(sym);
                }
            }
        }
        self.decode_slow(r)
    }

    /// Decodes a left-aligned bit window (next stream bit at bit 63) that
    /// is known to hold at least one whole code. Returns the symbol and
    /// its length in bits; `None` if no code matches.
    #[inline]
    fn decode_from_word(&self, word: u64) -> Option<(u32, u32)> {
        let prefix = (word >> (64 - LUT_BITS)) as usize;
        let (sym, len) = self.lut[prefix];
        if len > 0 {
            return Some((sym, len as u32));
        }
        // Long code: canonical walk on the window, no per-bit reads. A LUT
        // miss proves the code is longer than LUT_BITS, so the walk starts
        // past every length the LUT already covers.
        for l in LUT_BITS as usize + 1..self.counts.len() {
            let n = self.counts[l] as u64;
            if n > 0 {
                let code = word >> (64 - l as u32);
                let first = self.first_code[l];
                if code < first + n {
                    let idx = self.offsets[l] as u64 + (code - first);
                    return Some((self.sorted_symbols[idx as usize], l as u32));
                }
            }
        }
        None
    }

    /// Appends `n` decoded symbols to `out` — the bulk counterpart of
    /// [`CanonicalCode::decode`].
    ///
    /// The hot loop hoists every per-symbol check out: one
    /// [`BitReader::refill`] buffers ≥ 57 bits (≥ one whole code, since
    /// `MAX_CODE_LEN` is 48), then symbols decode straight off the
    /// buffered word with a LUT hit or a canonical walk until the window
    /// runs low. Near the stream tail — fewer buffered bits than the
    /// longest code — it falls back to the checked per-symbol path, so a
    /// truncated payload still surfaces as [`Error::UnexpectedEof`], never
    /// an over-consume.
    pub fn decode_all(&self, r: &mut BitReader, n: usize, out: &mut Vec<u32>) -> Result<()> {
        let max_len = self.max_code_len().max(1);
        out.reserve(n);
        let mut remaining = n;
        while remaining > 0 {
            r.refill();
            let mut buffered = r.buffered_bits();
            if buffered < max_len {
                break; // tail: per-symbol checked path below
            }
            while remaining > 0 && buffered >= max_len {
                let (sym, len) = self
                    .decode_from_word(r.peek_word())
                    .ok_or(Error::InvalidValue("huffman code not in table"))?;
                r.consume(len);
                buffered -= len;
                out.push(sym);
                remaining -= 1;
            }
        }
        for _ in 0..remaining {
            out.push(self.decode(r)?);
        }
        Ok(())
    }

    /// Encodes `symbols` split round-robin into [`LANES`] sub-streams,
    /// each byte-stream produced exactly as [`CanonicalCode::encode_all`]
    /// would over that lane's subsequence. One pass, [`LANES`] independent
    /// accumulators — consecutive symbols feed different accumulator
    /// chains, so the encode side gets the same ILP overlap the fused
    /// decoder does.
    /// Flushes every whole byte staged in a lane accumulator straight into
    /// its byte vector, keeping `*n < 8` leftover bits left-aligned.
    /// Byte-identical to routing the bits through [`BitWriter`]: flushing
    /// whole bytes early never changes the bit sequence, only when it
    /// reaches memory. The store is a fixed eight-byte write followed by a
    /// truncate — a constant-size copy the compiler turns into one
    /// unconditional store, instead of a variable-length `memcpy`.
    #[inline(always)]
    fn flush_lane(bytes: &mut Vec<u8>, acc: &mut u64, n: &mut u32) {
        let nb = (*n / 8) as usize;
        bytes.extend_from_slice(&acc.to_be_bytes());
        bytes.truncate(bytes.len() - (8 - nb));
        *acc = if nb == 8 { 0 } else { *acc << (8 * nb) };
        *n -= 8 * nb as u32;
    }

    /// One symbol through one lane's accumulator chain.
    #[inline(always)]
    fn put_lane(&self, s: u32, bytes: &mut Vec<u8>, acc: &mut u64, n: &mut u32) {
        let (code, len) = self.entry(s);
        debug_assert!(len > 0, "encoding symbol absent from the code");
        if *n + len > 64 {
            Self::flush_lane(bytes, acc, n);
        }
        *acc |= code << (64 - *n - len);
        *n += len;
    }

    fn encode_interleaved(&self, symbols: &[u32]) -> [Vec<u8>; LANES] {
        let cap = symbols.len() / (2 * LANES) + 16;
        // Scalar per-lane state (not arrays): keeps the four accumulator
        // chains in registers so their latencies actually overlap.
        let [mut b0, mut b1, mut b2, mut b3]: [Vec<u8>; LANES] =
            std::array::from_fn(|_| Vec::with_capacity(cap));
        let (mut a0, mut a1, mut a2, mut a3) = (0u64, 0u64, 0u64, 0u64);
        let (mut n0, mut n1, mut n2, mut n3) = (0u32, 0u32, 0u32, 0u32);
        let mut quads = symbols.chunks_exact(LANES);
        for quad in &mut quads {
            self.put_lane(quad[0], &mut b0, &mut a0, &mut n0);
            self.put_lane(quad[1], &mut b1, &mut a1, &mut n1);
            self.put_lane(quad[2], &mut b2, &mut a2, &mut n2);
            self.put_lane(quad[3], &mut b3, &mut a3, &mut n3);
        }
        {
            let bufs = [&mut b0, &mut b1, &mut b2, &mut b3];
            let accs = [&mut a0, &mut a1, &mut a2, &mut a3];
            let ns = [&mut n0, &mut n1, &mut n2, &mut n3];
            for (j, &s) in quads.remainder().iter().enumerate() {
                self.put_lane(s, &mut *bufs[j], &mut *accs[j], &mut *ns[j]);
            }
            for j in 0..LANES {
                // Tail: whole bytes, then one zero-padded partial byte —
                // the same final alignment `BitWriter::into_bytes`
                // produces.
                let nb = (*ns[j]).div_ceil(8) as usize;
                bufs[j].extend_from_slice(&accs[j].to_be_bytes()[..nb]);
            }
        }
        [b0, b1, b2, b3]
    }

    /// Decodes `n` round-robin interleaved symbols from [`LANES`]
    /// sub-stream slices in one fused loop: per round, [`LANES`]
    /// independent `decode_from_word` + `consume` chains whose refill and
    /// table-lookup latencies overlap. Each lane's buffered-bit window is
    /// tracked exactly (decremented by the decoded length), so rounds run
    /// until some lane actually drops below one whole worst-case code —
    /// typically many more rounds per refill than the conservative
    /// `min_buffered / max_len` bound would allow, since real codes
    /// average far shorter than the longest one. The stream tail (or any
    /// lane too short for the bulk guarantee) falls back to the checked
    /// per-symbol path, surfacing truncation as [`Error::UnexpectedEof`].
    /// One fused-loop step: decode a symbol off a lane's buffered window
    /// and consume it. The caller guarantees ≥ one whole code is buffered.
    #[inline(always)]
    fn step(&self, r: &mut BitReader) -> Result<(u32, u32)> {
        let (sym, len) = self
            .decode_from_word(r.peek_word())
            .ok_or(Error::InvalidValue("huffman code not in table"))?;
        r.consume(len);
        Ok((sym, len))
    }

    fn decode_interleaved_fused(&self, lanes: &[&[u8]; LANES], n: usize) -> Result<Vec<u32>> {
        let max_len = self.max_code_len().max(1);
        // Scalar per-lane readers and bit counts (not arrays) keep the four
        // decode chains in registers so their latencies actually overlap.
        let [mut r0, mut r1, mut r2, mut r3]: [BitReader; LANES] =
            std::array::from_fn(|j| BitReader::new(lanes[j]));
        let mut out = Vec::with_capacity(n);
        let rounds = n / LANES;
        let mut t = 0usize;
        'refill: while t < rounds {
            r0.refill();
            r1.refill();
            r2.refill();
            r3.refill();
            let mut a0 = r0.buffered_bits();
            let mut a1 = r1.buffered_bits();
            let mut a2 = r2.buffered_bits();
            let mut a3 = r3.buffered_bits();
            if a0.min(a1).min(a2).min(a3) < max_len {
                break;
            }
            // Every lane holds ≥ max_len buffered bits at the top of each
            // round, so the in-round decodes can never over-consume.
            while t < rounds {
                let (s0, l0) = self.step(&mut r0)?;
                let (s1, l1) = self.step(&mut r1)?;
                let (s2, l2) = self.step(&mut r2)?;
                let (s3, l3) = self.step(&mut r3)?;
                a0 -= l0;
                a1 -= l1;
                a2 -= l2;
                a3 -= l3;
                out.push(s0);
                out.push(s1);
                out.push(s2);
                out.push(s3);
                t += 1;
                if a0 < max_len || a1 < max_len || a2 < max_len || a3 < max_len {
                    continue 'refill;
                }
            }
        }
        // Each lane has decoded exactly `t` symbols; finish in global
        // order through the checked per-symbol decoder.
        let mut rs = [r0, r1, r2, r3];
        for idx in LANES * t..n {
            out.push(self.decode(&mut rs[idx % LANES])?);
        }
        Ok(out)
    }

    /// Decodes `n` interleaved symbols by fanning the [`LANES`] sub-streams
    /// across `exec` — each lane bulk-decodes into its own buffer
    /// concurrently, then a single merge pass restores global round-robin
    /// order. Byte-for-byte the same result as the fused path at any
    /// executor width.
    fn decode_interleaved_pooled(
        &self,
        lanes: &[&[u8]; LANES],
        counts: &[usize; LANES],
        n: usize,
        exec: &dyn LaneExecutor,
    ) -> Result<Vec<u32>> {
        let mut results: [Result<Vec<u32>>; LANES] = std::array::from_fn(|_| Ok(Vec::new()));
        let task = |slot: &mut Result<Vec<u32>>, bytes: &[u8], count: usize| {
            let mut r = BitReader::new(bytes);
            let mut v = Vec::new();
            *slot = self.decode_all(&mut r, count, &mut v).map(|()| v);
        };
        {
            let [r0, r1, r2, r3] = &mut results;
            let mut t0 = || task(r0, lanes[0], counts[0]);
            let mut t1 = || task(r1, lanes[1], counts[1]);
            let mut t2 = || task(r2, lanes[2], counts[2]);
            let mut t3 = || task(r3, lanes[3], counts[3]);
            exec.run_lanes(&mut [&mut t0, &mut t1, &mut t2, &mut t3]);
        }
        let mut out = vec![0u32; n];
        for (j, result) in results.into_iter().enumerate() {
            let lane = result?;
            for (k, &s) in lane.iter().enumerate() {
                out[LANES * k + j] = s;
            }
        }
        Ok(out)
    }

    /// Bit-by-bit canonical decode (long codes and stream tails).
    ///
    /// `counts`, `first_code` and `offsets` share one length, so the loop
    /// index is in bounds for all three; `idx` is the only value shaped by
    /// stream bits, and the `get` on `sorted_symbols` turns an impossible
    /// out-of-table walk into a decode error instead of a panic.
    fn decode_slow(&self, r: &mut BitReader) -> Result<u32> {
        let mut code: u64 = 0;
        for len in 1..self.counts.len() {
            code = (code << 1) | r.read_bit()? as u64;
            let n = self.counts.get(len).copied().unwrap_or(0) as u64;
            if n > 0 {
                let first = self.first_code.get(len).copied().unwrap_or(u64::MAX);
                if let Some(delta) = code.checked_sub(first) {
                    if delta < n {
                        let off = self.offsets.get(len).copied().unwrap_or(0) as u64;
                        return self
                            .sorted_symbols
                            .get((off + delta) as usize)
                            .copied()
                            .ok_or(Error::InvalidValue("huffman code not in table"));
                    }
                }
            }
        }
        Err(Error::InvalidValue("huffman code not in table"))
    }

    /// Serializes the code as sparse `(symbol delta, length)` pairs.
    pub fn serialize(&self, out: &mut Vec<u8>) {
        varint::write_uvarint(out, self.encode_table.len() as u64);
        varint::write_uvarint(out, self.used_symbols.len() as u64);
        let mut prev = 0u32;
        for &s in &self.used_symbols {
            varint::write_uvarint(out, (s - prev) as u64);
            varint::write_uvarint(out, self.encode_table[s as usize] & 63);
            prev = s;
        }
    }

    /// Inverse of [`CanonicalCode::serialize`]. Accumulates the sparse
    /// `(symbol, length)` pairs directly and rebuilds through
    /// [`CanonicalCode::from_pairs`] — no dense per-alphabet scans, which
    /// matters because every decode rebuilds the table. Deltas are
    /// non-negative so symbols arrive non-decreasing; a repeated symbol
    /// (delta 0 after the first entry) overwrites the previous pair, the
    /// same last-write-wins the historical dense table had.
    pub fn deserialize(data: &[u8], pos: &mut usize) -> Result<Self> {
        let alphabet = varint::read_uvarint(data, pos)? as usize;
        if alphabet > (1 << 28) {
            return Err(Error::InvalidValue("huffman alphabet too large"));
        }
        let n_used = varint::read_uvarint(data, pos)? as usize;
        if n_used > alphabet {
            return Err(Error::InvalidValue("more used symbols than alphabet"));
        }
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(n_used);
        let mut sym = 0u64;
        for i in 0..n_used {
            let delta = varint::read_uvarint(data, pos)?;
            sym = if i == 0 { delta } else { sym + delta };
            let len = varint::read_uvarint(data, pos)? as u32;
            if sym as usize >= alphabet || len == 0 || len > MAX_CODE_LEN {
                return Err(Error::InvalidValue("bad huffman table entry"));
            }
            match pairs.last_mut() {
                Some(last) if last.0 as u64 == sym => last.1 = len,
                _ => pairs.push((sym as u32, len)),
            }
        }
        Ok(Self::from_pairs(&pairs, alphabet))
    }
}

std::thread_local! {
    /// Frequency table reused across [`encode_symbols`] calls. The nominal
    /// alphabet is 2^16 codes (512 KiB as `u64`) while a chunk typically
    /// touches a few hundred distinct symbols, so allocating and zeroing a
    /// dense histogram per chunk dominated the entropy stage; instead the
    /// table persists per thread and only the touched slots are cleared.
    static FREQS: std::cell::RefCell<Vec<u32>> = const { std::cell::RefCell::new(Vec::new()) };
    /// Lane-batched histogram reused the same way (the default kernel;
    /// see `pwrel_kernels::hist` for why the partial tables are faster).
    static LANE_FREQS: std::cell::RefCell<LaneHistogram> =
        std::cell::RefCell::new(LaneHistogram::new());
}

/// Sparse ascending `(symbol, frequency)` pairs for `symbols`, through the
/// dispatched histogram kernel (`PWREL_HIST=reference` selects the dense
/// single-table counter). Both kernels produce identical pairs, so the
/// tree — and every encoded byte downstream — is kernel-independent.
fn count_pairs(symbols: &[u32], alphabet: usize) -> Vec<(u32, u64)> {
    if hist_kernel() == BatchKernel::Batched {
        return LANE_FREQS.with(|cell| cell.borrow_mut().count(symbols, alphabet));
    }
    FREQS.with(|cell| {
        let mut freqs = cell.borrow_mut();
        if freqs.len() < alphabet {
            freqs.resize(alphabet, 0);
        }
        let mut touched: Vec<u32> = Vec::new();
        for &s in symbols {
            let f = &mut freqs[s as usize];
            if *f == 0 {
                touched.push(s);
            }
            *f = f.saturating_add(1);
        }
        // Sorting restores the ascending-symbol order the dense scan had,
        // keeping the tree (and the stream) byte-identical to it.
        touched.sort_unstable();
        let pairs: Vec<(u32, u64)> = touched
            .iter()
            .map(|&s| (s, freqs[s as usize] as u64))
            .collect();
        for &s in &touched {
            freqs[s as usize] = 0;
        }
        pairs
    })
}

/// Convenience: Huffman-encode a symbol slice into a self-contained buffer
/// in the interleaved packed mode:
///
/// ```text
/// uvarint INTERLEAVED_MARKER
/// serialized table            (identical bytes to the legacy mode)
/// uvarint n                   (total symbol count)
/// uvarint payload_len         (sum of the sub-stream byte lengths)
/// LANES × uvarint count       (per-sub-stream symbol counts)
/// LANES × uvarint len         (per-sub-stream byte lengths)
/// concatenated sub-stream payloads
/// ```
///
/// The descriptor is fully redundant by design — counts must equal the
/// round-robin split of `n` and lengths must sum to `payload_len` exactly —
/// so every forged descriptor is rejected before any payload is touched.
pub fn encode_symbols(symbols: &[u32], alphabet: usize) -> Vec<u8> {
    let pairs = count_pairs(symbols, alphabet);
    let code = CanonicalCode::from_pairs(&code_length_pairs(&pairs, alphabet), alphabet);
    let payloads = code.encode_interleaved(symbols);
    let total: usize = payloads.iter().map(Vec::len).sum();
    // Exact-fit descriptor + payload assembly: one allocation, no
    // realloc copies of the sub-streams (table ≤ 10 bytes per used
    // symbol, descriptor ≤ 10 bytes per field).
    let mut out = Vec::with_capacity(total + 10 * pairs.len() + 2 * LANES * 10 + 40);
    varint::write_uvarint(&mut out, INTERLEAVED_MARKER);
    code.serialize(&mut out);
    varint::write_uvarint(&mut out, symbols.len() as u64);
    varint::write_uvarint(&mut out, total as u64);
    for lane in 0..LANES {
        varint::write_uvarint(&mut out, lane_count(symbols.len(), lane) as u64);
    }
    for p in &payloads {
        varint::write_uvarint(&mut out, p.len() as u64);
    }
    for p in &payloads {
        out.extend_from_slice(p);
    }
    out
}

/// [`encode_symbols`] in the legacy single-stream mode (table + count +
/// one payload). Kept as a first-class encoder so equivalence tests and
/// the seed-engine benchmarks can still produce the format every
/// pre-interleaving stream used; [`decode_symbols`] accepts both modes.
pub fn encode_symbols_single(symbols: &[u32], alphabet: usize) -> Vec<u8> {
    let pairs = count_pairs(symbols, alphabet);
    let code = CanonicalCode::from_pairs(&code_length_pairs(&pairs, alphabet), alphabet);
    let mut out = Vec::new();
    code.serialize(&mut out);
    varint::write_uvarint(&mut out, symbols.len() as u64);
    let mut w = BitWriter::with_capacity(symbols.len() / 2);
    code.encode_all(&mut w, symbols);
    let payload = w.into_bytes();
    varint::write_uvarint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Inverse of [`encode_symbols`]; advances `pos` past the buffer. Accepts
/// both packed modes: buffers starting with the interleaved marker decode
/// through the fused multi-reader loop, anything else through the legacy
/// single-stream path.
pub fn decode_symbols(data: &[u8], pos: &mut usize) -> Result<Vec<u32>> {
    decode_symbols_pooled(data, pos, &SerialLanes)
}

/// [`decode_symbols`] with an explicit lane executor: interleaved buffers
/// large enough to amortize the fan-out decode their sub-streams across
/// `exec` (byte-identical output at any executor width); legacy buffers
/// and small inputs take the single-thread paths.
pub fn decode_symbols_pooled(
    data: &[u8],
    pos: &mut usize,
    exec: &dyn LaneExecutor,
) -> Result<Vec<u32>> {
    let mut probe = *pos;
    if varint::read_uvarint(data, &mut probe)? == INTERLEAVED_MARKER {
        *pos = probe;
        return decode_symbols_interleaved(data, pos, exec);
    }
    decode_symbols_single(data, pos)
}

/// The legacy single-stream decoder (the pre-interleaving `decode_symbols`
/// body, byte-for-byte compatible with every historical buffer).
// audit:allow-fn(L1): the only slice, `data[*pos..end]`, follows the
// explicit `end > data.len()` rejection and the checked_add that
// produced `end`.
fn decode_symbols_single(data: &[u8], pos: &mut usize) -> Result<Vec<u32>> {
    let code = CanonicalCode::deserialize(data, pos)?;
    let n = varint::read_uvarint(data, pos)? as usize;
    let payload_len = varint::read_uvarint(data, pos)? as usize;
    let end = pos.checked_add(payload_len).ok_or(Error::UnexpectedEof)?;
    if end > data.len() {
        return Err(Error::UnexpectedEof);
    }
    // `n` is untrusted: bound it by the bits the payload can actually hold
    // before reserving output. Every symbol costs at least the shortest
    // code length, so a hostile count that could not possibly fit is
    // rejected here instead of driving a huge allocation into EOF errors.
    let fits = match code.min_code_len() {
        Some(min_len) => (n as u64).saturating_mul(min_len as u64) <= payload_len as u64 * 8,
        None => n == 0,
    };
    if !fits {
        return Err(Error::InvalidValue("symbol count exceeds payload bits"));
    }
    let mut r = BitReader::new(&data[*pos..end]);
    let mut out = Vec::new();
    code.decode_all(&mut r, n, &mut out)?;
    *pos = end;
    Ok(out)
}

/// Parses and validates the interleaved descriptor, then decodes. Every
/// descriptor field is checked against what the format forces it to be
/// before any sub-stream is read: symbol counts must equal the round-robin
/// split of `n`, byte lengths must not overflow and must sum to
/// `payload_len` exactly (no trailing bytes inside the declared payload),
/// and the payload must lie within `data`.
// audit:allow-fn(L1): the lane slices `data[off..off + lens[lane]]` are
// carved from the validated payload — the lane lengths' checked sum
// equals `payload_len` and `end = pos + payload_len` was rejected if it
// exceeded `data.len()`, so every `off` range is in bounds.
fn decode_symbols_interleaved(
    data: &[u8],
    pos: &mut usize,
    exec: &dyn LaneExecutor,
) -> Result<Vec<u32>> {
    let code = CanonicalCode::deserialize(data, pos)?;
    let n = varint::read_uvarint(data, pos)? as usize;
    let payload_len = varint::read_uvarint(data, pos)? as usize;
    let mut counts = [0usize; LANES];
    for (lane, c) in counts.iter_mut().enumerate() {
        let declared = varint::read_uvarint(data, pos)?;
        if declared != lane_count(n, lane) as u64 {
            return Err(Error::InvalidValue("sub-stream symbol count mismatch"));
        }
        *c = declared as usize;
    }
    let mut lens = [0usize; LANES];
    let mut total = 0usize;
    for len in lens.iter_mut() {
        let declared = varint::read_uvarint(data, pos)?;
        let declared = usize::try_from(declared)
            .map_err(|_| Error::InvalidValue("sub-stream length overflows"))?;
        total = total
            .checked_add(declared)
            .ok_or(Error::InvalidValue("sub-stream length overflows"))?;
        *len = declared;
    }
    if total != payload_len {
        return Err(Error::InvalidValue(
            "sub-stream lengths disagree with payload",
        ));
    }
    let end = pos.checked_add(payload_len).ok_or(Error::UnexpectedEof)?;
    if end > data.len() {
        return Err(Error::UnexpectedEof);
    }
    // Per-lane hostile-count bound, as in the single-stream path.
    let fits = match code.min_code_len() {
        Some(min_len) => counts
            .iter()
            .zip(&lens)
            .all(|(&c, &l)| (c as u64).saturating_mul(min_len as u64) <= l as u64 * 8),
        None => n == 0,
    };
    if !fits {
        return Err(Error::InvalidValue("symbol count exceeds payload bits"));
    }
    let mut off = *pos;
    let lanes: [&[u8]; LANES] = std::array::from_fn(|lane| {
        let s = &data[off..off + lens[lane]];
        off += lens[lane];
        s
    });
    let out = if exec.width() > 1 && n >= MIN_POOLED_SYMBOLS {
        code.decode_interleaved_pooled(&lanes, &counts, n, exec)?
    } else {
        code.decode_interleaved_fused(&lanes, n)?
    };
    *pos = end;
    Ok(out)
}

/// Observability probe: the per-sub-stream byte lengths of an interleaved
/// buffer, or `None` for a legacy (or unparseable) one. Walks the
/// descriptor without building decode tables, so it is cheap enough for
/// per-chunk trace counters.
pub fn lane_lengths(data: &[u8]) -> Option<[u64; LANES]> {
    let mut pos = 0usize;
    if varint::read_uvarint(data, &mut pos).ok()? != INTERLEAVED_MARKER {
        return None;
    }
    let alphabet = varint::read_uvarint(data, &mut pos).ok()?;
    if alphabet > (1 << 28) {
        return None;
    }
    let n_used = varint::read_uvarint(data, &mut pos).ok()?;
    if n_used > alphabet {
        return None;
    }
    for _ in 0..2 * n_used {
        varint::read_uvarint(data, &mut pos).ok()?;
    }
    let _n = varint::read_uvarint(data, &mut pos).ok()?;
    let _payload_len = varint::read_uvarint(data, &mut pos).ok()?;
    for _ in 0..LANES {
        varint::read_uvarint(data, &mut pos).ok()?;
    }
    let mut lens = [0u64; LANES];
    for len in lens.iter_mut() {
        *len = varint::read_uvarint(data, &mut pos).ok()?;
    }
    Some(lens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_round_trips() {
        let buf = encode_symbols(&[], 16);
        let mut pos = 0;
        assert_eq!(decode_symbols(&buf, &mut pos).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn single_symbol_round_trips() {
        let syms = vec![7u32; 100];
        let buf = encode_symbols(&syms, 16);
        let mut pos = 0;
        assert_eq!(decode_symbols(&buf, &mut pos).unwrap(), syms);
    }

    #[test]
    fn skewed_distribution_round_trips_and_compresses() {
        let mut syms = Vec::new();
        for i in 0..10_000u32 {
            syms.push(if i % 100 == 0 { i % 64 } else { 32 });
        }
        let buf = encode_symbols(&syms, 64);
        let mut pos = 0;
        assert_eq!(decode_symbols(&buf, &mut pos).unwrap(), syms);
        // 10k symbols dominated by one value must compress far below 2 B/sym.
        assert!(buf.len() < 4000, "buf.len() = {}", buf.len());
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let freqs = [5u64, 9, 12, 13, 16, 45, 0, 3];
        let lens = code_lengths(&freqs);
        let code = CanonicalCode::from_lengths(&lens);
        let used: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
        for &a in &used {
            for &b in &used {
                if a == b {
                    continue;
                }
                let (ca, la) = code.entry(a as u32);
                let (cb, lb) = code.entry(b as u32);
                if la <= lb {
                    assert_ne!(ca, cb >> (lb - la), "code {a} prefixes {b}");
                }
            }
        }
    }

    #[test]
    fn kraft_inequality_holds() {
        let freqs: Vec<u64> = (1..=300).map(|i| i * i).collect();
        let lens = code_lengths(&freqs);
        let kraft: f64 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft = {kraft}");
    }

    #[test]
    fn near_optimal_for_uniform() {
        // 256 equally likely symbols need exactly 8 bits each.
        let syms: Vec<u32> = (0..25600).map(|i| i % 256).collect();
        let buf = encode_symbols(&syms, 256);
        let payload_bits = (buf.len() as f64) * 8.0 / syms.len() as f64;
        assert!(payload_bits < 8.5, "bits/sym = {payload_bits}");
    }

    #[test]
    fn table_round_trips_through_serialization() {
        let freqs = [0u64, 10, 0, 0, 7, 1, 1, 0, 99];
        let code = CanonicalCode::from_lengths(&code_lengths(&freqs));
        let mut buf = Vec::new();
        code.serialize(&mut buf);
        let mut pos = 0;
        let back = CanonicalCode::deserialize(&buf, &mut pos).unwrap();
        assert_eq!(code.encode_table, back.encode_table);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_payload_is_error() {
        let syms: Vec<u32> = (0..100).map(|i| i % 7).collect();
        let buf = encode_symbols(&syms, 8);
        let mut pos = 0;
        assert!(decode_symbols(&buf[..buf.len() - 5], &mut pos).is_err());
    }

    #[test]
    fn bulk_decode_matches_per_symbol_decode() {
        // Mixed short/long codes: quadratic frequencies over 300 symbols
        // produce a wide spread of code lengths, exercising both the LUT
        // hit and the canonical-walk branch of the bulk loop.
        let freqs: Vec<u64> = (1..=300).map(|i| i * i).collect();
        let code = CanonicalCode::from_lengths(&code_lengths(&freqs));
        let syms: Vec<u32> = (0..20_000u32).map(|i| (i * i + 7 * i) % 300).collect();
        let mut w = BitWriter::new();
        code.encode_all(&mut w, &syms);
        let bytes = w.into_bytes();

        let mut bulk = Vec::new();
        code.decode_all(&mut BitReader::new(&bytes), syms.len(), &mut bulk)
            .unwrap();
        assert_eq!(bulk, syms);

        let mut r = BitReader::new(&bytes);
        let one: Vec<u32> = (0..syms.len())
            .map(|_| code.decode(&mut r).unwrap())
            .collect();
        assert_eq!(one, syms);
    }

    #[test]
    fn hostile_symbol_count_is_rejected_before_allocation() {
        let syms: Vec<u32> = (0..64).map(|i| i % 16).collect();
        let buf = encode_symbols_single(&syms, 16);
        // Re-serialize with an absurd declared count: table, then count,
        // then the original (now far too short) payload.
        let mut pos = 0;
        let code = CanonicalCode::deserialize(&buf, &mut pos).unwrap();
        let _n = varint::read_uvarint(&buf, &mut pos).unwrap();
        let payload_len = varint::read_uvarint(&buf, &mut pos).unwrap() as usize;
        let payload = &buf[pos..pos + payload_len];
        let mut forged = Vec::new();
        code.serialize(&mut forged);
        varint::write_uvarint(&mut forged, u32::MAX as u64);
        varint::write_uvarint(&mut forged, payload_len as u64);
        forged.extend_from_slice(payload);
        let mut pos = 0;
        assert_eq!(
            decode_symbols(&forged, &mut pos),
            Err(Error::InvalidValue("symbol count exceeds payload bits"))
        );
    }

    #[test]
    fn large_alphabet_sparse_usage() {
        // SZ uses a 65536-code alphabet with few distinct codes in practice.
        let syms: Vec<u32> = (0..5000).map(|i| 32768 + (i % 5) * 17).collect();
        let buf = encode_symbols(&syms, 65536);
        let mut pos = 0;
        assert_eq!(decode_symbols(&buf, &mut pos).unwrap(), syms);
        assert!(buf.len() < 2500);
    }

    /// A `LaneExecutor` that actually interleaves: lanes run round-robin
    /// one call... no — sequentially, but `width()` reports > 1 so the
    /// pooled path is taken.
    struct FakePool;
    impl pwrel_data::LaneExecutor for FakePool {
        fn run_lanes(&self, lanes: &mut [&mut (dyn FnMut() + Send)]) {
            // Reverse order: the merge must not depend on lane run order.
            for lane in lanes.iter_mut().rev() {
                lane();
            }
        }
        fn width(&self) -> usize {
            4
        }
    }

    fn mixed_symbols(n: usize) -> Vec<u32> {
        (0..n as u32).map(|i| (i * i + 7 * i) % 300).collect()
    }

    #[test]
    fn interleaved_and_single_modes_decode_identically() {
        for n in [0usize, 1, 2, 3, 4, 5, 63, 64, 1000, 20_000] {
            let syms = mixed_symbols(n);
            let new_buf = encode_symbols(&syms, 512);
            let old_buf = encode_symbols_single(&syms, 512);
            let (mut p0, mut p1) = (0, 0);
            assert_eq!(decode_symbols(&new_buf, &mut p0).unwrap(), syms, "n={n}");
            assert_eq!(decode_symbols(&old_buf, &mut p1).unwrap(), syms, "n={n}");
            assert_eq!(p0, new_buf.len());
            assert_eq!(p1, old_buf.len());
        }
    }

    #[test]
    fn pooled_decode_matches_fused_at_any_width() {
        let syms = mixed_symbols(30_000);
        let buf = encode_symbols(&syms, 512);
        let mut pos = 0;
        let fused = decode_symbols(&buf, &mut pos).unwrap();
        let mut pos = 0;
        let pooled = decode_symbols_pooled(&buf, &mut pos, &FakePool).unwrap();
        assert_eq!(fused, syms);
        assert_eq!(pooled, syms);
    }

    #[test]
    fn legacy_decoder_rejects_interleaved_buffers_loudly() {
        let syms = mixed_symbols(100);
        let buf = encode_symbols(&syms, 512);
        let mut pos = 0;
        assert_eq!(
            decode_symbols_single(&buf, &mut pos),
            Err(Error::InvalidValue("huffman alphabet too large"))
        );
    }

    /// Splits an interleaved buffer at its descriptor fields so forgery
    /// tests can rewrite them: returns (head = marker+table+n, payload_len,
    /// counts, lens, payload bytes).
    fn dissect(buf: &[u8]) -> (Vec<u8>, u64, [u64; LANES], [u64; LANES], Vec<u8>) {
        let mut pos = 0;
        assert_eq!(
            varint::read_uvarint(buf, &mut pos).unwrap(),
            INTERLEAVED_MARKER
        );
        let _ = CanonicalCode::deserialize(buf, &mut pos).unwrap();
        let _n = varint::read_uvarint(buf, &mut pos).unwrap();
        let head = buf[..pos].to_vec();
        let payload_len = varint::read_uvarint(buf, &mut pos).unwrap();
        let mut counts = [0u64; LANES];
        for c in counts.iter_mut() {
            *c = varint::read_uvarint(buf, &mut pos).unwrap();
        }
        let mut lens = [0u64; LANES];
        for l in lens.iter_mut() {
            *l = varint::read_uvarint(buf, &mut pos).unwrap();
        }
        (head, payload_len, counts, lens, buf[pos..].to_vec())
    }

    fn reassemble(
        head: &[u8],
        payload_len: u64,
        counts: &[u64; LANES],
        lens: &[u64; LANES],
        payload: &[u8],
    ) -> Vec<u8> {
        let mut out = head.to_vec();
        varint::write_uvarint(&mut out, payload_len);
        for &c in counts {
            varint::write_uvarint(&mut out, c);
        }
        for &l in lens {
            varint::write_uvarint(&mut out, l);
        }
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn forged_descriptor_fields_are_corrupt_never_panic() {
        let syms = mixed_symbols(5000);
        let buf = encode_symbols(&syms, 512);
        let (head, payload_len, counts, lens, payload) = dissect(&buf);

        // Sub-stream count that disagrees with the round-robin split.
        let mut bad = counts;
        bad[1] += 1;
        let forged = reassemble(&head, payload_len, &bad, &lens, &payload);
        let mut pos = 0;
        assert_eq!(
            decode_symbols(&forged, &mut pos),
            Err(Error::InvalidValue("sub-stream symbol count mismatch"))
        );

        // Lengths whose sum overflows usize.
        let mut bad = lens;
        bad[0] = u64::MAX - 7;
        bad[1] = u64::MAX - 7;
        let forged = reassemble(&head, payload_len, &counts, &bad, &payload);
        let mut pos = 0;
        assert_eq!(
            decode_symbols(&forged, &mut pos),
            Err(Error::InvalidValue("sub-stream length overflows"))
        );

        // Lengths that sum past the declared payload.
        let mut bad = lens;
        bad[2] += 1;
        let forged = reassemble(&head, payload_len, &counts, &bad, &payload);
        let mut pos = 0;
        assert_eq!(
            decode_symbols(&forged, &mut pos),
            Err(Error::InvalidValue(
                "sub-stream lengths disagree with payload"
            ))
        );

        // Lengths that leave trailing bytes inside the declared payload.
        let mut bad = lens;
        bad[3] -= 1;
        let forged = reassemble(&head, payload_len, &counts, &bad, &payload);
        let mut pos = 0;
        assert_eq!(
            decode_symbols(&forged, &mut pos),
            Err(Error::InvalidValue(
                "sub-stream lengths disagree with payload"
            ))
        );

        // Declared payload reaching past the buffer.
        let grown = lens.map(|l| l + 100);
        let forged = reassemble(&head, payload_len + 400, &counts, &grown, &payload);
        let mut pos = 0;
        assert_eq!(decode_symbols(&forged, &mut pos), Err(Error::UnexpectedEof));

        // Truncated payload bytes.
        let mut pos = 0;
        assert!(decode_symbols(&buf[..buf.len() - 3], &mut pos).is_err());
    }

    #[test]
    fn lane_lengths_probe() {
        let syms = mixed_symbols(4096);
        let buf = encode_symbols(&syms, 512);
        let (_, payload_len, _, lens, _) = dissect(&buf);
        assert_eq!(lane_lengths(&buf), Some(lens));
        assert_eq!(lens.iter().sum::<u64>(), payload_len);
        let legacy = encode_symbols_single(&syms, 512);
        assert_eq!(lane_lengths(&legacy), None);
        assert_eq!(lane_lengths(&[]), None);
    }

    #[test]
    fn histogram_kernels_agree_byte_for_byte() {
        // Same pairs → same tree → same buffer, whichever kernel counted.
        let syms = mixed_symbols(10_000);
        let batched = LANE_FREQS.with(|c| c.borrow_mut().count(&syms, 512));
        let mut dense = vec![0u64; 512];
        for &s in &syms {
            dense[s as usize] += 1;
        }
        let expect: Vec<(u32, u64)> = dense
            .iter()
            .enumerate()
            .filter(|(_, &f)| f > 0)
            .map(|(s, &f)| (s as u32, f))
            .collect();
        assert_eq!(batched, expect);
    }
}
