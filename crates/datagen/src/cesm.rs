//! Synthetic CESM-ATM climate fields (2D, paper: 1800×3600, 79 fields).
//!
//! CESM atmospheric fields are smooth lat/lon grids. Cloud-fraction fields
//! (CLDHGH, CLDLOW, ...) live in `[0, 1]` with large exactly-zero (clear
//! sky) regions — the zero-handling path of the log transform gets real
//! exercise here. We also include a pressure-like strictly positive field
//! and a signed wind field. We generate a representative subset of the 79
//! fields (the paper itself reports aggregates).

use crate::{grf, Dataset, Dims, Field, Scale};

/// Grid at each scale (aspect ratio 1:2 like the real 1800×3600 grid).
pub fn dims(scale: Scale) -> Dims {
    match scale {
        Scale::Small => Dims::d2(32, 64),
        Scale::Medium => Dims::d2(450, 900),
        Scale::Large => Dims::d2(1800, 3600),
    }
}

/// Cloud-fraction-like field: smooth, clamped to `[0,1]`, with exact zeros.
pub fn cloud_fraction(scale: Scale, name: &str, seed: u64) -> Field<f32> {
    let d = dims(scale);
    let g = grf::gaussian_field(d, seed, 4, 3);
    let data: Vec<f32> = g
        .into_iter()
        .map(|v| {
            let c = 0.45 + 0.55 * v as f64;
            c.clamp(0.0, 1.0) as f32
        })
        .collect();
    Field::new(name, d, data)
}

/// Latitude-banded strictly positive field (surface-pressure-like).
fn pressure(scale: Scale, seed: u64) -> Field<f32> {
    let d = dims(scale);
    let g = grf::gaussian_field(d, seed, 6, 3);
    let mut data = Vec::with_capacity(d.len());
    for j in 0..d.ny {
        // Zonal structure: pressure varies with latitude.
        let lat = (j as f64 / d.ny as f64 - 0.5) * std::f64::consts::PI;
        for i in 0..d.nx {
            let base = 101_325.0 - 3_000.0 * lat.sin().powi(2);
            data.push((base + 800.0 * g[j * d.nx + i] as f64) as f32);
        }
    }
    Field::new("PS", d, data)
}

/// Signed zonal wind field (m/s).
fn wind(scale: Scale, seed: u64) -> Field<f32> {
    let d = dims(scale);
    let g = grf::gaussian_field(d, seed, 5, 3);
    let data: Vec<f32> = g.into_iter().map(|v| v * 12.0).collect();
    Field::new("U850", d, data)
}

/// Representative CESM-ATM dataset.
pub fn dataset(scale: Scale) -> Dataset {
    Dataset {
        name: "CESM-ATM",
        fields: vec![
            cloud_fraction(scale, "CLDHGH", 0xCE51_0001),
            cloud_fraction(scale, "CLDLOW", 0xCE51_0002),
            cloud_fraction(scale, "CLDMED", 0xCE51_0003),
            pressure(scale, 0xCE51_0004),
            wind(scale, 0xCE51_0005),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloud_fraction_in_unit_interval_with_zeros() {
        let f = cloud_fraction(Scale::Medium, "CLDHGH", 1);
        let (min, max) = f.min_max().unwrap();
        assert!(min >= 0.0 && max <= 1.0);
        let zf = f.zero_fraction();
        assert!(zf > 0.01, "expected clear-sky zeros, got {zf}");
    }

    #[test]
    fn pressure_positive_and_banded() {
        let f = pressure(Scale::Small, 2);
        let (min, _) = f.min_max().unwrap();
        assert!(min > 90_000.0);
    }

    #[test]
    fn wind_is_signed() {
        let f = wind(Scale::Small, 3);
        assert!(f.negative_fraction() > 0.2);
    }

    #[test]
    fn dataset_is_2d() {
        let ds = dataset(Scale::Small);
        assert_eq!(ds.fields.len(), 5);
        assert!(ds.fields.iter().all(|f| f.dims.rank() == 2));
    }
}
