#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Data model and synthetic scientific datasets.
//!
//! This crate plays two roles:
//!
//! 1. **Shared data model** for every codec in the workspace: the [`Float`]
//!    trait (bit-level access to `f32`/`f64`), the [`Dims`] grid descriptor,
//!    and the [`Field`] container.
//! 2. **Synthetic stand-ins** for the four HPC applications evaluated in the
//!    paper — HACC (1D particle velocities), CESM-ATM (2D climate fields),
//!    NYX (3D cosmology) and Hurricane ISABEL (3D storm simulation). The
//!    real datasets total ~12 TB and are not redistributable; the generators
//!    here reproduce the *statistical properties that drive compression
//!    behaviour* (documented per generator), at laptop-scale sizes, from
//!    fixed seeds.

pub mod codec;
mod dataset_ext;
pub mod dims;
pub mod exec;
pub mod field;
pub mod float;
pub mod grf;
pub mod stage;

pub mod cesm;
pub mod hacc;
pub mod hurricane;
pub mod nyx;

pub use codec::{AbsErrorCodec, CodecError};
pub use dims::Dims;
pub use exec::{LaneExecutor, SerialLanes};
pub use field::Field;
pub use float::Float;
pub use stage::{
    BlockTransform, Encoder, LosslessStage, PlaneCoder, Predictor, Quantizer, Transform,
};

/// Dataset size preset. `Small` keeps the whole suite (all four apps) under
/// a second of generation time for tests; `Medium` matches the per-field
/// sizes used by the bench binaries; `Large` approaches the paper's
/// per-snapshot field sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny grids for unit/integration tests.
    Small,
    /// Default for benchmark binaries (≈0.25–2 M points per field).
    Medium,
    /// Stress-test sizes (≈16–128 M points per field).
    Large,
}

/// A named application dataset: a bag of fields sharing provenance.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Application name as used in the paper ("HACC", "CESM-ATM", ...).
    pub name: &'static str,
    /// The synthetic fields.
    pub fields: Vec<Field<f32>>,
}

impl Dataset {
    /// Total number of points across all fields.
    pub fn total_points(&self) -> usize {
        self.fields.iter().map(|f| f.data.len()).sum()
    }

    /// Total size in bytes (f32).
    pub fn total_bytes(&self) -> usize {
        self.total_points() * 4
    }
}

/// Generates all four application datasets at the given scale.
pub fn all_datasets(scale: Scale) -> Vec<Dataset> {
    vec![
        hacc::dataset(scale),
        cesm::dataset(scale),
        nyx::dataset(scale),
        hurricane::dataset(scale),
    ]
}
