//! Synthetic NYX cosmology fields (3D, paper: 512×512×512, 6 fields).
//!
//! The two fields the paper studies in depth:
//!
//! * `dark_matter_density` — lognormal: the paper reports 84% of values in
//!   `[0, 1]` with a tail reaching `1.378e4`. We draw `exp(mu + sigma * g)`
//!   from a smoothed Gaussian field `g` with `mu = -sigma` so that
//!   `P(rho < 1) = Phi(1) ≈ 0.84`.
//! * `velocity_x` — "usually large values with positive/negative signs
//!   indicating directions": a smooth zero-mean field scaled to ~1e7 (cm/s),
//!   plus small-scale jitter.

use crate::{grf, Dataset, Dims, Field, Scale};

/// Grid used at each scale.
pub fn dims(scale: Scale) -> Dims {
    match scale {
        Scale::Small => Dims::d3(16, 16, 16),
        Scale::Medium => Dims::d3(64, 64, 64),
        Scale::Large => Dims::d3(256, 256, 256),
    }
}

/// Lognormal matter density field; `sigma` controls the dynamic range.
fn lognormal(dims: Dims, seed: u64, sigma: f64) -> Vec<f32> {
    let g = grf::gaussian_field(dims, seed, 2, 3);
    let mu = -sigma;
    g.into_iter()
        .map(|v| (mu + sigma * v as f64).exp() as f32)
        .collect()
}

/// Smooth signed velocity component in cm/s (~1e7 magnitude).
fn velocity(dims: Dims, seed: u64) -> Vec<f32> {
    let bulk = grf::gaussian_field(dims, seed, 3, 3);
    let jitter = grf::gaussian_field(dims, seed ^ 0xBEEF, 1, 1);
    bulk.iter()
        .zip(&jitter)
        .map(|(&b, &j)| (b as f64 * 9.0e6 + j as f64 * 4.0e5) as f32)
        .collect()
}

/// `dark_matter_density`: heavy-tailed positive field.
pub fn dark_matter_density(scale: Scale) -> Field<f32> {
    Field::new(
        "dark_matter_density",
        dims(scale),
        lognormal(dims(scale), 0x4E59_0001, 2.2),
    )
}

/// `velocity_x`: large signed values.
pub fn velocity_x(scale: Scale) -> Field<f32> {
    Field::new(
        "velocity_x",
        dims(scale),
        velocity(dims(scale), 0x4E59_0002),
    )
}

/// The full six-field NYX dataset.
pub fn dataset(scale: Scale) -> Dataset {
    let d = dims(scale);
    let temperature: Vec<f32> = grf::gaussian_field(d, 0x4E59_0005, 2, 3)
        .into_iter()
        .map(|v| (1.0e4 * (0.8 * v as f64).exp()) as f32)
        .collect();
    Dataset {
        name: "NYX",
        fields: vec![
            dark_matter_density(scale),
            Field::new("baryon_density", d, lognormal(d, 0x4E59_0004, 1.4)),
            Field::new("temperature", d, temperature),
            velocity_x(scale),
            Field::new("velocity_y", d, velocity(d, 0x4E59_0006)),
            Field::new("velocity_z", d, velocity(d, 0x4E59_0007)),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_matches_paper_distribution() {
        let f = dark_matter_density(Scale::Medium);
        let n = f.data.len() as f64;
        let below_one = f.data.iter().filter(|&&v| v <= 1.0).count() as f64 / n;
        // Paper: "a large majority (84%) of its data is distributed in [0,1]".
        assert!((0.70..=0.95).contains(&below_one), "frac = {below_one}");
        let (min, max) = f.min_max().unwrap();
        assert!(min > 0.0, "density must be strictly positive");
        assert!(max > 50.0, "needs a heavy tail, max = {max}");
    }

    #[test]
    fn velocity_is_signed_and_large() {
        let f = velocity_x(Scale::Medium);
        let neg = f.negative_fraction();
        assert!((0.2..=0.8).contains(&neg), "neg frac = {neg}");
        let (min, max) = f.min_max().unwrap();
        assert!(max > 1.0e6 && min < -1.0e6, "range [{min}, {max}]");
    }

    #[test]
    fn dataset_has_six_named_fields() {
        let ds = dataset(Scale::Small);
        assert_eq!(ds.fields.len(), 6);
        assert_eq!(ds.name, "NYX");
        assert!(ds.fields.iter().all(|f| f.dims == dims(Scale::Small)));
        assert_eq!(ds.total_bytes(), 6 * 16 * 16 * 16 * 4);
    }

    #[test]
    fn deterministic_generation() {
        let a = dark_matter_density(Scale::Small);
        let b = dark_matter_density(Scale::Small);
        assert_eq!(a.data, b.data);
    }
}
