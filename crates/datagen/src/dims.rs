//! Grid dimensionality descriptor shared by all codecs.

/// Dimensions of a 1D/2D/3D scalar field.
///
/// Storage convention: `x` varies fastest. The linear index of `(i, j, k)`
/// (with `i` along x, `j` along y, `k` along z) is `(k * ny + j) * nx + i`.
/// The paper's predictors (Lorenzo) and ZFP's 4^d blocks both follow this
/// raster order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dims {
    rank: u8,
    /// Fastest-varying extent.
    pub nx: usize,
    /// Middle extent (1 for 1D).
    pub ny: usize,
    /// Slowest extent (1 for 1D/2D).
    pub nz: usize,
}

impl Dims {
    /// A 1D array of `n` points.
    pub fn d1(n: usize) -> Self {
        Self {
            rank: 1,
            nx: n,
            ny: 1,
            nz: 1,
        }
    }

    /// A 2D `ny × nx` grid (`nx` fastest).
    pub fn d2(ny: usize, nx: usize) -> Self {
        Self {
            rank: 2,
            nx,
            ny,
            nz: 1,
        }
    }

    /// A 3D `nz × ny × nx` grid (`nx` fastest).
    pub fn d3(nz: usize, ny: usize, nx: usize) -> Self {
        Self {
            rank: 3,
            nx,
            ny,
            nz,
        }
    }

    /// Dimensionality (1, 2 or 3).
    pub fn rank(&self) -> u8 {
        self.rank
    }

    /// Total number of points.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// True when the grid holds no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of `(i, j, k)`.
    #[inline]
    pub fn index(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        (k * self.ny + j) * self.nx + i
    }

    /// Serializes to `(rank, nx, ny, nz)` for container headers.
    pub fn to_header(&self) -> (u8, u64, u64, u64) {
        (self.rank, self.nx as u64, self.ny as u64, self.nz as u64)
    }

    /// Rebuilds from header fields; returns `None` for invalid ranks.
    pub fn from_header(rank: u8, nx: u64, ny: u64, nz: u64) -> Option<Self> {
        match rank {
            1 if ny == 1 && nz == 1 => Some(Self::d1(nx as usize)),
            2 if nz == 1 => Some(Self::d2(ny as usize, nx as usize)),
            3 => Some(Self::d3(nz as usize, ny as usize, nx as usize)),
            _ => None,
        }
    }
}

impl std::fmt::Display for Dims {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.rank {
            1 => write!(f, "{}", self.nx),
            2 => write!(f, "{}x{}", self.ny, self.nx),
            _ => write!(f, "{}x{}x{}", self.nz, self.ny, self.nx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_len() {
        assert_eq!(Dims::d1(10).len(), 10);
        assert_eq!(Dims::d2(3, 4).len(), 12);
        assert_eq!(Dims::d3(2, 3, 4).len(), 24);
        assert_eq!(Dims::d1(10).rank(), 1);
        assert_eq!(Dims::d2(3, 4).rank(), 2);
        assert_eq!(Dims::d3(2, 3, 4).rank(), 3);
    }

    #[test]
    fn index_is_x_fastest() {
        let d = Dims::d3(2, 3, 4);
        assert_eq!(d.index(0, 0, 0), 0);
        assert_eq!(d.index(1, 0, 0), 1);
        assert_eq!(d.index(0, 1, 0), 4);
        assert_eq!(d.index(0, 0, 1), 12);
        assert_eq!(d.index(3, 2, 1), 23);
    }

    #[test]
    fn header_round_trip() {
        for d in [Dims::d1(7), Dims::d2(5, 6), Dims::d3(2, 3, 4)] {
            let (r, x, y, z) = d.to_header();
            assert_eq!(Dims::from_header(r, x, y, z), Some(d));
        }
        assert_eq!(Dims::from_header(4, 1, 1, 1), None);
        assert_eq!(Dims::from_header(1, 5, 2, 1), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Dims::d1(280953867).to_string(), "280953867");
        assert_eq!(Dims::d2(1800, 3600).to_string(), "1800x3600");
        assert_eq!(Dims::d3(512, 512, 512).to_string(), "512x512x512");
    }
}
