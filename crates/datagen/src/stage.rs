//! Composable pipeline stage traits.
//!
//! A point-wise-relative pipeline decomposes into stages, following the
//! SZ3 modular-composition model: a value-domain [`Transform`] (the
//! paper's log mapping), a [`Predictor`] + [`Quantizer`] pair that turns
//! values into small integer codes, an entropy [`Encoder`] over those
//! codes, and an optional [`LosslessStage`] over the packed bytes.
//! Transform-domain codecs (ZFP-like) swap the predictor/quantizer pair
//! for a [`BlockTransform`] + [`PlaneCoder`] pair operating on integer
//! blocks.
//!
//! These traits live in `pwrel-data` — the one crate every codec already
//! depends on — so `pwrel-sz` and `pwrel-zfp` can implement them without
//! a dependency cycle, and `pwrel-pipeline` can assemble registered
//! codecs from parts. Implementations are concrete types dispatched
//! statically inside each codec's hot loop; the dynamic dispatch boundary
//! is the whole-codec `Codec` trait in `pwrel-pipeline`, never the
//! per-value stage calls.

use crate::codec::CodecError;
use crate::{Dims, Float};
use pwrel_bitstream::{BitReader, BitWriter};

/// A reversible value-domain mapping applied before prediction, e.g. the
/// paper's logarithmic transform that turns a point-wise relative bound
/// into an absolute one.
///
/// `forward` may emit per-value side-channel bits into `signs` (the log
/// transform records the sign bitmap there); `inverse` consumes the same
/// bits aligned with `src`.
pub trait Transform<F: Float> {
    /// Short stage identifier for reports and debug output.
    fn name(&self) -> &'static str;

    /// Maps `src` into `out` (same length), appending any side-channel
    /// bits to `signs`.
    fn forward(&self, src: &[F], out: &mut [F], signs: &mut Vec<bool>);

    /// Inverse mapping; `signs` must be the bits `forward` emitted for
    /// this run (empty when none were emitted).
    fn inverse(&self, src: &[F], out: &mut [F], signs: &[bool]);
}

/// Predicts the value at one grid site from already-decoded neighbours.
///
/// `dec` is the reconstruction buffer in raster order; sites at or past
/// the current one hold unspecified values. Predictions are made in `f64`
/// regardless of the element type, matching the quantizer's arithmetic.
pub trait Predictor<F: Float> {
    /// Short stage identifier.
    fn name(&self) -> &'static str;

    /// Predicted value at `(i, j, k)` of the grid described by `dims`.
    fn predict(&self, dec: &[F], dims: Dims, i: usize, j: usize, k: usize) -> f64;
}

/// Linear-scaling quantization of a prediction residual.
///
/// The quantizer owns the code alphabet: code `0` is reserved for
/// "unpredictable" (the residual fell outside the quantization radius or
/// the reconstruction failed the bound check), codes `1..alphabet()` are
/// bin indices centred on the radius.
pub trait Quantizer<F: Float> {
    /// Short stage identifier.
    fn name(&self) -> &'static str;

    /// Number of distinct codes the quantizer can emit (the Huffman
    /// capacity).
    fn alphabet(&self) -> usize;

    /// Quantizes `x` against prediction `pred` under absolute bound `eb`.
    /// Returns the code and the reconstruction on success, or `None` when
    /// the value must take the unpredictable path (code 0).
    fn quantize(&self, x: F, pred: f64, eb: f64) -> Option<(u32, F)>;

    /// Reconstructs the value for a non-zero `code` given the same
    /// prediction and bound the encoder saw. Fails on codes outside the
    /// alphabet.
    fn reconstruct(&self, code: u32, pred: f64, eb: f64) -> Result<F, CodecError>;
}

/// Entropy coding of the quantizer's code stream.
pub trait Encoder {
    /// Short stage identifier.
    fn name(&self) -> &'static str;

    /// Encodes `codes` drawn from `0..alphabet` into a self-describing
    /// byte block.
    fn encode(&self, codes: &[u32], alphabet: usize) -> Vec<u8>;

    /// Decodes a block produced by [`Encoder::encode`], advancing `pos`
    /// past it.
    fn decode(&self, bytes: &[u8], pos: &mut usize) -> Result<Vec<u32>, CodecError>;
}

/// Optional byte-level lossless pass over the packed stream.
pub trait LosslessStage {
    /// Short stage identifier.
    fn name(&self) -> &'static str;

    /// Compresses `bytes`; the output is self-describing.
    fn compress(&self, bytes: &[u8]) -> Vec<u8>;

    /// Inverse of [`LosslessStage::compress`].
    fn decompress(&self, bytes: &[u8]) -> Result<Vec<u8>, CodecError>;
}

/// An invertible integer transform over one fixed-size block (the ZFP
/// lifting scheme). `rank` selects the 1D/2D/3D variant; the block length
/// is `4^rank`.
pub trait BlockTransform {
    /// Short stage identifier.
    fn name(&self) -> &'static str;

    /// Decorrelating forward transform, in place.
    fn forward(&self, block: &mut [i64], rank: u8);

    /// Exact inverse of [`BlockTransform::forward`], in place.
    fn inverse(&self, block: &mut [i64], rank: u8);
}

/// Bit-plane coding of one block of transform coefficients (negabinary
/// domain), most-significant plane first, with an optional bit budget.
pub trait PlaneCoder {
    /// Short stage identifier.
    fn name(&self) -> &'static str;

    /// Encodes planes `intprec-1 .. kmin` of `coeffs` into `w`, stopping
    /// once `maxbits` bits have been written when `maxbits` is `Some`.
    /// Returns the number of bits written.
    fn encode(
        &self,
        w: &mut BitWriter,
        coeffs: &[u64],
        intprec: u32,
        kmin: u32,
        maxbits: Option<u64>,
    ) -> u64;

    /// Decodes planes written by [`PlaneCoder::encode`] into `coeffs`
    /// under the same `intprec`/`kmin`/`maxbits`. Returns the number of
    /// bits read.
    fn decode(
        &self,
        r: &mut BitReader<'_>,
        coeffs: &mut [u64],
        intprec: u32,
        kmin: u32,
        maxbits: Option<u64>,
    ) -> Result<u64, CodecError>;
}
