//! Smoothed Gaussian random fields — the building block of every synthetic
//! dataset.
//!
//! Scientific simulation fields are *spatially correlated*: neighbouring
//! values are close, which is exactly what prediction- and transform-based
//! compressors exploit. We synthesize that correlation by drawing white
//! Gaussian noise and applying separable periodic box blurs (each pass
//! convolves with a box kernel; three passes approximate a Gaussian kernel),
//! then re-standardizing to zero mean / unit variance.

use crate::Dims;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Standard-normal white noise of length `n` from a fixed seed (Box–Muller).
pub fn white_noise(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (2.0 * std::f64::consts::PI * u2).sin_cos();
        out.push((r * c) as f32);
        if out.len() < n {
            out.push((r * s) as f32);
        }
    }
    out
}

/// One periodic box blur of radius `r` along contiguous lines of length
/// `line_len` with stride `stride` (prefix-sum based, O(n)).
fn box_blur_axis(data: &mut [f32], line_len: usize, stride: usize, offsets: &[usize], r: usize) {
    // Clamp the radius so the window never wraps more than once.
    let r = r.min(line_len.saturating_sub(1) / 2);
    if line_len < 2 || r == 0 {
        return;
    }
    let n_lines = offsets.len();
    let w = (2 * r + 1) as f32;
    let mut line = vec![0.0f32; line_len];
    let mut blurred = vec![0.0f32; line_len];
    for &base in offsets.iter().take(n_lines) {
        for i in 0..line_len {
            line[i] = data[base + i * stride];
        }
        // Sliding-window sum with periodic wraparound.
        let mut sum: f32 = 0.0;
        for d in 0..(2 * r + 1) {
            let idx = (line_len + d).wrapping_sub(r) % line_len;
            sum += line[idx];
        }
        for (i, b) in blurred.iter_mut().enumerate() {
            *b = sum / w;
            let leave = (line_len + i).wrapping_sub(r) % line_len;
            let enter = (i + r + 1) % line_len;
            sum += line[enter] - line[leave];
        }
        for i in 0..line_len {
            data[base + i * stride] = blurred[i];
        }
    }
}

/// Applies `passes` separable periodic box blurs of radius `r` over all axes.
pub fn smooth(data: &mut [f32], dims: Dims, r: usize, passes: usize) {
    assert_eq!(data.len(), dims.len());
    let (nx, ny, nz) = (dims.nx, dims.ny, dims.nz);
    for _ in 0..passes {
        // X axis: lines are contiguous.
        let offsets: Vec<usize> = (0..ny * nz).map(|l| l * nx).collect();
        box_blur_axis(data, nx, 1, &offsets, r);
        if dims.rank() >= 2 {
            // Y axis: stride nx, one line per (x, z).
            let offsets: Vec<usize> = (0..nz)
                .flat_map(|k| (0..nx).map(move |i| k * ny * nx + i))
                .collect();
            box_blur_axis(data, ny, nx, &offsets, r);
        }
        if dims.rank() >= 3 {
            // Z axis: stride nx*ny, one line per (x, y).
            let offsets: Vec<usize> = (0..nx * ny).collect();
            box_blur_axis(data, nz, nx * ny, &offsets, r);
        }
    }
}

/// Rescales `data` to zero mean and unit variance (no-op on constants).
pub fn standardize(data: &mut [f32]) {
    if data.is_empty() {
        return;
    }
    let n = data.len() as f64;
    let mean = data.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var = data
        .iter()
        .map(|&v| {
            let d = v as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    let std = var.sqrt();
    if std < 1e-30 {
        for v in data.iter_mut() {
            *v = 0.0;
        }
        return;
    }
    for v in data.iter_mut() {
        *v = ((*v as f64 - mean) / std) as f32;
    }
}

/// Convenience: standardized smoothed Gaussian random field.
pub fn gaussian_field(dims: Dims, seed: u64, radius: usize, passes: usize) -> Vec<f32> {
    let mut data = white_noise(dims.len(), seed);
    smooth(&mut data, dims, radius, passes);
    standardize(&mut data);
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn white_noise_is_deterministic() {
        assert_eq!(white_noise(100, 7), white_noise(100, 7));
        assert_ne!(white_noise(100, 7), white_noise(100, 8));
    }

    #[test]
    fn white_noise_moments() {
        let x = white_noise(200_000, 1);
        let n = x.len() as f64;
        let mean = x.iter().map(|&v| v as f64).sum::<f64>() / n;
        let var = x.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn smoothing_reduces_neighbor_differences() {
        let dims = Dims::d2(64, 64);
        let raw = white_noise(dims.len(), 3);
        let smoothed = gaussian_field(dims, 3, 2, 3);
        let rough = |d: &[f32]| -> f64 {
            d.windows(2)
                .map(|w| ((w[1] - w[0]) as f64).abs())
                .sum::<f64>()
                / (d.len() - 1) as f64
        };
        // Both are unit variance; the smoothed field must be far less rough.
        let mut std_raw = raw.clone();
        standardize(&mut std_raw);
        assert!(rough(&smoothed) < 0.5 * rough(&std_raw));
    }

    #[test]
    fn standardize_unit_variance() {
        let mut x: Vec<f32> = (0..1000).map(|i| (i as f32) * 0.01 + 5.0).collect();
        standardize(&mut x);
        let n = x.len() as f64;
        let mean = x.iter().map(|&v| v as f64).sum::<f64>() / n;
        let var = x.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn standardize_constant_input() {
        let mut x = vec![3.0f32; 10];
        standardize(&mut x);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn blur_preserves_mean_periodically() {
        let dims = Dims::d1(128);
        let mut x: Vec<f32> = (0..128).map(|i| (i % 7) as f32).collect();
        let before: f64 = x.iter().map(|&v| v as f64).sum();
        smooth(&mut x, dims, 2, 1);
        let after: f64 = x.iter().map(|&v| v as f64).sum();
        assert!((before - after).abs() < 1e-3, "{before} vs {after}");
    }

    #[test]
    fn smooth_3d_runs_all_axes() {
        let dims = Dims::d3(8, 8, 8);
        let mut x = white_noise(dims.len(), 9);
        smooth(&mut x, dims, 1, 2);
        // Variance must drop substantially after two 3-axis passes.
        let var = x.iter().map(|&v| (v as f64).powi(2)).sum::<f64>() / x.len() as f64;
        assert!(var < 0.5, "var = {var}");
    }
}
