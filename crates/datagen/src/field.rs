//! Named scalar field container.

use crate::{Dims, Float};

/// A named scalar field on a regular grid.
#[derive(Debug, Clone)]
pub struct Field<F: Float> {
    /// Field name (matches the paper's naming, e.g. `dark_matter_density`).
    pub name: String,
    /// Grid shape; `data.len() == dims.len()`.
    pub dims: Dims,
    /// Raster-order samples (x fastest).
    pub data: Vec<F>,
}

impl<F: Float> Field<F> {
    /// Creates a field, checking that the data length matches the dims.
    pub fn new(name: impl Into<String>, dims: Dims, data: Vec<F>) -> Self {
        assert_eq!(dims.len(), data.len(), "dims/data length mismatch");
        Self {
            name: name.into(),
            dims,
            data,
        }
    }

    /// Size of the raw field in bytes.
    pub fn nbytes(&self) -> usize {
        self.data.len() * (F::BITS as usize / 8)
    }

    /// Minimum and maximum values (ignoring NaNs; `None` when empty).
    pub fn min_max(&self) -> Option<(F, F)> {
        let mut it = self.data.iter().copied().filter(|v| v.is_finite());
        let first = it.next()?;
        let mut min = first;
        let mut max = first;
        for v in it {
            if v < min {
                min = v;
            }
            if v > max {
                max = v;
            }
        }
        Some((min, max))
    }

    /// Fraction of exactly-zero samples.
    pub fn zero_fraction(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|v| v.to_f64() == 0.0).count();
        zeros as f64 / self.data.len() as f64
    }

    /// Fraction of strictly negative samples.
    pub fn negative_fraction(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let negs = self.data.iter().filter(|v| v.to_f64() < 0.0).count();
        negs as f64 / self.data.len() as f64
    }

    /// Extracts the 2D slice `k = plane` of a 3D field (row-major `ny × nx`).
    pub fn slice_z(&self, plane: usize) -> Vec<F> {
        assert_eq!(self.dims.rank(), 3);
        assert!(plane < self.dims.nz);
        let n = self.dims.nx * self.dims.ny;
        self.data[plane * n..(plane + 1) * n].to_vec()
    }
}

impl Field<f32> {
    /// Widens to an f64 field (exact).
    pub fn to_f64(&self) -> Field<f64> {
        Field::new(
            self.name.clone(),
            self.dims,
            self.data.iter().map(|&v| v as f64).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats() {
        let f = Field::new("t", Dims::d1(5), vec![-1.0f32, 0.0, 0.0, 2.0, 4.0]);
        assert_eq!(f.min_max(), Some((-1.0, 4.0)));
        assert_eq!(f.zero_fraction(), 0.4);
        assert_eq!(f.negative_fraction(), 0.2);
        assert_eq!(f.nbytes(), 20);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_len_panics() {
        Field::new("t", Dims::d1(3), vec![0.0f32; 4]);
    }

    #[test]
    fn slice_extraction() {
        let dims = Dims::d3(2, 2, 2);
        let data: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let f = Field::new("t", dims, data);
        assert_eq!(f.slice_z(1), vec![4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn widening_is_exact() {
        let f = Field::new("t", Dims::d1(2), vec![0.1f32, -3.25]);
        let g = f.to_f64();
        assert_eq!(g.data[0], 0.1f32 as f64);
        assert_eq!(g.data[1], -3.25);
    }
}
