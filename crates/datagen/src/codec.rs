//! The codec interface shared by every compressor in the workspace.
//!
//! The paper's transformation scheme is generic: it wraps *any*
//! absolute-error-bounded lossy compressor. [`AbsErrorCodec`] is that
//! contract; the SZ-like and ZFP-like codecs implement it, and
//! `pwrel-core`'s `PwRelCompressor` is parameterized over it.

use crate::{Dims, Float};

/// Errors surfaced by compression/decompression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The compressed stream is truncated or malformed.
    Corrupt(&'static str),
    /// The request is invalid (e.g. non-positive error bound).
    InvalidArgument(&'static str),
    /// The stream was produced for a different element type or codec.
    Mismatch(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Corrupt(w) => write!(f, "corrupt stream: {w}"),
            CodecError::InvalidArgument(w) => write!(f, "invalid argument: {w}"),
            CodecError::Mismatch(w) => write!(f, "stream mismatch: {w}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<pwrel_bitstream::Error> for CodecError {
    fn from(e: pwrel_bitstream::Error) -> Self {
        match e {
            pwrel_bitstream::Error::UnexpectedEof => CodecError::Corrupt("unexpected EOF"),
            pwrel_bitstream::Error::InvalidValue(w) => CodecError::Corrupt(w),
        }
    }
}

/// An absolute-error-bounded lossy compressor.
///
/// # Contract
///
/// For every finite input value `x_i`, the decompressed value `x'_i`
/// satisfies `|x_i - x'_i| <= bound`. Non-finite inputs must be preserved
/// exactly or rejected. `decompress(compress(data))` returns data of the
/// original length and dims.
pub trait AbsErrorCodec<F: Float> {
    /// Short identifier used in reports (e.g. `"sz"`, `"zfp"`).
    fn name(&self) -> &'static str;

    /// Compresses `data` with the guarantee `|x - x'| <= bound`.
    fn compress_abs(&self, data: &[F], dims: Dims, bound: f64) -> Result<Vec<u8>, CodecError>;

    /// Decompresses a stream produced by [`AbsErrorCodec::compress_abs`].
    fn decompress_abs(&self, bytes: &[u8]) -> Result<(Vec<F>, Dims), CodecError>;

    /// [`AbsErrorCodec::compress_abs`] with per-stage recording on `rec`.
    /// The default ignores the recorder; codecs with internal stages
    /// worth attributing override it. The stream bytes must be identical
    /// either way.
    fn compress_abs_traced(
        &self,
        data: &[F],
        dims: Dims,
        bound: f64,
        rec: &dyn pwrel_trace::Recorder,
    ) -> Result<Vec<u8>, CodecError> {
        let _ = rec;
        self.compress_abs(data, dims, bound)
    }

    /// [`AbsErrorCodec::decompress_abs`] with per-stage recording on
    /// `rec`. Same contract as the compress side: identical output, the
    /// recorder only observes.
    fn decompress_abs_traced(
        &self,
        bytes: &[u8],
        rec: &dyn pwrel_trace::Recorder,
    ) -> Result<(Vec<F>, Dims), CodecError> {
        let _ = rec;
        self.decompress_abs(bytes)
    }

    /// [`AbsErrorCodec::decompress_abs_traced`] with an executor for
    /// intra-stream fan-out (e.g. decoding interleaved entropy
    /// sub-streams on a worker pool). The default ignores the executor;
    /// codecs whose stream format exposes independently decodable
    /// sub-streams override it. Output must be identical for any
    /// executor.
    fn decompress_abs_pooled(
        &self,
        bytes: &[u8],
        rec: &dyn pwrel_trace::Recorder,
        exec: &dyn crate::exec::LaneExecutor,
    ) -> Result<(Vec<F>, Dims), CodecError> {
        let _ = exec;
        self.decompress_abs_traced(bytes, rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert_eq!(
            CodecError::InvalidArgument("bound must be > 0").to_string(),
            "invalid argument: bound must be > 0"
        );
        let e: CodecError = pwrel_bitstream::Error::UnexpectedEof.into();
        assert_eq!(e, CodecError::Corrupt("unexpected EOF"));
    }
}
