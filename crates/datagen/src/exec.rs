//! Object-safe fan-out hook for independently decodable work lanes.
//!
//! The interleaved entropy format splits a symbol stream into a handful of
//! independently addressable sub-streams. Whether those lanes decode on one
//! thread (fused, ILP-overlapped) or fan out across a worker pool is an
//! execution-policy decision that belongs to the caller, not the codec —
//! but the codec crates sit *below* `pwrel-parallel` in the dependency
//! graph. [`LaneExecutor`] is the seam: it lives here (the one crate every
//! codec depends on), `pwrel-lossless` consumes it, and `pwrel-parallel`
//! implements it for `WorkerPool`.
//!
//! The contract mirrors `WorkerPool::map` over borrowed closures: every
//! lane must have run to completion when `run_lanes` returns, lanes may
//! run in any order and concurrently, and results travel through whatever
//! state the closures capture (each lane writes to its own slot).

/// Executes a small set of independent lane closures to completion.
pub trait LaneExecutor: Sync {
    /// Runs every closure in `lanes` exactly once; all of them have
    /// returned when this returns. Order and concurrency are unspecified.
    fn run_lanes(&self, lanes: &mut [&mut (dyn FnMut() + Send)]);

    /// Degree of useful concurrency: `1` means lanes run sequentially on
    /// the calling thread, so callers can prefer a fused single-thread
    /// path over the fan-out's per-lane bookkeeping.
    fn width(&self) -> usize {
        1
    }
}

/// The no-concurrency executor: runs lanes in order on the calling thread.
#[derive(Debug, Default, Clone, Copy)]
pub struct SerialLanes;

impl LaneExecutor for SerialLanes {
    fn run_lanes(&self, lanes: &mut [&mut (dyn FnMut() + Send)]) {
        for lane in lanes.iter_mut() {
            lane();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_runs_every_lane_once() {
        let mut hits = [0u32; 3];
        let (a, rest) = hits.split_at_mut(1);
        let (b, c) = rest.split_at_mut(1);
        let mut la = || a[0] += 1;
        let mut lb = || b[0] += 1;
        let mut lc = || c[0] += 1;
        SerialLanes.run_lanes(&mut [&mut la, &mut lb, &mut lc]);
        assert_eq!(hits, [1, 1, 1]);
        assert_eq!(SerialLanes.width(), 1);
    }
}
