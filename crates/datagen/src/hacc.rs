//! Synthetic HACC cosmology particle data (1D, paper: 280,953,867 particles,
//! fields `velocity_x/y/z`).
//!
//! HACC stores per-particle velocities in storage order, which is only
//! weakly correlated with spatial position — the paper calls HACC "sharply
//! varying" and notes SZ_PWR's group-minimum design suffers on it. We model
//! that as a sum of
//!
//! * a low-frequency bulk flow (particles are dumped in coarse spatial
//!   order, so *some* smoothness survives),
//! * a dominant heavy-tailed per-particle component (two-sided, spiky),
//!
//! giving signed data whose local minima are often orders of magnitude
//! below the local maxima — exactly the regime where blockwise PWR bounds
//! collapse.

use crate::{grf, Dataset, Dims, Field, Scale};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of particles per velocity component at each scale.
pub fn n_particles(scale: Scale) -> usize {
    match scale {
        Scale::Small => 4096,
        Scale::Medium => 1 << 20,
        Scale::Large => 1 << 25,
    }
}

/// One velocity component (km/s-like magnitudes, mixed sign, spiky).
pub fn velocity(scale: Scale, component: char) -> Field<f32> {
    let n = n_particles(scale);
    let seed = 0x4AC0_0000 + component as u64;
    let dims = Dims::d1(n);

    let bulk = grf::gaussian_field(dims, seed, 16, 2);
    let meso = grf::gaussian_field(dims, seed ^ 0x0123_4567, 3, 2);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED);
    let data: Vec<f32> = bulk
        .iter()
        .zip(&meso)
        .map(|(&b, &m)| {
            // Mostly coherent flow (bulk + mesoscale turbulence) plus a
            // small heavy-tailed per-particle jitter and rare velocity
            // spikes. The spikes make block minima collapse (the SZ_PWR
            // failure mode) without destroying overall predictability.
            let u: f64 = rng.gen_range(1e-12..1.0);
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            let lap = sign * (-u.ln()) * 40.0;
            let spike = if rng.gen::<f64>() < 0.002 {
                sign * rng.gen_range(2_000.0..20_000.0)
            } else {
                0.0
            };
            (b as f64 * 600.0 + m as f64 * 180.0 + lap + spike) as f32
        })
        .collect();
    Field::new(format!("velocity_{component}"), dims, data)
}

/// The three-field HACC dataset.
pub fn dataset(scale: Scale) -> Dataset {
    Dataset {
        name: "HACC",
        fields: vec![
            velocity(scale, 'x'),
            velocity(scale, 'y'),
            velocity(scale, 'z'),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn velocity_is_spiky_and_signed() {
        let f = velocity(Scale::Medium, 'x');
        let neg = f.negative_fraction();
        assert!((0.3..=0.7).contains(&neg), "neg = {neg}");
        let (min, max) = f.min_max().unwrap();
        assert!(
            max > 2000.0 && min < -2000.0,
            "spikes missing: [{min}, {max}]"
        );
        // Ratio of max |v| to median |v| must be large (sharply varying).
        let mut mags: Vec<f32> = f.data.iter().map(|v| v.abs()).collect();
        mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = mags[mags.len() / 2];
        assert!(max / median > 10.0, "max/median = {}", max / median);
    }

    #[test]
    fn components_differ() {
        let x = velocity(Scale::Small, 'x');
        let y = velocity(Scale::Small, 'y');
        assert_ne!(x.data, y.data);
    }

    #[test]
    fn dataset_shape() {
        let ds = dataset(Scale::Small);
        assert_eq!(ds.fields.len(), 3);
        assert_eq!(ds.fields[0].dims.rank(), 1);
        assert_eq!(ds.fields[2].name, "velocity_z");
    }
}
