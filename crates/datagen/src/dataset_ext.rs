//! Convenience helpers on [`crate::Dataset`].

use crate::{Dataset, Field};

impl Dataset {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Field<f32>> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Widens every field to f64 (exact conversion).
    pub fn to_f64(&self) -> Vec<Field<f64>> {
        self.fields.iter().map(|f| f.to_f64()).collect()
    }

    /// Summary line: name, field count, raw size.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} fields, {:.1} MB",
            self.name,
            self.fields.len(),
            self.total_bytes() as f64 / 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::{nyx, Scale};

    #[test]
    fn field_lookup() {
        let ds = nyx::dataset(Scale::Small);
        assert!(ds.field("dark_matter_density").is_some());
        assert!(ds.field("velocity_z").is_some());
        assert!(ds.field("no_such_field").is_none());
    }

    #[test]
    fn widening_preserves_values() {
        let ds = nyx::dataset(Scale::Small);
        let wide = ds.to_f64();
        assert_eq!(wide.len(), ds.fields.len());
        for (a, b) in ds.fields.iter().zip(&wide) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.data[0] as f64, b.data[0]);
        }
    }

    #[test]
    fn summary_mentions_name_and_count() {
        let s = nyx::dataset(Scale::Small).summary();
        assert!(s.contains("NYX") && s.contains("6 fields"), "{s}");
    }
}
