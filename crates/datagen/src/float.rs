//! Abstraction over `f32`/`f64` with the bit-level access the codecs need.

use std::fmt::{Debug, Display};
use std::ops::{Add, Div, Mul, Neg, Sub};

/// IEEE-754 binary float with bit-level access.
///
/// All codecs in the workspace are generic over this trait so that both
/// single and double precision fields compress through the same code paths.
/// Only `f32` and `f64` implement it.
pub trait Float:
    Copy
    + PartialOrd
    + Debug
    + Display
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// Total bit width (32 or 64).
    const BITS: u32;
    /// Explicit mantissa bits (23 or 52).
    const MANT_BITS: u32;
    /// Exponent field bits (8 or 11).
    const EXP_BITS: u32;
    /// Machine epsilon (2^-23 or 2^-52).
    const EPSILON: Self;
    /// Smallest positive normal value.
    const MIN_POSITIVE: Self;
    /// Largest finite magnitude, widened to f64 (the inverse transform
    /// clamps reconstructions here so inputs near the top of the range
    /// cannot round up to infinity).
    const MAX_F64: f64;
    /// The exponent of the smallest representable magnitude used by the
    /// paper's zero sentinel: -127 for f32, -1024 for f64 ("the lower-bound
    /// exponent of the data value range", Sec. V).
    const ZERO_EXP: i32;

    /// Raw bits widened to u64.
    fn to_bits_u64(self) -> u64;
    /// Inverse of [`Float::to_bits_u64`] (truncates to the native width).
    fn from_bits_u64(bits: u64) -> Self;
    /// Lossless widening to f64.
    fn to_f64(self) -> f64;
    /// Narrowing conversion from f64 (rounds for f32).
    fn from_f64(v: f64) -> Self;

    /// `|self|`.
    fn abs(self) -> Self;
    /// True for anything that is not NaN/±inf.
    fn is_finite(self) -> bool;
    /// Additive identity.
    fn zero() -> Self {
        Self::default()
    }

    /// Native width in bytes (4 or 8).
    const NBYTES: usize = (Self::BITS / 8) as usize;

    /// Appends the value's little-endian byte image to `out`.
    fn write_le(self, out: &mut Vec<u8>) {
        let bits = self.to_bits_u64();
        out.extend((0..Self::NBYTES).map(|i| (bits >> (8 * i)) as u8));
    }

    /// Reads one value from the little-endian prefix of `buf`, or `None`
    /// when fewer than [`Float::NBYTES`] bytes remain. The bit-fold keeps
    /// the path free of slice indexing and `try_into().unwrap()` so it is
    /// safe on attacker-controlled stream tails (audit lint L1).
    fn read_le(buf: &[u8]) -> Option<Self> {
        if buf.len() < Self::NBYTES {
            return None;
        }
        let bits = buf
            .iter()
            .take(Self::NBYTES)
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << (8 * i)));
        Some(Self::from_bits_u64(bits))
    }
}

impl Float for f32 {
    const BITS: u32 = 32;
    const MANT_BITS: u32 = 23;
    const EXP_BITS: u32 = 8;
    const EPSILON: Self = f32::EPSILON;
    const MIN_POSITIVE: Self = f32::MIN_POSITIVE;
    const MAX_F64: f64 = f32::MAX as f64;
    const ZERO_EXP: i32 = -127;

    #[inline]
    fn to_bits_u64(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline]
    fn from_bits_u64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

impl Float for f64 {
    const BITS: u32 = 64;
    const MANT_BITS: u32 = 52;
    const EXP_BITS: u32 = 11;
    const EPSILON: Self = f64::EPSILON;
    const MIN_POSITIVE: Self = f64::MIN_POSITIVE;
    const MAX_F64: f64 = f64::MAX;
    const ZERO_EXP: i32 = -1024;

    #[inline]
    fn to_bits_u64(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_bits_u64(bits: u64) -> Self {
        f64::from_bits(bits)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_bit_round_trip() {
        for v in [0.0f32, -0.0, 1.5, -2.75, f32::MIN_POSITIVE, 1e30] {
            assert_eq!(f32::from_bits_u64(v.to_bits_u64()).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn f64_bit_round_trip() {
        for v in [0.0f64, -0.0, 1.5, -2.75, f64::MIN_POSITIVE, 1e300] {
            assert_eq!(f64::from_bits_u64(v.to_bits_u64()).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(<f32 as Float>::BITS, 1 + f32::EXP_BITS + f32::MANT_BITS);
        assert_eq!(<f64 as Float>::BITS, 1 + f64::EXP_BITS + f64::MANT_BITS);
        assert_eq!(<f32 as Float>::EPSILON, 2f32.powi(-23));
        assert_eq!(<f64 as Float>::EPSILON, 2f64.powi(-52));
    }

    #[test]
    fn le_bytes_round_trip_and_reject_short_reads() {
        let mut buf = Vec::new();
        1.5f32.write_le(&mut buf);
        (-2.75f64).write_le(&mut buf);
        assert_eq!(buf.len(), 12);
        assert_eq!(f32::read_le(&buf), Some(1.5));
        assert_eq!(f64::read_le(&buf[4..]), Some(-2.75));
        for cut in 0..4 {
            assert!(f32::read_le(&buf[..cut]).is_none());
        }
        for cut in 0..8 {
            assert!(f64::read_le(&buf[4..4 + cut]).is_none());
        }
        // Matches the platform encoding exactly.
        assert_eq!(&buf[..4], &1.5f32.to_le_bytes());
        assert_eq!(&buf[4..], &(-2.75f64).to_le_bytes());
    }

    #[test]
    fn generic_fn_compiles_for_both() {
        fn mid<F: Float>(a: F, b: F) -> F {
            (a + b) / F::from_f64(2.0)
        }
        assert_eq!(mid(1.0f32, 3.0f32), 2.0);
        assert_eq!(mid(1.0f64, 3.0f64), 2.0);
    }
}
