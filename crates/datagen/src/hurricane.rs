//! Synthetic Hurricane ISABEL fields (3D, paper: 100×500×500, 13 fields).
//!
//! The ISABEL simulation is a storm: fields combine a coherent vortex with
//! turbulence. `CLOUDf48`-like fields are non-negative with large zero
//! regions outside the storm; `Uf48`-like wind components are signed with a
//! rotational structure around the eye.

use crate::{grf, Dataset, Dims, Field, Scale};

/// Grid at each scale (z shallower than x/y like the real 100×500×500).
pub fn dims(scale: Scale) -> Dims {
    match scale {
        Scale::Small => Dims::d3(8, 24, 24),
        Scale::Medium => Dims::d3(25, 125, 125),
        Scale::Large => Dims::d3(100, 500, 500),
    }
}

/// Distance-from-eye helper in normalized units, per (j, i).
fn eye_radius2(d: Dims, i: usize, j: usize) -> f64 {
    let x = i as f64 / d.nx as f64 - 0.55;
    let y = j as f64 / d.ny as f64 - 0.45;
    x * x + y * y
}

/// Signed wind component with vortex rotation (`Uf48`-like, m/s).
pub fn wind_u(scale: Scale) -> Field<f32> {
    let d = dims(scale);
    let noise = grf::gaussian_field(d, 0x15AB_0001, 2, 2);
    let mut data = Vec::with_capacity(d.len());
    for k in 0..d.nz {
        let height_decay = (-(k as f64) / d.nz as f64 * 1.2).exp();
        for j in 0..d.ny {
            for i in 0..d.nx {
                let r2 = eye_radius2(d, i, j);
                // Rankine-like vortex: tangential speed peaks near the eye wall.
                let y = j as f64 / d.ny as f64 - 0.45;
                let swirl = -y * 60.0 / (r2 * 40.0 + 0.15);
                let n = noise[d.index(i, j, k)] as f64 * 4.0;
                data.push(((swirl + n) * height_decay) as f32);
            }
        }
    }
    Field::new("Uf48", d, data)
}

/// Non-negative cloud water field with zeros outside the storm
/// (`CLOUDf48`-like, kg/kg, tiny magnitudes).
pub fn cloud(scale: Scale) -> Field<f32> {
    let d = dims(scale);
    let noise = grf::gaussian_field(d, 0x15AB_0002, 2, 3);
    let mut data = Vec::with_capacity(d.len());
    for k in 0..d.nz {
        for j in 0..d.ny {
            for i in 0..d.nx {
                let r2 = eye_radius2(d, i, j);
                let envelope = (-r2 * 18.0).exp();
                let v = (noise[d.index(i, j, k)] as f64 * 0.6 + 0.4) * envelope * 2.0e-3;
                data.push(if v < 2.0e-5 { 0.0 } else { v as f32 });
            }
        }
    }
    Field::new("CLOUDf48", d, data)
}

/// Strictly positive temperature field (K).
fn temperature(scale: Scale) -> Field<f32> {
    let d = dims(scale);
    let noise = grf::gaussian_field(d, 0x15AB_0003, 3, 3);
    let mut data = Vec::with_capacity(d.len());
    for k in 0..d.nz {
        let lapse = 288.0 - 60.0 * (k as f64 / d.nz.max(1) as f64);
        for j in 0..d.ny {
            for i in 0..d.nx {
                data.push((lapse + 3.0 * noise[d.index(i, j, k)] as f64) as f32);
            }
        }
    }
    Field::new("TCf48", d, data)
}

/// Representative Hurricane ISABEL dataset.
pub fn dataset(scale: Scale) -> Dataset {
    let d = dims(scale);
    let v_noise = grf::gaussian_field(d, 0x15AB_0004, 2, 2);
    let wind_v = Field::new(
        "Vf48",
        d,
        wind_u(scale)
            .data
            .iter()
            .zip(&v_noise)
            .map(|(&u, &n)| -u * 0.8 + n * 5.0)
            .collect(),
    );
    Dataset {
        name: "Hurricane",
        fields: vec![wind_u(scale), wind_v, cloud(scale), temperature(scale)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloud_has_zero_background() {
        let f = cloud(Scale::Medium);
        let zf = f.zero_fraction();
        assert!(zf > 0.2, "zero fraction = {zf}");
        let (min, max) = f.min_max().unwrap();
        assert!(min >= 0.0);
        assert!(max > 1.0e-4 && max < 1.0, "max = {max}");
    }

    #[test]
    fn wind_rotates_around_eye() {
        let f = wind_u(Scale::Medium);
        assert!(f.negative_fraction() > 0.2);
        let (min, max) = f.min_max().unwrap();
        assert!(max > 10.0 && min < -10.0, "[{min}, {max}]");
    }

    #[test]
    fn temperature_positive() {
        let f = temperature(Scale::Small);
        let (min, max) = f.min_max().unwrap();
        assert!(min > 150.0 && max < 350.0, "[{min}, {max}]");
    }

    #[test]
    fn dataset_shape() {
        let ds = dataset(Scale::Small);
        assert_eq!(ds.fields.len(), 4);
        assert!(ds.fields.iter().all(|f| f.dims.rank() == 3));
    }
}
