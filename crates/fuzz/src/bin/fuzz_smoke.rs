#![forbid(unsafe_code)]

//! Hermetic fuzz smoke runner: mutation fuzzing over the golden-stream
//! corpus with a wall-clock budget, no external fuzzer required.
//!
//! ```text
//! cargo run --release -p pwrel-fuzz --bin fuzz_smoke -- --seconds 60
//! ```
//!
//! Seeds every golden fixture under `tests/fixtures/`, then loops:
//! pick a seed, apply a random batch of byte flips / truncations /
//! splices, and feed the result to every fuzz target. Any panic aborts
//! the process with a non-zero status, which is the CI failure signal.
//! This is the registry-less stand-in for the coverage-guided `fuzz/`
//! scaffold; it trades feedback for determinism and zero dependencies.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::time::{Duration, Instant};

fn corpus() -> Vec<Vec<u8>> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/fixtures");
    let mut seeds = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        paths.sort();
        for path in paths {
            if path.extension().is_some_and(|e| e == "bin") {
                if let Ok(bytes) = std::fs::read(&path) {
                    seeds.push(bytes);
                }
            }
        }
    }
    if seeds.is_empty() {
        // Degenerate fallback so the smoke still runs from odd CWDs.
        seeds.push(b"PWU1\x01\x00\x20\x01".to_vec());
    }
    seeds
}

fn mutate(rng: &mut SmallRng, seed: &[u8]) -> Vec<u8> {
    let mut bytes = seed.to_vec();
    match rng.gen_range(0..4u32) {
        // Byte flips.
        0 => {
            for _ in 0..=rng.gen_range(0..8u32) {
                if bytes.is_empty() {
                    break;
                }
                let i = rng.gen_range(0..bytes.len());
                bytes[i] ^= (rng.next_u64() & 0xFF) as u8;
            }
        }
        // Truncation.
        1 => bytes.truncate(rng.gen_range(0..bytes.len().max(1))),
        // Splice a window from another offset over this one.
        2 => {
            if bytes.len() >= 8 {
                let len = rng.gen_range(1..bytes.len() / 2);
                let src = rng.gen_range(0..bytes.len() - len);
                let dst = rng.gen_range(0..bytes.len() - len);
                let window: Vec<u8> = bytes[src..src + len].to_vec();
                bytes[dst..dst + len].copy_from_slice(&window);
            }
        }
        // Random garbage of seed-like length.
        _ => {
            let len = rng.gen_range(0..bytes.len().max(2));
            bytes.clear();
            bytes.extend((0..len).map(|_| (rng.next_u64() & 0xFF) as u8));
        }
    }
    bytes
}

fn main() {
    let mut seconds = 30u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seconds" => {
                seconds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seconds takes an integer");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let seeds = corpus();
    let mut rng = SmallRng::seed_from_u64(0x70775f72656c);
    let deadline = Instant::now() + Duration::from_secs(seconds);
    let mut execs = 0u64;

    // The seeds themselves must decode cleanly first.
    for seed in &seeds {
        pwrel_fuzz::fuzz_all(seed);
        execs += 1;
    }
    while Instant::now() < deadline {
        for seed in &seeds {
            let input = mutate(&mut rng, seed);
            pwrel_fuzz::fuzz_all(&input);
            execs += 1;
        }
    }
    println!(
        "fuzz_smoke: {execs} execs over {} seeds in {seconds}s budget, no panics",
        seeds.len()
    );
}
