#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Fuzz targets for the workspace's decoder entry points.
//!
//! Each target takes raw bytes and drives one attacker-facing parse; the
//! only acceptable outcomes are `Ok` or a structured `CodecError` — any
//! panic, overflow or out-of-bounds access is a finding (audit lint L1
//! enforces the same property statically; these targets enforce it
//! dynamically). The functions are plain `fn(&[u8])` so three frontends
//! can share them: the in-tree `fuzz_smoke` binary (hermetic, mutation
//! over the golden-fixture corpus), the `fuzz/` cargo-fuzz scaffold
//! (libFuzzer, coverage-guided, CI-only), and Miri (via the unit tests
//! below).

use pwrel_bitstream::BitReader;
use pwrel_lossless::huffman;
use pwrel_pipeline::container;
use pwrel_pipeline::registry::global;
use pwrel_zfp::nb;

/// Unified `PWU1` container parse + full registry decode dispatch.
pub fn fuzz_container_header(data: &[u8]) {
    let _ = container::is_unified(data);
    if container::unwrap(data).is_ok() {
        // Header parsed: the payload must now fail (or round-trip)
        // structurally in whichever codec the id dispatches to.
        let _ = global().decompress::<f32>(data);
        let _ = global().decompress::<f64>(data);
    }
}

/// Canonical Huffman table + symbol stream decoder.
pub fn fuzz_huffman_decode(data: &[u8]) {
    let mut pos = 0usize;
    if let Ok(symbols) = huffman::decode_symbols(data, &mut pos) {
        // A decoded stream must never claim more symbols than its bits
        // could encode (1 bit/symbol minimum after the table).
        assert!(symbols.len() <= data.len().saturating_mul(8));
    }
}

/// ZFP group-test bit-plane decoder, with the plane geometry drawn from
/// the first two input bytes so the fuzzer can explore every
/// (intprec, kmin) pair alongside the bitstream itself.
pub fn fuzz_zfp_planes(data: &[u8]) {
    let Some((&a, rest)) = data.split_first() else {
        return;
    };
    let Some((&b, rest)) = rest.split_first() else {
        return;
    };
    let intprec = u32::from(a % 64) + 1; // 1..=64
    let kmin = u32::from(b) % (intprec + 1); // 0..=intprec
    let mut coeffs = [0u64; 64];
    for size in [4usize, 16, 64] {
        let mut r = BitReader::new(rest);
        let _ = nb::decode_planes(&mut r, &mut coeffs[..size], intprec, kmin);
        coeffs.fill(0);
        let mut r = BitReader::new(rest);
        let budget = u64::from(a) * 8;
        let _ = nb::decode_planes_budget(&mut r, &mut coeffs[..size], intprec, kmin, budget);
        coeffs.fill(0);
    }
}

/// All targets against one input — what the smoke binary iterates.
pub fn fuzz_all(data: &[u8]) {
    fuzz_container_header(data);
    fuzz_huffman_decode(data);
    fuzz_zfp_planes(data);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic micro-corpus so `cargo test` (and Miri) exercise
    /// every target without the fuzz harness.
    #[test]
    fn targets_survive_structured_garbage() {
        let mut inputs: Vec<Vec<u8>> = vec![
            Vec::new(),
            b"PWU1".to_vec(),
            b"PWU1\x01\x00\x20".to_vec(),
            vec![0xFF; 64],
            (0..=255u8).collect(),
        ];
        // A valid container prefix with a corrupted tail.
        let mut forged = b"PWU1\x01\x03\x20\x01".to_vec();
        forged.extend_from_slice(&[0x80, 0x80, 0x80, 0x00, 0x55]);
        inputs.push(forged);
        for input in &inputs {
            fuzz_all(input);
            for cut in 0..input.len() {
                fuzz_all(&input[..cut]);
            }
        }
    }
}
