#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Bit-level I/O primitives shared by every codec in the workspace.
//!
//! The compressors built here (SZ-like, ZFP-like, FPZIP-like, ISABELA-like,
//! and the lossless stages) all serialize into dense bit streams. This crate
//! provides:
//!
//! * [`BitWriter`] / [`BitReader`] — MSB-first bit streams built on 64-bit
//!   accumulators with unaligned 8-byte refills/flushes: bulk
//!   `write_bits`/`read_bits` (up to 64 bits per call), O(1) LSB-first
//!   variants for ZFP bit-plane payloads, and a
//!   `refill`/`peek_word`/`consume` protocol for check-free bulk entropy
//!   decoding (see DESIGN.md Sec. 9),
//! * [`varint`] — LEB128 and zigzag integer codecs for headers,
//! * [`bytesio`] — little-endian scalar put/get helpers for byte-aligned
//!   container headers.
//!
//! All readers are bounds-checked and return [`Error::UnexpectedEof`] rather
//! than panicking on truncated input, so corrupted archives surface as
//! recoverable errors.

pub mod bytesio;
pub mod reader;
pub mod varint;
pub mod writer;

pub use reader::BitReader;
pub use writer::BitWriter;

/// Errors produced while decoding bit/byte streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The input ended before the requested number of bits/bytes was read.
    UnexpectedEof,
    /// A value in the stream is outside the range the format permits.
    InvalidValue(&'static str),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::UnexpectedEof => write!(f, "unexpected end of stream"),
            Error::InvalidValue(what) => write!(f, "invalid value in stream: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias used across the decoding paths.
pub type Result<T> = std::result::Result<T, Error>;
