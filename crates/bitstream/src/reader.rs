//! MSB-first bit stream reader over a 64-bit accumulator.

use crate::{Error, Result};

/// Reads bits most-significant-bit first from a byte slice.
///
/// The reader is the exact inverse of [`crate::BitWriter`]: a stream produced
/// by the writer decodes to the same bit sequence. Reads past the end return
/// [`Error::UnexpectedEof`].
///
/// Internally the reader buffers unread bits left-aligned in a 64-bit
/// accumulator (next bit at bit 63) and refills it with a single unaligned
/// 8-byte load while at least eight input bytes remain, falling back to a
/// scalar per-byte tail only for the final seven-or-fewer bytes. The
/// invariants every path maintains:
///
/// * `bits_read() == pos * 8 - navail` — `pos` counts bytes *loaded*, some
///   of which are still buffered (the accumulator may read ahead of the
///   logical position, but never past the slice, and buffered bits are
///   never consumed twice),
/// * bits of `acc` below the top `navail` are zero, so consuming is a left
///   shift and peeking is a right shift,
/// * after [`BitReader::refill`], `navail ≥ 57` unless the slice is
///   exhausted — enough for any ≤ 57-bit read, one Huffman code
///   (`MAX_CODE_LEN = 48`), or a 32-bit peek without further checks.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Index of the next byte to load into the accumulator.
    pos: usize,
    /// Unread bits, left-aligned (next stream bit at bit 63).
    acc: u64,
    /// Number of valid bits in `acc` (0..=64).
    navail: u32,
}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice for bit-level reading.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            pos: 0,
            acc: 0,
            navail: 0,
        }
    }

    /// Number of bits consumed so far.
    pub fn bits_read(&self) -> u64 {
        self.pos as u64 * 8 - self.navail as u64
    }

    /// Number of bits still available.
    pub fn bits_remaining(&self) -> u64 {
        self.bytes.len() as u64 * 8 - self.bits_read()
    }

    /// Tops the accumulator up from the input. While ≥ 8 bytes remain this
    /// is one unaligned big-endian word load plus shifts (no per-byte
    /// loop); near the end it degrades to a scalar tail. Afterwards
    /// `buffered_bits() ≥ 57` unless the input is exhausted.
    ///
    /// Refilling never consumes bits — it only loads them — so callers may
    /// invoke it freely (the bulk entropy decoders call it once per batch
    /// and then run check-free on the buffered word).
    #[inline]
    pub fn refill(&mut self) {
        // `first_chunk` compiles to the same unaligned word load as the
        // slice-index form but is structurally panic-free (audit lint L1).
        if let Some(chunk) = self
            .bytes
            .get(self.pos..)
            .and_then(|tail| tail.first_chunk::<8>())
        {
            let w = u64::from_be_bytes(*chunk);
            let k = ((64 - self.navail) / 8) as usize;
            if k > 0 {
                // Insert the top 8k bits of `w` directly below the
                // buffered ones.
                self.acc |= (w >> (64 - 8 * k as u32)) << (64 - self.navail - 8 * k as u32);
                self.pos += k;
                self.navail += 8 * k as u32;
            }
        } else {
            while self.navail <= 56 {
                let Some(&b) = self.bytes.get(self.pos) else {
                    break;
                };
                self.acc |= (b as u64) << (56 - self.navail);
                self.pos += 1;
                self.navail += 8;
            }
        }
    }

    /// Number of bits currently buffered in the accumulator.
    #[inline]
    pub fn buffered_bits(&self) -> u32 {
        self.navail
    }

    /// The buffered bits, left-aligned: the next unread stream bit is at
    /// bit 63. Bits beyond [`BitReader::buffered_bits`] read as zero.
    /// Combined with [`BitReader::refill`] and [`BitReader::consume`] this
    /// is the check-free window bulk decoders run on.
    #[inline]
    pub fn peek_word(&self) -> u64 {
        self.acc
    }

    /// Drops `n` buffered bits. The caller must ensure
    /// `n <= buffered_bits()`; this is the consuming half of the
    /// [`BitReader::peek_word`] protocol and performs no checks in release
    /// builds.
    #[inline]
    pub fn consume(&mut self, n: u32) {
        debug_assert!(n <= self.navail);
        self.acc = if n == 64 { 0 } else { self.acc << n };
        self.navail -= n;
    }

    /// Reads one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool> {
        if self.navail == 0 {
            self.refill();
            if self.navail == 0 {
                return Err(Error::UnexpectedEof);
            }
        }
        let bit = self.acc >> 63 == 1;
        self.acc <<= 1;
        self.navail -= 1;
        Ok(bit)
    }

    /// Reads `n` bits (≤ 64) into the low bits of the result, MSB first.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64> {
        debug_assert!(n <= 64);
        if n == 0 {
            return Ok(0);
        }
        if self.navail < n {
            self.refill();
        }
        if self.navail >= n {
            let out = self.acc >> (64 - n);
            self.consume(n);
            return Ok(out);
        }
        self.read_bits_spill(n)
    }

    /// Cold path for reads the refilled accumulator cannot serve whole:
    /// 58–64-bit reads landing mid-word, and end-of-stream detection.
    #[cold]
    fn read_bits_spill(&mut self, n: u32) -> Result<u64> {
        if self.bits_remaining() < n as u64 {
            return Err(Error::UnexpectedEof);
        }
        let mut out = 0u64;
        let mut remaining = n;
        while remaining > 0 {
            if self.navail == 0 {
                self.refill();
            }
            let take = self.navail.min(remaining);
            let chunk = self.acc >> (64 - take);
            out = if take == 64 {
                chunk
            } else {
                (out << take) | chunk
            };
            self.consume(take);
            remaining -= take;
        }
        Ok(out)
    }

    /// Reads `n` bits (≤ 64) placing the first stream bit at bit 0 of the
    /// result — the inverse of [`crate::BitWriter::write_bits_lsb`]. One
    /// bulk MSB read plus a bit reversal; no per-bit loop.
    #[inline]
    pub fn read_bits_lsb(&mut self, n: u32) -> Result<u64> {
        debug_assert!(n <= 64);
        if n == 0 {
            return Ok(0);
        }
        let v = self.read_bits(n)?;
        Ok(v.reverse_bits() >> (64 - n))
    }

    /// Returns the next `n` bits (≤ 32) without consuming them, MSB first.
    ///
    /// Refills the accumulator, so the reader is `&mut`; one refill covers
    /// the subsequent [`BitReader::skip_bits`] and several follow-up peeks.
    #[inline]
    pub fn peek_bits(&mut self, n: u32) -> Result<u64> {
        debug_assert!(n <= 32);
        if n == 0 {
            return Ok(0);
        }
        if self.navail < n {
            self.refill();
            if self.navail < n {
                return Err(Error::UnexpectedEof);
            }
        }
        Ok(self.acc >> (64 - n))
    }

    /// Consumes `n` bits previously inspected with [`BitReader::peek_bits`].
    #[inline]
    pub fn skip_bits(&mut self, n: u32) -> Result<()> {
        if self.navail >= n {
            self.consume(n);
            return Ok(());
        }
        if self.bits_remaining() < n as u64 {
            return Err(Error::UnexpectedEof);
        }
        // Drop the buffered bits, then jump whole bytes and re-buffer.
        let past_acc = n - self.navail;
        self.acc = 0;
        self.navail = 0;
        self.pos += (past_acc / 8) as usize;
        let rest = past_acc % 8;
        if rest > 0 {
            self.refill();
            self.consume(rest);
        }
        Ok(())
    }

    /// Skips to the next byte boundary (no-op when already aligned).
    pub fn align_byte(&mut self) {
        // bits_read ≡ -navail (mod 8), so dropping navail % 8 bits aligns.
        self.consume(self.navail % 8);
    }

    /// Reads `n` whole bytes; the reader must be byte-aligned.
    pub fn read_aligned_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        assert_eq!(
            self.bits_read() % 8,
            0,
            "read_aligned_bytes requires byte alignment"
        );
        let start = self.pos - (self.navail / 8) as usize;
        let end = start.checked_add(n).ok_or(Error::UnexpectedEof)?;
        if end > self.bytes.len() {
            return Err(Error::UnexpectedEof);
        }
        // Drop the buffered read-ahead and restart after the byte run.
        self.acc = 0;
        self.navail = 0;
        self.pos = end;
        Ok(&self.bytes[start..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitWriter;

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xDEAD_BEEF, 32);
        w.write_bit(true);
        w.write_bits(0x3FFF, 14);
        let bytes = w.into_bytes();

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEAD_BEEF);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_bits(14).unwrap(), 0x3FFF);
    }

    #[test]
    fn eof_detected() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert_eq!(r.read_bit(), Err(Error::UnexpectedEof));
        assert_eq!(r.read_bits(1), Err(Error::UnexpectedEof));
    }

    #[test]
    fn lsb_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits_lsb(0b1011_0101_1010_0011, 16);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits_lsb(16).unwrap(), 0b1011_0101_1010_0011);
    }

    #[test]
    fn aligned_bytes_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        w.align_byte();
        w.write_aligned_bytes(b"abc");
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
        r.align_byte();
        assert_eq!(r.read_aligned_bytes(3).unwrap(), b"abc");
    }

    #[test]
    fn aligned_bytes_after_buffered_readahead() {
        // A prior read buffers well past the byte run; read_aligned_bytes
        // must hand back the right bytes and resume cleanly after them.
        let mut w = BitWriter::new();
        w.write_bits(0xAB, 8);
        w.write_aligned_bytes(b"wxyz");
        w.write_bits(0xCD, 8);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8).unwrap(), 0xAB);
        assert_eq!(r.read_aligned_bytes(4).unwrap(), b"wxyz");
        assert_eq!(r.read_bits(8).unwrap(), 0xCD);
    }

    #[test]
    fn peek_matches_read_without_consuming() {
        let mut w = BitWriter::new();
        w.write_bits(0xDEAD_BEEF_CAFE_F00D, 64);
        w.write_bits(0x0123_4567_89AB_CDEF, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        r.read_bits(5).unwrap(); // misalign
        for n in [1u32, 7, 8, 13, 24, 32] {
            let peeked = r.peek_bits(n).unwrap();
            let pos_before = r.bits_read();
            let read = r.read_bits(n).unwrap();
            assert_eq!(peeked, read, "n={n}");
            assert_eq!(r.bits_read(), pos_before + n as u64);
        }
    }

    #[test]
    fn skip_bits_advances_like_read() {
        let mut w = BitWriter::new();
        w.write_bits(0x1234_5678, 32);
        let bytes = w.into_bytes();
        let mut a = BitReader::new(&bytes);
        let mut b = BitReader::new(&bytes);
        a.read_bits(13).unwrap();
        b.skip_bits(13).unwrap();
        assert_eq!(a.bits_read(), b.bits_read());
        assert_eq!(a.read_bits(19).unwrap(), b.read_bits(19).unwrap());
        assert!(b.skip_bits(1).is_err());
    }

    #[test]
    fn skip_beyond_buffered_window() {
        let data: Vec<u8> = (0..64).collect();
        let mut a = BitReader::new(&data);
        let mut b = BitReader::new(&data);
        a.read_bits(3).unwrap(); // buffers ~8 bytes
        b.read_bits(3).unwrap();
        a.skip_bits(300).unwrap(); // far past the accumulator
        for _ in 0..300 {
            b.read_bit().unwrap();
        }
        assert_eq!(a.bits_read(), b.bits_read());
        assert_eq!(a.read_bits(32).unwrap(), b.read_bits(32).unwrap());
    }

    #[test]
    fn peek_past_end_errors() {
        let bytes = [0xAB];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(8).unwrap(), 0xAB);
        assert!(r.peek_bits(9).is_err());
    }

    #[test]
    fn read_64_bits() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
    }

    #[test]
    fn wide_reads_straddling_the_accumulator() {
        // Misaligned 58..64-bit reads exercise the spill path.
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        for i in 0..6u64 {
            w.write_bits(0x0123_4567_89AB_CDEF ^ (i * 0x1111_1111_1111_1111), 64);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        for i in 0..6u64 {
            assert_eq!(
                r.read_bits(64).unwrap(),
                0x0123_4567_89AB_CDEF ^ (i * 0x1111_1111_1111_1111),
                "word {i}"
            );
        }
    }

    #[test]
    fn refill_peek_consume_protocol() {
        let mut w = BitWriter::new();
        w.write_bits(0xFACE, 16);
        w.write_bits(0xB00C, 16);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        r.refill();
        assert!(r.buffered_bits() >= 32);
        assert_eq!(r.peek_word() >> 48, 0xFACE);
        r.consume(16);
        assert_eq!(r.peek_word() >> 48, 0xB00C);
        r.consume(16);
        assert_eq!(r.bits_read(), 32);
    }
}
