//! MSB-first bit stream reader.

use crate::{Error, Result};

/// Reads bits most-significant-bit first from a byte slice.
///
/// The reader is the exact inverse of [`crate::BitWriter`]: a stream produced
/// by the writer decodes to the same bit sequence. Reads past the end return
/// [`Error::UnexpectedEof`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Index of the next unread byte.
    pos: usize,
    /// Bits already consumed from `bytes[pos]` (0..8).
    bit_pos: u32,
}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice for bit-level reading.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            pos: 0,
            bit_pos: 0,
        }
    }

    /// Number of bits consumed so far.
    pub fn bits_read(&self) -> u64 {
        self.pos as u64 * 8 + self.bit_pos as u64
    }

    /// Number of bits still available.
    pub fn bits_remaining(&self) -> u64 {
        self.bytes.len() as u64 * 8 - self.bits_read()
    }

    /// Reads one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool> {
        let byte = *self.bytes.get(self.pos).ok_or(Error::UnexpectedEof)?;
        let bit = (byte >> (7 - self.bit_pos)) & 1 == 1;
        self.bit_pos += 1;
        if self.bit_pos == 8 {
            self.bit_pos = 0;
            self.pos += 1;
        }
        Ok(bit)
    }

    /// Reads `n` bits (≤ 64) into the low bits of the result, MSB first.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Result<u64> {
        debug_assert!(n <= 64);
        if self.bits_remaining() < n as u64 {
            return Err(Error::UnexpectedEof);
        }
        let mut out: u64 = 0;
        let mut remaining = n;
        while remaining > 0 {
            let avail = 8 - self.bit_pos;
            let take = avail.min(remaining);
            let byte = self.bytes[self.pos];
            let chunk = (byte >> (avail - take)) & ((1u16 << take) - 1) as u8;
            out = (out << take) | chunk as u64;
            self.bit_pos += take;
            remaining -= take;
            if self.bit_pos == 8 {
                self.bit_pos = 0;
                self.pos += 1;
            }
        }
        Ok(out)
    }

    /// Reads `n` bits (≤ 64) placing the first stream bit at bit 0 of the
    /// result — the inverse of [`crate::BitWriter::write_bits_lsb`].
    #[inline]
    pub fn read_bits_lsb(&mut self, n: u32) -> Result<u64> {
        debug_assert!(n <= 64);
        let mut out = 0u64;
        for i in 0..n {
            if self.read_bit()? {
                out |= 1u64 << i;
            }
        }
        Ok(out)
    }

    /// Returns the next `n` bits (≤ 32) without consuming them, MSB first.
    /// The caller must ensure `bits_remaining() >= n`.
    #[inline]
    pub fn peek_bits(&self, n: u32) -> Result<u64> {
        debug_assert!(n <= 32);
        if self.bits_remaining() < n as u64 {
            return Err(Error::UnexpectedEof);
        }
        // Read up to 5 bytes covering the window.
        let mut acc: u64 = 0;
        let first = self.pos;
        let nbytes = (self.bit_pos + n).div_ceil(8) as usize;
        for k in 0..nbytes {
            acc = (acc << 8) | self.bytes[first + k] as u64;
        }
        let total_bits = nbytes as u32 * 8;
        Ok((acc >> (total_bits - self.bit_pos - n)) & ((1u64 << n) - 1))
    }

    /// Consumes `n` bits previously inspected with [`BitReader::peek_bits`].
    #[inline]
    pub fn skip_bits(&mut self, n: u32) -> Result<()> {
        if self.bits_remaining() < n as u64 {
            return Err(Error::UnexpectedEof);
        }
        let total = self.bit_pos + n;
        self.pos += (total / 8) as usize;
        self.bit_pos = total % 8;
        Ok(())
    }

    /// Skips to the next byte boundary (no-op when already aligned).
    pub fn align_byte(&mut self) {
        if self.bit_pos != 0 {
            self.bit_pos = 0;
            self.pos += 1;
        }
    }

    /// Reads `n` whole bytes; the reader must be byte-aligned.
    pub fn read_aligned_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        assert_eq!(
            self.bit_pos, 0,
            "read_aligned_bytes requires byte alignment"
        );
        let end = self.pos.checked_add(n).ok_or(Error::UnexpectedEof)?;
        if end > self.bytes.len() {
            return Err(Error::UnexpectedEof);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitWriter;

    #[test]
    fn round_trip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xDEAD_BEEF, 32);
        w.write_bit(true);
        w.write_bits(0x3FFF, 14);
        let bytes = w.into_bytes();

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(32).unwrap(), 0xDEAD_BEEF);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_bits(14).unwrap(), 0x3FFF);
    }

    #[test]
    fn eof_detected() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert_eq!(r.read_bit(), Err(Error::UnexpectedEof));
        assert_eq!(r.read_bits(1), Err(Error::UnexpectedEof));
    }

    #[test]
    fn lsb_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits_lsb(0b1011_0101_1010_0011, 16);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits_lsb(16).unwrap(), 0b1011_0101_1010_0011);
    }

    #[test]
    fn aligned_bytes_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        w.align_byte();
        w.write_aligned_bytes(b"abc");
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
        r.align_byte();
        assert_eq!(r.read_aligned_bytes(3).unwrap(), b"abc");
    }

    #[test]
    fn peek_matches_read_without_consuming() {
        let mut w = BitWriter::new();
        w.write_bits(0xDEAD_BEEF_CAFE_F00D, 64);
        w.write_bits(0x0123_4567_89AB_CDEF, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        r.read_bits(5).unwrap(); // misalign
        for n in [1u32, 7, 8, 13, 24, 32] {
            let peeked = r.peek_bits(n).unwrap();
            let pos_before = r.bits_read();
            let read = r.read_bits(n).unwrap();
            assert_eq!(peeked, read, "n={n}");
            // Rewind by constructing a fresh reader is impossible; instead
            // verify peek did not advance before the read.
            assert_eq!(r.bits_read(), pos_before + n as u64);
        }
    }

    #[test]
    fn skip_bits_advances_like_read() {
        let mut w = BitWriter::new();
        w.write_bits(0x1234_5678, 32);
        let bytes = w.into_bytes();
        let mut a = BitReader::new(&bytes);
        let mut b = BitReader::new(&bytes);
        a.read_bits(13).unwrap();
        b.skip_bits(13).unwrap();
        assert_eq!(a.bits_read(), b.bits_read());
        assert_eq!(a.read_bits(19).unwrap(), b.read_bits(19).unwrap());
        assert!(b.skip_bits(1).is_err());
    }

    #[test]
    fn peek_past_end_errors() {
        let bytes = [0xAB];
        let r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(8).unwrap(), 0xAB);
        assert!(r.peek_bits(9).is_err());
    }

    #[test]
    fn read_64_bits() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
    }
}
