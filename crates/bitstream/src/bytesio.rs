//! Little-endian scalar put/get helpers for byte-aligned headers.

use crate::{Error, Result};

/// Appends a `u16` little-endian.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f32` little-endian.
pub fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` little-endian.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn take<'a>(data: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8]> {
    let end = pos.checked_add(n).ok_or(Error::UnexpectedEof)?;
    let out = data.get(*pos..end).ok_or(Error::UnexpectedEof)?;
    *pos = end;
    Ok(out)
}

/// [`take`] for a compile-time width, returning an owned array so the
/// `from_le_bytes` calls need no fallible slice→array conversion.
fn take_n<const N: usize>(data: &[u8], pos: &mut usize) -> Result<[u8; N]> {
    let chunk = data
        .get(*pos..)
        .and_then(|tail| tail.first_chunk::<N>())
        .ok_or(Error::UnexpectedEof)?;
    *pos += N;
    Ok(*chunk)
}

/// Reads a `u16` little-endian at `pos`, advancing it.
pub fn get_u16(data: &[u8], pos: &mut usize) -> Result<u16> {
    Ok(u16::from_le_bytes(take_n(data, pos)?))
}

/// Reads a `u32` little-endian at `pos`, advancing it.
pub fn get_u32(data: &[u8], pos: &mut usize) -> Result<u32> {
    Ok(u32::from_le_bytes(take_n(data, pos)?))
}

/// Reads a `u64` little-endian at `pos`, advancing it.
pub fn get_u64(data: &[u8], pos: &mut usize) -> Result<u64> {
    Ok(u64::from_le_bytes(take_n(data, pos)?))
}

/// Reads an `f32` little-endian at `pos`, advancing it.
pub fn get_f32(data: &[u8], pos: &mut usize) -> Result<f32> {
    Ok(f32::from_le_bytes(take_n(data, pos)?))
}

/// Reads an `f64` little-endian at `pos`, advancing it.
pub fn get_f64(data: &[u8], pos: &mut usize) -> Result<f64> {
    Ok(f64::from_le_bytes(take_n(data, pos)?))
}

/// Reads `n` raw bytes at `pos`, advancing it.
pub fn get_bytes<'a>(data: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8]> {
    take(data, pos, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut buf = Vec::new();
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, 0x0123_4567_89AB_CDEF);
        put_f32(&mut buf, -1.5);
        put_f64(&mut buf, std::f64::consts::PI);
        let mut pos = 0;
        assert_eq!(get_u16(&buf, &mut pos).unwrap(), 0xBEEF);
        assert_eq!(get_u32(&buf, &mut pos).unwrap(), 0xDEAD_BEEF);
        assert_eq!(get_u64(&buf, &mut pos).unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(get_f32(&buf, &mut pos).unwrap(), -1.5);
        assert_eq!(get_f64(&buf, &mut pos).unwrap(), std::f64::consts::PI);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_reads_fail() {
        let buf = vec![0u8; 3];
        let mut pos = 0;
        assert_eq!(get_u32(&buf, &mut pos), Err(Error::UnexpectedEof));
        assert_eq!(pos, 0, "failed read must not advance");
    }
}
