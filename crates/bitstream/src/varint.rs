//! LEB128 variable-length integers and zigzag signed mapping.
//!
//! Used by container headers (block counts, payload lengths) where values are
//! usually small but must scale to 64 bits.

use crate::{Error, Result};

/// Appends `value` as unsigned LEB128 to `out`.
pub fn write_uvarint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 value from `data[*pos..]`, advancing `pos`.
pub fn read_uvarint(data: &[u8], pos: &mut usize) -> Result<u64> {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    loop {
        let byte = *data.get(*pos).ok_or(Error::UnexpectedEof)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(Error::InvalidValue("uvarint overflows u64"));
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(Error::InvalidValue("uvarint too long"));
        }
    }
}

/// Maps a signed integer to an unsigned one with small magnitudes staying
/// small (0, -1, 1, -2, ... → 0, 1, 2, 3, ...).
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `value` as zigzag + LEB128.
pub fn write_ivarint(out: &mut Vec<u8>, value: i64) {
    write_uvarint(out, zigzag_encode(value));
}

/// Reads a zigzag + LEB128 signed value.
pub fn read_ivarint(data: &[u8], pos: &mut usize) -> Result<i64> {
    Ok(zigzag_decode(read_uvarint(data, pos)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_round_trip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn ivarint_round_trip_extremes() {
        for v in [0i64, -1, 1, -64, 63, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            write_ivarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_ivarint(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_small_magnitudes_stay_small() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
    }

    #[test]
    fn truncated_uvarint_is_eof() {
        let buf = vec![0x80, 0x80];
        let mut pos = 0;
        assert_eq!(read_uvarint(&buf, &mut pos), Err(Error::UnexpectedEof));
    }

    #[test]
    fn overlong_uvarint_rejected() {
        let buf = vec![0x80; 10].into_iter().chain([0x02]).collect::<Vec<_>>();
        let mut pos = 0;
        assert!(read_uvarint(&buf, &mut pos).is_err());
    }
}
