//! MSB-first bit stream writer over a 64-bit accumulator.

/// Accumulates bits most-significant-bit first into a byte vector.
///
/// The MSB-first convention matches the embedded bit-plane coder in the
/// ZFP-like codec, where truncating a stream at any bit position must keep
/// the highest-value information. `write_bits` accepts up to 64 bits at a
/// time; values are masked to the requested width.
///
/// Internally the writer stages bits left-aligned in a 64-bit accumulator
/// (first-written bit at bit 63) and flushes whole bytes in bulk — up to
/// eight per flush via one big-endian store — instead of the seed engine's
/// byte-at-a-time loop. The invariants the hot paths rely on:
///
/// * outside a call, `nbits < 8` (every full byte has been flushed),
/// * bits of `acc` below the top `nbits` are always zero, so a flush or
///   final alignment can store the top bytes directly.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bit accumulator; staged bits are left-aligned (oldest at bit 63).
    acc: u64,
    /// Number of valid bits currently staged in `acc` (< 8 between calls).
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with a byte-capacity hint.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            bytes: Vec::with_capacity(bytes),
            acc: 0,
            nbits: 0,
        }
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.bytes.len() as u64 * 8 + self.nbits as u64
    }

    /// Stores every whole byte staged in the accumulator (≤ 8 per call,
    /// one `to_be_bytes` store) and re-establishes `nbits < 8`.
    #[inline]
    fn flush_bytes(&mut self) {
        let k = (self.nbits / 8) as usize;
        if k > 0 {
            let be = self.acc.to_be_bytes();
            // The audit's name-based reachability routes encode-only
            // writers here via `BufferPool::record`.
            // audit:allow(L1): k = nbits/8 <= 8 = be.len()
            self.bytes.extend_from_slice(&be[..k]);
            self.acc = if k == 8 { 0 } else { self.acc << (8 * k) };
            self.nbits -= 8 * k as u32;
        }
    }

    /// Appends a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.acc |= (bit as u64) << (63 - self.nbits);
        self.nbits += 1;
        if self.nbits == 8 {
            self.bytes.push((self.acc >> 56) as u8);
            self.acc <<= 8;
            self.nbits = 0;
        }
    }

    /// Appends the low `n` bits of `value`, most significant first.
    ///
    /// `n` must be ≤ 64. Writing zero bits is a no-op.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        if n == 0 {
            return;
        }
        let value = if n == 64 {
            value
        } else {
            value & ((1u64 << n) - 1)
        };
        if self.nbits + n <= 64 {
            self.acc |= value << (64 - self.nbits - n);
            self.nbits += n;
        } else {
            // Split: top part fills the accumulator exactly (nbits < 8, so
            // this only happens for n ≥ 58), the rest restarts it.
            let hi = 64 - self.nbits;
            self.acc |= value >> (n - hi);
            self.bytes.extend_from_slice(&self.acc.to_be_bytes());
            let rem = n - hi; // 1..=7
            self.acc = value << (64 - rem);
            self.nbits = rem;
        }
        self.flush_bytes();
    }

    /// Appends `n` bits taken LSB-first from `value` (bit 0 first).
    ///
    /// This matches ZFP's stream convention for bit-plane payloads where the
    /// coefficient-index order maps to ascending bit positions. A single
    /// bit-reversal turns this into one MSB-first bulk write — the seed
    /// engine's per-bit loop is gone.
    #[inline]
    pub fn write_bits_lsb(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        if n == 0 {
            return;
        }
        self.write_bits(value.reverse_bits() >> (64 - n), n);
    }

    /// Pads with zero bits to the next byte boundary.
    pub fn align_byte(&mut self) {
        // nbits < 8 between calls; the low accumulator bits are already
        // zero, so the top byte is the padded partial byte.
        if self.nbits > 0 {
            self.bytes.push((self.acc >> 56) as u8);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Appends a whole byte slice; the writer must be byte-aligned.
    pub fn write_aligned_bytes(&mut self, data: &[u8]) {
        assert_eq!(self.nbits, 0, "write_aligned_bytes requires byte alignment");
        self.bytes.extend_from_slice(data);
    }

    /// Finishes the stream (zero-padding the final byte) and returns it.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.align_byte();
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_pack_msb_first() {
        let mut w = BitWriter::new();
        for bit in [true, false, true, true, false, false, true, false] {
            w.write_bit(bit);
        }
        assert_eq!(w.into_bytes(), vec![0b1011_0010]);
    }

    #[test]
    fn bulk_bits_match_single_bits() {
        let mut a = BitWriter::new();
        let mut b = BitWriter::new();
        let v = 0b1_1010_1101u64; // 9 bits
        a.write_bits(v, 9);
        for i in (0..9).rev() {
            b.write_bit((v >> i) & 1 == 1);
        }
        assert_eq!(a.into_bytes(), b.into_bytes());
    }

    #[test]
    fn write_64_bits() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        assert_eq!(w.into_bytes(), vec![0xFF; 8]);
    }

    #[test]
    fn split_write_across_accumulator_boundary() {
        // 7 staged bits + 64 more forces the split path.
        let mut w = BitWriter::new();
        w.write_bits(0b1010101, 7);
        w.write_bits(0xDEAD_BEEF_CAFE_F00D, 64);
        let mut v = BitWriter::new();
        for i in (0..7).rev() {
            v.write_bit((0b1010101 >> i) & 1 == 1);
        }
        for i in (0..64).rev() {
            v.write_bit((0xDEAD_BEEF_CAFE_F00Du64 >> i) & 1 == 1);
        }
        assert_eq!(w.into_bytes(), v.into_bytes());
    }

    #[test]
    fn align_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.align_byte();
        assert_eq!(w.into_bytes(), vec![0b1010_0000]);
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 13);
        assert_eq!(w.bit_len(), 13);
    }

    #[test]
    fn lsb_order_reverses() {
        let mut w = BitWriter::new();
        w.write_bits_lsb(0b0000_0001, 8); // bit 0 first -> MSB of output byte
        assert_eq!(w.into_bytes(), vec![0b1000_0000]);
    }

    #[test]
    fn lsb_bulk_matches_per_bit() {
        for n in 0..=64u32 {
            let v = 0x9E37_79B9_7F4A_7C15u64.rotate_left(n);
            let mut a = BitWriter::new();
            a.write_bits_lsb(v, n);
            let mut b = BitWriter::new();
            for i in 0..n {
                b.write_bit((v >> i) & 1 == 1);
            }
            assert_eq!(a.into_bytes(), b.into_bytes(), "n={n}");
        }
    }
}
