//! MSB-first bit stream writer.

/// Accumulates bits most-significant-bit first into a byte vector.
///
/// The MSB-first convention matches the embedded bit-plane coder in the
/// ZFP-like codec, where truncating a stream at any bit position must keep
/// the highest-value information. `write_bits` accepts up to 64 bits at a
/// time; values are masked to the requested width.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bit accumulator; bits are staged from the MSB side of `acc`.
    acc: u64,
    /// Number of valid bits currently staged in `acc` (< 8 after flush).
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with a byte-capacity hint.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            bytes: Vec::with_capacity(bytes),
            acc: 0,
            nbits: 0,
        }
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.bytes.len() as u64 * 8 + self.nbits as u64
    }

    /// Appends a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.acc = (self.acc << 1) | bit as u64;
        self.nbits += 1;
        if self.nbits == 8 {
            self.bytes.push(self.acc as u8);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Appends the low `n` bits of `value`, most significant first.
    ///
    /// `n` must be ≤ 64. Writing zero bits is a no-op.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        if n == 0 {
            return;
        }
        let value = if n == 64 {
            value
        } else {
            value & ((1u64 << n) - 1)
        };
        let mut remaining = n;
        // Fill the current partial byte, then emit whole bytes.
        while remaining > 0 {
            let take = (8 - self.nbits).min(remaining);
            let shift = remaining - take;
            let chunk = (value >> shift) & ((1u64 << take) - 1);
            self.acc = (self.acc << take) | chunk;
            self.nbits += take;
            remaining -= take;
            if self.nbits == 8 {
                self.bytes.push(self.acc as u8);
                self.acc = 0;
                self.nbits = 0;
            }
        }
    }

    /// Appends `n` bits taken LSB-first from `value` (bit 0 first).
    ///
    /// This matches ZFP's stream convention for bit-plane payloads where the
    /// coefficient-index order maps to ascending bit positions.
    #[inline]
    pub fn write_bits_lsb(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        for i in 0..n {
            self.write_bit((value >> i) & 1 == 1);
        }
    }

    /// Pads with zero bits to the next byte boundary.
    pub fn align_byte(&mut self) {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.acc <<= pad;
            self.bytes.push(self.acc as u8);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Appends a whole byte slice; the writer must be byte-aligned.
    pub fn write_aligned_bytes(&mut self, data: &[u8]) {
        assert_eq!(self.nbits, 0, "write_aligned_bytes requires byte alignment");
        self.bytes.extend_from_slice(data);
    }

    /// Finishes the stream (zero-padding the final byte) and returns it.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.align_byte();
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_pack_msb_first() {
        let mut w = BitWriter::new();
        for bit in [true, false, true, true, false, false, true, false] {
            w.write_bit(bit);
        }
        assert_eq!(w.into_bytes(), vec![0b1011_0010]);
    }

    #[test]
    fn bulk_bits_match_single_bits() {
        let mut a = BitWriter::new();
        let mut b = BitWriter::new();
        let v = 0b1_1010_1101u64; // 9 bits
        a.write_bits(v, 9);
        for i in (0..9).rev() {
            b.write_bit((v >> i) & 1 == 1);
        }
        assert_eq!(a.into_bytes(), b.into_bytes());
    }

    #[test]
    fn write_64_bits() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        assert_eq!(w.into_bytes(), vec![0xFF; 8]);
    }

    #[test]
    fn align_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.align_byte();
        assert_eq!(w.into_bytes(), vec![0b1010_0000]);
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 13);
        assert_eq!(w.bit_len(), 13);
    }

    #[test]
    fn lsb_order_reverses() {
        let mut w = BitWriter::new();
        w.write_bits_lsb(0b0000_0001, 8); // bit 0 first -> MSB of output byte
        assert_eq!(w.into_bytes(), vec![0b1000_0000]);
    }
}
