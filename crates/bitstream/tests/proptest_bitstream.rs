//! Property tests: arbitrary bit-level write sequences round-trip exactly.
// Too slow under Miri's interpreter; the unit tests cover the same paths.
#![cfg(not(miri))]

use proptest::prelude::*;
use pwrel_bitstream::{varint, BitReader, BitWriter};

/// One write operation in a random program.
#[derive(Debug, Clone)]
enum Op {
    Bit(bool),
    Bits(u64, u32),
    BitsLsb(u64, u32),
    Align,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<bool>().prop_map(Op::Bit),
        (any::<u64>(), 0u32..=64).prop_map(|(v, n)| Op::Bits(v, n)),
        (any::<u64>(), 0u32..=64).prop_map(|(v, n)| Op::BitsLsb(v, n)),
        Just(Op::Align),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mixed_write_programs_round_trip(ops in prop::collection::vec(op_strategy(), 0..200)) {
        let mut w = BitWriter::new();
        for op in &ops {
            match *op {
                Op::Bit(b) => w.write_bit(b),
                Op::Bits(v, n) => w.write_bits(v, n),
                Op::BitsLsb(v, n) => w.write_bits_lsb(v, n),
                Op::Align => w.align_byte(),
            }
        }
        let total_bits = w.bit_len();
        let bytes = w.into_bytes();
        prop_assert_eq!(bytes.len() as u64, total_bits.div_ceil(8));

        let mut r = BitReader::new(&bytes);
        for op in &ops {
            match *op {
                Op::Bit(b) => prop_assert_eq!(r.read_bit().unwrap(), b),
                Op::Bits(v, n) => {
                    let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
                    prop_assert_eq!(r.read_bits(n).unwrap(), v & mask);
                }
                Op::BitsLsb(v, n) => {
                    let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
                    prop_assert_eq!(r.read_bits_lsb(n).unwrap(), v & mask);
                }
                Op::Align => r.align_byte(),
            }
        }
    }

    #[test]
    fn varint_sequences_round_trip(vals in prop::collection::vec(any::<u64>(), 0..200)) {
        let mut buf = Vec::new();
        for &v in &vals {
            varint::write_uvarint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &vals {
            prop_assert_eq!(varint::read_uvarint(&buf, &mut pos).unwrap(), v);
        }
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn signed_varint_sequences_round_trip(vals in prop::collection::vec(any::<i64>(), 0..200)) {
        let mut buf = Vec::new();
        for &v in &vals {
            varint::write_ivarint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &vals {
            prop_assert_eq!(varint::read_ivarint(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn reads_never_exceed_written_bits(nbits in 0u64..512, extra in 1u32..64) {
        let mut w = BitWriter::new();
        for i in 0..nbits {
            w.write_bit(i % 3 == 0);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        // Consuming all *stored* bits (including padding) succeeds...
        let stored = bytes.len() as u64 * 8;
        for _ in 0..stored {
            r.read_bit().unwrap();
        }
        // ...and anything beyond errors out without panicking.
        prop_assert!(r.read_bits(extra).is_err());
    }
}
