//! The PWRP/1 server: accept loop, per-connection threads, request
//! dispatch, backpressure, quotas, and timeouts.
//!
//! Control flow per connection (see `DESIGN.md` §17):
//!
//! 1. Handshake: both sides announce their highest protocol version;
//!    the effective version is the minimum. A peer announcing 0 is
//!    refused with `unsupported_version`.
//! 2. Request loop: parse a prefix, dispatch by type, respond. Light
//!    requests (`ping`, `codecs`, `metrics`, `info`) run unconditionally;
//!    heavy requests (`compress`, `decompress`) must win a slot under
//!    the global in-flight cap or are rejected with `busy` — overload
//!    sheds load instead of queueing it.
//! 3. Any non-OK response closes the connection: after a failed request
//!    the remainder of its body is unconsumed and the byte stream is
//!    unsynchronized, so re-framing is the client's job (reconnect).
//!
//! Bodies never materialize: a compress request's raw elements flow
//! from the socket through [`ReadSource`] into the chunk pipeline, and
//! the PWS1 output flows straight back out through the segment framing;
//! decompression is the mirror image. Telemetry uses only the bounded
//! sink aggregates (`add_span_total`, `observe`, counters) — a
//! long-running server must not grow its trace sink per request.

use crate::metrics::ServerMetrics;
use crate::proto::{self, CompressHeader, RequestPrefix, SegmentWriter, ServeError};
use crate::ServeConfig;
use pwrel_parallel::{ChunkedCodec, WorkerPool};
use pwrel_pipeline::stream::decode_stream_header;
use pwrel_pipeline::{
    global, identify, CodecRegistry, CompressOpts, PipelineElem, ReadSource, StreamHeader,
    StreamInfo, WriteSink,
};
use pwrel_trace::{stage, Recorder, TraceSink};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Elements per PWS1 chunk when neither the request nor the server
/// config picks one (1 Mi elements = 4 MiB of `f32`, 8 MiB of `f64`).
const DEFAULT_CHUNK_ELEMS: usize = 1 << 20;

/// State shared by the acceptor and every connection thread.
struct Shared {
    cfg: ServeConfig,
    registry: &'static CodecRegistry,
    metrics: ServerMetrics,
    sink: TraceSink,
    /// Heavy requests currently processing (the `busy` gate).
    inflight: AtomicUsize,
    /// Open connections (the connection-cap gate and a metrics gauge).
    conns: AtomicUsize,
    shutdown: AtomicBool,
}

/// RAII slot under the global in-flight cap.
struct InflightGuard<'a>(&'a AtomicUsize);

impl<'a> InflightGuard<'a> {
    fn try_acquire(counter: &'a AtomicUsize, cap: usize) -> Option<Self> {
        let mut cur = counter.load(Ordering::Relaxed);
        loop {
            if cur >= cap {
                return None;
            }
            match counter.compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return Some(InflightGuard(counter)),
                Err(seen) => cur = seen,
            }
        }
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// RAII open-connection count.
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.conns.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Byte-counting reader enforcing the per-connection quota and flagging
/// why a downstream parse failed (quota vs. stall), so a
/// [`pwrel_data::CodecError`] surfacing from the pipeline can be mapped
/// back to the precise protocol status.
struct MeteredReader<R> {
    inner: R,
    bytes_read: u64,
    quota: u64,
    quota_hit: bool,
    timed_out: bool,
}

impl<R: Read> MeteredReader<R> {
    fn new(inner: R, quota: u64) -> Self {
        Self {
            inner,
            bytes_read: 0,
            quota,
            quota_hit: false,
            timed_out: false,
        }
    }
}

impl<R: Read> Read for MeteredReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let cap = if self.quota > 0 {
            let left = self.quota.saturating_sub(self.bytes_read);
            if left == 0 {
                self.quota_hit = true;
                return Err(std::io::Error::other("connection byte quota exhausted"));
            }
            (buf.len() as u64).min(left) as usize
        } else {
            buf.len()
        };
        let Some(window) = buf.get_mut(..cap) else {
            return Ok(0);
        };
        match self.inner.read(window) {
            Ok(n) => {
                self.bytes_read = self.bytes_read.saturating_add(n as u64);
                Ok(n)
            }
            Err(e) => {
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) {
                    self.timed_out = true;
                }
                Err(e)
            }
        }
    }
}

/// Per-connection lazily built parallel engine (`workers > 1` only).
/// Per-connection because the pool's submit side is exclusive: one
/// shared pool would serialize every request in the process, and
/// submitting from inside a pool task deadlocks.
#[derive(Default)]
struct ConnCtx {
    chunked: Option<ChunkedCodec>,
}

impl ConnCtx {
    fn engine(&mut self, cfg: &ServeConfig) -> Option<&mut ChunkedCodec> {
        if cfg.workers <= 1 {
            return None;
        }
        if self.chunked.is_none() {
            let mut cc = ChunkedCodec::new(WorkerPool::new(cfg.workers), 1);
            if cfg.window > 0 {
                cc.window = cfg.window;
            }
            self.chunked = Some(cc);
        }
        self.chunked.as_mut()
    }
}

/// A bound PWRP/1 server, ready to [`run`](Server::run) or
/// [`spawn`](Server::spawn).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Handle to a spawned server: address for clients plus shutdown.
/// Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the configured address (port 0 picks an ephemeral port —
    /// read it back with [`Server::local_addr`]).
    pub fn bind(cfg: ServeConfig) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(&cfg.addr).map_err(ServeError::Io)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                cfg,
                registry: global(),
                metrics: ServerMetrics::new(),
                sink: TraceSink::new(),
                inflight: AtomicUsize::new(0),
                conns: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound listen address.
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        self.listener.local_addr().map_err(ServeError::Io)
    }

    /// Runs the accept loop on the calling thread until shutdown.
    pub fn run(self) -> Result<(), ServeError> {
        let shared = Arc::clone(&self.shared);
        accept_loop(self.listener, shared);
        Ok(())
    }

    /// Runs the accept loop on a background thread and returns a handle
    /// for clients and shutdown.
    pub fn spawn(self) -> Result<ServerHandle, ServeError> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let listener = self.listener;
        let loop_shared = Arc::clone(&shared);
        let join = std::thread::Builder::new()
            .name("pwrp-accept".to_string())
            .spawn(move || accept_loop(listener, loop_shared))
            .map_err(ServeError::Io)?;
        Ok(ServerHandle {
            addr,
            shared,
            join: Some(join),
        })
    }
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and waits for the acceptor to exit. Connection
    /// threads notice the flag at their next request boundary.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        shared.metrics.record_connection();
        let open = shared.conns.fetch_add(1, Ordering::AcqRel) + 1;
        let guard = ConnGuard(Arc::clone(&shared));
        if open > shared.cfg.max_connections {
            shared.metrics.record_refused();
            shared.metrics.record_status(proto::ST_BUSY);
            refuse(stream, proto::ST_BUSY, "connection cap reached");
            drop(guard);
            continue;
        }
        let conn_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("pwrp-conn".to_string())
            .spawn(move || {
                let _guard = guard;
                handle_connection(stream, conn_shared);
            });
        // Spawn failure (resource exhaustion): shed the connection.
        if spawned.is_err() {
            shared.metrics.record_refused();
        }
    }
}

/// Best-effort refusal: hello + connection-level error, then close.
fn refuse(stream: TcpStream, status: u8, msg: &str) {
    let mut w = BufWriter::new(stream);
    let _ = w.write_all(&proto::encode_hello(proto::PROTO_VERSION));
    let _ = proto::write_response_prefix(&mut w, proto::MSG_CONNECTION, 0, status);
    let _ = proto::write_error_msg(&mut w, msg);
    let _ = w.flush();
}

/// Maps a request failure to its protocol status and detail, using the
/// reader's flags to tell quota exhaustion and stalls apart from
/// genuine corruption.
fn classify<R: Read>(err: &ServeError, reader: &MeteredReader<R>) -> (u8, String) {
    if reader.quota_hit {
        return (
            proto::ST_QUOTA,
            "connection byte quota exhausted".to_string(),
        );
    }
    if reader.timed_out || err.is_timeout() {
        return (proto::ST_TIMEOUT, "read timed out".to_string());
    }
    match err {
        ServeError::Status { code, msg } => (*code, msg.clone()),
        ServeError::Protocol(m) => (proto::ST_BAD_REQUEST, (*m).to_string()),
        ServeError::Codec(e) => match e {
            pwrel_data::CodecError::Corrupt(m) => (proto::ST_CORRUPT, (*m).to_string()),
            pwrel_data::CodecError::InvalidArgument(m) => (proto::ST_BAD_REQUEST, (*m).to_string()),
            pwrel_data::CodecError::Mismatch(m) => (proto::ST_BAD_REQUEST, (*m).to_string()),
        },
        ServeError::Io(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
            (proto::ST_BAD_REQUEST, "truncated request".to_string())
        }
        ServeError::Io(e) => (proto::ST_INTERNAL, format!("i/o failure: {}", e.kind())),
    }
}

/// Bumps the rejection counters matching a non-OK status.
fn note_status(shared: &Shared, status: u8) {
    shared.metrics.record_status(status);
    match status {
        proto::ST_BUSY => shared.sink.add(stage::C_SERVE_BUSY, 1),
        proto::ST_QUOTA => shared.sink.add(stage::C_SERVE_QUOTA, 1),
        proto::ST_TIMEOUT => shared.sink.add(stage::C_SERVE_TIMEOUTS, 1),
        _ => {}
    }
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let timeout = Duration::from_millis(shared.cfg.read_timeout_ms);
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = BufWriter::new(write_half);
    let mut reader = MeteredReader::new(BufReader::new(stream), shared.cfg.quota_bytes);

    // Handshake: announce, read the peer's announcement, take the min.
    if writer
        .write_all(&proto::encode_hello(proto::PROTO_VERSION))
        .is_err()
        || writer.flush().is_err()
    {
        return;
    }
    let peer_version = match proto::decode_hello(&mut reader) {
        Ok(v) => v,
        Err(_) => return,
    };
    if peer_version.min(proto::PROTO_VERSION) < 1 {
        note_status(&shared, proto::ST_UNSUPPORTED_VERSION);
        let _ = proto::write_response_prefix(
            &mut writer,
            proto::MSG_CONNECTION,
            0,
            proto::ST_UNSUPPORTED_VERSION,
        );
        let _ = proto::write_error_msg(&mut writer, "this server speaks PWRP version 1");
        let _ = writer.flush();
        return;
    }

    let mut conn = ConnCtx::default();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let prefix = match proto::decode_request_prefix(&mut reader) {
            Ok(None) => return,
            Ok(Some(p)) => p,
            Err(e) => {
                // Prefix never arrived intact; answer at connection level
                // when the cause is identifiable (the slowloris case).
                let (status, msg) = classify(&e, &reader);
                if status == proto::ST_TIMEOUT || status == proto::ST_QUOTA {
                    note_status(&shared, status);
                    let _ =
                        proto::write_response_prefix(&mut writer, proto::MSG_CONNECTION, 0, status);
                    let _ = proto::write_error_msg(&mut writer, &msg);
                    let _ = writer.flush();
                }
                return;
            }
        };
        shared.metrics.record_request();
        shared.sink.add(stage::C_SERVE_REQUESTS, 1);
        let started = Instant::now();
        let bytes_before = reader.bytes_read;

        let outcome = dispatch(prefix, &mut reader, &mut writer, &shared, &mut conn);

        let elapsed = started.elapsed();
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        shared.metrics.record_latency_us(us);
        shared.sink.observe(stage::O_SERVE_REQUEST_US, us as f64);
        shared.sink.add_span_total(stage::SERVE_REQUEST, ns, 1);
        shared.sink.add(
            stage::C_SERVE_BYTES_IN,
            reader.bytes_read.saturating_sub(bytes_before),
        );

        match outcome {
            Ok(true) => continue,
            Ok(false) => return,
            Err(e) => {
                let (status, msg) = classify(&e, &reader);
                note_status(&shared, status);
                let _ = proto::write_response_prefix(
                    &mut writer,
                    prefix.msg_type,
                    prefix.request_id,
                    status,
                );
                let _ = proto::write_error_msg(&mut writer, &msg);
                let _ = writer.flush();
                return;
            }
        }
    }
}

/// Runs one request. `Ok(true)` = responded, connection stays open;
/// `Ok(false)` = responded (possibly with an error trailer mid-body),
/// connection must close; `Err` = nothing written yet, the caller sends
/// a prefix-level error response and closes.
fn dispatch(
    prefix: RequestPrefix,
    reader: &mut MeteredReader<BufReader<TcpStream>>,
    writer: &mut BufWriter<TcpStream>,
    shared: &Shared,
    conn: &mut ConnCtx,
) -> Result<bool, ServeError> {
    match prefix.msg_type {
        proto::MSG_PING => {
            respond_ok_body(writer, prefix, shared, &[])?;
            Ok(true)
        }
        proto::MSG_CODECS => {
            let t0 = Instant::now();
            let mut text = String::new();
            for codec in shared.registry.iter() {
                use std::fmt::Write as _;
                let _ = writeln!(text, "{} {} {}", codec.id(), codec.name(), codec.describe());
            }
            span_total(shared, stage::SERVE_CODECS, t0);
            respond_ok_body(writer, prefix, shared, text.as_bytes())?;
            Ok(true)
        }
        proto::MSG_METRICS => {
            let t0 = Instant::now();
            let text = shared.metrics.render(
                &shared.sink,
                shared.conns.load(Ordering::Relaxed) as u64,
                shared.inflight.load(Ordering::Relaxed) as u64,
            );
            span_total(shared, stage::SERVE_METRICS, t0);
            respond_ok_body(writer, prefix, shared, text.as_bytes())?;
            Ok(true)
        }
        proto::MSG_INFO => {
            let t0 = Instant::now();
            let blob = proto::decode_info_blob(reader)?;
            let text = match identify(&blob) {
                Some(StreamInfo::Unified(h)) => format!("unified container: {h:?}"),
                Some(StreamInfo::Framed(h)) => format!("framed stream: {h:?}"),
                Some(StreamInfo::Legacy(kind)) => kind.describe().to_string(),
                None => "unrecognized stream".to_string(),
            };
            span_total(shared, stage::SERVE_INFO, t0);
            respond_ok_body(writer, prefix, shared, text.as_bytes())?;
            Ok(true)
        }
        proto::MSG_COMPRESS => handle_compress(prefix, reader, writer, shared, conn),
        proto::MSG_DECOMPRESS => handle_decompress(prefix, reader, writer, shared, conn),
        _ => Err(ServeError::Status {
            code: proto::ST_BAD_REQUEST,
            msg: format!("unknown request type 0x{:02x}", prefix.msg_type),
        }),
    }
}

fn span_total(shared: &Shared, name: &'static str, t0: Instant) {
    let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    shared.sink.add_span_total(name, ns, 1);
}

/// Writes a complete OK response with the given body bytes.
fn respond_ok_body(
    writer: &mut BufWriter<TcpStream>,
    prefix: RequestPrefix,
    shared: &Shared,
    body: &[u8],
) -> Result<(), ServeError> {
    proto::write_response_prefix(writer, prefix.msg_type, prefix.request_id, proto::ST_OK)?;
    let mut seg = SegmentWriter::new(writer);
    seg.write_all(body).map_err(ServeError::Io)?;
    let sent = seg.finish(proto::ST_OK, "")?;
    shared.sink.add(stage::C_SERVE_BYTES_OUT, sent);
    shared.metrics.record_status(proto::ST_OK);
    Ok(())
}

/// The `compress` handler: header → admission → in-flight gate → OK
/// prefix → stream the raw body through the pipeline into segments.
fn handle_compress(
    prefix: RequestPrefix,
    reader: &mut MeteredReader<BufReader<TcpStream>>,
    writer: &mut BufWriter<TcpStream>,
    shared: &Shared,
    conn: &mut ConnCtx,
) -> Result<bool, ServeError> {
    let hdr = proto::decode_compress_header(reader, shared.cfg.max_request_elems)?;
    let Some(codec) = shared.registry.get(hdr.codec_id) else {
        return Err(ServeError::Status {
            code: proto::ST_UNKNOWN_CODEC,
            msg: format!("no codec with id {}", hdr.codec_id),
        });
    };
    let name = codec.name();
    let Some(_slot) = InflightGuard::try_acquire(&shared.inflight, shared.cfg.max_inflight) else {
        return Err(ServeError::Status {
            code: proto::ST_BUSY,
            msg: "in-flight request cap reached; retry later".to_string(),
        });
    };

    proto::write_response_prefix(writer, prefix.msg_type, prefix.request_id, proto::ST_OK)?;
    let t0 = Instant::now();
    let mut seg = SegmentWriter::new(writer);
    let result = match hdr.elem_bits {
        32 => run_compress::<f32>(shared, conn, name, &hdr, reader, &mut seg),
        64 => run_compress::<f64>(shared, conn, name, &hdr, reader, &mut seg),
        _ => Err(pwrel_data::CodecError::InvalidArgument(
            "element width must be 32 or 64",
        )),
    };
    span_total(shared, stage::SERVE_COMPRESS, t0);
    finish_heavy(seg, result.map(|_| ()), reader, shared)
}

fn run_compress<F: PipelineElem>(
    shared: &Shared,
    conn: &mut ConnCtx,
    name: &str,
    hdr: &CompressHeader,
    reader: &mut MeteredReader<BufReader<TcpStream>>,
    seg: &mut SegmentWriter<'_>,
) -> Result<(), pwrel_data::CodecError> {
    let total = hdr.dims.len();
    let nbytes = (total as u64).saturating_mul(F::NBYTES as u64);
    let chunk_elems = effective_chunk_elems(hdr.chunk_elems, &shared.cfg, total);
    let opts = CompressOpts {
        bound: hdr.bound,
        base: hdr.base,
    };
    let limited = Read::take(reader, nbytes);
    let mut src: ReadSource<_> = ReadSource::new(limited);
    let stats = match conn.engine(&shared.cfg) {
        Some(cc) => {
            cc.chunk_elems = chunk_elems;
            cc.compress_stream_traced::<F>(
                shared.registry,
                name,
                &mut src,
                seg,
                hdr.dims,
                &opts,
                &shared.sink,
            )?
        }
        None => shared.registry.compress_stream_traced::<F>(
            name,
            &mut src,
            seg,
            hdr.dims,
            &opts,
            chunk_elems,
            &shared.sink,
        )?,
    };
    let _ = stats;
    Ok(())
}

/// The `decompress` handler: PWS1 header off the socket → shape
/// admission against the server cap → in-flight gate → OK prefix →
/// frame walk streaming raw elements into segments.
fn handle_decompress(
    prefix: RequestPrefix,
    reader: &mut MeteredReader<BufReader<TcpStream>>,
    writer: &mut BufWriter<TcpStream>,
    shared: &Shared,
    conn: &mut ConnCtx,
) -> Result<bool, ServeError> {
    let header = decode_stream_header(reader).map_err(ServeError::Codec)?;
    let total = header.dims.len() as u64;
    if total == 0 {
        return Err(ServeError::Protocol("empty field in stream header"));
    }
    if total > shared.cfg.max_request_elems {
        return Err(ServeError::Status {
            code: proto::ST_TOO_LARGE,
            msg: format!(
                "{total} elements exceeds the server cap of {}",
                shared.cfg.max_request_elems
            ),
        });
    }
    if shared.registry.get(header.codec_id).is_none() {
        return Err(ServeError::Status {
            code: proto::ST_UNKNOWN_CODEC,
            msg: format!("no codec with id {}", header.codec_id),
        });
    }
    let Some(_slot) = InflightGuard::try_acquire(&shared.inflight, shared.cfg.max_inflight) else {
        return Err(ServeError::Status {
            code: proto::ST_BUSY,
            msg: "in-flight request cap reached; retry later".to_string(),
        });
    };

    proto::write_response_prefix(writer, prefix.msg_type, prefix.request_id, proto::ST_OK)?;
    let t0 = Instant::now();
    let mut seg = SegmentWriter::new(writer);
    let result = match header.elem_bits {
        32 => run_decompress::<f32>(shared, conn, &header, reader, &mut seg),
        64 => run_decompress::<f64>(shared, conn, &header, reader, &mut seg),
        _ => Err(pwrel_data::CodecError::Corrupt(
            "element width must be 32 or 64",
        )),
    };
    span_total(shared, stage::SERVE_DECOMPRESS, t0);
    finish_heavy(seg, result, reader, shared)
}

fn run_decompress<F: PipelineElem>(
    shared: &Shared,
    conn: &mut ConnCtx,
    header: &StreamHeader,
    reader: &mut MeteredReader<BufReader<TcpStream>>,
    seg: &mut SegmentWriter<'_>,
) -> Result<(), pwrel_data::CodecError> {
    let mut sink: WriteSink<&mut SegmentWriter<'_>> = WriteSink::new(seg);
    match conn.engine(&shared.cfg) {
        Some(cc) => {
            cc.decompress_stream_body_traced::<F>(
                shared.registry,
                header,
                reader,
                &mut sink,
                &shared.sink,
            )?;
        }
        None => {
            shared.registry.decompress_stream_body_traced::<F>(
                header,
                reader,
                &mut sink,
                &shared.sink,
            )?;
        }
    }
    Ok(())
}

/// Closes a heavy-request body: OK trailer on success (connection
/// lives), classified error trailer on failure (connection closes —
/// the request's remaining body bytes were never consumed).
fn finish_heavy(
    seg: SegmentWriter<'_>,
    result: Result<(), pwrel_data::CodecError>,
    reader: &MeteredReader<BufReader<TcpStream>>,
    shared: &Shared,
) -> Result<bool, ServeError> {
    match result {
        Ok(()) => {
            let sent = seg.finish(proto::ST_OK, "")?;
            shared.sink.add(stage::C_SERVE_BYTES_OUT, sent);
            shared.metrics.record_status(proto::ST_OK);
            Ok(true)
        }
        Err(e) => {
            let (status, msg) = classify(&ServeError::Codec(e), reader);
            note_status(shared, status);
            let sent = seg.finish(status, &msg)?;
            shared.sink.add(stage::C_SERVE_BYTES_OUT, sent);
            Ok(false)
        }
    }
}

/// Picks the chunk size for a compress request: request value, else
/// server default, else [`DEFAULT_CHUNK_ELEMS`]; always clamped into
/// `1..=total` so hostile or oversized values cannot reach
/// [`pwrel_pipeline::stream::ChunkPlan`] unvetted.
fn effective_chunk_elems(requested: u64, cfg: &ServeConfig, total: usize) -> usize {
    let base = if requested > 0 {
        requested.min(total as u64) as usize
    } else if cfg.chunk_elems > 0 {
        cfg.chunk_elems
    } else {
        DEFAULT_CHUNK_ELEMS
    };
    base.min(total).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflight_guard_caps_and_releases() {
        let ctr = AtomicUsize::new(0);
        let a = InflightGuard::try_acquire(&ctr, 2).expect("slot 1");
        let b = InflightGuard::try_acquire(&ctr, 2).expect("slot 2");
        assert!(InflightGuard::try_acquire(&ctr, 2).is_none());
        drop(a);
        let c = InflightGuard::try_acquire(&ctr, 2).expect("freed slot");
        drop(b);
        drop(c);
        assert_eq!(ctr.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn metered_reader_enforces_quota() {
        let data = [7u8; 100];
        let mut r = MeteredReader::new(&data[..], 10);
        let mut buf = [0u8; 64];
        let n = r.read(&mut buf).expect("within quota");
        assert_eq!(n, 10);
        assert!(!r.quota_hit);
        assert!(r.read(&mut buf).is_err());
        assert!(r.quota_hit);
    }

    #[test]
    fn metered_reader_unlimited_when_zero() {
        let data = [7u8; 100];
        let mut r = MeteredReader::new(&data[..], 0);
        let mut out = Vec::new();
        r.read_to_end(&mut out).expect("no quota");
        assert_eq!(out.len(), 100);
        assert_eq!(r.bytes_read, 100);
    }

    #[test]
    fn chunk_elems_resolution_order_and_clamp() {
        let mut cfg = ServeConfig {
            chunk_elems: 0,
            ..ServeConfig::default()
        };
        assert_eq!(effective_chunk_elems(0, &cfg, 10), 10);
        assert_eq!(effective_chunk_elems(4, &cfg, 10), 4);
        assert_eq!(effective_chunk_elems(0, &cfg, 1 << 30), DEFAULT_CHUNK_ELEMS);
        cfg.chunk_elems = 6;
        assert_eq!(effective_chunk_elems(0, &cfg, 10), 6);
        assert_eq!(effective_chunk_elems(0, &cfg, 4), 4);
        assert_eq!(effective_chunk_elems(1 << 40, &cfg, 10), 10);
    }
}
