//! Lock-free server metrics and the text exposition behind the
//! `metrics` request.
//!
//! Everything on the hot path is a relaxed atomic: request counters, a
//! per-status response table, and a base-2 logarithmic latency
//! histogram. The render side folds in the shared
//! [`pwrel_trace::TraceSink`] aggregates (counters, observations, span
//! totals), so one `metrics` response carries both the service-level
//! view (`pwrp_*`) and the codec-level view (`trace_*`). Field meanings
//! are glossed in `OPERATIONS.md`.

use crate::proto::status_name;
use pwrel_trace::TraceSink;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log-2 latency buckets: bucket 0 holds 0 µs, bucket `i`
/// holds latencies in `[2^(i-1), 2^i)` µs. 64 buckets cover `u64`.
const LAT_BUCKETS: usize = 64;

/// Number of tracked response status codes (`ST_*` fit comfortably).
const STATUS_SLOTS: usize = 16;

/// A base-2 logarithmic histogram of microsecond latencies.
#[derive(Debug)]
pub struct LatencyHisto {
    buckets: [AtomicU64; LAT_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHisto {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHisto {
    fn bucket_index(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            (64 - us.leading_zeros() as usize).min(LAT_BUCKETS - 1)
        }
    }

    /// Records one latency observation.
    pub fn record(&self, us: u64) {
        let ix = Self::bucket_index(us);
        if let Some(b) = self.buckets.get(ix) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn observations(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Approximate `q`-quantile (0..=1) as the upper bound of the bucket
    /// where the cumulative count crosses `q * total`. Resolution is one
    /// power of two — exact quantiles come from raw samples (as
    /// `bench_serve` does); this is the cheap always-on view.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.observations();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (ix, b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(b.load(Ordering::Relaxed));
            if seen >= rank {
                return if ix == 0 { 0 } else { 1u64 << ix.min(63) };
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.observations();
        if n == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }
}

/// Service-level counters shared by every connection thread.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Requests fully parsed, by `MSG_*` slot (index = message type).
    requests: AtomicU64,
    /// Responses sent, indexed by status code.
    responses: [AtomicU64; STATUS_SLOTS],
    /// Connections accepted over the server's lifetime.
    conns_total: AtomicU64,
    /// Connections refused by the connection cap.
    conns_refused: AtomicU64,
    /// End-to-end request latency.
    latency: LatencyHisto,
}

impl ServerMetrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Self {
            requests: AtomicU64::new(0),
            responses: std::array::from_fn(|_| AtomicU64::new(0)),
            conns_total: AtomicU64::new(0),
            conns_refused: AtomicU64::new(0),
            latency: LatencyHisto::default(),
        }
    }

    /// Counts one fully parsed request.
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one response by status code.
    pub fn record_status(&self, code: u8) {
        let ix = (code as usize).min(STATUS_SLOTS - 1);
        if let Some(slot) = self.responses.get(ix) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one accepted connection.
    pub fn record_connection(&self) {
        self.conns_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one connection refused by the cap.
    pub fn record_refused(&self) {
        self.conns_refused.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one end-to-end request latency.
    pub fn record_latency_us(&self, us: u64) {
        self.latency.record(us);
    }

    /// Total parsed requests.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Responses sent with the given status code.
    pub fn responses_with(&self, code: u8) -> u64 {
        self.responses
            .get((code as usize).min(STATUS_SLOTS - 1))
            .map(|s| s.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Renders the text exposition: `pwrp_*` service lines followed by
    /// `trace_*` lines from the shared sink. One `name value` pair per
    /// line; the field glossary lives in `OPERATIONS.md`.
    pub fn render(&self, sink: &TraceSink, open_conns: u64, inflight: u64) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);
        let _ = writeln!(out, "pwrp_requests_total {}", self.requests());
        for (code, slot) in self.responses.iter().enumerate() {
            let n = slot.load(Ordering::Relaxed);
            if n > 0 {
                let _ = writeln!(out, "pwrp_responses_{} {}", status_name(code as u8), n);
            }
        }
        let _ = writeln!(out, "pwrp_connections_open {open_conns}");
        let _ = writeln!(
            out,
            "pwrp_connections_total {}",
            self.conns_total.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "pwrp_connections_refused {}",
            self.conns_refused.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "pwrp_inflight {inflight}");
        let _ = writeln!(out, "pwrp_latency_count {}", self.latency.observations());
        let _ = writeln!(out, "pwrp_latency_mean_us {:.1}", self.latency.mean_us());
        let _ = writeln!(
            out,
            "pwrp_latency_p50_us {}",
            self.latency.quantile_us(0.50)
        );
        let _ = writeln!(
            out,
            "pwrp_latency_p90_us {}",
            self.latency.quantile_us(0.90)
        );
        let _ = writeln!(
            out,
            "pwrp_latency_p99_us {}",
            self.latency.quantile_us(0.99)
        );
        let _ = writeln!(
            out,
            "pwrp_latency_max_us {}",
            self.latency.max_us.load(Ordering::Relaxed)
        );
        for (name, value) in sink.counters() {
            let _ = writeln!(out, "trace_{name} {value}");
        }
        for (name, stat) in sink.observations() {
            let _ = writeln!(out, "trace_obs_{name}_count {}", stat.count);
            let _ = writeln!(out, "trace_obs_{name}_mean {:.3}", stat.mean());
            if stat.count > 0 {
                let _ = writeln!(out, "trace_obs_{name}_min {:.3}", stat.min);
                let _ = writeln!(out, "trace_obs_{name}_max {:.3}", stat.max);
            }
        }
        for (name, total) in sink.span_totals() {
            let _ = writeln!(out, "trace_span_{name}_ns_total {}", total.total_ns);
            let _ = writeln!(out, "trace_span_{name}_calls {}", total.calls);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwrel_trace::Recorder;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHisto::default();
        for us in [0u64, 1, 2, 3, 100, 1000, 1000, 1000] {
            h.record(us);
        }
        assert_eq!(h.observations(), 8);
        assert_eq!(h.quantile_us(0.0), 0);
        // p99 lands in the 1000 µs bucket: upper bound 2^10 = 1024.
        assert_eq!(h.quantile_us(0.99), 1024);
        assert!(h.mean_us() > 0.0);
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0;
        for shift in 0..64u32 {
            let ix = LatencyHisto::bucket_index(1u64 << shift);
            assert!(ix >= last && ix < LAT_BUCKETS);
            last = ix;
        }
        assert_eq!(LatencyHisto::bucket_index(0), 0);
        assert_eq!(LatencyHisto::bucket_index(u64::MAX), LAT_BUCKETS - 1);
    }

    #[test]
    fn render_contains_service_and_trace_sections() {
        let m = ServerMetrics::new();
        m.record_request();
        m.record_status(crate::proto::ST_OK);
        m.record_connection();
        m.record_latency_us(500);
        let sink = TraceSink::new();
        sink.add(pwrel_trace::stage::C_SERVE_REQUESTS, 1);
        sink.observe(pwrel_trace::stage::O_SERVE_REQUEST_US, 500.0);
        sink.add_span_total(pwrel_trace::stage::SERVE_REQUEST, 1_000, 1);
        let text = m.render(&sink, 1, 0);
        assert!(text.contains("pwrp_requests_total 1"));
        assert!(text.contains("pwrp_responses_ok 1"));
        assert!(text.contains("pwrp_latency_p99_us"));
        assert!(text.contains("trace_serve_requests 1"));
        assert!(text.contains("trace_obs_serve_request_us_count 1"));
        assert!(text.contains("trace_span_serve.request_calls 1"));
    }

    #[test]
    fn status_codes_out_of_range_do_not_panic() {
        let m = ServerMetrics::new();
        m.record_status(255);
        assert_eq!(m.responses_with(255), 1);
    }
}
