//! `pwrel-serve`: the PWRP/1 compression service.
//!
//! A long-running TCP front end over the codec registry
//! ([`pwrel_pipeline::CodecRegistry`]): clients speak the length-prefixed
//! binary protocol specified in `PROTOCOL.md` (version "PWRP/1") to
//! compress, decompress, identify, and introspect without linking the
//! codecs themselves. Bodies stream as PWS1 frames through the chunk
//! pipeline, so neither side ever materializes a whole field — a
//! terabyte round trip holds a handful of chunks in memory.
//!
//! Layering (see `DESIGN.md` §17):
//!
//! - [`proto`] — the wire format: handshake, request/response headers,
//!   segmented bodies, status codes. Pure byte-level encode/decode over
//!   `io::Read`/`io::Write`, shared by server and client, with every
//!   hostile-input parse in a `decode_*` function (the audit's L1
//!   panic-free entry points) and every wire-derived length bounds-
//!   checked before it sizes an allocation (L5).
//! - [`server`] — the accept loop, per-connection threads, backpressure
//!   (global in-flight cap), per-connection byte quotas, and read
//!   timeouts.
//! - [`client`] — a small blocking client used by the CLI's `remote`
//!   subcommand, the black-box integration tests, and `bench_serve`.
//! - [`metrics`] — lock-free request/latency counters plus the
//!   `pwrel-trace` sink, rendered as the text `metrics` response.
//!
//! Concurrency model: one OS thread per connection (requests on a
//! connection are sequential, as the protocol requires), bounded by the
//! connection cap; heavy requests additionally pass the global in-flight
//! gate or are rejected with `busy` so overload degrades predictably
//! instead of queueing unboundedly. With `workers > 1` each connection
//! lazily builds its own [`pwrel_parallel::WorkerPool`]-backed
//! [`pwrel_parallel::ChunkedCodec`]; pools are per-connection because
//! the pool's submit side is exclusive — sharing one pool would
//! serialize every request in the process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod proto;
pub mod server;

pub use client::Client;
pub use proto::{CompressHeader, ServeError};
pub use server::{Server, ServerHandle};

/// Server configuration: every knob of the runbook in `OPERATIONS.md`
/// ("Running pwrel-serve").
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, `host:port` (port 0 = ephemeral).
    pub addr: String,
    /// Worker threads per request pipeline. 1 = compress/decompress run
    /// sequentially on the connection thread (best aggregate throughput
    /// when many clients share few cores); >1 = each connection lazily
    /// builds a `ChunkedCodec` over its own pool of this many workers.
    pub workers: usize,
    /// Bounded in-flight chunk window for the pipelined engines
    /// (0 = two chunks per worker).
    pub window: usize,
    /// Default elements per PWS1 chunk when a compress request leaves
    /// `chunk_elems` at 0 (clamped to the field size per request).
    pub chunk_elems: usize,
    /// Global cap on concurrently *processing* heavy requests
    /// (compress/decompress); excess requests are rejected with `busy`.
    pub max_inflight: usize,
    /// Cap on simultaneously open connections; excess connections get a
    /// connection-level `busy` response and are closed.
    pub max_connections: usize,
    /// Per-connection request-body byte quota (0 = unlimited). Counts
    /// bytes the server reads: raw elements for compress, the PWS1
    /// stream for decompress, the info blob.
    pub quota_bytes: u64,
    /// Cap on elements per request, bounding the server's per-request
    /// memory commitment before it trusts a header.
    pub max_request_elems: u64,
    /// Socket read timeout in milliseconds: a peer that stalls
    /// mid-header or mid-body this long is answered with `timeout`
    /// (best effort) and dropped.
    pub read_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:9474".to_string(),
            workers: 1,
            window: 0,
            chunk_elems: 0,
            max_inflight: 8,
            max_connections: 64,
            quota_bytes: 1 << 30,
            max_request_elems: 1 << 28,
            read_timeout_ms: 10_000,
        }
    }
}

impl ServeConfig {
    /// Parses `--flag value` pairs (the `pwrel-serve` binary's and
    /// `pwrel serve`'s shared flag set) on top of the defaults.
    ///
    /// Accepted flags: `--addr`, `--workers`, `--window`,
    /// `--chunk-elems`, `--inflight`, `--max-conns`, `--quota`,
    /// `--max-elems`, `--timeout-ms`.
    pub fn from_args(args: &[String]) -> Result<Self, String> {
        let mut cfg = Self::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let value = it
                .next()
                .ok_or_else(|| format!("{flag} needs a value"))?
                .as_str();
            let parse = |what: &str| -> Result<usize, String> {
                value
                    .parse::<usize>()
                    .map_err(|_| format!("{what} must be a non-negative integer, got {value:?}"))
            };
            match flag.as_str() {
                "--addr" => cfg.addr = value.to_string(),
                "--workers" => cfg.workers = parse("--workers")?.max(1),
                "--window" => cfg.window = parse("--window")?,
                "--chunk-elems" => cfg.chunk_elems = parse("--chunk-elems")?,
                "--inflight" => cfg.max_inflight = parse("--inflight")?.max(1),
                "--max-conns" => cfg.max_connections = parse("--max-conns")?.max(1),
                "--quota" => cfg.quota_bytes = parse("--quota")? as u64,
                "--max-elems" => cfg.max_request_elems = parse("--max-elems")?.max(1) as u64,
                "--timeout-ms" => cfg.read_timeout_ms = parse("--timeout-ms")?.max(1) as u64,
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_args_overrides_defaults() {
        let args: Vec<String> = [
            "--addr",
            "0.0.0.0:0",
            "--workers",
            "3",
            "--inflight",
            "2",
            "--quota",
            "1024",
            "--timeout-ms",
            "250",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cfg = ServeConfig::from_args(&args).unwrap();
        assert_eq!(cfg.addr, "0.0.0.0:0");
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.max_inflight, 2);
        assert_eq!(cfg.quota_bytes, 1024);
        assert_eq!(cfg.read_timeout_ms, 250);
        // Untouched knobs keep their defaults.
        assert_eq!(cfg.max_connections, ServeConfig::default().max_connections);
    }

    #[test]
    fn from_args_rejects_junk() {
        let bad = |args: &[&str]| {
            let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            ServeConfig::from_args(&v).unwrap_err()
        };
        assert!(bad(&["--workers"]).contains("needs a value"));
        assert!(bad(&["--workers", "lots"]).contains("non-negative integer"));
        assert!(bad(&["--wat", "1"]).contains("unknown flag"));
    }

    #[test]
    fn zero_floors_are_clamped() {
        let v: Vec<String> = ["--workers", "0", "--inflight", "0", "--timeout-ms", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cfg = ServeConfig::from_args(&v).unwrap();
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.max_inflight, 1);
        assert_eq!(cfg.read_timeout_ms, 1);
    }
}
