//! A small blocking PWRP/1 client: the CLI's `remote` subcommand, the
//! black-box integration tests, and `bench_serve` all speak through it.
//!
//! One struct, one connection, sequential requests. The only subtlety
//! is large request bodies: the server streams its response *while*
//! consuming the body, so a client that writes the whole body before
//! reading anything can deadlock once both TCP windows fill. Body-
//! carrying requests therefore send from a scoped helper thread while
//! the calling thread reads the response — see
//! [`Client::compress_stream`].

use crate::proto::{self, CompressHeader, RequestPrefix, ServeError};
use pwrel_core::LogBase;
use pwrel_data::{Dims, Float};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected PWRP/1 client.
///
/// Per the protocol, any error response closes the connection; after a
/// method returns an error the client is spent and the caller must
/// reconnect.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u32,
    server_version: u8,
}

impl Client {
    /// Connects and performs the version handshake.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr).map_err(ServeError::Io)?;
        let _ = stream.set_nodelay(true);
        let write_half = stream.try_clone().map_err(ServeError::Io)?;
        let mut writer = BufWriter::new(write_half);
        writer
            .write_all(&proto::encode_hello(proto::PROTO_VERSION))
            .map_err(ServeError::Io)?;
        writer.flush().map_err(ServeError::Io)?;
        let mut reader = BufReader::new(stream);
        let server_version = proto::decode_hello(&mut reader)?;
        if server_version.min(proto::PROTO_VERSION) < 1 {
            return Err(ServeError::Status {
                code: proto::ST_UNSUPPORTED_VERSION,
                msg: format!("server speaks version {server_version}"),
            });
        }
        Ok(Client {
            reader,
            writer,
            next_id: 1,
            server_version,
        })
    }

    /// The version the server announced in its hello.
    pub fn server_version(&self) -> u8 {
        self.server_version
    }

    /// Sets the socket read timeout (how long to wait on the server).
    pub fn set_read_timeout(&mut self, ms: u64) -> Result<(), ServeError> {
        self.reader
            .get_ref()
            .set_read_timeout(Some(Duration::from_millis(ms.max(1))))
            .map_err(ServeError::Io)
    }

    fn next_prefix(&mut self, msg_type: u8) -> RequestPrefix {
        let request_id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        RequestPrefix {
            msg_type,
            request_id,
        }
    }

    /// Sends a bodyless (or small-header) request and collects the
    /// response body.
    fn simple(&mut self, msg_type: u8, header: &[u8]) -> Result<Vec<u8>, ServeError> {
        let p = self.next_prefix(msg_type);
        let mut head = Vec::with_capacity(header.len() + 8);
        proto::encode_request_prefix(&mut head, p);
        head.extend_from_slice(header);
        self.writer.write_all(&head).map_err(ServeError::Io)?;
        self.writer.flush().map_err(ServeError::Io)?;
        let mut out = Vec::new();
        read_response(&mut self.reader, p, &mut out)?;
        Ok(out)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.simple(proto::MSG_PING, &[]).map(|_| ())
    }

    /// The server's codec listing: one `id name description` line per
    /// registered codec.
    pub fn codecs(&mut self) -> Result<String, ServeError> {
        let body = self.simple(proto::MSG_CODECS, &[])?;
        Ok(String::from_utf8_lossy(&body).into_owned())
    }

    /// The server's text metrics exposition.
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        let body = self.simple(proto::MSG_METRICS, &[])?;
        Ok(String::from_utf8_lossy(&body).into_owned())
    }

    /// Identifies a compressed stream from its leading bytes (at most
    /// [`proto::INFO_BLOB_MAX`]; longer slices are clipped client-side).
    pub fn info(&mut self, stream_prefix: &[u8]) -> Result<String, ServeError> {
        let end = stream_prefix.len().min(proto::INFO_BLOB_MAX as usize);
        let blob = stream_prefix.get(..end).unwrap_or_default();
        let mut header = Vec::with_capacity(blob.len() + 4);
        proto::encode_info_blob(&mut header, blob);
        let body = self.simple(proto::MSG_INFO, &header)?;
        Ok(String::from_utf8_lossy(&body).into_owned())
    }

    /// Compresses through the server: `body` supplies exactly
    /// `header.dims.len()` little-endian elements; the PWS1 stream the
    /// server produces is written to `out`. Returns the stream's byte
    /// count.
    pub fn compress_stream(
        &mut self,
        header: &CompressHeader,
        body: &mut (dyn Read + Send),
        out: &mut dyn Write,
    ) -> Result<u64, ServeError> {
        let p = self.next_prefix(proto::MSG_COMPRESS);
        let mut head = Vec::with_capacity(64);
        proto::encode_request_prefix(&mut head, p);
        proto::encode_compress_header(&mut head, header);
        self.request_with_body(p, head, body, out)
    }

    /// Decompresses through the server: `body` supplies a PWS1 stream
    /// (self-delimiting); the reconstructed little-endian elements are
    /// written to `out`. Returns the raw byte count.
    pub fn decompress_stream(
        &mut self,
        body: &mut (dyn Read + Send),
        out: &mut dyn Write,
    ) -> Result<u64, ServeError> {
        let p = self.next_prefix(proto::MSG_DECOMPRESS);
        let mut head = Vec::with_capacity(8);
        proto::encode_request_prefix(&mut head, p);
        self.request_with_body(p, head, body, out)
    }

    /// In-memory convenience over [`Client::compress_stream`]: encodes
    /// `data` little-endian and returns the server's PWS1 stream.
    pub fn compress_elems<F: Float>(
        &mut self,
        codec_id: u8,
        data: &[F],
        dims: Dims,
        bound: f64,
        base: LogBase,
    ) -> Result<Vec<u8>, ServeError> {
        let mut body = Vec::with_capacity(data.len().saturating_mul(F::NBYTES));
        for &v in data {
            v.write_le(&mut body);
        }
        let header = CompressHeader {
            codec_id,
            elem_bits: F::BITS as u8,
            base,
            bound,
            dims,
            chunk_elems: 0,
        };
        let mut out = Vec::new();
        let mut src: &[u8] = &body;
        self.compress_stream(&header, &mut src, &mut out)?;
        Ok(out)
    }

    /// In-memory convenience over [`Client::decompress_stream`]:
    /// decodes the server's little-endian response into elements.
    pub fn decompress_elems<F: Float>(&mut self, stream: &[u8]) -> Result<Vec<F>, ServeError> {
        let mut raw = Vec::new();
        let mut src: &[u8] = stream;
        self.decompress_stream(&mut src, &mut raw)?;
        if raw.len() % F::NBYTES != 0 {
            return Err(ServeError::Protocol(
                "response is not a whole number of elements",
            ));
        }
        let elems: Vec<F> = raw.chunks_exact(F::NBYTES).filter_map(F::read_le).collect();
        if elems.len() != raw.len() / F::NBYTES {
            return Err(ServeError::Protocol("element decode failed"));
        }
        Ok(elems)
    }

    /// Writes `head` + the body from a scoped sender thread while this
    /// thread reads the response, so neither side of the socket can
    /// stall the other.
    fn request_with_body(
        &mut self,
        p: RequestPrefix,
        head: Vec<u8>,
        body: &mut (dyn Read + Send),
        out: &mut dyn Write,
    ) -> Result<u64, ServeError> {
        let reader = &mut self.reader;
        let writer = &mut self.writer;
        std::thread::scope(|s| {
            let sender = s.spawn(move || -> Result<(), ServeError> {
                writer.write_all(&head).map_err(ServeError::Io)?;
                std::io::copy(body, writer).map_err(ServeError::Io)?;
                writer.flush().map_err(ServeError::Io)?;
                Ok(())
            });
            let received = read_response(reader, p, out);
            let sent = sender
                .join()
                .unwrap_or(Err(ServeError::Protocol("request sender thread failed")));
            match (received, sent) {
                (Ok(n), Ok(())) => Ok(n),
                // A response-side error explains any send-side breakage
                // (the server rejected and closed), so it wins.
                (Err(e), _) => Err(e),
                (Ok(_), Err(e)) => Err(e),
            }
        })
    }
}

/// Reads one response for `expect`, streaming its body into `out`.
/// Free function (not a method) so [`Client::request_with_body`] can
/// split-borrow the reader while the writer is lent to the sender.
fn read_response(
    reader: &mut BufReader<TcpStream>,
    expect: RequestPrefix,
    out: &mut dyn Write,
) -> Result<u64, ServeError> {
    let (msg_type, request_id, status) = proto::decode_response_prefix(reader)?;
    if msg_type == proto::MSG_CONNECTION {
        let msg = proto::decode_error_msg(reader)?;
        return Err(ServeError::Status { code: status, msg });
    }
    if msg_type != expect.msg_type || request_id != expect.request_id {
        return Err(ServeError::Protocol("response does not match the request"));
    }
    if status != proto::ST_OK {
        let msg = proto::decode_error_msg(reader)?;
        return Err(ServeError::Status { code: status, msg });
    }
    proto::decode_segmented_body(reader, out)
}
