//! The `pwrel-serve` binary: bind, print the address, serve forever.
//! Flag reference and the operational runbook live in `OPERATIONS.md`.

use pwrel_serve::{ServeConfig, Server};

const USAGE: &str = "\
pwrel-serve: PWRP/1 compression service over the pwrel codec registry

USAGE:
    pwrel-serve [FLAGS]

FLAGS (all take a value; defaults in parentheses):
    --addr <host:port>   listen address (127.0.0.1:9474; port 0 = ephemeral)
    --workers <n>        worker threads per request pipeline (1)
    --window <n>         in-flight chunk window, 0 = 2 per worker (0)
    --chunk-elems <n>    default elements per PWS1 chunk, 0 = auto (0)
    --inflight <n>       global cap on concurrent heavy requests (8)
    --max-conns <n>      cap on open connections (64)
    --quota <bytes>      per-connection request-byte quota, 0 = off (1 GiB)
    --max-elems <n>      per-request element cap (2^28)
    --timeout-ms <ms>    socket read/write timeout (10000)

The wire protocol is specified in PROTOCOL.md; the runbook (metrics
glossary, triage for busy/quota/timeout) is in OPERATIONS.md.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let cfg = match ServeConfig::from_args(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("pwrel-serve: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let server = match Server::bind(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("pwrel-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    if let Ok(addr) = server.local_addr() {
        println!("pwrel-serve listening on {addr}");
    }
    if let Err(e) = server.run() {
        eprintln!("pwrel-serve: {e}");
        std::process::exit(1);
    }
}
