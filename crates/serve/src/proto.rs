//! The PWRP/1 wire format: handshake, request/response framing, status
//! codes, and segmented bodies.
//!
//! This module is the single source of truth for the byte layout
//! specified in `PROTOCOL.md` — server and client both encode and
//! decode through it, so the two sides cannot drift. Every function
//! that parses peer-controlled bytes is named `decode_*`: those are the
//! audit's L1 entry points (panic-free by contract — a hostile peer
//! must never be able to kill a connection thread with anything but an
//! error return), and every length they read off the wire is checked
//! against an explicit cap before it sizes an allocation or a read
//! (L5 admission, in the style of `FrameWalker::admit`).

use pwrel_core::LogBase;
use pwrel_data::{CodecError, Dims};
use std::io::{Read, Write};

/// Handshake magic: both hellos start with these four bytes.
pub const HELLO_MAGIC: &[u8; 4] = b"PWRP";
/// The protocol version this build speaks.
pub const PROTO_VERSION: u8 = 1;
/// Server hello version meaning "no common version; closing".
pub const NO_COMMON_VERSION: u8 = 0;

/// Request type: compress raw elements into a PWS1 stream.
pub const MSG_COMPRESS: u8 = 0x01;
/// Request type: decompress a PWS1 stream into raw elements.
pub const MSG_DECOMPRESS: u8 = 0x02;
/// Request type: identify a stream prefix (kind, codec, shape).
pub const MSG_INFO: u8 = 0x03;
/// Request type: list the registered codecs.
pub const MSG_CODECS: u8 = 0x04;
/// Request type: text metrics exposition.
pub const MSG_METRICS: u8 = 0x05;
/// Request type: liveness probe, empty body both ways.
pub const MSG_PING: u8 = 0x06;
/// Pseudo request type used in connection-level error responses (sent
/// before any request was parsed, e.g. handshake timeout or the
/// connection cap).
pub const MSG_CONNECTION: u8 = 0x00;

/// Status: success; a segmented body follows.
pub const ST_OK: u8 = 0;
/// Status: malformed request header field.
pub const ST_BAD_REQUEST: u8 = 1;
/// Status: codec id not in the registry.
pub const ST_UNKNOWN_CODEC: u8 = 2;
/// Status: request body failed to decode.
pub const ST_CORRUPT: u8 = 3;
/// Status: in-flight or connection cap exceeded; retry later.
pub const ST_BUSY: u8 = 4;
/// Status: per-connection byte quota exhausted.
pub const ST_QUOTA: u8 = 5;
/// Status: peer stalled past the read timeout.
pub const ST_TIMEOUT: u8 = 6;
/// Status: request exceeds the server's element cap.
pub const ST_TOO_LARGE: u8 = 7;
/// Status: server-side failure not attributable to the request.
pub const ST_INTERNAL: u8 = 8;
/// Status: handshake version not supported.
pub const ST_UNSUPPORTED_VERSION: u8 = 9;

/// Hard cap on one response-body segment's payload length.
pub const SEG_MAX: u32 = 1 << 20;
/// Segment size the writer targets (one syscall per 64 KiB of body).
pub const SEG_LEN: usize = 64 << 10;
/// Cap on an `info` request's stream-prefix blob.
pub const INFO_BLOB_MAX: u64 = 4096;
/// Cap on an error message's byte length.
pub const ERR_MSG_MAX: u64 = 1024;

/// Human-readable status-code name (the glossary key in
/// `OPERATIONS.md`).
pub fn status_name(code: u8) -> &'static str {
    match code {
        ST_OK => "ok",
        ST_BAD_REQUEST => "bad_request",
        ST_UNKNOWN_CODEC => "unknown_codec",
        ST_CORRUPT => "corrupt",
        ST_BUSY => "busy",
        ST_QUOTA => "quota",
        ST_TIMEOUT => "timeout",
        ST_TOO_LARGE => "too_large",
        ST_INTERNAL => "internal",
        ST_UNSUPPORTED_VERSION => "unsupported_version",
        _ => "unknown",
    }
}

/// Everything that can go wrong speaking PWRP/1.
#[derive(Debug)]
pub enum ServeError {
    /// Socket or file I/O failed (timeouts surface here too).
    Io(std::io::Error),
    /// The peer violated the wire framing.
    Protocol(&'static str),
    /// A PWRP/1 error status: produced by the server when rejecting a
    /// request, reproduced by the client when it receives one.
    Status {
        /// Status code (`ST_*`).
        code: u8,
        /// Human-readable detail carried on the wire.
        msg: String,
    },
    /// Codec-level failure while processing a body.
    Codec(CodecError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ServeError::Status { code, msg } => {
                write!(f, "{} ({msg})", status_name(*code))
            }
            ServeError::Codec(e) => write!(f, "codec error: {e:?}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<CodecError> for ServeError {
    fn from(e: CodecError) -> Self {
        ServeError::Codec(e)
    }
}

impl ServeError {
    /// True when the underlying cause is a socket read timeout.
    pub fn is_timeout(&self) -> bool {
        matches!(self, ServeError::Io(e) if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ))
    }
}

// ---------------------------------------------------------------------------
// Primitive reads/writes
// ---------------------------------------------------------------------------

/// Reads one byte (an untrusted-source primitive for the taint audit).
fn read_u8(r: &mut dyn Read) -> Result<u8, ServeError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b).map_err(ServeError::Io)?;
    let [byte] = b;
    Ok(byte)
}

/// Reads a little-endian `u32` off the wire.
fn read_u32(r: &mut dyn Read) -> Result<u32, ServeError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(ServeError::Io)?;
    Ok(u32::from_le_bytes(b))
}

/// Reads a little-endian `f64` off the wire.
fn read_f64(r: &mut dyn Read) -> Result<f64, ServeError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(ServeError::Io)?;
    Ok(f64::from_le_bytes(b))
}

/// Reads an LEB128 varint (10-byte cap, same encoding as PWS1).
fn read_uvarint(r: &mut dyn Read) -> Result<u64, ServeError> {
    let mut val = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = read_u8(r)?;
        let low = u64::from(byte & 0x7f);
        val |= low
            .checked_shl(shift)
            .ok_or(ServeError::Protocol("varint overflow"))?;
        if byte & 0x80 == 0 {
            return Ok(val);
        }
        shift += 7;
        if shift >= 64 {
            return Err(ServeError::Protocol("varint overflow"));
        }
    }
}

fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

/// Encodes a hello (client's or server's): magic plus a version byte.
pub fn encode_hello(version: u8) -> [u8; 5] {
    let mut b = [0u8; 5];
    b[..4].copy_from_slice(HELLO_MAGIC);
    b[4] = version;
    b
}

/// Decodes a hello, returning the peer's version byte.
pub fn decode_hello(r: &mut dyn Read) -> Result<u8, ServeError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(ServeError::Io)?;
    if &magic != HELLO_MAGIC {
        return Err(ServeError::Protocol("bad hello magic"));
    }
    read_u8(r)
}

// ---------------------------------------------------------------------------
// Request framing
// ---------------------------------------------------------------------------

/// The fixed prefix of every request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestPrefix {
    /// `MSG_*` request type.
    pub msg_type: u8,
    /// Client-chosen correlation id, echoed in the response.
    pub request_id: u32,
}

/// Encodes a request prefix.
pub fn encode_request_prefix(out: &mut Vec<u8>, p: RequestPrefix) {
    out.push(p.msg_type);
    out.extend_from_slice(&p.request_id.to_le_bytes());
}

/// Decodes the next request prefix, or `None` on a clean end of
/// stream (the peer closed between requests).
pub fn decode_request_prefix(r: &mut dyn Read) -> Result<Option<RequestPrefix>, ServeError> {
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ServeError::Io(e)),
        }
    }
    let request_id = read_u32(r)?;
    let [msg_type] = first;
    Ok(Some(RequestPrefix {
        msg_type,
        request_id,
    }))
}

/// The type-specific header of a compress request: everything the
/// server needs to run the chunk pipeline, so the point-wise bound
/// travels with each request rather than living in server state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressHeader {
    /// Registry codec id (`pwrel codecs` lists them).
    pub codec_id: u8,
    /// Element width: 32 or 64.
    pub elem_bits: u8,
    /// Log base for the transform codecs.
    pub base: LogBase,
    /// Error bound (interpretation is per-codec, as in the registry).
    pub bound: f64,
    /// Field shape; the raw body is exactly `dims.len()` elements.
    pub dims: Dims,
    /// Elements per PWS1 chunk; 0 = server default.
    pub chunk_elems: u64,
}

/// Encodes a compress request header (everything after the prefix).
pub fn encode_compress_header(out: &mut Vec<u8>, h: &CompressHeader) {
    out.push(h.codec_id);
    out.push(h.elem_bits);
    out.push(h.base.id());
    out.extend_from_slice(&h.bound.to_le_bytes());
    let (rank, nx, ny, nz) = h.dims.to_header();
    out.push(rank);
    put_uvarint(out, nx);
    put_uvarint(out, ny);
    put_uvarint(out, nz);
    put_uvarint(out, h.chunk_elems);
}

/// Decodes and admits a compress request header. `max_elems` is the
/// server's per-request element cap; a shape over it is rejected here,
/// before the server commits any memory to the request.
pub fn decode_compress_header(
    r: &mut dyn Read,
    max_elems: u64,
) -> Result<CompressHeader, ServeError> {
    let codec_id = read_u8(r)?;
    let elem_bits = read_u8(r)?;
    if elem_bits != 32 && elem_bits != 64 {
        return Err(ServeError::Protocol("element width must be 32 or 64"));
    }
    let base = LogBase::from_id(read_u8(r)?).ok_or(ServeError::Protocol("bad log base id"))?;
    let bound = read_f64(r)?;
    if !bound.is_finite() || bound <= 0.0 {
        return Err(ServeError::Protocol("bound must be finite and positive"));
    }
    let rank = read_u8(r)?;
    let nx = read_uvarint(r)?;
    let ny = read_uvarint(r)?;
    let nz = read_uvarint(r)?;
    let dims =
        Dims::from_header(rank, nx, ny, nz).ok_or(ServeError::Protocol("bad dims header"))?;
    let total = dims.len() as u64;
    if total == 0 {
        return Err(ServeError::Protocol("empty field"));
    }
    if total > max_elems {
        return Err(ServeError::Status {
            code: ST_TOO_LARGE,
            msg: format!("{total} elements exceeds the server cap of {max_elems}"),
        });
    }
    let chunk_elems = read_uvarint(r)?;
    if chunk_elems > total {
        return Err(ServeError::Protocol("chunk_elems exceeds the field"));
    }
    Ok(CompressHeader {
        codec_id,
        elem_bits,
        base,
        bound,
        dims,
        chunk_elems,
    })
}

/// Encodes an info request header: blob length plus the blob itself.
pub fn encode_info_blob(out: &mut Vec<u8>, blob: &[u8]) {
    put_uvarint(out, blob.len() as u64);
    out.extend_from_slice(blob);
}

/// Decodes an info request's stream-prefix blob (capped at
/// [`INFO_BLOB_MAX`] bytes *before* the allocation).
pub fn decode_info_blob(r: &mut dyn Read) -> Result<Vec<u8>, ServeError> {
    let len = read_uvarint(r)?;
    if len > INFO_BLOB_MAX {
        return Err(ServeError::Status {
            code: ST_TOO_LARGE,
            msg: format!("info blob of {len} bytes exceeds the {INFO_BLOB_MAX}-byte cap"),
        });
    }
    let mut blob = vec![0u8; len as usize];
    r.read_exact(&mut blob).map_err(ServeError::Io)?;
    Ok(blob)
}

// ---------------------------------------------------------------------------
// Response framing
// ---------------------------------------------------------------------------

/// Writes a response prefix: echoed type and id plus the status byte.
pub fn write_response_prefix(
    w: &mut dyn Write,
    msg_type: u8,
    request_id: u32,
    status: u8,
) -> Result<(), ServeError> {
    let [i0, i1, i2, i3] = request_id.to_le_bytes();
    let b = [msg_type, i0, i1, i2, i3, status];
    w.write_all(&b).map_err(ServeError::Io)
}

/// Decodes a response prefix: `(msg_type, request_id, status)`.
pub fn decode_response_prefix(r: &mut dyn Read) -> Result<(u8, u32, u8), ServeError> {
    let msg_type = read_u8(r)?;
    let request_id = read_u32(r)?;
    let status = read_u8(r)?;
    Ok((msg_type, request_id, status))
}

/// Writes an error detail string (truncated to [`ERR_MSG_MAX`]).
pub fn write_error_msg(w: &mut dyn Write, msg: &str) -> Result<(), ServeError> {
    let bytes = msg.as_bytes();
    let mut end = bytes.len().min(ERR_MSG_MAX as usize);
    while end > 0 && !msg.is_char_boundary(end) {
        end -= 1;
    }
    let clipped = bytes.get(..end).unwrap_or_default();
    let mut head = Vec::with_capacity(clipped.len() + 2);
    put_uvarint(&mut head, clipped.len() as u64);
    head.extend_from_slice(clipped);
    w.write_all(&head).map_err(ServeError::Io)
}

/// Decodes an error detail string (length capped before allocation;
/// invalid UTF-8 is replaced, never rejected — the message is advisory).
pub fn decode_error_msg(r: &mut dyn Read) -> Result<String, ServeError> {
    let len = read_uvarint(r)?;
    if len > ERR_MSG_MAX {
        return Err(ServeError::Protocol("oversized error message"));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf).map_err(ServeError::Io)?;
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

/// Buffering writer for a segmented OK body: emits
/// `u32 len | payload` segments of at most [`SEG_LEN`] bytes and closes
/// with the zero terminator plus the trailer status. The trailer is
/// what lets the server abort cleanly *mid-body* — by the time a codec
/// error surfaces, the prefix already said `ok`, so the failure rides
/// behind the last segment instead of corrupting the stream.
pub struct SegmentWriter<'a> {
    inner: &'a mut dyn Write,
    buf: Vec<u8>,
    payload_bytes: u64,
    finished: bool,
}

impl<'a> SegmentWriter<'a> {
    /// A segmented body over `inner`.
    pub fn new(inner: &'a mut dyn Write) -> Self {
        Self {
            inner,
            buf: Vec::with_capacity(SEG_LEN),
            payload_bytes: 0,
            finished: false,
        }
    }

    /// Total payload bytes emitted so far (excluding framing).
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    fn emit_buf(&mut self) -> Result<(), ServeError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let len = self.buf.len() as u32;
        self.inner
            .write_all(&len.to_le_bytes())
            .map_err(ServeError::Io)?;
        self.inner.write_all(&self.buf).map_err(ServeError::Io)?;
        self.payload_bytes = self.payload_bytes.saturating_add(u64::from(len));
        self.buf.clear();
        Ok(())
    }

    /// Flushes pending payload, writes the terminator, and closes the
    /// body with `status` (plus a detail message when non-OK).
    pub fn finish(mut self, status: u8, msg: &str) -> Result<u64, ServeError> {
        self.emit_buf()?;
        self.inner
            .write_all(&0u32.to_le_bytes())
            .map_err(ServeError::Io)?;
        self.inner.write_all(&[status]).map_err(ServeError::Io)?;
        if status != ST_OK {
            write_error_msg(self.inner, msg)?;
        }
        self.inner.flush().map_err(ServeError::Io)?;
        self.finished = true;
        Ok(self.payload_bytes)
    }
}

impl Write for SegmentWriter<'_> {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        let mut rest = data;
        while !rest.is_empty() {
            let room = SEG_LEN.saturating_sub(self.buf.len());
            let take = room.min(rest.len());
            let (now, later) = rest.split_at(take);
            self.buf.extend_from_slice(now);
            rest = later;
            if self.buf.len() >= SEG_LEN {
                self.emit_buf()
                    .map_err(|_| std::io::Error::other("segment write failed"))?;
            }
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.emit_buf()
            .map_err(|_| std::io::Error::other("segment write failed"))?;
        self.inner.flush()
    }
}

/// Decodes a segmented body into `out`, returning the payload byte
/// count. A non-OK trailer becomes [`ServeError::Status`] — by then
/// `out` may hold a partial body, which the caller must discard.
pub fn decode_segmented_body(r: &mut dyn Read, out: &mut dyn Write) -> Result<u64, ServeError> {
    let mut scratch: Vec<u8> = Vec::new();
    let mut total = 0u64;
    loop {
        let seg = read_u32(r)?;
        if seg == 0 {
            break;
        }
        if seg > SEG_MAX {
            return Err(ServeError::Protocol("oversized body segment"));
        }
        let n = seg as usize;
        if scratch.len() < n {
            scratch.resize(n, 0);
        }
        let buf = scratch
            .get_mut(..n)
            .ok_or(ServeError::Protocol("segment scratch"))?;
        r.read_exact(buf).map_err(ServeError::Io)?;
        out.write_all(buf).map_err(ServeError::Io)?;
        total = total.saturating_add(u64::from(seg));
    }
    let status = read_u8(r)?;
    if status != ST_OK {
        let msg = decode_error_msg(r)?;
        return Err(ServeError::Status { code: status, msg });
    }
    out.flush().map_err(ServeError::Io)?;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trips() {
        let b = encode_hello(PROTO_VERSION);
        let mut r: &[u8] = &b;
        assert_eq!(decode_hello(&mut r).unwrap(), PROTO_VERSION);
    }

    #[test]
    fn hello_rejects_bad_magic() {
        let mut r: &[u8] = b"HTTP/1.1 GET";
        assert!(matches!(decode_hello(&mut r), Err(ServeError::Protocol(_))));
    }

    #[test]
    fn request_prefix_round_trips_and_eof_is_none() {
        let mut out = Vec::new();
        let p = RequestPrefix {
            msg_type: MSG_COMPRESS,
            request_id: 0xDEAD_BEEF,
        };
        encode_request_prefix(&mut out, p);
        let mut r: &[u8] = &out;
        assert_eq!(decode_request_prefix(&mut r).unwrap(), Some(p));
        assert_eq!(decode_request_prefix(&mut r).unwrap(), None);
    }

    #[test]
    fn compress_header_round_trips() {
        let h = CompressHeader {
            codec_id: 3,
            elem_bits: 64,
            base: LogBase::E,
            bound: 1e-4,
            dims: Dims::d3(4, 8, 16),
            chunk_elems: 128,
        };
        let mut out = Vec::new();
        encode_compress_header(&mut out, &h);
        let mut r: &[u8] = &out;
        assert_eq!(decode_compress_header(&mut r, 1 << 20).unwrap(), h);
    }

    #[test]
    fn compress_header_rejections() {
        let base = CompressHeader {
            codec_id: 1,
            elem_bits: 32,
            base: LogBase::Two,
            bound: 1e-3,
            dims: Dims::d1(100),
            chunk_elems: 0,
        };
        // Element cap.
        let mut out = Vec::new();
        encode_compress_header(&mut out, &base);
        let mut r: &[u8] = &out;
        assert!(matches!(
            decode_compress_header(&mut r, 10),
            Err(ServeError::Status {
                code: ST_TOO_LARGE,
                ..
            })
        ));
        // Bad element width.
        let mut out2 = out.clone();
        out2[1] = 16;
        let mut r: &[u8] = &out2;
        assert!(matches!(
            decode_compress_header(&mut r, 1 << 20),
            Err(ServeError::Protocol(_))
        ));
        // Non-positive bound.
        let mut h = base;
        h.bound = -1.0;
        let mut out3 = Vec::new();
        encode_compress_header(&mut out3, &h);
        let mut r: &[u8] = &out3;
        assert!(matches!(
            decode_compress_header(&mut r, 1 << 20),
            Err(ServeError::Protocol(_))
        ));
        // chunk_elems over the field.
        let mut h = base;
        h.chunk_elems = 101;
        let mut out4 = Vec::new();
        encode_compress_header(&mut out4, &h);
        let mut r: &[u8] = &out4;
        assert!(matches!(
            decode_compress_header(&mut r, 1 << 20),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn segmented_body_round_trips_across_segment_boundaries() {
        let payload: Vec<u8> = (0..SEG_LEN * 2 + 777).map(|i| (i % 251) as u8).collect();
        let mut wire = Vec::new();
        {
            let mut w = SegmentWriter::new(&mut wire);
            w.write_all(&payload).unwrap();
            assert_eq!(w.finish(ST_OK, "").unwrap(), payload.len() as u64);
        }
        let mut back = Vec::new();
        let mut r: &[u8] = &wire;
        let n = decode_segmented_body(&mut r, &mut back).unwrap();
        assert_eq!(n, payload.len() as u64);
        assert_eq!(back, payload);
        assert!(r.is_empty(), "trailer must consume the wire exactly");
    }

    #[test]
    fn segmented_body_error_trailer_surfaces_as_status() {
        let mut wire = Vec::new();
        {
            let mut w = SegmentWriter::new(&mut wire);
            w.write_all(b"partial").unwrap();
            w.finish(ST_CORRUPT, "bad frame").unwrap();
        }
        let mut back = Vec::new();
        let mut r: &[u8] = &wire;
        match decode_segmented_body(&mut r, &mut back) {
            Err(ServeError::Status { code, msg }) => {
                assert_eq!(code, ST_CORRUPT);
                assert_eq!(msg, "bad frame");
            }
            other => panic!("expected status error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_segment_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(SEG_MAX + 1).to_le_bytes());
        let mut r: &[u8] = &wire;
        let mut sink = Vec::new();
        assert!(matches!(
            decode_segmented_body(&mut r, &mut sink),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn info_blob_cap_is_enforced() {
        let mut wire = Vec::new();
        put_uvarint(&mut wire, INFO_BLOB_MAX + 1);
        let mut r: &[u8] = &wire;
        assert!(matches!(
            decode_info_blob(&mut r),
            Err(ServeError::Status {
                code: ST_TOO_LARGE,
                ..
            })
        ));
    }

    #[test]
    fn error_msg_truncates_to_cap() {
        let long = "x".repeat(5000);
        let mut wire = Vec::new();
        write_error_msg(&mut wire, &long).unwrap();
        let mut r: &[u8] = &wire;
        let back = decode_error_msg(&mut r).unwrap();
        assert_eq!(back.len(), ERR_MSG_MAX as usize);
    }

    #[test]
    fn uvarint_overflow_is_an_error() {
        let wire = [0xffu8; 11];
        let mut r: &[u8] = &wire;
        assert!(matches!(read_uvarint(&mut r), Err(ServeError::Protocol(_))));
    }
}
