//! Back-compat sniffing and decoding of pre-container streams.
//!
//! Before the unified container, every codec wrote its own magic and
//! readers matched on it. Streams in the wild keep decoding: when a
//! stream does not start with the unified magic, the registry falls
//! back to the per-codec sniff below.

use crate::codec::PipelineElem;
use crate::container::{self, ContainerHeader};
use crate::stream::{self, StreamHeader};
use pwrel_core::{LogBase, PwRelCompressor};
use pwrel_data::{CodecError, Dims};
use pwrel_sz::SzCompressor;
use pwrel_zfp::ZfpCompressor;

/// Legacy stream kinds recognisable from their per-codec magic bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKind {
    /// Log-transform container (SZ_T / ZFP_T).
    PwRel,
    /// Bare SZ container (possibly inside an LZ wrapper).
    Sz,
    /// ZFP container.
    Zfp,
    /// FPZIP container.
    Fpzip,
    /// ISABELA container.
    Isabela,
}

impl StreamKind {
    /// Human-readable description for stream listings.
    pub fn describe(self) -> &'static str {
        match self {
            StreamKind::PwRel => "legacy pwrel log-transform container (SZ_T/ZFP_T)",
            StreamKind::Sz => "legacy SZ container",
            StreamKind::Zfp => "legacy ZFP container",
            StreamKind::Fpzip => "legacy FPZIP container",
            StreamKind::Isabela => "legacy ISABELA container",
        }
    }
}

/// What a compressed stream is, across all container generations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamInfo {
    /// A unified container with its parsed header.
    Unified(ContainerHeader),
    /// A framed chunk stream with its parsed stream header.
    Framed(StreamHeader),
    /// A pre-container stream recognised by its per-codec magic.
    Legacy(StreamKind),
}

/// Identifies any compressed stream: unified, framed, or legacy.
pub fn identify(bytes: &[u8]) -> Option<StreamInfo> {
    if container::is_unified(bytes) {
        return container::unwrap(bytes)
            .ok()
            .map(|(h, _)| StreamInfo::Unified(h));
    }
    if stream::is_framed(bytes) {
        let mut r: &[u8] = bytes;
        return stream::decode_stream_header(&mut r)
            .ok()
            .map(StreamInfo::Framed);
    }
    identify_legacy(bytes).map(StreamInfo::Legacy)
}

/// Identifies a legacy stream from its leading bytes.
pub fn identify_legacy(bytes: &[u8]) -> Option<StreamKind> {
    if bytes.len() >= 4 {
        match &bytes[..4] {
            b"PWT1" => return Some(StreamKind::PwRel),
            b"ZFR1" => return Some(StreamKind::Zfp),
            b"FPZ1" => return Some(StreamKind::Fpzip),
            b"ISB1" => return Some(StreamKind::Isabela),
            _ => {}
        }
    }
    // SZ streams carry a 1-byte LZ wrapper flag before the magic. The raw
    // wrapper exposes the magic directly; the LZ wrapper hides it, so sniff
    // by decoding (legacy streams are rare enough that a full decode is
    // acceptable).
    if bytes.len() >= 5 && (bytes[0] == 0 || bytes[0] == 1) {
        if bytes[0] == 0 && &bytes[1..5] == b"SZR1" {
            return Some(StreamKind::Sz);
        }
        if bytes[0] == 1 {
            if let Ok(unpacked) = pwrel_lossless::lz::decompress(&bytes[1..]) {
                if unpacked.len() >= 4 && &unpacked[..4] == b"SZR1" {
                    return Some(StreamKind::Sz);
                }
            }
        }
    }
    None
}

/// Decodes a legacy (pre-container) stream by magic sniffing.
pub fn decompress_legacy<F: PipelineElem>(bytes: &[u8]) -> Result<(Vec<F>, Dims), CodecError> {
    match identify_legacy(bytes) {
        Some(StreamKind::PwRel) => {
            // The wrapper needs an inner codec; the inner stream is
            // self-identifying, so try SZ first and fall back to ZFP.
            let sz = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
            match sz.decompress_full::<F>(bytes) {
                Ok(r) => Ok(r),
                Err(_) => {
                    PwRelCompressor::new(ZfpCompressor, LogBase::Two).decompress_full::<F>(bytes)
                }
            }
        }
        Some(StreamKind::Sz) => SzCompressor::default().decompress::<F>(bytes),
        Some(StreamKind::Zfp) => ZfpCompressor.decompress::<F>(bytes),
        Some(StreamKind::Fpzip) => pwrel_fpzip::decompress::<F>(bytes),
        Some(StreamKind::Isabela) => pwrel_isabela::decompress::<F>(bytes),
        None => Err(CodecError::Mismatch("unrecognized stream")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identify_legacy_kinds() {
        assert_eq!(identify_legacy(b"PWT1rest"), Some(StreamKind::PwRel));
        assert_eq!(identify_legacy(b"ZFR1rest"), Some(StreamKind::Zfp));
        assert_eq!(identify_legacy(b"FPZ1rest"), Some(StreamKind::Fpzip));
        assert_eq!(identify_legacy(b"ISB1rest"), Some(StreamKind::Isabela));
        assert_eq!(identify_legacy(b"\x00SZR1rest"), Some(StreamKind::Sz));
        assert_eq!(identify_legacy(b"garbage!"), None);
        assert_eq!(identify_legacy(b""), None);
    }

    #[test]
    fn identify_lz_wrapped_sz_stream() {
        // A highly compressible field makes SZ choose the LZ wrapper
        // (leading byte 1), which hides the magic until unwrapped.
        let data = vec![1.0f32; 65536];
        let stream = SzCompressor::default()
            .compress_abs(&data, Dims::d1(65536), 0.1)
            .unwrap();
        assert_eq!(stream[0], 1, "expected the LZ wrapper on constant data");
        assert_eq!(identify_legacy(&stream), Some(StreamKind::Sz));
    }

    #[test]
    fn legacy_pwrel_stream_decodes() {
        let data: Vec<f32> = (1..2000).map(|i| (i as f32).sin() * 100.0).collect();
        let dims = Dims::d1(data.len());
        let stream = PwRelCompressor::new(SzCompressor::default(), LogBase::Two)
            .compress_fused(&data, dims, 1e-3)
            .unwrap();
        let (back, d) = decompress_legacy::<f32>(&stream).unwrap();
        assert_eq!(d, dims);
        for (a, b) in data.iter().zip(&back) {
            assert!(((a - b) / a).abs() <= 1e-3);
        }
    }
}
