//! The unified versioned container every registered codec's stream is
//! wrapped in.
//!
//! Layout:
//!
//! ```text
//! magic "PWU1" | version u8 | codec id u8 | elem_bits u8
//! rank u8 | nx ny nz uvarint
//! bound f64 | base id u8 | entropy mode u8 (v2+)
//! payload_len uvarint | payload (codec-native self-describing stream)
//! ```
//!
//! Version 2 added the entropy-mode byte: the sub-stream count of the
//! codec's quantization-code entropy stage (1 = legacy single stream,
//! 4 = 4-way interleaved Huffman). Version 1 streams decode with an
//! implied mode of 1. The byte is advisory — payloads self-describe
//! their entropy framing — but lets tools like `pwrel info` report the
//! engine without decoding, so unknown values are rejected as corrupt.
//!
//! The header is intentionally redundant with the codec payloads (which
//! stay self-describing): decoding dispatches on the codec id alone, and
//! the recorded element type and dims cross-check the payload — a
//! corrupted or mismatched stream fails loudly at the container layer
//! instead of deep inside a codec.

use pwrel_bitstream::{bytesio, varint};
use pwrel_core::LogBase;
use pwrel_data::{CodecError, Dims};

/// Magic bytes of the unified container.
pub const CONTAINER_MAGIC: &[u8; 4] = b"PWU1";

/// Current container format version.
pub const CONTAINER_VERSION: u8 = 2;

/// Entropy-mode byte of the legacy single-stream Huffman engine.
pub const ENTROPY_MODE_SINGLE: u8 = 1;

/// Entropy-mode byte of the 4-way interleaved Huffman engine.
pub const ENTROPY_MODE_INTERLEAVED: u8 = pwrel_lossless::huffman::LANES as u8;

/// Parsed unified container header.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContainerHeader {
    /// Format version (currently always [`CONTAINER_VERSION`]).
    pub version: u8,
    /// Registered codec id the payload belongs to.
    pub codec_id: u8,
    /// Element width in bits (32 or 64).
    pub elem_bits: u8,
    /// Grid shape of the compressed field.
    pub dims: Dims,
    /// The error bound the stream was produced under (codec-interpreted).
    pub bound: f64,
    /// Logarithm base recorded for the transform-wrapped codecs.
    pub base: LogBase,
    /// Sub-stream count of the codec's entropy stage (1 = legacy single
    /// stream, 4 = interleaved); implied 1 for version-1 streams.
    pub entropy_mode: u8,
}

/// Serializes the header and payload into one unified stream.
pub fn wrap(header: &ContainerHeader, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 40);
    out.extend_from_slice(CONTAINER_MAGIC);
    out.push(header.version);
    out.push(header.codec_id);
    out.push(header.elem_bits);
    let (rank, nx, ny, nz) = header.dims.to_header();
    out.push(rank);
    varint::write_uvarint(&mut out, nx);
    varint::write_uvarint(&mut out, ny);
    varint::write_uvarint(&mut out, nz);
    bytesio::put_f64(&mut out, header.bound);
    out.push(header.base.id());
    if header.version >= 2 {
        out.push(header.entropy_mode);
    }
    varint::write_uvarint(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    out
}

/// True when `bytes` starts with the unified magic.
pub fn is_unified(bytes: &[u8]) -> bool {
    bytes.starts_with(CONTAINER_MAGIC)
}

/// Parses a unified stream into its header and codec payload.
///
/// Fails with [`CodecError::Mismatch`] when the magic is absent or the
/// version is unknown, [`CodecError::Corrupt`] on malformed header
/// fields or a payload shorter than its recorded length.
pub fn unwrap(bytes: &[u8]) -> Result<(ContainerHeader, &[u8]), CodecError> {
    if !is_unified(bytes) {
        return Err(CodecError::Mismatch("not a unified container"));
    }
    let mut pos = 4usize;
    let version = *bytes.get(pos).ok_or(CodecError::Corrupt("eof in header"))?;
    pos += 1;
    if version == 0 || version > CONTAINER_VERSION {
        return Err(CodecError::Mismatch("unsupported container version"));
    }
    let codec_id = *bytes.get(pos).ok_or(CodecError::Corrupt("eof in header"))?;
    pos += 1;
    let elem_bits = *bytes.get(pos).ok_or(CodecError::Corrupt("eof in header"))?;
    pos += 1;
    if elem_bits != 32 && elem_bits != 64 {
        return Err(CodecError::Corrupt("bad element width"));
    }
    let rank = *bytes.get(pos).ok_or(CodecError::Corrupt("eof in header"))?;
    pos += 1;
    let nx = varint::read_uvarint(bytes, &mut pos)?;
    let ny = varint::read_uvarint(bytes, &mut pos)?;
    let nz = varint::read_uvarint(bytes, &mut pos)?;
    let dims = Dims::from_header(rank, nx, ny, nz).ok_or(CodecError::Corrupt("bad dims header"))?;
    let bound = bytesio::get_f64(bytes, &mut pos)?;
    let base = LogBase::from_id(*bytes.get(pos).ok_or(CodecError::Corrupt("eof in header"))?)
        .ok_or(CodecError::Corrupt("bad base id"))?;
    pos += 1;
    let entropy_mode = if version >= 2 {
        let mode = *bytes.get(pos).ok_or(CodecError::Corrupt("eof in header"))?;
        pos += 1;
        if mode != ENTROPY_MODE_SINGLE && mode != ENTROPY_MODE_INTERLEAVED {
            return Err(CodecError::Corrupt("bad entropy mode"));
        }
        mode
    } else {
        ENTROPY_MODE_SINGLE
    };
    let payload_len = varint::read_uvarint(bytes, &mut pos)? as usize;
    let payload = bytesio::get_bytes(bytes, &mut pos, payload_len)?;
    Ok((
        ContainerHeader {
            version,
            codec_id,
            elem_bits,
            dims,
            bound,
            base,
            entropy_mode,
        },
        payload,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> ContainerHeader {
        ContainerHeader {
            version: CONTAINER_VERSION,
            codec_id: 3,
            elem_bits: 32,
            dims: Dims::d2(16, 32),
            bound: 1e-3,
            base: LogBase::Two,
            entropy_mode: ENTROPY_MODE_INTERLEAVED,
        }
    }

    #[test]
    fn wrap_unwrap_round_trips() {
        let payload = b"codec payload bytes";
        let bytes = wrap(&header(), payload);
        let (h, p) = unwrap(&bytes).unwrap();
        assert_eq!(h, header());
        assert_eq!(p, payload);
    }

    #[test]
    fn wrong_magic_is_mismatch() {
        assert_eq!(
            unwrap(b"NOPE....."),
            Err(CodecError::Mismatch("not a unified container"))
        );
    }

    #[test]
    fn unknown_version_is_mismatch() {
        let mut bytes = wrap(&header(), b"x");
        bytes[4] = 99;
        assert_eq!(
            unwrap(&bytes),
            Err(CodecError::Mismatch("unsupported container version"))
        );
    }

    #[test]
    fn version1_decodes_with_implied_single_mode() {
        let mut h = header();
        h.version = 1;
        let bytes = wrap(&h, b"payload");
        let (parsed, p) = unwrap(&bytes).unwrap();
        assert_eq!(parsed.version, 1);
        assert_eq!(parsed.entropy_mode, ENTROPY_MODE_SINGLE);
        assert_eq!(p, b"payload");
    }

    #[test]
    fn bad_entropy_mode_is_corrupt() {
        for bad in [0u8, 2, 3, 5, 255] {
            let mut h = header();
            h.entropy_mode = bad;
            let bytes = wrap(&h, b"x");
            assert_eq!(
                unwrap(&bytes),
                Err(CodecError::Corrupt("bad entropy mode")),
                "mode={bad}"
            );
        }
    }

    #[test]
    fn every_truncation_errors_not_panics() {
        let bytes = wrap(&header(), b"some payload");
        for cut in 0..bytes.len() {
            assert!(unwrap(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }
}
