#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Codec registry and unified container for every pipeline in the
//! workspace.
//!
//! The paper's transformation scheme is generic — it wraps *any*
//! absolute-error-bounded compressor — and this crate is where that
//! genericity becomes operational:
//!
//! * [`Codec`] is the object-safe whole-codec contract (monomorphic
//!   `f32`/`f64` entry points so registries can hold `Box<dyn Codec>`),
//! * [`CodecRegistry`] maps codec ids and names to implementations and
//!   owns the compress/decompress dispatch,
//! * [`container`] defines the one versioned self-describing outer
//!   header (`magic | version | codec id | elem | dims | bound
//!   metadata`) every registered codec's stream is wrapped in,
//! * [`legacy`] keeps pre-registry streams decodable by sniffing the old
//!   per-codec magics,
//! * [`stream`] is the framed streaming layer: a stream header plus
//!   self-describing per-chunk frames so whole fields compress and
//!   decompress through chunk sources/sinks with bounded memory
//!   (`compress_stream`/`decompress_stream` on [`Codec`] and
//!   [`CodecRegistry`]).
//!
//! The stage traits the codecs are assembled from (`Transform`,
//! `Predictor`, `Quantizer`, `Encoder`, `LosslessStage`, …) live in
//! `pwrel-data` so the codec crates can implement them without a
//! dependency cycle; this crate sits above the codecs and only composes.

pub mod codec;
pub mod codecs;
pub mod container;
pub mod legacy;
pub mod registry;
pub mod stream;

pub use codec::{Codec, CompressOpts, PipelineElem};
pub use container::{
    ContainerHeader, CONTAINER_MAGIC, CONTAINER_VERSION, ENTROPY_MODE_INTERLEAVED,
    ENTROPY_MODE_SINGLE,
};
pub use legacy::{identify, StreamInfo, StreamKind};
pub use registry::{global, CodecRegistry};
pub use stream::{
    BufferPool, ChunkPlan, ChunkSink, ChunkSource, FrameHeader, FrameWalker, ReadSource,
    SliceSource, StreamHeader, StreamStats, VecSink, WriteSink, STREAM_MAGIC, STREAM_VERSION,
};
