//! The codec registry: id/name lookup plus container-aware dispatch.

use crate::codec::{Codec, CompressOpts, PipelineElem};
use crate::codecs;
use crate::container::{self, ContainerHeader, CONTAINER_VERSION};
use crate::legacy;
use pwrel_data::{CodecError, Dims};
use std::sync::OnceLock;

/// An ordered set of [`Codec`] implementations keyed by id and name.
pub struct CodecRegistry {
    entries: Vec<Box<dyn Codec>>,
}

impl CodecRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// A registry holding every codec built into the workspace.
    pub fn builtin() -> Self {
        let mut r = Self::new();
        r.register(Box::new(codecs::SzT { hybrid: false }));
        r.register(Box::new(codecs::SzT { hybrid: true }));
        r.register(Box::new(codecs::ZfpT));
        r.register(Box::new(codecs::SzAbs));
        r.register(Box::new(codecs::SzPwr));
        r.register(Box::new(codecs::Fpzip));
        r.register(Box::new(codecs::Isabela));
        r.register(Box::new(codecs::ZfpP));
        r
    }

    /// Adds a codec. Panics if its id or name collides with an existing
    /// entry — registration is a startup-time act and a collision is a
    /// programming error, not a runtime condition.
    pub fn register(&mut self, codec: Box<dyn Codec>) {
        assert!(
            self.get(codec.id()).is_none(),
            "codec id {} registered twice",
            codec.id()
        );
        assert!(
            self.by_name(codec.name()).is_none(),
            "codec name {:?} registered twice",
            codec.name()
        );
        self.entries.push(codec);
    }

    /// Looks a codec up by its stream id.
    pub fn get(&self, id: u8) -> Option<&dyn Codec> {
        self.entries
            .iter()
            .find(|c| c.id() == id)
            .map(|c| c.as_ref())
    }

    /// Looks a codec up by its registry name.
    pub fn by_name(&self, name: &str) -> Option<&dyn Codec> {
        self.entries
            .iter()
            .find(|c| c.name() == name)
            .map(|c| c.as_ref())
    }

    /// Iterates over the registered codecs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Codec> {
        self.entries.iter().map(|c| c.as_ref())
    }

    /// Compresses `data` with the named codec and wraps the result in
    /// the unified container.
    pub fn compress<F: PipelineElem>(
        &self,
        name: &str,
        data: &[F],
        dims: Dims,
        opts: &CompressOpts,
    ) -> Result<Vec<u8>, CodecError> {
        let codec = self
            .by_name(name)
            .ok_or(CodecError::InvalidArgument("unknown codec name"))?;
        if data.len() != dims.len() {
            return Err(CodecError::InvalidArgument("data length != dims product"));
        }
        let payload = F::codec_compress(codec, data, dims, opts)?;
        let header = ContainerHeader {
            version: CONTAINER_VERSION,
            codec_id: codec.id(),
            elem_bits: F::BITS as u8,
            dims,
            bound: opts.bound,
            base: opts.base,
        };
        Ok(container::wrap(&header, &payload))
    }

    /// Decompresses a unified container, or falls back to the legacy
    /// per-codec magic sniff for pre-container streams.
    pub fn decompress<F: PipelineElem>(&self, bytes: &[u8]) -> Result<(Vec<F>, Dims), CodecError> {
        if !container::is_unified(bytes) {
            return legacy::decompress_legacy(bytes);
        }
        let (header, payload) = container::unwrap(bytes)?;
        if header.elem_bits as u32 != F::BITS {
            return Err(CodecError::Mismatch("element type does not match stream"));
        }
        let codec = self
            .get(header.codec_id)
            .ok_or(CodecError::InvalidArgument("unknown codec id in container"))?;
        let (data, dims) = F::codec_decompress(codec, payload)?;
        if dims != header.dims {
            return Err(CodecError::Corrupt("payload dims disagree with container"));
        }
        Ok((data, dims))
    }
}

impl Default for CodecRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

/// The process-wide builtin registry.
pub fn global() -> &'static CodecRegistry {
    static GLOBAL: OnceLock<CodecRegistry> = OnceLock::new();
    GLOBAL.get_or_init(CodecRegistry::builtin)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_ids_and_names_are_unique_and_complete() {
        let r = CodecRegistry::builtin();
        let names: Vec<_> = r.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            [
                "sz_t",
                "sz_hybrid_t",
                "zfp_t",
                "sz_abs",
                "sz_pwr",
                "fpzip",
                "isabela",
                "zfp_p"
            ]
        );
        for (i, c) in r.iter().enumerate() {
            assert_eq!(c.id() as usize, i + 1);
            assert!(!c.describe().is_empty());
        }
    }

    #[test]
    fn unknown_name_and_id_error() {
        let r = CodecRegistry::builtin();
        let data = [1.0f32, 2.0];
        assert!(matches!(
            r.compress("nope", &data, Dims::d1(2), &CompressOpts::rel(1e-3)),
            Err(CodecError::InvalidArgument(_))
        ));
        let mut stream = r
            .compress("sz_t", &data, Dims::d1(2), &CompressOpts::rel(1e-3))
            .unwrap();
        stream[5] = 200; // codec id byte
        assert!(matches!(
            r.decompress::<f32>(&stream),
            Err(CodecError::InvalidArgument(_))
        ));
    }

    #[test]
    fn elem_width_mismatch_is_detected() {
        let r = CodecRegistry::builtin();
        let data = [1.0f32, 2.0, 3.0];
        let stream = r
            .compress("sz_t", &data, Dims::d1(3), &CompressOpts::rel(1e-3))
            .unwrap();
        assert!(matches!(
            r.decompress::<f64>(&stream),
            Err(CodecError::Mismatch(_))
        ));
    }

    #[test]
    fn every_builtin_codec_round_trips_f32() {
        let data: Vec<f32> = (1..1500)
            .map(|i| (i as f32 * 0.01).cos() * 50.0 + 60.0)
            .collect();
        let dims = Dims::d1(data.len());
        let r = CodecRegistry::builtin();
        for codec in r.iter() {
            let stream = r
                .compress(codec.name(), &data, dims, &CompressOpts::rel(1e-2))
                .unwrap_or_else(|e| panic!("{}: {e:?}", codec.name()));
            let (back, d) = r
                .decompress::<f32>(&stream)
                .unwrap_or_else(|e| panic!("{}: {e:?}", codec.name()));
            assert_eq!(d, dims, "{}", codec.name());
            assert_eq!(back.len(), data.len(), "{}", codec.name());
        }
    }

    #[test]
    fn global_is_shared() {
        let a = global() as *const _;
        let b = global() as *const _;
        assert_eq!(a, b);
    }
}
