//! The codec registry: id/name lookup plus container-aware dispatch.

use crate::codec::{Codec, CompressOpts, PipelineElem};
use crate::codecs;
use crate::container::{self, ContainerHeader, CONTAINER_VERSION};
use crate::legacy;
use crate::stream::{self, ChunkSink, ChunkSource, StreamHeader, StreamStats, VecSink};
use pwrel_data::{CodecError, Dims};
use pwrel_trace::{noop, stage, Recorder, Span};
use std::sync::OnceLock;

/// An ordered set of [`Codec`] implementations keyed by id and name.
pub struct CodecRegistry {
    entries: Vec<Box<dyn Codec>>,
}

impl CodecRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// A registry holding every codec built into the workspace.
    pub fn builtin() -> Self {
        let mut r = Self::new();
        r.register(Box::new(codecs::SzT { hybrid: false }));
        r.register(Box::new(codecs::SzT { hybrid: true }));
        r.register(Box::new(codecs::ZfpT));
        r.register(Box::new(codecs::SzAbs));
        r.register(Box::new(codecs::SzPwr));
        r.register(Box::new(codecs::Fpzip));
        r.register(Box::new(codecs::Isabela));
        r.register(Box::new(codecs::ZfpP));
        r
    }

    /// Adds a codec. Panics if its id or name collides with an existing
    /// entry — registration is a startup-time act and a collision is a
    /// programming error, not a runtime condition.
    pub fn register(&mut self, codec: Box<dyn Codec>) {
        assert!(
            self.get(codec.id()).is_none(),
            "codec id {} registered twice",
            codec.id()
        );
        assert!(
            self.by_name(codec.name()).is_none(),
            "codec name {:?} registered twice",
            codec.name()
        );
        self.entries.push(codec);
    }

    /// Looks a codec up by its stream id.
    pub fn get(&self, id: u8) -> Option<&dyn Codec> {
        self.entries
            .iter()
            .find(|c| c.id() == id)
            .map(|c| c.as_ref())
    }

    /// Looks a codec up by its registry name.
    pub fn by_name(&self, name: &str) -> Option<&dyn Codec> {
        self.entries
            .iter()
            .find(|c| c.name() == name)
            .map(|c| c.as_ref())
    }

    /// Iterates over the registered codecs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Codec> {
        self.entries.iter().map(|c| c.as_ref())
    }

    /// Compresses `data` with the named codec and wraps the result in
    /// the unified container.
    pub fn compress<F: PipelineElem>(
        &self,
        name: &str,
        data: &[F],
        dims: Dims,
        opts: &CompressOpts,
    ) -> Result<Vec<u8>, CodecError> {
        self.compress_traced(name, data, dims, opts, noop())
    }

    /// [`CodecRegistry::compress`] with per-stage recording: a root
    /// `compress` span brackets the whole run (including container
    /// wrapping) and the byte counters record the uncompressed input
    /// and the final container size. Emits the same bytes.
    pub fn compress_traced<F: PipelineElem>(
        &self,
        name: &str,
        data: &[F],
        dims: Dims,
        opts: &CompressOpts,
        rec: &dyn Recorder,
    ) -> Result<Vec<u8>, CodecError> {
        let codec = self
            .by_name(name)
            .ok_or(CodecError::InvalidArgument("unknown codec name"))?;
        if data.len() != dims.len() {
            return Err(CodecError::InvalidArgument("data length != dims product"));
        }
        let _root = Span::enter(rec, stage::COMPRESS);
        if rec.is_enabled() {
            rec.add(
                stage::C_BYTES_IN,
                (data.len() * (F::BITS as usize / 8)) as u64,
            );
        }
        let payload = F::codec_compress_traced(codec, data, dims, opts, rec)?;
        let header = ContainerHeader {
            version: CONTAINER_VERSION,
            codec_id: codec.id(),
            elem_bits: F::BITS as u8,
            dims,
            bound: opts.bound,
            base: opts.base,
            entropy_mode: codec.entropy_mode(),
        };
        let stream = container::wrap(&header, &payload);
        if rec.is_enabled() {
            rec.add(stage::C_BYTES_OUT, stream.len() as u64);
        }
        Ok(stream)
    }

    /// Compresses a chunk source into a framed stream on `out` with the
    /// named codec: the bounded-memory counterpart of
    /// [`CodecRegistry::compress`]. See [`crate::stream`] for the frame
    /// format and [`stream::ChunkPlan`] for chunk sizing rules.
    pub fn compress_stream<F: PipelineElem>(
        &self,
        name: &str,
        src: &mut dyn ChunkSource<F>,
        out: &mut dyn std::io::Write,
        dims: Dims,
        opts: &CompressOpts,
        chunk_elems: usize,
    ) -> Result<StreamStats, CodecError> {
        self.compress_stream_traced(name, src, out, dims, opts, chunk_elems, noop())
    }

    /// [`CodecRegistry::compress_stream`] with per-stage recording: a
    /// root `stream_compress` span brackets the run and every chunk
    /// records its own `chunk_compress` span plus the codec's stages.
    /// Emits the same bytes.
    #[allow(clippy::too_many_arguments)] // mirrors compress_stream plus the recorder
    pub fn compress_stream_traced<F: PipelineElem>(
        &self,
        name: &str,
        src: &mut dyn ChunkSource<F>,
        out: &mut dyn std::io::Write,
        dims: Dims,
        opts: &CompressOpts,
        chunk_elems: usize,
        rec: &dyn Recorder,
    ) -> Result<StreamStats, CodecError> {
        let codec = self
            .by_name(name)
            .ok_or(CodecError::InvalidArgument("unknown codec name"))?;
        let _root = Span::enter(rec, stage::STREAM_COMPRESS);
        F::codec_compress_stream(codec, src, out, dims, opts, chunk_elems, rec)
    }

    /// Decompresses a framed stream from `input` into `sink`, chunk by
    /// chunk with bounded memory, returning the stream header and the
    /// run counters.
    pub fn decompress_stream<F: PipelineElem>(
        &self,
        input: &mut dyn std::io::Read,
        sink: &mut dyn ChunkSink<F>,
    ) -> Result<(StreamHeader, StreamStats), CodecError> {
        self.decompress_stream_traced(input, sink, noop())
    }

    /// [`CodecRegistry::decompress_stream`] with per-stage recording.
    pub fn decompress_stream_traced<F: PipelineElem>(
        &self,
        input: &mut dyn std::io::Read,
        sink: &mut dyn ChunkSink<F>,
        rec: &dyn Recorder,
    ) -> Result<(StreamHeader, StreamStats), CodecError> {
        let _root = Span::enter(rec, stage::STREAM_DECOMPRESS);
        let header = stream::decode_stream_header(input)?;
        let stats = self.decompress_stream_body_traced(&header, input, sink, rec)?;
        Ok((header, stats))
    }

    /// Decompresses the frame sequence of a stream whose header the
    /// caller already decoded (and vetted): `input` must be positioned
    /// at the first frame marker. This is the admission-control hook for
    /// servers — `pwrel-serve` decodes the header off the socket,
    /// rejects implausible shapes against its own limits, and only then
    /// commits to the frame walk, without re-parsing or buffering the
    /// header bytes.
    pub fn decompress_stream_body_traced<F: PipelineElem>(
        &self,
        header: &StreamHeader,
        input: &mut dyn std::io::Read,
        sink: &mut dyn ChunkSink<F>,
        rec: &dyn Recorder,
    ) -> Result<StreamStats, CodecError> {
        if header.elem_bits as u32 != F::BITS {
            return Err(CodecError::Mismatch("element type does not match stream"));
        }
        let codec = self
            .get(header.codec_id)
            .ok_or(CodecError::InvalidArgument("unknown codec id in stream"))?;
        F::codec_decompress_stream(codec, header, input, sink, rec)
    }

    /// [`CodecRegistry::decompress_stream_traced`] with intra-chunk
    /// fan-out: the frames are still read and decoded strictly in order
    /// on the calling thread, but each chunk's independently addressable
    /// entropy sub-streams decode through `exec` (e.g. the worker pool).
    /// The complement of the chunk-parallel engine in `pwrel-parallel`:
    /// use that one when there are many chunks, this one when a few
    /// large chunks leave workers idle. Output is byte-identical to the
    /// sequential engine for any executor.
    ///
    /// When `exec` is a worker pool, this must be called from outside
    /// any pool task — nested submission deadlocks.
    pub fn decompress_stream_pooled<F: PipelineElem>(
        &self,
        input: &mut dyn std::io::Read,
        sink: &mut dyn ChunkSink<F>,
        rec: &dyn Recorder,
        exec: &dyn pwrel_data::LaneExecutor,
    ) -> Result<(StreamHeader, StreamStats), CodecError> {
        let _root = Span::enter(rec, stage::STREAM_DECOMPRESS);
        let header = stream::decode_stream_header(input)?;
        if header.elem_bits as u32 != F::BITS {
            return Err(CodecError::Mismatch("element type does not match stream"));
        }
        let codec = self
            .get(header.codec_id)
            .ok_or(CodecError::InvalidArgument("unknown codec id in stream"))?;
        let stats = stream::decompress_frames_with(
            &header,
            input,
            sink,
            &mut |payload| F::codec_decompress_pooled(codec, payload, rec, exec),
            rec,
        )?;
        Ok((header, stats))
    }

    /// Decompresses a unified container, a framed stream, or (by legacy
    /// per-codec magic sniff) a pre-container stream.
    pub fn decompress<F: PipelineElem>(&self, bytes: &[u8]) -> Result<(Vec<F>, Dims), CodecError> {
        self.decompress_traced(bytes, noop())
    }

    /// [`CodecRegistry::decompress`] with per-stage recording: a root
    /// `decompress` span brackets the run. Byte counters use the
    /// decompress-direction names so a round trip on one sink keeps the
    /// directions separate.
    pub fn decompress_traced<F: PipelineElem>(
        &self,
        bytes: &[u8],
        rec: &dyn Recorder,
    ) -> Result<(Vec<F>, Dims), CodecError> {
        let _root = Span::enter(rec, stage::DECOMPRESS);
        if rec.is_enabled() {
            rec.add(stage::C_DECOMP_BYTES_IN, bytes.len() as u64);
        }
        if stream::is_framed(bytes) {
            let mut input: &[u8] = bytes;
            let mut sink = VecSink::new();
            let (header, _) = self.decompress_stream_traced::<F>(&mut input, &mut sink, rec)?;
            if !input.is_empty() {
                return Err(CodecError::Corrupt("trailing bytes after final frame"));
            }
            let data = sink.into_inner();
            if rec.is_enabled() {
                rec.add(
                    stage::C_DECOMP_BYTES_OUT,
                    (data.len() * (F::BITS as usize / 8)) as u64,
                );
            }
            return Ok((data, header.dims));
        }
        if !container::is_unified(bytes) {
            return legacy::decompress_legacy(bytes);
        }
        let (header, payload) = container::unwrap(bytes)?;
        if header.elem_bits as u32 != F::BITS {
            return Err(CodecError::Mismatch("element type does not match stream"));
        }
        let codec = self
            .get(header.codec_id)
            .ok_or(CodecError::InvalidArgument("unknown codec id in container"))?;
        let (data, dims) = F::codec_decompress_traced(codec, payload, rec)?;
        if dims != header.dims {
            return Err(CodecError::Corrupt("payload dims disagree with container"));
        }
        if rec.is_enabled() {
            rec.add(
                stage::C_DECOMP_BYTES_OUT,
                (data.len() * (F::BITS as usize / 8)) as u64,
            );
        }
        Ok((data, dims))
    }
}

impl Default for CodecRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

/// The process-wide builtin registry.
pub fn global() -> &'static CodecRegistry {
    static GLOBAL: OnceLock<CodecRegistry> = OnceLock::new();
    GLOBAL.get_or_init(CodecRegistry::builtin)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_ids_and_names_are_unique_and_complete() {
        let r = CodecRegistry::builtin();
        let names: Vec<_> = r.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            [
                "sz_t",
                "sz_hybrid_t",
                "zfp_t",
                "sz_abs",
                "sz_pwr",
                "fpzip",
                "isabela",
                "zfp_p"
            ]
        );
        for (i, c) in r.iter().enumerate() {
            assert_eq!(c.id() as usize, i + 1);
            assert!(!c.describe().is_empty());
        }
    }

    #[test]
    fn unknown_name_and_id_error() {
        let r = CodecRegistry::builtin();
        let data = [1.0f32, 2.0];
        assert!(matches!(
            r.compress("nope", &data, Dims::d1(2), &CompressOpts::rel(1e-3)),
            Err(CodecError::InvalidArgument(_))
        ));
        let mut stream = r
            .compress("sz_t", &data, Dims::d1(2), &CompressOpts::rel(1e-3))
            .unwrap();
        stream[5] = 200; // codec id byte
        assert!(matches!(
            r.decompress::<f32>(&stream),
            Err(CodecError::InvalidArgument(_))
        ));
    }

    #[test]
    fn elem_width_mismatch_is_detected() {
        let r = CodecRegistry::builtin();
        let data = [1.0f32, 2.0, 3.0];
        let stream = r
            .compress("sz_t", &data, Dims::d1(3), &CompressOpts::rel(1e-3))
            .unwrap();
        assert!(matches!(
            r.decompress::<f64>(&stream),
            Err(CodecError::Mismatch(_))
        ));
    }

    #[test]
    fn every_builtin_codec_round_trips_f32() {
        let data: Vec<f32> = (1..1500)
            .map(|i| (i as f32 * 0.01).cos() * 50.0 + 60.0)
            .collect();
        let dims = Dims::d1(data.len());
        let r = CodecRegistry::builtin();
        for codec in r.iter() {
            let stream = r
                .compress(codec.name(), &data, dims, &CompressOpts::rel(1e-2))
                .unwrap_or_else(|e| panic!("{}: {e:?}", codec.name()));
            let (back, d) = r
                .decompress::<f32>(&stream)
                .unwrap_or_else(|e| panic!("{}: {e:?}", codec.name()));
            assert_eq!(d, dims, "{}", codec.name());
            assert_eq!(back.len(), data.len(), "{}", codec.name());
        }
    }

    #[test]
    fn global_is_shared() {
        let a = global() as *const _;
        let b = global() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn traced_round_trip_covers_declared_stages() {
        use pwrel_trace::TraceSink;
        use std::collections::BTreeSet;

        let data: Vec<f32> = (1..2000)
            .map(|i| (i as f32 * 0.01).cos() * 50.0 + 60.0)
            .collect();
        let dims = Dims::d1(data.len());
        let r = CodecRegistry::builtin();
        for codec in r.iter() {
            let sink = TraceSink::new();
            let stream = r
                .compress_traced(codec.name(), &data, dims, &CompressOpts::rel(1e-2), &sink)
                .unwrap_or_else(|e| panic!("{}: {e:?}", codec.name()));
            let (back, _) = r
                .decompress_traced::<f32>(&stream, &sink)
                .unwrap_or_else(|e| panic!("{}: {e:?}", codec.name()));
            assert_eq!(back.len(), data.len(), "{}", codec.name());

            let seen: BTreeSet<&str> = pwrel_trace::export::stage_rows(&sink).into_keys().collect();
            for want in codec.stages() {
                assert!(
                    seen.contains(want),
                    "{}: declared stage {want:?} missing from trace (saw {seen:?})",
                    codec.name()
                );
            }
            assert!(seen.contains(stage::COMPRESS), "{}", codec.name());
            assert!(seen.contains(stage::DECOMPRESS), "{}", codec.name());
        }
    }

    #[test]
    fn traced_compress_is_byte_identical_to_plain() {
        use pwrel_trace::TraceSink;

        let data: Vec<f64> = (1..1200).map(|i| (i as f64 * 0.03).sin() + 2.0).collect();
        let dims = Dims::d1(data.len());
        let r = CodecRegistry::builtin();
        for codec in r.iter() {
            let plain = r
                .compress(codec.name(), &data, dims, &CompressOpts::rel(1e-3))
                .unwrap();
            let sink = TraceSink::new();
            let traced = r
                .compress_traced(codec.name(), &data, dims, &CompressOpts::rel(1e-3), &sink)
                .unwrap();
            assert_eq!(plain, traced, "{}", codec.name());
        }
    }

    #[test]
    fn traced_byte_counters_reconcile() {
        use pwrel_trace::TraceSink;
        use std::collections::BTreeMap;

        let data: Vec<f32> = (0..512).map(|i| (i as f32 * 0.1).sin() + 3.0).collect();
        let dims = Dims::d1(data.len());
        let r = CodecRegistry::builtin();
        let sink = TraceSink::new();
        let stream = r
            .compress_traced("sz_t", &data, dims, &CompressOpts::rel(1e-3), &sink)
            .unwrap();
        r.decompress_traced::<f32>(&stream, &sink).unwrap();
        let counters: BTreeMap<_, _> = sink.counters().into_iter().collect();
        assert_eq!(counters[stage::C_BYTES_IN], (data.len() * 4) as u64);
        assert_eq!(counters[stage::C_BYTES_OUT], stream.len() as u64);
        assert_eq!(counters[stage::C_DECOMP_BYTES_IN], stream.len() as u64);
        assert_eq!(counters[stage::C_DECOMP_BYTES_OUT], (data.len() * 4) as u64);
    }
}
