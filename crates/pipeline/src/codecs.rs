//! Adapters wrapping each workspace compressor in the [`Codec`] trait.
//!
//! Compression for the transform-wrapped codecs goes through the fused
//! single-pass entry point (`compress_fused` — transform, prediction and
//! quantization in one streaming sweep); its stream is byte-identical to
//! the buffered route, so the PR 1 fast path survives registry dispatch
//! unchanged. Decompression reads everything it needs from the payload
//! itself — the adapters carry no decode-time state.

use crate::codec::{Codec, CompressOpts};
use pwrel_core::{LogBase, PwRelCompressor};
use pwrel_data::{CodecError, Dims, Float};
use pwrel_fpzip::FpzipCompressor;
use pwrel_isabela::IsabelaCompressor;
use pwrel_sz::SzCompressor;
use pwrel_trace::{noop, stage, Recorder, Span};
use pwrel_zfp::ZfpCompressor;

/// Generates the boilerplate that bridges the monomorphic `Codec`
/// methods onto one generic pair of recorder-taking functions. The
/// plain methods pass the no-op recorder; the `*_traced` variants
/// thread the caller's recorder through — same code path either way,
/// so the traced route cannot drift from the untraced one.
macro_rules! dispatch_elem {
    () => {
        fn compress_f32(
            &self,
            data: &[f32],
            dims: Dims,
            opts: &CompressOpts,
        ) -> Result<Vec<u8>, CodecError> {
            self.compress_impl(data, dims, opts, noop())
        }

        fn compress_f64(
            &self,
            data: &[f64],
            dims: Dims,
            opts: &CompressOpts,
        ) -> Result<Vec<u8>, CodecError> {
            self.compress_impl(data, dims, opts, noop())
        }

        fn decompress_f32(&self, payload: &[u8]) -> Result<(Vec<f32>, Dims), CodecError> {
            self.decompress_impl(payload, noop())
        }

        fn decompress_f64(&self, payload: &[u8]) -> Result<(Vec<f64>, Dims), CodecError> {
            self.decompress_impl(payload, noop())
        }

        fn compress_f32_traced(
            &self,
            data: &[f32],
            dims: Dims,
            opts: &CompressOpts,
            rec: &dyn Recorder,
        ) -> Result<Vec<u8>, CodecError> {
            self.compress_impl(data, dims, opts, rec)
        }

        fn compress_f64_traced(
            &self,
            data: &[f64],
            dims: Dims,
            opts: &CompressOpts,
            rec: &dyn Recorder,
        ) -> Result<Vec<u8>, CodecError> {
            self.compress_impl(data, dims, opts, rec)
        }

        fn decompress_f32_traced(
            &self,
            payload: &[u8],
            rec: &dyn Recorder,
        ) -> Result<(Vec<f32>, Dims), CodecError> {
            self.decompress_impl(payload, rec)
        }

        fn decompress_f64_traced(
            &self,
            payload: &[u8],
            rec: &dyn Recorder,
        ) -> Result<(Vec<f64>, Dims), CodecError> {
            self.decompress_impl(payload, rec)
        }
    };
}

/// SZ_T / SZ_HYBRID_T: the paper's transform scheme around the SZ-like
/// codec, fused single-pass compression.
#[derive(Debug, Clone, Copy)]
pub struct SzT {
    /// Use the hybrid Lorenzo/regression predictor.
    pub hybrid: bool,
}

impl SzT {
    fn config(&self) -> SzCompressor {
        SzCompressor {
            hybrid_predictor: self.hybrid,
            ..SzCompressor::default()
        }
    }

    fn compress_impl<F: Float>(
        &self,
        data: &[F],
        dims: Dims,
        opts: &CompressOpts,
        rec: &dyn Recorder,
    ) -> Result<Vec<u8>, CodecError> {
        PwRelCompressor::new(self.config(), opts.base)
            .compress_fused_traced(data, dims, opts.bound, rec)
    }

    fn decompress_impl<F: Float>(
        &self,
        payload: &[u8],
        rec: &dyn Recorder,
    ) -> Result<(Vec<F>, Dims), CodecError> {
        // The base is read from the payload; the constructor's base is a
        // compile-side default.
        PwRelCompressor::new(self.config(), LogBase::Two).decompress_full_traced(payload, rec)
    }

    fn decompress_pooled_impl<F: Float>(
        &self,
        payload: &[u8],
        rec: &dyn Recorder,
        exec: &dyn pwrel_data::LaneExecutor,
    ) -> Result<(Vec<F>, Dims), CodecError> {
        PwRelCompressor::new(self.config(), LogBase::Two).decompress_full_pooled(payload, rec, exec)
    }
}

impl Codec for SzT {
    fn id(&self) -> u8 {
        if self.hybrid {
            2
        } else {
            1
        }
    }

    fn name(&self) -> &'static str {
        if self.hybrid {
            "sz_hybrid_t"
        } else {
            "sz_t"
        }
    }

    fn describe(&self) -> &'static str {
        if self.hybrid {
            "log transform + SZ with hybrid Lorenzo/regression predictor"
        } else {
            "log transform + SZ (the paper's SZ_T)"
        }
    }

    fn stages(&self) -> &'static [&'static str] {
        if self.hybrid {
            // The hybrid coder is block-structured and reports as one
            // encode stage; the transform and sign stages still apply.
            &[stage::TRANSFORM, stage::ENCODE, stage::SIGNS]
        } else {
            &[
                stage::TRANSFORM,
                stage::PREDICT_QUANTIZE,
                stage::HUFFMAN,
                stage::LZ,
                stage::SIGNS,
            ]
        }
    }

    fn entropy_mode(&self) -> u8 {
        crate::container::ENTROPY_MODE_INTERLEAVED
    }

    fn decompress_f32_pooled(
        &self,
        payload: &[u8],
        rec: &dyn Recorder,
        exec: &dyn pwrel_data::LaneExecutor,
    ) -> Result<(Vec<f32>, Dims), CodecError> {
        self.decompress_pooled_impl(payload, rec, exec)
    }

    fn decompress_f64_pooled(
        &self,
        payload: &[u8],
        rec: &dyn Recorder,
        exec: &dyn pwrel_data::LaneExecutor,
    ) -> Result<(Vec<f64>, Dims), CodecError> {
        self.decompress_pooled_impl(payload, rec, exec)
    }

    dispatch_elem!();
}

/// ZFP_T: the transform scheme around the ZFP-like codec.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZfpT;

impl ZfpT {
    fn compress_impl<F: Float>(
        &self,
        data: &[F],
        dims: Dims,
        opts: &CompressOpts,
        rec: &dyn Recorder,
    ) -> Result<Vec<u8>, CodecError> {
        PwRelCompressor::new(ZfpCompressor, opts.base)
            .compress_fused_traced(data, dims, opts.bound, rec)
    }

    fn decompress_impl<F: Float>(
        &self,
        payload: &[u8],
        rec: &dyn Recorder,
    ) -> Result<(Vec<F>, Dims), CodecError> {
        PwRelCompressor::new(ZfpCompressor, LogBase::Two).decompress_full_traced(payload, rec)
    }
}

impl Codec for ZfpT {
    fn id(&self) -> u8 {
        3
    }

    fn name(&self) -> &'static str {
        "zfp_t"
    }

    fn describe(&self) -> &'static str {
        "log transform + ZFP fixed-accuracy (the paper's ZFP_T)"
    }

    fn stages(&self) -> &'static [&'static str] {
        &[
            stage::TRANSFORM,
            stage::LIFT,
            stage::PLANE_CODE,
            stage::SIGNS,
        ]
    }

    // Align framed chunks with ZFP's 4^d blocks so interior chunks pay
    // no edge-padding overhead.
    fn chunk_granularity(&self) -> usize {
        4
    }

    dispatch_elem!();
}

/// Bare SZ with an absolute bound (`opts.bound` is absolute, not
/// relative).
#[derive(Debug, Clone, Copy, Default)]
pub struct SzAbs;

impl SzAbs {
    fn compress_impl<F: Float>(
        &self,
        data: &[F],
        dims: Dims,
        opts: &CompressOpts,
        rec: &dyn Recorder,
    ) -> Result<Vec<u8>, CodecError> {
        use pwrel_data::AbsErrorCodec;
        SzCompressor::default().compress_abs_traced(data, dims, opts.bound, rec)
    }

    fn decompress_impl<F: Float>(
        &self,
        payload: &[u8],
        rec: &dyn Recorder,
    ) -> Result<(Vec<F>, Dims), CodecError> {
        SzCompressor::default().decompress_traced(payload, rec)
    }

    fn decompress_pooled_impl<F: Float>(
        &self,
        payload: &[u8],
        rec: &dyn Recorder,
        exec: &dyn pwrel_data::LaneExecutor,
    ) -> Result<(Vec<F>, Dims), CodecError> {
        SzCompressor::default().decompress_pooled(payload, rec, exec)
    }
}

impl Codec for SzAbs {
    fn id(&self) -> u8 {
        4
    }

    fn name(&self) -> &'static str {
        "sz_abs"
    }

    fn describe(&self) -> &'static str {
        "SZ with an absolute error bound"
    }

    fn stages(&self) -> &'static [&'static str] {
        &[stage::PREDICT_QUANTIZE, stage::HUFFMAN, stage::LZ]
    }

    fn entropy_mode(&self) -> u8 {
        crate::container::ENTROPY_MODE_INTERLEAVED
    }

    fn decompress_f32_pooled(
        &self,
        payload: &[u8],
        rec: &dyn Recorder,
        exec: &dyn pwrel_data::LaneExecutor,
    ) -> Result<(Vec<f32>, Dims), CodecError> {
        self.decompress_pooled_impl(payload, rec, exec)
    }

    fn decompress_f64_pooled(
        &self,
        payload: &[u8],
        rec: &dyn Recorder,
        exec: &dyn pwrel_data::LaneExecutor,
    ) -> Result<(Vec<f64>, Dims), CodecError> {
        self.decompress_pooled_impl(payload, rec, exec)
    }

    dispatch_elem!();
}

/// SZ 1.4's blockwise point-wise-relative mode (the paper's baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct SzPwr;

impl SzPwr {
    fn compress_impl<F: Float>(
        &self,
        data: &[F],
        dims: Dims,
        opts: &CompressOpts,
        rec: &dyn Recorder,
    ) -> Result<Vec<u8>, CodecError> {
        // PWR routes per-block through internal engines; not internally
        // instrumented, so it reports as one encode stage.
        let _enc = Span::enter(rec, stage::ENCODE);
        SzCompressor::default().compress_pwr(data, dims, opts.bound)
    }

    fn decompress_impl<F: Float>(
        &self,
        payload: &[u8],
        rec: &dyn Recorder,
    ) -> Result<(Vec<F>, Dims), CodecError> {
        let _enc = Span::enter(rec, stage::ENCODE);
        SzCompressor::default().decompress(payload)
    }
}

impl Codec for SzPwr {
    fn id(&self) -> u8 {
        5
    }

    fn name(&self) -> &'static str {
        "sz_pwr"
    }

    fn describe(&self) -> &'static str {
        "SZ blockwise point-wise-relative mode (SZ_PWR baseline)"
    }

    fn stages(&self) -> &'static [&'static str] {
        &[stage::ENCODE]
    }

    fn entropy_mode(&self) -> u8 {
        crate::container::ENTROPY_MODE_INTERLEAVED
    }

    dispatch_elem!();
}

/// FPZIP at the precision matching the requested relative bound.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fpzip;

impl Fpzip {
    fn compress_impl<F: Float>(
        &self,
        data: &[F],
        dims: Dims,
        opts: &CompressOpts,
        rec: &dyn Recorder,
    ) -> Result<Vec<u8>, CodecError> {
        let _enc = Span::enter(rec, stage::ENCODE);
        FpzipCompressor::for_rel_bound::<F>(opts.bound).compress(data, dims)
    }

    fn decompress_impl<F: Float>(
        &self,
        payload: &[u8],
        rec: &dyn Recorder,
    ) -> Result<(Vec<F>, Dims), CodecError> {
        let _enc = Span::enter(rec, stage::ENCODE);
        pwrel_fpzip::decompress(payload)
    }
}

impl Codec for Fpzip {
    fn id(&self) -> u8 {
        6
    }

    fn name(&self) -> &'static str {
        "fpzip"
    }

    fn describe(&self) -> &'static str {
        "FPZIP truncated-precision predictive coder"
    }

    fn stages(&self) -> &'static [&'static str] {
        &[stage::ENCODE]
    }

    fn entropy_mode(&self) -> u8 {
        crate::container::ENTROPY_MODE_INTERLEAVED
    }

    dispatch_elem!();
}

/// ISABELA B-spline fitting with a point-wise relative bound.
#[derive(Debug, Clone, Copy, Default)]
pub struct Isabela;

impl Isabela {
    fn compress_impl<F: Float>(
        &self,
        data: &[F],
        dims: Dims,
        opts: &CompressOpts,
        rec: &dyn Recorder,
    ) -> Result<Vec<u8>, CodecError> {
        let _enc = Span::enter(rec, stage::ENCODE);
        IsabelaCompressor::default().compress_rel(data, dims, opts.bound)
    }

    fn decompress_impl<F: Float>(
        &self,
        payload: &[u8],
        rec: &dyn Recorder,
    ) -> Result<(Vec<F>, Dims), CodecError> {
        let _enc = Span::enter(rec, stage::ENCODE);
        pwrel_isabela::decompress(payload)
    }
}

impl Codec for Isabela {
    fn id(&self) -> u8 {
        7
    }

    fn name(&self) -> &'static str {
        "isabela"
    }

    fn describe(&self) -> &'static str {
        "ISABELA sort-and-spline compressor"
    }

    fn stages(&self) -> &'static [&'static str] {
        &[stage::ENCODE]
    }

    fn entropy_mode(&self) -> u8 {
        crate::container::ENTROPY_MODE_INTERLEAVED
    }

    dispatch_elem!();
}

/// Bare ZFP at the fixed precision matching the requested relative
/// bound (no point-wise guarantee; kept for the paper's comparisons).
#[derive(Debug, Clone, Copy, Default)]
pub struct ZfpP;

impl ZfpP {
    fn compress_impl<F: Float>(
        &self,
        data: &[F],
        dims: Dims,
        opts: &CompressOpts,
        rec: &dyn Recorder,
    ) -> Result<Vec<u8>, CodecError> {
        ZfpCompressor.compress_precision_traced(
            data,
            dims,
            pwrel_zfp::precision_for_rel_bound(opts.bound),
            rec,
        )
    }

    fn decompress_impl<F: Float>(
        &self,
        payload: &[u8],
        rec: &dyn Recorder,
    ) -> Result<(Vec<F>, Dims), CodecError> {
        ZfpCompressor.decompress_traced(payload, rec)
    }
}

impl Codec for ZfpP {
    fn id(&self) -> u8 {
        8
    }

    fn name(&self) -> &'static str {
        "zfp_p"
    }

    fn describe(&self) -> &'static str {
        "ZFP fixed-precision mode (ZFP_P comparison point)"
    }

    fn stages(&self) -> &'static [&'static str] {
        &[stage::LIFT, stage::PLANE_CODE]
    }

    // Same 4^d block alignment as `ZfpT`.
    fn chunk_granularity(&self) -> usize {
        4
    }

    dispatch_elem!();
}
