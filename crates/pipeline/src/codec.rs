//! The object-safe whole-codec trait and its generic dispatch helper.

use crate::stream::{self, ChunkSink, ChunkSource, StreamHeader, StreamStats};
use pwrel_core::LogBase;
use pwrel_data::{CodecError, Dims, Float};
use pwrel_trace::Recorder;
use std::io::{Read, Write};

/// Per-run compression options shared by every registered codec.
///
/// `bound` is interpreted by the codec: a point-wise relative bound for
/// the transform-wrapped and PWR codecs, an absolute bound for `sz_abs`.
/// `base` only matters to the log-transform codecs; the rest ignore it.
#[derive(Debug, Clone, Copy)]
pub struct CompressOpts {
    /// Error bound (codec-interpreted, see above).
    pub bound: f64,
    /// Logarithm base for the transform-wrapped codecs.
    pub base: LogBase,
}

impl CompressOpts {
    /// Options with the given bound and the paper's default base 2.
    pub fn rel(bound: f64) -> Self {
        Self {
            bound,
            base: LogBase::Two,
        }
    }
}

/// An error-bounded compression pipeline as one dispatchable unit.
///
/// Object safety is the point: registries hold `Box<dyn Codec>` and the
/// CLI / bench / chunker route through them without per-codec match
/// arms. That forces monomorphic `f32`/`f64` entry points instead of a
/// generic method; [`PipelineElem`] recovers the generic view for
/// callers parameterized over the element type.
///
/// The payload produced by `compress_*` is the codec's native
/// self-describing stream; the registry wraps it in the unified
/// container (see [`crate::container`]), so implementations never deal
/// with the outer header.
pub trait Codec: Send + Sync {
    /// Stable stream id recorded in the container header.
    fn id(&self) -> u8;

    /// Registry lookup name (what `--codec` takes on the CLI).
    fn name(&self) -> &'static str;

    /// One-line human description for codec listings.
    fn describe(&self) -> &'static str;

    /// Compresses `f32` data under `opts`.
    fn compress_f32(
        &self,
        data: &[f32],
        dims: Dims,
        opts: &CompressOpts,
    ) -> Result<Vec<u8>, CodecError>;

    /// Compresses `f64` data under `opts`.
    fn compress_f64(
        &self,
        data: &[f64],
        dims: Dims,
        opts: &CompressOpts,
    ) -> Result<Vec<u8>, CodecError>;

    /// Decompresses an `f32` payload produced by
    /// [`Codec::compress_f32`].
    fn decompress_f32(&self, payload: &[u8]) -> Result<(Vec<f32>, Dims), CodecError>;

    /// Decompresses an `f64` payload produced by
    /// [`Codec::compress_f64`].
    fn decompress_f64(&self, payload: &[u8]) -> Result<(Vec<f64>, Dims), CodecError>;

    /// The stage spans this codec emits when compressed through a live
    /// recorder — the contract the trace exporters and the coverage
    /// tests check against. Constants come from [`pwrel_trace::stage`].
    /// The default (empty) declares "uninstrumented": the registry still
    /// wraps the run in its root span, but no per-stage breakdown is
    /// promised.
    fn stages(&self) -> &'static [&'static str] {
        &[]
    }

    /// [`Codec::compress_f32`] with per-stage recording. The default
    /// ignores the recorder; instrumented codecs override it. Must emit
    /// the same bytes as the plain method.
    fn compress_f32_traced(
        &self,
        data: &[f32],
        dims: Dims,
        opts: &CompressOpts,
        rec: &dyn Recorder,
    ) -> Result<Vec<u8>, CodecError> {
        let _ = rec;
        self.compress_f32(data, dims, opts)
    }

    /// [`Codec::compress_f64`] with per-stage recording.
    fn compress_f64_traced(
        &self,
        data: &[f64],
        dims: Dims,
        opts: &CompressOpts,
        rec: &dyn Recorder,
    ) -> Result<Vec<u8>, CodecError> {
        let _ = rec;
        self.compress_f64(data, dims, opts)
    }

    /// [`Codec::decompress_f32`] with per-stage recording.
    fn decompress_f32_traced(
        &self,
        payload: &[u8],
        rec: &dyn Recorder,
    ) -> Result<(Vec<f32>, Dims), CodecError> {
        let _ = rec;
        self.decompress_f32(payload)
    }

    /// [`Codec::decompress_f64`] with per-stage recording.
    fn decompress_f64_traced(
        &self,
        payload: &[u8],
        rec: &dyn Recorder,
    ) -> Result<(Vec<f64>, Dims), CodecError> {
        let _ = rec;
        self.decompress_f64(payload)
    }

    /// [`Codec::decompress_f32_traced`] with an executor for intra-chunk
    /// fan-out: codecs whose payload carries independently decodable
    /// entropy sub-streams decode them through `exec` (e.g. the worker
    /// pool). The default ignores the executor. Output must be identical
    /// for any executor, so the registry can route either way.
    fn decompress_f32_pooled(
        &self,
        payload: &[u8],
        rec: &dyn Recorder,
        exec: &dyn pwrel_data::LaneExecutor,
    ) -> Result<(Vec<f32>, Dims), CodecError> {
        let _ = exec;
        self.decompress_f32_traced(payload, rec)
    }

    /// [`Codec::decompress_f32_pooled`] for `f64` data.
    fn decompress_f64_pooled(
        &self,
        payload: &[u8],
        rec: &dyn Recorder,
        exec: &dyn pwrel_data::LaneExecutor,
    ) -> Result<(Vec<f64>, Dims), CodecError> {
        let _ = exec;
        self.decompress_f64_traced(payload, rec)
    }

    /// Preferred slice multiple (along the slowest axis) for framed
    /// chunking. The block-structured codecs override this so chunk
    /// boundaries align with their native blocks (ZFP: 4) instead of
    /// paying edge-padding overhead in every chunk.
    fn chunk_granularity(&self) -> usize {
        1
    }

    /// Sub-stream count of the codec's quantization-code entropy stage,
    /// recorded in the v2 container and stream headers: 1 for codecs
    /// without an interleaved Huffman stage, [`huffman::LANES`] for the
    /// codecs whose payloads carry 4-way interleaved symbol streams.
    /// Advisory — payloads self-describe — but lets `pwrel info` report
    /// the engine without decoding.
    ///
    /// [`huffman::LANES`]: pwrel_lossless::huffman::LANES
    fn entropy_mode(&self) -> u8 {
        crate::container::ENTROPY_MODE_SINGLE
    }

    /// Compresses an `f32` chunk source into a framed stream on `out`
    /// with chunks of about `chunk_elems` elements (see
    /// [`stream::ChunkPlan`] for the usage errors and granularity
    /// rounding). Peak memory is one chunk plus the codec's own working
    /// set — the full field is never resident.
    ///
    /// The default runs the sequential engine over the one-shot
    /// [`Codec::compress_f32_traced`] per chunk; codecs with a cheaper
    /// native streaming path may override it as long as the emitted
    /// bytes stay format-identical.
    fn compress_stream_f32(
        &self,
        src: &mut dyn ChunkSource<f32>,
        out: &mut dyn Write,
        dims: Dims,
        opts: &CompressOpts,
        chunk_elems: usize,
        rec: &dyn Recorder,
    ) -> Result<StreamStats, CodecError> {
        stream::compress_frames_with(
            self.id(),
            self.entropy_mode(),
            self.chunk_granularity(),
            src,
            out,
            dims,
            opts,
            chunk_elems,
            &mut |data, d| self.compress_f32_traced(data, d, opts, rec),
            rec,
        )
    }

    /// [`Codec::compress_stream_f32`] for `f64` data.
    fn compress_stream_f64(
        &self,
        src: &mut dyn ChunkSource<f64>,
        out: &mut dyn Write,
        dims: Dims,
        opts: &CompressOpts,
        chunk_elems: usize,
        rec: &dyn Recorder,
    ) -> Result<StreamStats, CodecError> {
        stream::compress_frames_with(
            self.id(),
            self.entropy_mode(),
            self.chunk_granularity(),
            src,
            out,
            dims,
            opts,
            chunk_elems,
            &mut |data, d| self.compress_f64_traced(data, d, opts, rec),
            rec,
        )
    }

    /// Decompresses the frames following an already-decoded stream
    /// `header` (see [`stream::decode_stream_header`]) into `sink`,
    /// chunk by chunk. `input` must be positioned at the first frame;
    /// it is consumed exactly through the final frame.
    fn decompress_stream_f32(
        &self,
        header: &StreamHeader,
        input: &mut dyn Read,
        sink: &mut dyn ChunkSink<f32>,
        rec: &dyn Recorder,
    ) -> Result<StreamStats, CodecError> {
        stream::decompress_frames_with(
            header,
            input,
            sink,
            &mut |payload| self.decompress_f32_traced(payload, rec),
            rec,
        )
    }

    /// [`Codec::decompress_stream_f32`] for `f64` data.
    fn decompress_stream_f64(
        &self,
        header: &StreamHeader,
        input: &mut dyn Read,
        sink: &mut dyn ChunkSink<f64>,
        rec: &dyn Recorder,
    ) -> Result<StreamStats, CodecError> {
        stream::decompress_frames_with(
            header,
            input,
            sink,
            &mut |payload| self.decompress_f64_traced(payload, rec),
            rec,
        )
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

/// Element types the pipeline can route through a `dyn Codec`: the
/// bridge from generic code to the trait's monomorphic entry points.
pub trait PipelineElem: Float + sealed::Sealed {
    /// Calls the matching monomorphic compress method.
    fn codec_compress(
        codec: &dyn Codec,
        data: &[Self],
        dims: Dims,
        opts: &CompressOpts,
    ) -> Result<Vec<u8>, CodecError>;

    /// Calls the matching monomorphic decompress method.
    fn codec_decompress(codec: &dyn Codec, payload: &[u8])
        -> Result<(Vec<Self>, Dims), CodecError>;

    /// Calls the matching monomorphic traced compress method.
    fn codec_compress_traced(
        codec: &dyn Codec,
        data: &[Self],
        dims: Dims,
        opts: &CompressOpts,
        rec: &dyn Recorder,
    ) -> Result<Vec<u8>, CodecError>;

    /// Calls the matching monomorphic traced decompress method.
    fn codec_decompress_traced(
        codec: &dyn Codec,
        payload: &[u8],
        rec: &dyn Recorder,
    ) -> Result<(Vec<Self>, Dims), CodecError>;

    /// Calls the matching monomorphic pooled decompress method.
    fn codec_decompress_pooled(
        codec: &dyn Codec,
        payload: &[u8],
        rec: &dyn Recorder,
        exec: &dyn pwrel_data::LaneExecutor,
    ) -> Result<(Vec<Self>, Dims), CodecError>;

    /// Calls the matching monomorphic streaming compress method.
    #[allow(clippy::too_many_arguments)] // mirrors the Codec streaming signature
    fn codec_compress_stream(
        codec: &dyn Codec,
        src: &mut dyn ChunkSource<Self>,
        out: &mut dyn Write,
        dims: Dims,
        opts: &CompressOpts,
        chunk_elems: usize,
        rec: &dyn Recorder,
    ) -> Result<StreamStats, CodecError>;

    /// Calls the matching monomorphic streaming decompress method.
    fn codec_decompress_stream(
        codec: &dyn Codec,
        header: &StreamHeader,
        input: &mut dyn Read,
        sink: &mut dyn ChunkSink<Self>,
        rec: &dyn Recorder,
    ) -> Result<StreamStats, CodecError>;
}

impl PipelineElem for f32 {
    fn codec_compress(
        codec: &dyn Codec,
        data: &[f32],
        dims: Dims,
        opts: &CompressOpts,
    ) -> Result<Vec<u8>, CodecError> {
        codec.compress_f32(data, dims, opts)
    }

    fn codec_decompress(codec: &dyn Codec, payload: &[u8]) -> Result<(Vec<f32>, Dims), CodecError> {
        codec.decompress_f32(payload)
    }

    fn codec_compress_traced(
        codec: &dyn Codec,
        data: &[f32],
        dims: Dims,
        opts: &CompressOpts,
        rec: &dyn Recorder,
    ) -> Result<Vec<u8>, CodecError> {
        codec.compress_f32_traced(data, dims, opts, rec)
    }

    fn codec_decompress_traced(
        codec: &dyn Codec,
        payload: &[u8],
        rec: &dyn Recorder,
    ) -> Result<(Vec<f32>, Dims), CodecError> {
        codec.decompress_f32_traced(payload, rec)
    }

    fn codec_decompress_pooled(
        codec: &dyn Codec,
        payload: &[u8],
        rec: &dyn Recorder,
        exec: &dyn pwrel_data::LaneExecutor,
    ) -> Result<(Vec<f32>, Dims), CodecError> {
        codec.decompress_f32_pooled(payload, rec, exec)
    }

    fn codec_compress_stream(
        codec: &dyn Codec,
        src: &mut dyn ChunkSource<f32>,
        out: &mut dyn Write,
        dims: Dims,
        opts: &CompressOpts,
        chunk_elems: usize,
        rec: &dyn Recorder,
    ) -> Result<StreamStats, CodecError> {
        codec.compress_stream_f32(src, out, dims, opts, chunk_elems, rec)
    }

    fn codec_decompress_stream(
        codec: &dyn Codec,
        header: &StreamHeader,
        input: &mut dyn Read,
        sink: &mut dyn ChunkSink<f32>,
        rec: &dyn Recorder,
    ) -> Result<StreamStats, CodecError> {
        codec.decompress_stream_f32(header, input, sink, rec)
    }
}

impl PipelineElem for f64 {
    fn codec_compress(
        codec: &dyn Codec,
        data: &[f64],
        dims: Dims,
        opts: &CompressOpts,
    ) -> Result<Vec<u8>, CodecError> {
        codec.compress_f64(data, dims, opts)
    }

    fn codec_decompress(codec: &dyn Codec, payload: &[u8]) -> Result<(Vec<f64>, Dims), CodecError> {
        codec.decompress_f64(payload)
    }

    fn codec_compress_traced(
        codec: &dyn Codec,
        data: &[f64],
        dims: Dims,
        opts: &CompressOpts,
        rec: &dyn Recorder,
    ) -> Result<Vec<u8>, CodecError> {
        codec.compress_f64_traced(data, dims, opts, rec)
    }

    fn codec_decompress_traced(
        codec: &dyn Codec,
        payload: &[u8],
        rec: &dyn Recorder,
    ) -> Result<(Vec<f64>, Dims), CodecError> {
        codec.decompress_f64_traced(payload, rec)
    }

    fn codec_decompress_pooled(
        codec: &dyn Codec,
        payload: &[u8],
        rec: &dyn Recorder,
        exec: &dyn pwrel_data::LaneExecutor,
    ) -> Result<(Vec<f64>, Dims), CodecError> {
        codec.decompress_f64_pooled(payload, rec, exec)
    }

    fn codec_compress_stream(
        codec: &dyn Codec,
        src: &mut dyn ChunkSource<f64>,
        out: &mut dyn Write,
        dims: Dims,
        opts: &CompressOpts,
        chunk_elems: usize,
        rec: &dyn Recorder,
    ) -> Result<StreamStats, CodecError> {
        codec.compress_stream_f64(src, out, dims, opts, chunk_elems, rec)
    }

    fn codec_decompress_stream(
        codec: &dyn Codec,
        header: &StreamHeader,
        input: &mut dyn Read,
        sink: &mut dyn ChunkSink<f64>,
        rec: &dyn Recorder,
    ) -> Result<StreamStats, CodecError> {
        codec.decompress_stream_f64(header, input, sink, rec)
    }
}
