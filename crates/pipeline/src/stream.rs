//! The framed streaming companion to the one-shot unified container.
//!
//! A framed stream carries one stream header followed by one
//! self-describing frame per chunk:
//!
//! ```text
//! magic "PWS1" | version u8 | codec id u8 | elem_bits u8
//! rank u8 | nx ny nz uvarint
//! bound f64 | base id u8 | entropy mode u8 (v2+) | n_chunks uvarint
//!
//! frame := marker 0xF7 | index uvarint | start uvarint | n_elems uvarint
//!          | bound f64 | payload_len uvarint | payload
//! ```
//!
//! Version 2 added the entropy-mode byte (see the container module): the
//! sub-stream count of the codec's entropy stage, 1 for the legacy
//! single-stream engine and 4 for interleaved Huffman. Version-1 streams
//! decode with an implied mode of 1; other values are rejected.
//!
//! Chunks are slabs along the slowest axis (prediction restarts at each
//! boundary, so the per-point bound is preserved per chunk at a small
//! ratio cost) and each payload is the codec's native self-describing
//! stream for that slab — exactly what the codec's one-shot path would
//! emit for a field of the slab's dims. A single-chunk stream therefore
//! reconstructs bit-identically to the one-shot container path.
//!
//! Decoding is resumable: [`decode_stream_header`] consumes the header,
//! then [`FrameWalker`]/[`decode_frame_header`] admit one frame at a
//! time, validating the marker, sequential chunk indices, contiguous
//! element coverage, and a plausibility cap on the recorded payload
//! length before any buffer is sized from it. Truncated, reordered, or
//! oversized frames all surface [`CodecError::Corrupt`]; the reader is
//! never trusted to be intact. I/O failures (including genuine device
//! errors, which `CodecError` cannot distinguish from truncation) also
//! map to `Corrupt`.
//!
//! The engines recycle their chunk and payload buffers through a
//! [`BufferPool`] arena, so their own steady-state allocation per chunk
//! is zero after warm-up; codec-internal allocations are the codecs'
//! business (see DESIGN.md §14).

use crate::codec::CompressOpts;
use pwrel_bitstream::{bytesio, varint};
use pwrel_core::LogBase;
use pwrel_data::{CodecError, Dims, Float};
use pwrel_trace::{stage, Recorder, Span};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Magic bytes of a framed stream.
pub const STREAM_MAGIC: &[u8; 4] = b"PWS1";

/// Current framed-stream format version.
pub const STREAM_VERSION: u8 = 2;

/// Leading byte of every frame; a cheap desync detector.
pub const FRAME_MARKER: u8 = 0xF7;

/// Codec id recorded by the closure-based [`ChunkedCodec`] wrapper,
/// reserved so registry decode refuses it with a usage error instead of
/// misrouting the payloads.
///
/// [`ChunkedCodec`]: ../../pwrel_parallel/chunked/struct.ChunkedCodec.html
pub const EXTERNAL_CODEC_ID: u8 = 0;

/// Frames may record at most this many payload bytes per element before
/// the decoder rejects the length as implausible (all workspace codecs
/// stay well under 4x expansion even on hostile data); the constant slack
/// covers headers of tiny chunks.
const MAX_PAYLOAD_EXPANSION: u64 = 4;
const PAYLOAD_SLACK: u64 = 4096;

/// True when `bytes` starts with the framed-stream magic.
pub fn is_framed(bytes: &[u8]) -> bool {
    bytes.starts_with(STREAM_MAGIC)
}

/// Parsed framed-stream header.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamHeader {
    /// Registered codec id every frame payload belongs to.
    pub codec_id: u8,
    /// Element width in bits (32 or 64).
    pub elem_bits: u8,
    /// Grid shape of the whole field the frames cover.
    pub dims: Dims,
    /// The error bound the stream was produced under (codec-interpreted).
    pub bound: f64,
    /// Logarithm base recorded for the transform-wrapped codecs.
    pub base: LogBase,
    /// Sub-stream count of the codec's entropy stage (1 = legacy single
    /// stream, 4 = interleaved); implied 1 for version-1 streams.
    pub entropy_mode: u8,
    /// Number of frames that follow the header.
    pub n_chunks: u64,
}

/// Per-frame metadata preceding each chunk payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameHeader {
    /// Zero-based chunk index; must arrive strictly sequentially.
    pub index: u64,
    /// First element (raster order) the chunk covers.
    pub start: u64,
    /// Number of elements in the chunk.
    pub n_elems: u64,
    /// The chunk's own error bound (today always the stream bound; the
    /// format leaves room for per-chunk adaptation).
    pub bound: f64,
    /// Byte length of the codec payload that follows.
    pub payload_len: u64,
}

/// Outcome counters for one streaming run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Frames written or decoded.
    pub chunks: u64,
    /// Field elements moved through the engine.
    pub elements: u64,
    /// Bytes read: raw input for compress, frame payload bytes
    /// (excluding stream and frame headers) for decompress.
    pub bytes_in: u64,
    /// Bytes written: stream + frame bytes for compress, raw output for
    /// decompress.
    pub bytes_out: u64,
}

/// Maps a read failure to the decoder's error space: end-of-input is
/// truncation; anything else (a device error the type cannot carry) is
/// reported the same way.
pub fn read_failed(e: std::io::Error) -> CodecError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        CodecError::Corrupt("truncated stream")
    } else {
        CodecError::Corrupt("stream read failed")
    }
}

/// Maps a write failure to the encoder's error space.
pub fn write_failed(_: std::io::Error) -> CodecError {
    CodecError::Corrupt("stream write failed")
}

fn read_u8(r: &mut dyn Read) -> Result<u8, CodecError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b).map_err(read_failed)?;
    Ok(u8::from_le_bytes(b))
}

fn read_f64(r: &mut dyn Read) -> Result<f64, CodecError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(read_failed)?;
    Ok(f64::from_le_bytes(b))
}

/// Byte-at-a-time LEB128 read with the same overflow guards as the
/// slice-based [`varint::read_uvarint`].
fn read_uvarint(r: &mut dyn Read) -> Result<u64, CodecError> {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    loop {
        let byte = read_u8(r)?;
        if shift == 63 && byte > 1 {
            return Err(CodecError::Corrupt("uvarint overflows u64"));
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::Corrupt("uvarint too long"));
        }
    }
}

/// Appends the stream header's byte image to `out`.
pub fn encode_stream_header(out: &mut Vec<u8>, h: &StreamHeader) {
    out.extend_from_slice(STREAM_MAGIC);
    out.push(STREAM_VERSION);
    out.push(h.codec_id);
    out.push(h.elem_bits);
    let (rank, nx, ny, nz) = h.dims.to_header();
    out.push(rank);
    varint::write_uvarint(out, nx);
    varint::write_uvarint(out, ny);
    varint::write_uvarint(out, nz);
    bytesio::put_f64(out, h.bound);
    out.push(h.base.id());
    out.push(h.entropy_mode);
    varint::write_uvarint(out, h.n_chunks);
}

/// Reads and validates a stream header from `r`.
///
/// Fails with [`CodecError::Mismatch`] when the magic is absent or the
/// version unknown, [`CodecError::Corrupt`] on malformed fields,
/// truncation, or a chunk count no valid stream could carry.
pub fn decode_stream_header(r: &mut dyn Read) -> Result<StreamHeader, CodecError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(read_failed)?;
    if &magic != STREAM_MAGIC {
        return Err(CodecError::Mismatch("not a framed stream"));
    }
    let version = read_u8(r)?;
    if version == 0 || version > STREAM_VERSION {
        return Err(CodecError::Mismatch("unsupported stream version"));
    }
    let codec_id = read_u8(r)?;
    let elem_bits = read_u8(r)?;
    if elem_bits != 32 && elem_bits != 64 {
        return Err(CodecError::Corrupt("bad element width"));
    }
    let rank = read_u8(r)?;
    let nx = read_uvarint(r)?;
    let ny = read_uvarint(r)?;
    let nz = read_uvarint(r)?;
    let dims = Dims::from_header(rank, nx, ny, nz).ok_or(CodecError::Corrupt("bad dims header"))?;
    let bound = read_f64(r)?;
    let base =
        LogBase::from_id(read_u8(r)?).ok_or(CodecError::Corrupt("bad base id in stream header"))?;
    let entropy_mode = if version >= 2 {
        let mode = read_u8(r)?;
        if mode != crate::container::ENTROPY_MODE_SINGLE
            && mode != crate::container::ENTROPY_MODE_INTERLEAVED
        {
            return Err(CodecError::Corrupt("bad entropy mode"));
        }
        mode
    } else {
        crate::container::ENTROPY_MODE_SINGLE
    };
    let n_chunks = read_uvarint(r)?;
    if n_chunks == 0 || n_chunks > dims.len() as u64 {
        return Err(CodecError::Corrupt("implausible chunk count"));
    }
    Ok(StreamHeader {
        codec_id,
        elem_bits,
        dims,
        bound,
        base,
        entropy_mode,
        n_chunks,
    })
}

/// Appends one frame header's byte image to `out`.
pub fn encode_frame_header(out: &mut Vec<u8>, h: &FrameHeader) {
    out.push(FRAME_MARKER);
    varint::write_uvarint(out, h.index);
    varint::write_uvarint(out, h.start);
    varint::write_uvarint(out, h.n_elems);
    bytesio::put_f64(out, h.bound);
    varint::write_uvarint(out, h.payload_len);
}

/// Reads one frame header (marker through payload length) from `r`,
/// leaving the reader positioned at the payload.
pub fn decode_frame_header(r: &mut dyn Read) -> Result<FrameHeader, CodecError> {
    if read_u8(r)? != FRAME_MARKER {
        return Err(CodecError::Corrupt("bad frame marker"));
    }
    let index = read_uvarint(r)?;
    let start = read_uvarint(r)?;
    let n_elems = read_uvarint(r)?;
    let bound = read_f64(r)?;
    let payload_len = read_uvarint(r)?;
    Ok(FrameHeader {
        index,
        start,
        n_elems,
        bound,
        payload_len,
    })
}

/// Points per unit of the slowest axis (the slab grain).
fn slice_elems(dims: Dims) -> usize {
    match dims.rank() {
        1 => 1,
        2 => dims.nx,
        _ => dims.nx * dims.ny,
    }
}

/// Extent of the slowest axis.
fn outer_extent(dims: Dims) -> usize {
    match dims.rank() {
        1 => dims.nx,
        2 => dims.ny,
        _ => dims.nz,
    }
}

/// Dims of a slab spanning `extent` units of the slowest axis.
fn slab_dims(dims: Dims, extent: usize) -> Dims {
    match dims.rank() {
        1 => Dims::d1(extent),
        2 => Dims::d2(extent, dims.nx),
        _ => Dims::d3(extent, dims.ny, dims.nx),
    }
}

/// How a field is cut into frames: slabs along the slowest axis, sized
/// from a requested element count and aligned to the codec's preferred
/// slice granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkPlan {
    dims: Dims,
    slice_elems: usize,
    outer: usize,
    slices_per_chunk: usize,
    n_chunks: usize,
}

impl ChunkPlan {
    /// Plans chunks of about `chunk_elems` elements each.
    ///
    /// `granularity` is the codec's preferred slice multiple (ZFP wants
    /// 4 so slabs align with its 4^d blocks); chunks are rounded up to
    /// it. A chunk can never be smaller than one slice of the slowest
    /// axis, so for rank ≥ 2 grids `chunk_elems` below the slice size is
    /// silently met with one-slice chunks.
    ///
    /// Usage errors (`InvalidArgument`): empty dims, `chunk_elems == 0`,
    /// or `chunk_elems` exceeding the total element count.
    pub fn new(dims: Dims, chunk_elems: usize, granularity: usize) -> Result<Self, CodecError> {
        if dims.is_empty() {
            return Err(CodecError::InvalidArgument("empty dims"));
        }
        if chunk_elems == 0 {
            return Err(CodecError::InvalidArgument("chunk_elems must be positive"));
        }
        if chunk_elems > dims.len() {
            return Err(CodecError::InvalidArgument(
                "chunk_elems exceeds total elements",
            ));
        }
        let slice_elems = slice_elems(dims);
        let outer = outer_extent(dims);
        let g = granularity.max(1);
        let spc = (chunk_elems / slice_elems).max(1);
        let spc = (spc.div_ceil(g) * g).min(outer);
        Ok(Self {
            dims,
            slice_elems,
            outer,
            slices_per_chunk: spc,
            n_chunks: outer.div_ceil(spc),
        })
    }

    /// Number of chunks the plan produces.
    pub fn n_chunks(&self) -> usize {
        self.n_chunks
    }

    /// Largest chunk size in elements (every chunk but possibly the last).
    pub fn max_chunk_elems(&self) -> usize {
        self.slices_per_chunk * self.slice_elems
    }

    /// `(start element, element count)` of chunk `i` in raster order.
    pub fn chunk_range(&self, i: usize) -> (usize, usize) {
        let s0 = (i * self.slices_per_chunk).min(self.outer);
        let s1 = (s0 + self.slices_per_chunk).min(self.outer);
        (s0 * self.slice_elems, (s1 - s0) * self.slice_elems)
    }

    /// Dims of chunk `i` as an independent field.
    pub fn chunk_dims(&self, i: usize) -> Dims {
        let (_, n) = self.chunk_range(i);
        slab_dims(self.dims, n / self.slice_elems)
    }
}

/// Sequential supplier of uncompressed chunk data.
///
/// The engine always asks for chunks front to back in raster order, so
/// implementations only need a cursor — a slice window, a file reader,
/// or a procedural generator (the streaming bench never materializes its
/// field).
pub trait ChunkSource<F: Float> {
    /// Replaces `buf`'s contents with the next `n` elements.
    fn next_chunk(&mut self, n: usize, buf: &mut Vec<F>) -> Result<(), CodecError>;
}

/// Sequential consumer of reconstructed chunk data.
pub trait ChunkSink<F: Float> {
    /// Accepts the chunk covering elements `start..start + data.len()`.
    /// Chunks arrive in raster order with no gaps.
    fn put_chunk(&mut self, start: usize, data: &[F]) -> Result<(), CodecError>;
}

/// [`ChunkSource`] over an in-memory slice.
pub struct SliceSource<'a, F> {
    data: &'a [F],
    pos: usize,
}

impl<'a, F> SliceSource<'a, F> {
    /// Source reading `data` front to back.
    pub fn new(data: &'a [F]) -> Self {
        Self { data, pos: 0 }
    }
}

impl<F: Float> ChunkSource<F> for SliceSource<'_, F> {
    fn next_chunk(&mut self, n: usize, buf: &mut Vec<F>) -> Result<(), CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or(CodecError::InvalidArgument("chunk source exhausted"))?;
        buf.clear();
        buf.extend_from_slice(
            self.data
                .get(self.pos..end)
                .ok_or(CodecError::InvalidArgument("chunk source exhausted"))?,
        );
        self.pos = end;
        Ok(())
    }
}

/// [`ChunkSource`] decoding little-endian elements from any reader, so
/// a file-backed field streams through compression without ever being
/// resident.
pub struct ReadSource<R> {
    reader: R,
    scratch: Vec<u8>,
}

impl<R: Read> ReadSource<R> {
    /// Source decoding LE elements from `reader`.
    pub fn new(reader: R) -> Self {
        Self {
            reader,
            scratch: Vec::new(),
        }
    }
}

impl<R: Read, F: Float> ChunkSource<F> for ReadSource<R> {
    fn next_chunk(&mut self, n: usize, buf: &mut Vec<F>) -> Result<(), CodecError> {
        let nbytes = n
            .checked_mul(F::NBYTES)
            .ok_or(CodecError::InvalidArgument("chunk size overflow"))?;
        self.scratch.clear();
        self.scratch.resize(nbytes, 0);
        self.reader
            .read_exact(&mut self.scratch)
            .map_err(read_failed)?;
        buf.clear();
        buf.extend(self.scratch.chunks_exact(F::NBYTES).filter_map(F::read_le));
        if buf.len() != n {
            return Err(CodecError::Corrupt("short element read"));
        }
        Ok(())
    }
}

/// [`ChunkSink`] collecting the reconstruction into one `Vec`.
#[derive(Default)]
pub struct VecSink<F> {
    data: Vec<F>,
}

impl<F: Float> VecSink<F> {
    /// An empty sink.
    pub fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// The collected reconstruction.
    pub fn into_inner(self) -> Vec<F> {
        self.data
    }
}

impl<F: Float> ChunkSink<F> for VecSink<F> {
    fn put_chunk(&mut self, start: usize, data: &[F]) -> Result<(), CodecError> {
        if start != self.data.len() {
            return Err(CodecError::Corrupt("non-contiguous chunk delivery"));
        }
        self.data.extend_from_slice(data);
        Ok(())
    }
}

/// [`ChunkSink`] writing little-endian elements to any writer.
pub struct WriteSink<W> {
    writer: W,
    scratch: Vec<u8>,
}

impl<W: Write> WriteSink<W> {
    /// Sink encoding LE elements into `writer`.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            scratch: Vec::new(),
        }
    }

    /// Recovers the writer (e.g. to flush or inspect it).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write, F: Float> ChunkSink<F> for WriteSink<W> {
    fn put_chunk(&mut self, _start: usize, data: &[F]) -> Result<(), CodecError> {
        self.scratch.clear();
        for &v in data {
            v.write_le(&mut self.scratch);
        }
        self.writer.write_all(&self.scratch).map_err(write_failed)
    }
}

/// A free list of reusable buffers: the scratch arena behind the
/// streaming engines.
///
/// `take` hands out a recycled buffer when one is available (cleared,
/// with its old capacity) and allocates otherwise; `put` returns a
/// buffer to the list. After one chunk of warm-up a steady-state
/// compress or decompress loop hits the free list every time, so the
/// engine's own per-chunk allocation is zero. Thread-safe so the
/// pipelined executor can recycle buffers across workers.
pub struct BufferPool<T> {
    free: Mutex<Vec<Vec<T>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<T> Default for BufferPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BufferPool<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Self {
            free: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// A cleared buffer with at least `capacity` reserved.
    pub fn take(&self, capacity: usize) -> Vec<T> {
        let recycled = self.free.lock().unwrap_or_else(|e| e.into_inner()).pop();
        match recycled {
            Some(mut v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if v.capacity() < capacity {
                    v.reserve(capacity - v.len());
                }
                v
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(capacity)
            }
        }
    }

    /// Returns `buf` (cleared) to the free list.
    pub fn put(&self, mut buf: Vec<T>) {
        buf.clear();
        self.free
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(buf);
    }

    /// `(hits, misses)` so far.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Adds the arena counters to `rec`.
    pub fn record(&self, rec: &dyn Recorder) {
        if rec.is_enabled() {
            let (hits, misses) = self.counters();
            rec.add(stage::C_ARENA_HITS, hits);
            rec.add(stage::C_ARENA_MISSES, misses);
        }
    }
}

/// Frame-admission state machine shared by the sequential and pipelined
/// decoders: validates each [`FrameHeader`] against the stream header
/// (sequential index, contiguous coverage, shape, payload plausibility)
/// and tracks coverage so truncation after any whole frame is still
/// caught by [`FrameWalker::finish`].
#[derive(Debug)]
pub struct FrameWalker {
    dims: Dims,
    elem_bytes: u64,
    n_chunks: u64,
    next_index: u64,
    covered: usize,
}

impl FrameWalker {
    /// A walker validating frames against `header`.
    pub fn new(header: &StreamHeader) -> Self {
        Self {
            dims: header.dims,
            elem_bytes: u64::from(header.elem_bits) / 8,
            n_chunks: header.n_chunks,
            next_index: 0,
            covered: 0,
        }
    }

    /// Frames still expected.
    pub fn remaining(&self) -> u64 {
        self.n_chunks - self.next_index
    }

    /// Validates the next frame header, returning the chunk's dims as an
    /// independent field.
    pub fn admit(&mut self, fh: &FrameHeader) -> Result<Dims, CodecError> {
        if self.next_index >= self.n_chunks {
            return Err(CodecError::Corrupt("frame past recorded chunk count"));
        }
        if fh.index != self.next_index {
            return Err(CodecError::Corrupt("out-of-order chunk index"));
        }
        if fh.start != self.covered as u64 {
            return Err(CodecError::Corrupt("non-contiguous chunk start"));
        }
        let n = usize::try_from(fh.n_elems).map_err(|_| CodecError::Corrupt("chunk too large"))?;
        if n == 0 {
            return Err(CodecError::Corrupt("empty chunk"));
        }
        let end = self
            .covered
            .checked_add(n)
            .filter(|&e| e <= self.dims.len())
            .ok_or(CodecError::Corrupt("chunk exceeds the grid"))?;
        if !fh.bound.is_finite() {
            return Err(CodecError::Corrupt("bad chunk bound"));
        }
        let cap = (fh.n_elems)
            .saturating_mul(self.elem_bytes)
            .saturating_mul(MAX_PAYLOAD_EXPANSION)
            .saturating_add(PAYLOAD_SLACK);
        if fh.payload_len > cap {
            return Err(CodecError::Corrupt("implausible frame length"));
        }
        let se = slice_elems(self.dims);
        if n % se != 0 {
            return Err(CodecError::Corrupt("chunk not slab-aligned"));
        }
        self.next_index += 1;
        self.covered = end;
        Ok(slab_dims(self.dims, n / se))
    }

    /// Errors unless every recorded frame arrived and the frames cover
    /// the whole grid.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.next_index != self.n_chunks || self.covered != self.dims.len() {
            return Err(CodecError::Corrupt("frames do not cover the grid"));
        }
        Ok(())
    }
}

/// Per-chunk encode hook for [`compress_frames_with`]: chunk data plus
/// its slab dims to the codec-native payload.
pub type CompressChunkFn<'a, F> = &'a mut dyn FnMut(&[F], Dims) -> Result<Vec<u8>, CodecError>;

/// Per-chunk decode hook for [`decompress_frames_with`]: codec-native
/// payload to the reconstruction and its slab dims.
pub type DecompressChunkFn<'a, F> = &'a mut dyn FnMut(&[u8]) -> Result<(Vec<F>, Dims), CodecError>;

/// Compresses a chunk source into a framed stream, one frame per chunk,
/// with `compress_chunk` producing each chunk's codec-native payload.
///
/// This is the sequential engine the `Codec` trait's provided streaming
/// methods delegate to; the pipelined variant lives in `pwrel-parallel`
/// and shares the format helpers and the [`FrameWalker`] rules.
#[allow(clippy::too_many_arguments)] // mirrors the Codec streaming signature plus identity
pub fn compress_frames_with<F: Float>(
    codec_id: u8,
    entropy_mode: u8,
    granularity: usize,
    src: &mut dyn ChunkSource<F>,
    out: &mut dyn Write,
    dims: Dims,
    opts: &CompressOpts,
    chunk_elems: usize,
    compress_chunk: CompressChunkFn<'_, F>,
    rec: &dyn Recorder,
) -> Result<StreamStats, CodecError> {
    let plan = ChunkPlan::new(dims, chunk_elems, granularity)?;
    let header = StreamHeader {
        codec_id,
        elem_bits: F::BITS as u8,
        dims,
        bound: opts.bound,
        base: opts.base,
        entropy_mode,
        n_chunks: plan.n_chunks() as u64,
    };
    let mut head = Vec::with_capacity(48);
    encode_stream_header(&mut head, &header);
    out.write_all(&head).map_err(write_failed)?;

    let arena: BufferPool<F> = BufferPool::new();
    let mut stats = StreamStats {
        chunks: plan.n_chunks() as u64,
        elements: dims.len() as u64,
        bytes_in: (dims.len() * F::NBYTES) as u64,
        bytes_out: head.len() as u64,
    };
    for i in 0..plan.n_chunks() {
        let _chunk = Span::enter(rec, stage::CHUNK_COMPRESS);
        let (start, n) = plan.chunk_range(i);
        let mut buf = arena.take(n);
        src.next_chunk(n, &mut buf)?;
        if buf.len() != n {
            return Err(CodecError::InvalidArgument(
                "chunk source returned the wrong length",
            ));
        }
        let payload = compress_chunk(&buf, plan.chunk_dims(i))?;
        arena.put(buf);
        head.clear();
        encode_frame_header(
            &mut head,
            &FrameHeader {
                index: i as u64,
                start: start as u64,
                n_elems: n as u64,
                bound: opts.bound,
                payload_len: payload.len() as u64,
            },
        );
        out.write_all(&head).map_err(write_failed)?;
        out.write_all(&payload).map_err(write_failed)?;
        stats.bytes_out += (head.len() + payload.len()) as u64;
    }
    if rec.is_enabled() {
        rec.add(stage::C_STREAM_CHUNKS, stats.chunks);
        rec.add(stage::C_BYTES_IN, stats.bytes_in);
        rec.add(stage::C_BYTES_OUT, stats.bytes_out);
        arena.record(rec);
    }
    Ok(stats)
}

/// Decompresses the frames following an already-decoded stream header
/// into `sink`, with `decompress_chunk` decoding each payload.
///
/// The reader is consumed exactly through the final frame (no
/// read-ahead), so framed streams embed cleanly in larger byte streams.
pub fn decompress_frames_with<F: Float>(
    header: &StreamHeader,
    input: &mut dyn Read,
    sink: &mut dyn ChunkSink<F>,
    decompress_chunk: DecompressChunkFn<'_, F>,
    rec: &dyn Recorder,
) -> Result<StreamStats, CodecError> {
    if header.elem_bits as u32 != F::BITS {
        return Err(CodecError::Mismatch("element type does not match stream"));
    }
    let mut walker = FrameWalker::new(header);
    let arena: BufferPool<u8> = BufferPool::new();
    let mut stats = StreamStats {
        chunks: header.n_chunks,
        elements: header.dims.len() as u64,
        ..StreamStats::default()
    };
    let mut covered = 0usize;
    while walker.remaining() > 0 {
        let _chunk = Span::enter(rec, stage::CHUNK_DECOMPRESS);
        let fh = decode_frame_header(input)?;
        let chunk_dims = walker.admit(&fh)?;
        // admit() capped payload_len, so sizing a buffer from it is safe.
        let len = fh.payload_len as usize;
        let mut payload = arena.take(len);
        payload.resize(len, 0);
        input.read_exact(&mut payload).map_err(read_failed)?;
        let (data, d) = decompress_chunk(&payload)?;
        arena.put(payload);
        if d != chunk_dims || data.len() != chunk_dims.len() {
            return Err(CodecError::Corrupt("chunk payload shape mismatch"));
        }
        sink.put_chunk(covered, &data)?;
        covered += data.len();
        stats.bytes_in += fh.payload_len;
        stats.bytes_out += (data.len() * F::NBYTES) as u64;
    }
    walker.finish()?;
    if rec.is_enabled() {
        rec.add(stage::C_STREAM_CHUNKS, stats.chunks);
        rec.add(stage::C_DECOMP_BYTES_IN, stats.bytes_in);
        rec.add(stage::C_DECOMP_BYTES_OUT, stats.bytes_out);
        arena.record(rec);
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> StreamHeader {
        StreamHeader {
            codec_id: 3,
            elem_bits: 32,
            dims: Dims::d3(8, 6, 4),
            bound: 1e-3,
            base: LogBase::Two,
            entropy_mode: crate::container::ENTROPY_MODE_INTERLEAVED,
            n_chunks: 4,
        }
    }

    #[test]
    fn stream_header_round_trips() {
        let mut buf = Vec::new();
        encode_stream_header(&mut buf, &header());
        let mut r: &[u8] = &buf;
        assert_eq!(decode_stream_header(&mut r).unwrap(), header());
        assert!(r.is_empty());
    }

    #[test]
    fn stream_header_truncations_error() {
        let mut buf = Vec::new();
        encode_stream_header(&mut buf, &header());
        for cut in 0..buf.len() {
            let mut r: &[u8] = &buf[..cut];
            assert!(decode_stream_header(&mut r).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn version1_stream_header_decodes_with_implied_single_mode() {
        // Hand-built v1 header: identical to v2 minus the entropy-mode byte.
        let h = header();
        let mut buf = Vec::new();
        buf.extend_from_slice(STREAM_MAGIC);
        buf.push(1); // version
        buf.push(h.codec_id);
        buf.push(h.elem_bits);
        let (rank, nx, ny, nz) = h.dims.to_header();
        buf.push(rank);
        varint::write_uvarint(&mut buf, nx);
        varint::write_uvarint(&mut buf, ny);
        varint::write_uvarint(&mut buf, nz);
        bytesio::put_f64(&mut buf, h.bound);
        buf.push(h.base.id());
        varint::write_uvarint(&mut buf, h.n_chunks);
        let mut r: &[u8] = &buf;
        let parsed = decode_stream_header(&mut r).unwrap();
        assert_eq!(parsed.entropy_mode, crate::container::ENTROPY_MODE_SINGLE);
        assert_eq!(parsed.codec_id, h.codec_id);
        assert_eq!(parsed.n_chunks, h.n_chunks);
        assert!(r.is_empty());
    }

    #[test]
    fn bad_stream_entropy_mode_is_corrupt() {
        for bad in [0u8, 2, 3, 5, 255] {
            let mut h = header();
            h.entropy_mode = bad;
            let mut buf = Vec::new();
            encode_stream_header(&mut buf, &h);
            let mut r: &[u8] = &buf;
            assert_eq!(
                decode_stream_header(&mut r),
                Err(CodecError::Corrupt("bad entropy mode")),
                "mode={bad}"
            );
        }
    }

    #[test]
    fn frame_header_round_trips() {
        let fh = FrameHeader {
            index: 7,
            start: 4096,
            n_elems: 1024,
            bound: 1e-4,
            payload_len: 900,
        };
        let mut buf = Vec::new();
        encode_frame_header(&mut buf, &fh);
        let mut r: &[u8] = &buf;
        assert_eq!(decode_frame_header(&mut r).unwrap(), fh);
        for cut in 0..buf.len() {
            let mut r: &[u8] = &buf[..cut];
            assert!(decode_frame_header(&mut r).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn implausible_chunk_count_rejected() {
        let mut h = header();
        h.n_chunks = h.dims.len() as u64 + 1;
        let mut buf = Vec::new();
        encode_stream_header(&mut buf, &h);
        let mut r: &[u8] = &buf;
        assert_eq!(
            decode_stream_header(&mut r),
            Err(CodecError::Corrupt("implausible chunk count"))
        );
    }

    #[test]
    fn chunk_plan_validates_usage() {
        let dims = Dims::d3(8, 6, 4);
        assert!(matches!(
            ChunkPlan::new(dims, 0, 1),
            Err(CodecError::InvalidArgument(_))
        ));
        assert!(matches!(
            ChunkPlan::new(dims, dims.len() + 1, 1),
            Err(CodecError::InvalidArgument(_))
        ));
        assert!(matches!(
            ChunkPlan::new(Dims::d1(0), 1, 1),
            Err(CodecError::InvalidArgument(_))
        ));
        assert!(ChunkPlan::new(dims, dims.len(), 1).is_ok());
    }

    #[test]
    fn chunk_plan_covers_the_grid_exactly() {
        for (dims, chunk_elems, g) in [
            (Dims::d3(10, 4, 4), 40, 1),
            (Dims::d3(10, 4, 4), 48, 4),
            (Dims::d2(41, 7), 29, 1),
            (Dims::d1(1001), 100, 1),
            (Dims::d3(3, 5, 5), 1, 4),
        ] {
            let plan = ChunkPlan::new(dims, chunk_elems, g).unwrap();
            let mut at = 0usize;
            for i in 0..plan.n_chunks() {
                let (start, n) = plan.chunk_range(i);
                assert_eq!(start, at, "{dims:?}");
                assert!(n > 0 && n <= plan.max_chunk_elems());
                assert_eq!(plan.chunk_dims(i).len(), n);
                at += n;
            }
            assert_eq!(at, dims.len(), "{dims:?}");
        }
    }

    #[test]
    fn chunk_plan_honors_granularity() {
        // 48 elems/chunk = 3 slices of 16; granularity 4 rounds to 4.
        let plan = ChunkPlan::new(Dims::d3(10, 4, 4), 48, 4).unwrap();
        assert_eq!(plan.max_chunk_elems(), 4 * 16);
        assert_eq!(plan.n_chunks(), 3);
    }

    #[test]
    fn slice_source_and_vec_sink_round_trip() {
        let data: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let mut src = SliceSource::new(&data);
        let mut buf = Vec::new();
        let mut sink = VecSink::new();
        let mut at = 0usize;
        for n in [16, 32, 16] {
            src.next_chunk(n, &mut buf).unwrap();
            sink.put_chunk(at, &buf).unwrap();
            at += n;
        }
        assert_eq!(sink.into_inner(), data);
        assert!(src.next_chunk(1, &mut buf).is_err(), "exhausted source");
    }

    #[test]
    fn read_source_and_write_sink_round_trip_le_bytes() {
        let data: Vec<f64> = (0..32).map(|i| (i as f64) * 0.5 - 3.0).collect();
        let mut bytes = Vec::new();
        for &v in &data {
            v.write_le(&mut bytes);
        }
        let mut src = ReadSource::new(&bytes[..]);
        let mut buf = Vec::new();
        let mut sink = WriteSink::new(Vec::new());
        for (i, n) in [8usize, 8, 16].iter().enumerate() {
            ChunkSource::<f64>::next_chunk(&mut src, *n, &mut buf).unwrap();
            sink.put_chunk(i * 8, &buf).unwrap();
        }
        assert_eq!(sink.into_inner(), bytes);
    }

    #[test]
    fn buffer_pool_recycles_after_warm_up() {
        let pool: BufferPool<u8> = BufferPool::new();
        let a = pool.take(100);
        pool.put(a);
        let b = pool.take(50);
        assert!(b.capacity() >= 50);
        pool.put(b);
        assert_eq!(pool.counters(), (1, 1));
    }

    #[test]
    fn frame_walker_rejects_reorder_and_gaps() {
        let h = StreamHeader {
            n_chunks: 2,
            ..header()
        };
        let n_half = (h.dims.len() / 2) as u64;
        let fh = |index, start, n_elems| FrameHeader {
            index,
            start,
            n_elems,
            bound: 1e-3,
            payload_len: 10,
        };
        // Out-of-order index.
        let mut w = FrameWalker::new(&h);
        assert!(w.admit(&fh(1, 0, n_half)).is_err());
        // Gap in coverage.
        let mut w = FrameWalker::new(&h);
        w.admit(&fh(0, 0, n_half)).unwrap();
        assert!(w.admit(&fh(1, n_half + 24, n_half)).is_err());
        // Implausible payload length.
        let mut w = FrameWalker::new(&h);
        let mut bad = fh(0, 0, n_half);
        bad.payload_len = n_half * 4 * 4 + 4097;
        assert_eq!(
            w.admit(&bad),
            Err(CodecError::Corrupt("implausible frame length"))
        );
        // Incomplete coverage caught at finish.
        let mut w = FrameWalker::new(&h);
        w.admit(&fh(0, 0, n_half)).unwrap();
        assert!(w.finish().is_err());
        w.admit(&fh(1, n_half, n_half)).unwrap();
        w.finish().unwrap();
    }

    #[test]
    fn frame_walker_rejects_unaligned_chunks() {
        let h = header(); // slices are 24 elements
        let mut w = FrameWalker::new(&h);
        assert_eq!(
            w.admit(&FrameHeader {
                index: 0,
                start: 0,
                n_elems: 25,
                bound: 1e-3,
                payload_len: 10,
            }),
            Err(CodecError::Corrupt("chunk not slab-aligned"))
        );
    }
}
