//! Property tests: the lane-batched wavefront sweep is bit-identical to
//! the per-point reference sweep for order-insensitive sinks, across
//! element types (f32/f64), ranks (1D/2D/3D), and hostile grid shapes —
//! rows narrower than the wavefront, extents of 1, and row counts that
//! are not a multiple of [`LANES`] (so every prologue, main, epilogue,
//! and remainder-row path is exercised).
//!
//! The sink is the quantize-or-escape shape the SZ engine uses, so the
//! properties pin exactly what the codec relies on: identical codes and
//! identical reconstructions, including through escape feedback (an
//! escaping point feeds its own value back into its neighbours'
//! predictions).

use proptest::prelude::*;
use pwrel_data::{Dims, Float};
use pwrel_kernels::predict::{self, QuantKernel, LANES};
use std::convert::Infallible;

/// Grid extents biased to the wavefront's edge cases around [`LANES`].
fn extent() -> impl Strategy<Value = usize> {
    prop_oneof![
        2 => 1usize..(2 * LANES + 4),
        1 => Just(1usize),
        1 => Just(LANES - 1),
        1 => Just(LANES),
        1 => Just(LANES + 1),
        1 => Just(13usize),
    ]
}

fn make_dims(rank: u8, nx: usize, ny: usize, nz: usize) -> Dims {
    match rank {
        1 => Dims::d1(nx * ny),
        2 => Dims::d2(nx, ny),
        _ => Dims::d3(nx, ny, nz),
    }
}

/// Deterministic field for a seed: mostly quantizable finite values with
/// periodic escapes (non-finite, or far outside the quantizer radius).
fn field(seed: u64, n: usize) -> Vec<f64> {
    let mut x = seed | 1;
    (0..n)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            match (i > 0, x % 29) {
                (true, 0) => f64::NAN,
                (true, 1) => f64::INFINITY,
                (true, 2) => -1e60,
                _ => (x % 3000) as f64 / 11.0 - 136.0,
            }
        })
        .collect()
}

/// Runs both sweeps with the engine-shaped sink and asserts codes and
/// reconstructions are bit-identical.
fn check_parity<F: Float>(
    dims: Dims,
    data: &[F],
    eb: f64,
    capacity: u32,
) -> Result<(), TestCaseError> {
    let quant = QuantKernel::new(capacity);
    let run = |batched: bool| -> (Vec<u32>, Vec<u64>) {
        let mut dec = vec![F::zero(); dims.len()];
        let mut codes = vec![0u32; dims.len()];
        let mut sink = |idx: usize, pred: f64| -> Result<F, Infallible> {
            Ok(match quant.quantize(data[idx], pred, eb) {
                Some((code, val)) => {
                    codes[idx] = code;
                    val
                }
                None => data[idx],
            })
        };
        let res = if batched {
            predict::sweep(dims, &mut dec, &mut sink)
        } else {
            predict::sweep_reference(dims, &mut dec, &mut sink)
        };
        match res {
            Ok(()) => {}
            Err(e) => match e {},
        }
        (codes, dec.iter().map(|v| v.to_bits_u64()).collect())
    };
    let (bc, bd) = run(true);
    let (rc, rd) = run(false);
    prop_assert_eq!(bc, rc, "codes diverge for {:?}", dims);
    prop_assert_eq!(bd, rd, "reconstructions diverge for {:?}", dims);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn wavefront_matches_reference_f64(
        rank in 1u8..4,
        nx in extent(),
        ny in extent(),
        nz in extent(),
        seed in any::<u64>(),
    ) {
        let dims = make_dims(rank, nx, ny, nz);
        let data = field(seed, dims.len());
        check_parity::<f64>(dims, &data, 0.05, 512)?;
    }

    #[test]
    fn wavefront_matches_reference_f32(
        rank in 1u8..4,
        nx in extent(),
        ny in extent(),
        nz in extent(),
        seed in any::<u64>(),
    ) {
        let dims = make_dims(rank, nx, ny, nz);
        let data: Vec<f32> = field(seed, dims.len()).iter().map(|&v| v as f32).collect();
        check_parity::<f32>(dims, &data, 1e-3, 65536)?;
    }

    #[test]
    fn wavefront_matches_reference_tight_quantizer(
        rank in 1u8..4,
        nx in extent(),
        ny in extent(),
        nz in extent(),
        seed in any::<u64>(),
    ) {
        // A tiny capacity forces frequent out-of-radius escapes, so the
        // escape feedback path is hit constantly, on both element types.
        let dims = make_dims(rank, nx, ny, nz);
        let data = field(seed, dims.len());
        check_parity::<f64>(dims, &data, 1e-4, 8)?;
        let data32: Vec<f32> = data.iter().map(|&v| v as f32).collect();
        check_parity::<f32>(dims, &data32, 1e-4, 8)?;
    }
}
