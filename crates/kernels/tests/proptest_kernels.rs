//! Property tests: the fast batched kernels track libm within their
//! advertised error constants over random finite inputs — subnormals,
//! signed values, and zeros included — and the batch entry points agree
//! with the scalar ones bit-for-bit.

use proptest::prelude::*;
use pwrel_kernels::fast::{
    fast_exp2, fast_exp2_batch, fast_log2, fast_log2_batch, EXP2_MAX_ARG, FAST_EXP2_REL_ERR,
    FAST_LOG2_ABS_ERR,
};
use pwrel_kernels::{Kernel, LogBase};

const BASES: [LogBase; 3] = [LogBase::Two, LogBase::E, LogBase::Ten];

/// Positive finite `f64` with a uniformly random exponent field — covers
/// the full range from the smallest subnormal to the largest normal.
fn positive_finite() -> impl Strategy<Value = f64> {
    (0u64..=2046, any::<u64>()).prop_map(|(e, m)| {
        let x = f64::from_bits((e << 52) | (m & ((1u64 << 52) - 1)));
        // e == 0, m == 0 composes +0.0; nudge to the smallest subnormal so
        // the log comparison below stays meaningful.
        if x == 0.0 {
            f64::from_bits(1)
        } else {
            x
        }
    })
}

/// Signed finite value including exact zeros and subnormals.
fn signed_or_zero() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => (positive_finite(), any::<bool>())
            .prop_map(|(x, neg)| if neg { -x } else { x }),
        1 => Just(0.0f64),
        1 => Just(-0.0f64),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn fast_log2_tracks_libm_over_all_positive_finites(x in positive_finite()) {
        let err = (fast_log2(x) - x.log2()).abs();
        prop_assert!(err <= FAST_LOG2_ABS_ERR, "x = {x:e}: err = {err:e}");
    }

    #[test]
    fn fast_exp2_tracks_libm_over_the_log_value_range(
        d in -EXP2_MAX_ARG..EXP2_MAX_ARG,
    ) {
        let exact = d.exp2();
        let got = fast_exp2(d);
        if exact.is_infinite() {
            // Above f64's exponent range both must overflow the same way.
            prop_assert_eq!(got, exact, "d = {}", d);
        } else if exact >= f64::MIN_POSITIVE {
            let rel = ((got - exact) / exact).abs();
            prop_assert!(rel <= FAST_EXP2_REL_ERR, "d = {d}: rel = {rel:e}");
        } else {
            // Subnormal result: one output quantum of slack on top of the
            // relative bound (gradual underflow).
            let tol = FAST_EXP2_REL_ERR * exact + f64::from_bits(1);
            prop_assert!((got - exact).abs() <= tol, "d = {d}: {got:e} vs {exact:e}");
        }
    }

    #[test]
    fn kernel_margins_cover_fast_vs_libm_for_every_base(x in positive_finite()) {
        for base in BASES {
            let fast = Kernel::Fast.log_abs(base, x);
            let libm = Kernel::Libm.log_abs(base, x);
            // The forward margin plus a few ulp of the scaled comparison
            // value (libm's own rounding is on the other side).
            let tol = Kernel::Fast.forward_abs_margin(base) + 4.0 * f64::EPSILON * libm.abs();
            prop_assert!(
                (fast - libm).abs() <= tol,
                "{base:?} x = {x:e}: fast {fast} vs libm {libm}"
            );
        }
    }

    #[test]
    fn batches_match_scalars_bit_for_bit(
        xs in prop::collection::vec(signed_or_zero(), 1..200),
    ) {
        let abs: Vec<f64> = xs.iter().map(|x| x.abs()).collect();
        let mut dst = vec![0.0; abs.len()];
        fast_log2_batch(&abs, &mut dst);
        for (x, d) in abs.iter().zip(&dst) {
            prop_assert_eq!(d.to_bits(), fast_log2(*x).to_bits());
        }

        let ds: Vec<f64> = xs
            .iter()
            .map(|x| (x % EXP2_MAX_ARG) * 0.99)
            .collect();
        let mut val = vec![0.0; ds.len()];
        fast_exp2_batch(&ds, &mut val);
        for (d, v) in ds.iter().zip(&val) {
            prop_assert_eq!(v.to_bits(), fast_exp2(*d).to_bits());
        }

        for kernel in [Kernel::Fast, Kernel::Libm] {
            for base in BASES {
                let mut logd = vec![0.0; xs.len()];
                kernel.log_batch(base, &xs, &mut logd);
                for (x, d) in xs.iter().zip(&logd) {
                    if *x != 0.0 {
                        prop_assert_eq!(d.to_bits(), kernel.log_abs(base, *x).to_bits());
                    }
                }
            }
        }
    }
}
