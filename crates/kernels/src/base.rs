//! The logarithm base of the transform.

use pwrel_data::Float;

/// Logarithm base for the mapping. Sec. IV proves the choice cannot change
/// compression quality; Table III shows it *does* change transform speed
/// (base 10 has no fast `10^x` in libm), which is why base 2 is the paper's
/// final pick. The fast kernels route every base through `log2`/`exp2`
/// with a constant scale factor, which erases most of that gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogBase {
    /// Base 2: `log2`/`exp2` fast paths. The paper's choice.
    Two,
    /// Natural base: `ln`/`exp` fast paths.
    E,
    /// Base 10: fast `log10` forward, but the inverse needs `powf` — the
    /// slow postprocessing the paper measures in Table III.
    Ten,
}

impl LogBase {
    /// Numeric base value.
    pub fn value(self) -> f64 {
        match self {
            LogBase::Two => 2.0,
            LogBase::E => std::f64::consts::E,
            LogBase::Ten => 10.0,
        }
    }

    /// `ln(base)`.
    pub fn ln_base(self) -> f64 {
        match self {
            LogBase::Two => std::f64::consts::LN_2,
            LogBase::E => 1.0,
            LogBase::Ten => std::f64::consts::LN_10,
        }
    }

    /// `1 / log2(base)`: the multiplier taking `log2 x` to `log_base x`.
    #[inline]
    pub fn log2_scale(self) -> f64 {
        match self {
            LogBase::Two => 1.0,
            LogBase::E => std::f64::consts::LN_2,
            LogBase::Ten => std::f64::consts::LOG10_2,
        }
    }

    /// `log2(base)`: the multiplier taking an exponent `d` to the `exp2`
    /// argument that realizes `base^d`.
    #[inline]
    pub fn inv_log2_scale(self) -> f64 {
        match self {
            LogBase::Two => 1.0,
            LogBase::E => std::f64::consts::LOG2_E,
            LogBase::Ten => std::f64::consts::LOG2_10,
        }
    }

    /// Stream tag.
    pub fn id(self) -> u8 {
        match self {
            LogBase::Two => 0,
            LogBase::E => 1,
            LogBase::Ten => 2,
        }
    }

    /// Inverse of [`LogBase::id`].
    pub fn from_id(id: u8) -> Option<Self> {
        match id {
            0 => Some(LogBase::Two),
            1 => Some(LogBase::E),
            2 => Some(LogBase::Ten),
            _ => None,
        }
    }

    /// `log_base(m)` using the per-base libm fast path.
    #[inline]
    pub fn log(self, m: f64) -> f64 {
        match self {
            LogBase::Two => m.log2(),
            LogBase::E => m.ln(),
            LogBase::Ten => m.log10(),
        }
    }

    /// `base^d` using the per-base libm fast path (or `powf` for base 10).
    #[inline]
    pub fn exp(self, d: f64) -> f64 {
        match self {
            LogBase::Two => d.exp2(),
            LogBase::E => d.exp(),
            LogBase::Ten => 10f64.powf(d),
        }
    }

    /// Exponent (base 2) of the smallest positive value of `F`, *including*
    /// denormals — stricter than the paper's normal-range bound so that
    /// denormal inputs also survive the zero threshold.
    pub fn zero_exp2<F: Float>() -> f64 {
        // One below the smallest denormal exponent: -150 (f32) / -1075 (f64).
        (F::ZERO_EXP - F::MANT_BITS as i32 - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASES: [LogBase; 3] = [LogBase::Two, LogBase::E, LogBase::Ten];

    #[test]
    fn scales_are_reciprocal() {
        for base in BASES {
            assert!((base.log2_scale() * base.inv_log2_scale() - 1.0).abs() < 1e-15);
            // log_base x = log2(x) · log2_scale
            let x = 123.456f64;
            assert!((x.log2() * base.log2_scale() - base.log(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn base_ids_round_trip() {
        for base in BASES {
            assert_eq!(LogBase::from_id(base.id()), Some(base));
        }
        assert_eq!(LogBase::from_id(9), None);
    }

    #[test]
    fn zero_exp2_covers_denormals() {
        assert_eq!(LogBase::zero_exp2::<f32>(), -151.0);
        assert_eq!(LogBase::zero_exp2::<f64>(), -1077.0);
    }
}
