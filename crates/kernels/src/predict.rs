//! Row-specialized Lorenzo predict/quantize sweep kernels.
//!
//! The reference SZ sweep calls a per-point predictor that re-derives the
//! neighbour geometry for every sample: an `at(i-1, j, k)` closure with
//! three signed boundary comparisons and a full `dims.index` multiply per
//! neighbour (7 neighbours in 3D). Those ~20 branchy address computations
//! per point dwarf the actual prediction arithmetic.
//!
//! The batched sweep here restructures the grid walk into *rows*: each
//! raster row is processed by a straight-line loop that carries the
//! `left`/`upleft`/`backleft`/`corner` neighbours in registers and reads
//! the `up`/`back`/`backup` neighbours by a single unit-stride load per
//! row buffer. Boundary rows (j = 0, k = 0) read from a preallocated
//! all-zeros row, so the prediction *expression shape never changes*:
//! out-of-grid neighbours contribute the same literal `0.0` operands the
//! reference uses, in the same left-associated evaluation order. Every
//! prediction is therefore bit-identical to [`sweep_reference`] — the
//! speedup comes purely from removing address arithmetic and branches,
//! not from reordering floating-point operations.
//!
//! The decoder-visible dependency chain (each point's prediction reads the
//! *reconstruction* of its left neighbour) is respected by pulling the
//! reconstruction back from the sink each point; only the neighbour
//! addressing is batched. The sink abstraction gives the four SZ engine
//! loops (code extraction, compress, fused compress, decompress) a single
//! integration point — see `pwrel-sz`'s engine.
//!
//! On top of the row restructuring, 2D/3D interiors run as a [`LANES`]-row
//! *wavefront*: consecutive rows advance together with a one-column skew,
//! overlapping the quantizer's serial divide-and-round feedback chains of
//! [`LANES`] rows. The per-point operands and evaluation order are still
//! identical to the reference — only the *visit order* interleaves across
//! rows, which is why sinks must be index-addressed (see [`sweep`]).

use crate::cast;
use pwrel_data::{Dims, Float};

/// SZ 1.4's linear-scaling quantization arithmetic (paper Sec. IV-A),
/// hoisted out of the `Quantizer` trait object shape so the sweep sinks
/// inline it: residuals bin into `capacity` intervals of width `2·eb`,
/// out-of-radius or bound-violating points escape (`None`).
///
/// The arithmetic — including the division by `2·eb`, the `round()`, and
/// the verify-on-rounded-reconstruction step — is kept operation-for-
/// operation identical to the reference quantizer in `pwrel-sz`, which
/// delegates here so the two cannot drift.
#[derive(Debug, Clone, Copy)]
pub struct QuantKernel {
    radius: i64,
    radius_f: f64,
}

impl QuantKernel {
    /// Builds the kernel for a quantization interval count (even, ≥ 4).
    #[inline]
    pub fn new(capacity: u32) -> Self {
        let radius = i64::from(capacity / 2);
        Self {
            radius,
            radius_f: cast::f64_from_quant(radius),
        }
    }

    /// Quantizes `x` against prediction `pred` under absolute bound `eb`:
    /// returns the biased code and the decoder-visible reconstruction, or
    /// `None` when the point must escape to the unpredictable store.
    #[inline]
    pub fn quantize<F: Float>(&self, x: F, pred: f64, eb: f64) -> Option<(u32, F)> {
        if x.is_finite() {
            let diff = x.to_f64() - pred;
            let qf = (diff / (2.0 * eb)).round();
            if qf.is_finite() && qf.abs() < self.radius_f {
                let q = cast::quant_code(qf);
                // `qf` is integral with |qf| < radius ≤ 2^31 here, so
                // `q as f64 == qf` exactly; using `qf` directly drops two
                // int<->float conversions from the serial feedback chain
                // without changing a single bit of the reconstruction.
                debug_assert_eq!(cast::f64_from_quant(q), qf);
                let val = F::from_f64(pred + 2.0 * eb * qf);
                // Verify on the *rounded* reconstruction so the bound
                // holds for the stored element type, not just in f64.
                if val.is_finite() && (val.to_f64() - x.to_f64()).abs() <= eb {
                    return Some((cast::symbol_u32(self.radius + q), val));
                }
            }
        }
        None
    }
}

/// Per-point Lorenzo prediction from already-reconstructed causal
/// neighbours (1 in 1D, 3 in 2D, 7 in 3D; out-of-grid neighbours read 0).
/// This is the canonical scalar definition; the batched sweep reproduces
/// it bit-for-bit and the parity suite pins the two together.
// audit:allow-fn(L1): every caller allocates `dec` with `dims.len()`
// elements and passes in-grid (i, j, k); causal neighbours are either
// in-grid (so `dims.index` < len) or clamped to the 0.0 branch.
#[inline]
pub fn predict_point<F: Float>(dec: &[F], dims: Dims, i: usize, j: usize, k: usize) -> f64 {
    let at = |ii: isize, jj: isize, kk: isize| -> f64 {
        if ii < 0 || jj < 0 || kk < 0 {
            return 0.0;
        }
        dec[dims.index(
            cast::grid_usize(ii),
            cast::grid_usize(jj),
            cast::grid_usize(kk),
        )]
        .to_f64()
    };
    let (i, j, k) = (
        cast::grid_isize(i),
        cast::grid_isize(j),
        cast::grid_isize(k),
    );
    match dims.rank() {
        1 => at(i - 1, 0, 0),
        2 => at(i - 1, j, 0) + at(i, j - 1, 0) - at(i - 1, j - 1, 0),
        _ => {
            at(i - 1, j, k) + at(i, j - 1, k) + at(i, j, k - 1)
                - at(i - 1, j - 1, k)
                - at(i - 1, j, k - 1)
                - at(i, j - 1, k - 1)
                + at(i - 1, j - 1, k - 1)
        }
    }
}

/// Wavefront width: rows processed concurrently by the 2D/3D sweeps.
///
/// Lorenzo's feedback chain (each prediction reads the *reconstruction*
/// of its left neighbour, which reads the quantizer's divide-and-round)
/// serializes every row internally, but rows only depend on fully
/// completed predecessors — so [`LANES`] rows advance together with a
/// one-column skew, overlapping [`LANES`] independent divide latencies.
pub const LANES: usize = 4;

/// Runs the Lorenzo sweep over `dims` with the batched wavefront kernels.
/// For each point the sink receives `(linear index, prediction)` and must
/// return the decoder-visible reconstruction (or an error, which aborts
/// the sweep); the sweep writes it into `dec` before predicting any
/// dependent point. `dec` must hold exactly `dims.len()` elements.
///
/// Visit order: every index is visited exactly once, ascending *within*
/// each row, but visits of up to [`LANES`] consecutive rows interleave
/// (row r+1 trails row r by one column). Sinks must therefore be
/// insensitive to cross-row ordering: write per-index state by index, and
/// reorder any sequential side-channel (e.g. an escape stream) by index
/// afterwards. [`sweep_reference`] visits in strict raster order and is
/// the semantic oracle: for order-insensitive sinks the two produce
/// bit-identical results.
///
/// Compress-side sinks are infallible (`E = Infallible`); the decompress
/// sink surfaces corrupt-stream errors.
// audit:allow-fn(L1): `dec` is allocated with `dims.len()` elements by
// every caller (asserted below); all row slices are carved from it with
// offsets derived from the same dims, so the indexing mirrors the
// encoder-side sweep exactly.
pub fn sweep<F, E, S>(dims: Dims, dec: &mut [F], mut sink: S) -> Result<(), E>
where
    F: Float,
    S: FnMut(usize, f64) -> Result<F, E>,
{
    assert_eq!(dec.len(), dims.len(), "sweep buffer must match dims");
    if dec.is_empty() {
        return Ok(());
    }
    match dims.rank() {
        1 => sweep_1d(dec, &mut sink),
        2 => sweep_2d(dec, dims.nx, dims.ny, &mut sink),
        _ => sweep_3d(dec, dims.nx, dims.ny, dims.nz, &mut sink),
    }
}

/// The per-point reference sweep: identical per-point results and sink
/// contract to [`sweep`] (strict raster visit order), with predictions
/// from [`predict_point`]. Kept as the parity oracle and selectable at
/// runtime via `PWREL_SWEEP=reference`.
// audit:allow-fn(L1): `dec` is asserted to hold `dims.len()` elements and
// `idx` counts the raster loop over exactly that many points.
pub fn sweep_reference<F, E, S>(dims: Dims, dec: &mut [F], mut sink: S) -> Result<(), E>
where
    F: Float,
    S: FnMut(usize, f64) -> Result<F, E>,
{
    assert_eq!(dec.len(), dims.len(), "sweep buffer must match dims");
    let mut idx = 0;
    for k in 0..dims.nz {
        for j in 0..dims.ny {
            for i in 0..dims.nx {
                let pred = predict_point(dec, dims, i, j, k);
                dec[idx] = sink(idx, pred)?;
                idx += 1;
            }
        }
    }
    Ok(())
}

/// 1D: each prediction is the previous reconstruction, carried in a
/// register instead of re-read through the buffer.
fn sweep_1d<F, E, S>(dec: &mut [F], sink: &mut S) -> Result<(), E>
where
    F: Float,
    S: FnMut(usize, f64) -> Result<F, E>,
{
    let mut prev = 0.0f64;
    for (idx, slot) in dec.iter_mut().enumerate() {
        let v = sink(idx, prev)?;
        *slot = v;
        prev = v.to_f64();
    }
    Ok(())
}

/// 2D row kernel: prediction `(left + up) - upleft` with `left`/`upleft`
/// carried in registers. Neighbour rows arrive as `f64` (`prev64` is the
/// row above, or zeros for j = 0): each slot holds exactly the `to_f64`
/// of the stored reconstruction, recorded into `cur64` as the row is
/// produced, so no per-point element-type conversion happens on reads.
// audit:allow-fn(L1): every buffer is re-sliced to `nx = cur.len()` up
// front and the column loop runs `1..nx`, so all indexing is in bounds.
fn row_2d<F, E, S>(
    cur: &mut [F],
    cur64: &mut [f64],
    prev64: &[f64],
    base: usize,
    sink: &mut S,
) -> Result<(), E>
where
    F: Float,
    S: FnMut(usize, f64) -> Result<F, E>,
{
    let nx = cur.len();
    let prev64 = &prev64[..nx];
    let cur64 = &mut cur64[..nx];
    let up = prev64[0];
    let v = sink(base, (0.0 + up) - 0.0)?;
    cur[0] = v;
    let mut left = v.to_f64();
    cur64[0] = left;
    let mut upleft = up;
    for c in 1..nx {
        let up = prev64[c];
        let pred = (left + up) - upleft;
        let v = sink(base + c, pred)?;
        cur[c] = v;
        left = v.to_f64();
        cur64[c] = left;
        upleft = up;
    }
    Ok(())
}

/// One [`LANES`]-row 2D wavefront strip. Lane `l` sweeps `rows[l]` (grid
/// row `j0 + l`) one column behind lane `l - 1`, so each step advances
/// [`LANES`] independent quantizer feedback chains. The `up` neighbour of
/// lane `l > 0` is lane `l - 1`'s `left` register *before* this step's
/// update — no memory read; lane 0 reads `prev64` (the reconstructed row
/// above the strip, zeros for j0 = 0) and lane `LANES - 1` records its
/// reconstructions back into `prev64` for the next strip (always behind
/// lane 0's reads, which are `LANES - 1` columns ahead).
fn strip_2d<F, E, S>(
    rows: [&mut [F]; LANES],
    prev64: &mut [f64],
    base: usize,
    sink: &mut S,
) -> Result<(), E>
where
    F: Float,
    S: FnMut(usize, f64) -> Result<F, E>,
{
    let nx = prev64.len();
    debug_assert!(nx >= LANES);
    let mut left = [0.0f64; LANES];
    let mut upleft = [0.0f64; LANES];
    // One lane-step: lane `l` handles column `c` with `up` supplied by the
    // caller (memory for lane 0, the forwarded register for lanes > 0).
    macro_rules! lane {
        ($l:expr, $c:expr, $up:expr, $first:expr) => {{
            let up = $up;
            let pred = if $first {
                (0.0 + up) - 0.0
            } else {
                (left[$l] + up) - upleft[$l]
            };
            let v = sink(base + $l * nx + $c, pred)?;
            rows[$l][$c] = v;
            let lf = v.to_f64();
            if $l == LANES - 1 {
                prev64[$c] = lf;
            }
            left[$l] = lf;
            upleft[$l] = up;
        }};
    }
    // Prologue: steps t = 0..LANES, lane l joins at its column 0.
    for t in 0..LANES {
        let fwd = left;
        for l in 0..=t {
            let c = t - l;
            let up = if l == 0 { prev64[c] } else { fwd[l - 1] };
            lane!(l, c, up, c == 0);
        }
    }
    // Main: all lanes active, no column-0 cases (c = t - l ≥ 1).
    for t in LANES..nx {
        let fwd = left;
        lane!(0, t, prev64[t], false);
        for l in 1..LANES {
            lane!(l, t - l, fwd[l - 1], false);
        }
    }
    // Epilogue: lanes ≥ 1 drain in order as their rows end.
    for t in nx..nx + LANES - 1 {
        let fwd = left;
        for l in (t - nx + 1)..LANES {
            lane!(l, t - l, fwd[l - 1], false);
        }
    }
    Ok(())
}

// audit:allow-fn(L1): row slices are carved from a `dims.len()` buffer at
// offsets `j*nx`; the rolling f64 rows are allocated with nx elements.
fn sweep_2d<F, E, S>(dec: &mut [F], nx: usize, ny: usize, sink: &mut S) -> Result<(), E>
where
    F: Float,
    S: FnMut(usize, f64) -> Result<F, E>,
{
    // `prev64` starts zeroed, which doubles as the reference's out-of-grid
    // zeros row for j = 0.
    let mut prev64 = vec![0.0f64; nx];
    let mut cur64 = vec![0.0f64; nx];
    let mut j = 0;
    // Full wavefront strips while LANES rows remain (and rows are wide
    // enough for the skewed prologue/epilogue to make sense).
    if nx >= LANES {
        while j + LANES <= ny {
            let base = j * nx;
            let strip = &mut dec[base..base + LANES * nx];
            let mut it = strip.chunks_exact_mut(nx);
            let rows: [&mut [F]; LANES] = std::array::from_fn(|_| it.next().unwrap());
            strip_2d(rows, &mut prev64, base, sink)?;
            j += LANES;
        }
    }
    // Remainder rows (and narrow grids): sequential row kernel.
    for j in j..ny {
        let base = j * nx;
        row_2d(&mut dec[base..base + nx], &mut cur64, &prev64, base, sink)?;
        std::mem::swap(&mut prev64, &mut cur64);
    }
    Ok(())
}

/// 3D row kernel: prediction
/// `left + up + back - upleft - backleft - backup + corner` in the
/// reference's left-associated order. `prev64` is row (j-1, k), `pcur64`
/// is row (j, k-1), `pprev64` is row (j-1, k-1), all pre-converted `f64`
/// reconstructions (zeros rows at the grid boundary, matching the
/// reference's out-of-grid zeros); the row records its own `f64` copy
/// into `cur64` for the rows that will neighbour it.
// audit:allow-fn(L1): every buffer is re-sliced to `nx = cur.len()` up
// front and the column loop runs `1..nx`, so all indexing is in bounds.
fn row_3d<F, E, S>(
    cur: &mut [F],
    cur64: &mut [f64],
    prev64: &[f64],
    pcur64: &[f64],
    pprev64: &[f64],
    base: usize,
    sink: &mut S,
) -> Result<(), E>
where
    F: Float,
    S: FnMut(usize, f64) -> Result<F, E>,
{
    let nx = cur.len();
    let cur64 = &mut cur64[..nx];
    let (prev64, pcur64, pprev64) = (&prev64[..nx], &pcur64[..nx], &pprev64[..nx]);
    let up = prev64[0];
    let back = pcur64[0];
    let backup = pprev64[0];
    let pred0 = ((((0.0 + up) + back) - 0.0) - 0.0) - backup + 0.0;
    let v = sink(base, pred0)?;
    cur[0] = v;
    let mut left = v.to_f64();
    cur64[0] = left;
    let mut upleft = up;
    let mut backleft = back;
    let mut corner = backup;
    for c in 1..nx {
        let up = prev64[c];
        let back = pcur64[c];
        let backup = pprev64[c];
        let pred = left + up + back - upleft - backleft - backup + corner;
        let v = sink(base + c, pred)?;
        cur[c] = v;
        left = v.to_f64();
        cur64[c] = left;
        upleft = up;
        backleft = back;
        corner = backup;
    }
    Ok(())
}

/// One [`LANES`]-row 3D wavefront strip (rows `j0..j0+LANES` of plane k).
/// Same skew as [`strip_2d`]: lane `l > 0`'s `up` neighbour is lane
/// `l - 1`'s forwarded `left` register; lane 0 reads `prev64` (row
/// `j0 - 1` of the current plane, zeros for j0 = 0). `back`/`backup` come
/// from the previous plane's f64 rows (`pcur`/`pprev`); every lane records
/// its reconstructions into `cur64` for the next plane.
#[allow(clippy::too_many_arguments)]
fn strip_3d<F, E, S>(
    rows: [&mut [F]; LANES],
    cur64: [&mut [f64]; LANES],
    prev64: &[f64],
    pcur: [&[f64]; LANES],
    pprev: [&[f64]; LANES],
    base: usize,
    sink: &mut S,
) -> Result<(), E>
where
    F: Float,
    S: FnMut(usize, f64) -> Result<F, E>,
{
    let nx = prev64.len();
    debug_assert!(nx >= LANES);
    let mut left = [0.0f64; LANES];
    let mut upleft = [0.0f64; LANES];
    let mut backleft = [0.0f64; LANES];
    let mut corner = [0.0f64; LANES];
    macro_rules! lane {
        ($l:expr, $c:expr, $up:expr, $first:expr) => {{
            let up = $up;
            let back = pcur[$l][$c];
            let backup = pprev[$l][$c];
            let pred = if $first {
                ((((0.0 + up) + back) - 0.0) - 0.0) - backup + 0.0
            } else {
                left[$l] + up + back - upleft[$l] - backleft[$l] - backup + corner[$l]
            };
            let v = sink(base + $l * nx + $c, pred)?;
            rows[$l][$c] = v;
            let lf = v.to_f64();
            cur64[$l][$c] = lf;
            left[$l] = lf;
            upleft[$l] = up;
            backleft[$l] = back;
            corner[$l] = backup;
        }};
    }
    // Prologue: steps t = 0..LANES, lane l joins at its column 0.
    for t in 0..LANES {
        let fwd = left;
        for l in 0..=t {
            let c = t - l;
            let up = if l == 0 { prev64[c] } else { fwd[l - 1] };
            lane!(l, c, up, c == 0);
        }
    }
    // Main: all lanes active, no column-0 cases (c = t - l ≥ 1).
    for t in LANES..nx {
        let fwd = left;
        lane!(0, t, prev64[t], false);
        for l in 1..LANES {
            lane!(l, t - l, fwd[l - 1], false);
        }
    }
    // Epilogue: lanes ≥ 1 drain in order as their rows end.
    for t in nx..nx + LANES - 1 {
        let fwd = left;
        for l in (t - nx + 1)..LANES {
            lane!(l, t - l, fwd[l - 1], false);
        }
    }
    Ok(())
}

// audit:allow-fn(L1): row slices are carved from a `dims.len()` buffer at
// offsets `(k*ny + j)*nx`; the rolling f64 planes hold `nx*ny` elements
// and are sliced at the same row offsets.
fn sweep_3d<F, E, S>(dec: &mut [F], nx: usize, ny: usize, nz: usize, sink: &mut S) -> Result<(), E>
where
    F: Float,
    S: FnMut(usize, f64) -> Result<F, E>,
{
    let zeros = vec![0.0f64; nx];
    let nxy = nx * ny;
    // Rolling f64 planes: `prev_plane` is plane k-1 (initially zeroed — the
    // reference's out-of-grid zeros for k = 0), `cur_plane` collects plane
    // k's reconstructions row by row as the sweep produces them.
    let mut prev_plane = vec![0.0f64; nxy];
    let mut cur_plane = vec![0.0f64; nxy];
    for k in 0..nz {
        let mut j = 0;
        if nx >= LANES {
            while j + LANES <= ny {
                let row0 = j * nx;
                let base = k * nxy + row0;
                let strip = &mut dec[base..base + LANES * nx];
                let mut itf = strip.chunks_exact_mut(nx);
                let rows: [&mut [F]; LANES] = std::array::from_fn(|_| itf.next().unwrap());
                let (done, rest) = cur_plane.split_at_mut(row0);
                let mut it64 = rest.chunks_exact_mut(nx);
                let cur64: [&mut [f64]; LANES] = std::array::from_fn(|_| it64.next().unwrap());
                let prev64: &[f64] = if j == 0 { &zeros } else { &done[row0 - nx..] };
                let pcur: [&[f64]; LANES] =
                    std::array::from_fn(|l| &prev_plane[row0 + l * nx..row0 + (l + 1) * nx]);
                let pprev: [&[f64]; LANES] = std::array::from_fn(|l| {
                    if l > 0 {
                        &prev_plane[row0 + (l - 1) * nx..row0 + l * nx]
                    } else if j == 0 {
                        &zeros[..]
                    } else {
                        &prev_plane[row0 - nx..row0]
                    }
                });
                strip_3d(rows, cur64, prev64, pcur, pprev, base, sink)?;
                j += LANES;
            }
        }
        // Remainder rows (and narrow grids): sequential row kernel.
        for j in j..ny {
            let row = j * nx;
            let base = k * nxy + row;
            let cur = &mut dec[base..base + nx];
            let (done, rest) = cur_plane.split_at_mut(row);
            let cur64 = &mut rest[..nx];
            let prev64: &[f64] = if j == 0 { &zeros } else { &done[row - nx..] };
            let pcur64 = &prev_plane[row..row + nx];
            let pprev64: &[f64] = if j == 0 {
                &zeros
            } else {
                &prev_plane[row - nx..row]
            };
            row_3d(cur, cur64, prev64, pcur64, pprev64, base, sink)?;
        }
        std::mem::swap(&mut prev_plane, &mut cur_plane);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    fn pseudo(seed: u64, n: usize) -> Vec<f64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 2000) as f64 / 7.0 - 140.0
            })
            .collect()
    }

    /// Runs both sweeps with a quantize-or-escape sink and asserts the
    /// codes and reconstructions match exactly.
    fn assert_parity<F: Float>(dims: Dims, data: &[F], eb: f64) {
        let quant = QuantKernel::new(512);
        let run = |batched: bool| -> (Vec<u32>, Vec<u64>) {
            let mut dec = vec![F::zero(); dims.len()];
            // Index-addressed (the sweep contract): the wavefront visits
            // rows interleaved, so push order would differ by design.
            let mut codes = vec![0u32; dims.len()];
            let sink = |idx: usize, pred: f64| -> Result<F, Infallible> {
                let x = data[idx];
                Ok(match quant.quantize(x, pred, eb) {
                    Some((code, val)) => {
                        codes[idx] = code;
                        val
                    }
                    None => x,
                })
            };
            if batched {
                sweep(dims, &mut dec, sink).unwrap();
            } else {
                sweep_reference(dims, &mut dec, sink).unwrap();
            }
            (codes, dec.iter().map(|v| v.to_bits_u64()).collect())
        };
        let (bc, bd) = run(true);
        let (rc, rd) = run(false);
        assert_eq!(bc, rc, "codes diverge for dims {dims:?}");
        assert_eq!(bd, rd, "reconstructions diverge for dims {dims:?}");
    }

    #[test]
    fn batched_matches_reference_f64() {
        for dims in [
            Dims::d1(1),
            Dims::d1(17),
            Dims::d2(1, 9),
            Dims::d2(9, 1),
            Dims::d2(5, 7),
            Dims::d3(1, 1, 1),
            Dims::d3(3, 1, 5),
            Dims::d3(4, 5, 6),
        ] {
            let data = pseudo(dims.len() as u64 + 1, dims.len());
            assert_parity(dims, &data, 0.05);
        }
    }

    #[test]
    fn batched_matches_reference_f32_with_escapes() {
        let dims = Dims::d3(5, 6, 7);
        let mut data: Vec<f32> = pseudo(99, dims.len()).iter().map(|&v| v as f32).collect();
        // Force escapes: NaN, inf, and a huge out-of-radius jump.
        data[13] = f32::NAN;
        data[51] = f32::INFINITY;
        data[100] = 1e30;
        assert_parity(dims, &data, 1e-3);
    }

    #[test]
    fn quant_kernel_round_trips() {
        let q = QuantKernel::new(1024);
        let (code, val) = q.quantize(3.07f32, 3.0, 0.05).unwrap();
        assert!(code > 0);
        assert!((val - 3.07).abs() <= 0.05);
        assert!(q.quantize(f32::NAN, 0.0, 0.1).is_none());
        assert!(q.quantize(1e9f32, 0.0, 0.1).is_none());
    }
}
