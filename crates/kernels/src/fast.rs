//! Branchless `log2`/`exp2` kernels.
//!
//! `fast_log2` splits `x = 2^e · m` with `m ∈ [√2/2, √2)` by reading the
//! exponent field directly (subnormals are pre-scaled by `2^54`, which is
//! exact), then evaluates the atanh series of `log2(m)` in
//! `s = (m−1)/(m+1)`, where `|s| ≤ √2−1 ≈ 0.1716`. `fast_exp2` splits
//! `d = n + f` with `f ∈ [−½, ½]` via the round-to-nearest magic-constant
//! trick (exact), evaluates `2^f = e^{f·ln2}` as a degree-11 Taylor
//! polynomial, and applies `2^n` by assembling exponent bits — split into
//! two factors so results down in the subnormal range stay correct.
//!
//! Both bodies are pure arithmetic and selects — no data-dependent
//! branches — so the `*_batch` loops below auto-vectorize.
//!
//! # Error model
//!
//! The truncation error of the log series is `(2/ln2)·s¹⁵/15 < 7·10⁻¹³`
//! and of the exp polynomial `t¹²/12! < 7·10⁻¹⁵` (`|t| ≤ ln2/2`); adding
//! generous headroom for the handful of roundings in each body gives the
//! advertised bounds [`FAST_LOG2_ABS_ERR`] and [`FAST_EXP2_REL_ERR`].
//! Property tests check them against libm over random finite inputs
//! including subnormals; the bound theory subtracts them from the
//! corrected absolute bound (see `pwrel-core`'s `theory` module), so the
//! point-wise guarantee survives the approximation.

/// Worst-case *absolute* error of [`fast_log2`] against exact `log2`,
/// over all positive finite `f64` inputs (subnormals included).
pub const FAST_LOG2_ABS_ERR: f64 = 1e-10;

/// Worst-case *relative* error of [`fast_exp2`] against exact `2^d`, for
/// `|d| ≤ EXP2_MAX_ARG`.
pub const FAST_EXP2_REL_ERR: f64 = 1e-12;

/// Largest `|d|` for which [`fast_exp2`]'s two-factor exponent assembly is
/// valid. Log-domain values of finite floats never exceed ~1077, so every
/// caller in the workspace is comfortably inside.
pub const EXP2_MAX_ARG: f64 = 2000.0;

/// Fixed batch width for the chunked entry points. Wide enough to fill an
/// AVX-512 register pair, small enough to stay in registers on NEON.
pub const LANES: usize = 8;

const MANT_MASK: u64 = (1u64 << 52) - 1;
const EXP_MASK: u64 = 0x7ff << 52;
const ONE_BITS: u64 = 1023u64 << 52;
const SQRT2: f64 = std::f64::consts::SQRT_2;
/// 2^54; multiplying a subnormal by it is exact and yields a normal.
const SCALE_UP: f64 = 1.8014398509481984e16;
/// 1.5·2^52: adding/subtracting snaps to the nearest integer (ties even).
const ROUND_MAGIC: f64 = 6755399441055744.0;

// atanh-series coefficients: log2(m) = s·Σ Cₖ·s^{2k}, Cₖ = (2/ln2)/(2k+1).
const LC0: f64 = 2.8853900817779268;
const LC1: f64 = 0.9617966939259756;
const LC2: f64 = 0.577_078_016_355_585_3;
const LC3: f64 = 0.4121985831111324;
const LC4: f64 = 0.3205988979753252;
const LC5: f64 = 0.2623081892525388;
const LC6: f64 = 0.22195308321368668;

// Taylor coefficients of e^t, 1/k! for k = 2..=11 (k = 0, 1 are literal).
const EC2: f64 = 0.5;
const EC3: f64 = 0.16666666666666667;
const EC4: f64 = 0.041666666666666667;
const EC5: f64 = 0.008_333_333_333_333_333;
const EC6: f64 = 0.001_388_888_888_888_889;
const EC7: f64 = 0.000_198_412_698_412_698_4;
const EC8: f64 = 2.480_158_730_158_73e-5;
const EC9: f64 = 2.7557319223985891e-6;
const EC10: f64 = 2.7557319223985891e-7;
const EC11: f64 = 2.505_210_838_544_172e-8;

/// Approximate `log2(x)` for positive finite `x` (subnormals included).
///
/// `|fast_log2(x) − log2(x)| ≤ FAST_LOG2_ABS_ERR`. For `x = 0` the result
/// is an unspecified finite value below `−1076` (callers overwrite zero
/// slots with the sentinel); negative, infinite, or NaN inputs are
/// rejected upstream by the field scan.
#[inline]
pub fn fast_log2(x: f64) -> f64 {
    let raw = x.to_bits();
    let is_small = raw & EXP_MASK == 0; // subnormal or zero
    let scaled = (x * SCALE_UP).to_bits();
    let bits = if is_small { scaled } else { raw };
    let e_adj = if is_small { -54.0 } else { 0.0 };
    // Zero stays all-zero bits through the scaling; force its mantissa to
    // 1.0 and let the huge negative exponent stand in for −∞.
    let e_raw = ((bits >> 52) & 0x7ff) as i64;
    let m = f64::from_bits((bits & MANT_MASK) | ONE_BITS);
    // Re-center the mantissa around 1 so the series argument is small.
    let big = m >= SQRT2;
    let m = if big { m * 0.5 } else { m };
    let e = (e_raw - 1023 + big as i64) as f64 + e_adj;
    let s = (m - 1.0) / (m + 1.0);
    let z = s * s;
    // Horner with plain mul/add: `mul_add` is a libm call (not an fma
    // instruction) on baseline targets, which costs more than the whole
    // series; the extra roundings stay ~1e-15, far inside the budget.
    let p = ((((((LC6 * z + LC5) * z + LC4) * z + LC3) * z + LC2) * z + LC1) * z) + LC0;
    (s * p) + e
}

/// Approximate `2^d` for finite `|d| ≤ EXP2_MAX_ARG`.
///
/// Relative error ≤ [`FAST_EXP2_REL_ERR`]; results that land in the
/// subnormal range underflow gradually like the exact operation.
#[inline]
pub fn fast_exp2(d: f64) -> f64 {
    let nf = d + ROUND_MAGIC;
    let n = nf - ROUND_MAGIC; // nearest integer, exact
    let f = d - n; // exact: n is an integer within ½ of d
    let t = f * std::f64::consts::LN_2;
    // Plain Horner for the same reason as in `fast_log2`.
    let p9 = ((((((((EC11 * t + EC10) * t + EC9) * t + EC8) * t + EC7) * t + EC6) * t + EC5) * t
        + EC4)
        * t
        + EC3)
        * t
        + EC2;
    let p = (p9 * t + 1.0) * t + 1.0;
    // 2^n in two normal-range factors so subnormal results round correctly.
    // `nf = 2^52 + 2^51 + n` exactly (|n| ≤ EXP2_MAX_ARG ≪ 2^51), so the
    // integer n sits in the mantissa bits offset by 2^51 — reading it there
    // keeps the lane integral (a `f64 as i64` cast would force a scalar
    // round trip per lane for the saturation/NaN checks).
    let ni = (nf.to_bits() & MANT_MASK) as i64 - (1i64 << 51);
    let n1 = ni >> 1;
    let n2 = ni - n1;
    let s1 = f64::from_bits(((n1 + 1023) as u64) << 52);
    let s2 = f64::from_bits(((n2 + 1023) as u64) << 52);
    (p * s1) * s2
}

/// `dst[i] = fast_log2(src[i])` over equal-length slices, in fixed-width
/// chunks of [`LANES`] so the loop auto-vectorizes.
pub fn fast_log2_batch(src: &[f64], dst: &mut [f64]) {
    assert_eq!(src.len(), dst.len());
    let n = src.len() - src.len() % LANES;
    for (s, d) in src[..n]
        .chunks_exact(LANES)
        .zip(dst[..n].chunks_exact_mut(LANES))
    {
        for i in 0..LANES {
            d[i] = fast_log2(s[i]);
        }
    }
    for (s, d) in src[n..].iter().zip(&mut dst[n..]) {
        *d = fast_log2(*s);
    }
}

/// `dst[i] = fast_exp2(src[i])` over equal-length slices, chunked like
/// [`fast_log2_batch`].
pub fn fast_exp2_batch(src: &[f64], dst: &mut [f64]) {
    assert_eq!(src.len(), dst.len());
    let n = src.len() - src.len() % LANES;
    for (s, d) in src[..n]
        .chunks_exact(LANES)
        .zip(dst[..n].chunks_exact_mut(LANES))
    {
        for i in 0..LANES {
            d[i] = fast_exp2(s[i]);
        }
    }
    for (s, d) in src[n..].iter().zip(&mut dst[n..]) {
        *d = fast_exp2(*s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_log2(x: f64) {
        let err = (fast_log2(x) - x.log2()).abs();
        assert!(err <= FAST_LOG2_ABS_ERR, "x = {x:e}: err = {err:e}");
    }

    #[test]
    fn log2_matches_libm_across_the_exponent_range() {
        for e in -1074..1024 {
            for frac in [1.0, 1.17, std::f64::consts::SQRT_2, 1.5, 1.999] {
                let x = frac * 2f64.powi(e.max(-1022)) * 2f64.powi((e + 1022).min(0));
                if x > 0.0 && x.is_finite() {
                    check_log2(x);
                }
            }
        }
    }

    #[test]
    fn log2_handles_subnormals() {
        for x in [
            f64::from_bits(1),       // smallest subnormal
            f64::from_bits(0xfffff), // mid subnormal
            f64::MIN_POSITIVE / 2.0, // large subnormal
            f64::MIN_POSITIVE,       // smallest normal
            f32::MIN_POSITIVE as f64 / 4.0,
        ] {
            check_log2(x);
        }
    }

    #[test]
    fn log2_of_zero_is_below_any_threshold() {
        let v = fast_log2(0.0);
        assert!(v.is_finite() && v < -1076.0, "got {v}");
    }

    #[test]
    fn exp2_matches_libm_across_range() {
        for i in -1074..1024 {
            for frac in [0.0, 0.25, 0.4999, 0.5001, 0.75] {
                let d = i as f64 + frac;
                let exact = d.exp2();
                let got = fast_exp2(d);
                if exact >= f64::MIN_POSITIVE {
                    let rel = ((got - exact) / exact).abs();
                    assert!(rel <= FAST_EXP2_REL_ERR, "d = {d}: rel = {rel:e}");
                } else {
                    // Subnormal results: compare with absolute tolerance of
                    // one quantum plus the relative bound.
                    let tol = FAST_EXP2_REL_ERR * exact + f64::from_bits(1);
                    assert!((got - exact).abs() <= tol, "d = {d}: {got:e} vs {exact:e}");
                }
            }
        }
    }

    #[test]
    fn round_trip_is_tight() {
        for x in [1e-300, 3.7e-12, 0.1, 1.0, 7.25, 9.9e18, 1.6e307] {
            let rt = fast_exp2(fast_log2(x));
            let rel = ((rt - x) / x).abs();
            // log abs error ε in the exponent is a relative error ~ ε·ln2.
            assert!(rel < 2.0 * FAST_LOG2_ABS_ERR, "x = {x:e}: rel = {rel:e}");
        }
    }

    #[test]
    fn batches_agree_with_scalar() {
        let src: Vec<f64> = (1..100).map(|i| (i as f64) * 0.37e-3).collect();
        let mut dst = vec![0.0; src.len()];
        fast_log2_batch(&src, &mut dst);
        for (s, d) in src.iter().zip(&dst) {
            assert_eq!(*d, fast_log2(*s));
        }
        fast_exp2_batch(&src, &mut dst);
        for (s, d) in src.iter().zip(&dst) {
            assert_eq!(*d, fast_exp2(*s));
        }
    }
}
