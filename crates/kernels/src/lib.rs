#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Batched, allocation-free transform kernels for the log mapping.
//!
//! The paper's transform spends essentially all of its time in `log` and
//! `exp` calls (Table III ranks bases by exactly that cost). This crate
//! provides the hot-path primitives the rest of the workspace builds on:
//!
//! * [`fast`] — branchless `log2`/`exp2` approximations built from
//!   exponent-field extraction plus a short polynomial on the mantissa.
//!   Every operation in their bodies is a select or arithmetic op, so the
//!   fixed-width batch entry points auto-vectorize. Their worst-case
//!   errors are *documented constants* ([`fast::FAST_LOG2_ABS_ERR`],
//!   [`fast::FAST_EXP2_REL_ERR`]) that the bound theory folds into the
//!   Lemma 2 round-off correction — the point-wise relative bound still
//!   provably holds with the fast kernels enabled.
//! * [`mod@scan`] — a single integer sweep over the raw bits of a field that
//!   validates finiteness and yields the sign/zero flags plus an
//!   exponent-field upper bound on `max |log2 x|`, replacing the exact
//!   (and serializing) max-reduction over mapped values. Over-estimating
//!   the max only *shrinks* the corrected bound, so the substitution is
//!   always sound.
//! * [`kernel::Kernel`] — the `Fast`/`Libm` selector. `Libm` reproduces
//!   the scalar `log2()`/`exp2()` reference path bit-for-bit; `Fast` is
//!   the default. All bases route through `log2`/`exp2` with a constant
//!   scale, which also removes the base-10 `powf` penalty the paper
//!   measures.
//! * [`base::LogBase`] — the base enum (moved here from `pwrel-core` so
//!   the codec crates can use it without a dependency cycle; `pwrel-core`
//!   re-exports it from the old path).
//! * [`predict`] — the row-specialized Lorenzo predict/quantize sweep:
//!   neighbour addressing batched per raster row with boundary zeros
//!   rows, bit-identical to the per-point reference, behind a per-point
//!   sink so all four SZ engine loops share one driver.
//! * [`blocklift`] — ZFP's 4^d lifting transform fused into straight-line
//!   structure-of-arrays lane code (16 lines per pass in 3D), again
//!   bit-identical: every reordered op is an integer wrapping add/sub
//!   or shift.
//! * [`hist`] — the lane-batched entropy histogram: `HIST_LANES` partial
//!   frequency tables indexed by symbol position, merged exactly at the
//!   end, so runs of equal quantization codes stop serializing on
//!   store-forwarding.
//! * [`dispatch::BatchKernel`] — the `Batched`/`Reference` selector for
//!   the above, mirroring the `Fast`/`Libm` pattern
//!   (`PWREL_SWEEP`/`PWREL_LIFT`/`PWREL_HIST` environment overrides for
//!   A/B runs).
//! * [`mod@cast`] — the kernels-local allowlisted home for the documented
//!   numeric casts the lane code needs (audit lint L2 applies here).

pub mod base;
pub mod blocklift;
pub mod cast;
pub mod dispatch;
pub mod fast;
pub mod hist;
pub mod kernel;
pub mod plan;
pub mod predict;
pub mod scan;

pub use base::LogBase;
pub use dispatch::BatchKernel;
pub use kernel::Kernel;
pub use plan::{FusedOutput, LogFusedCodec, LogPlan, CHUNK};
pub use scan::{scan, FieldScan};
