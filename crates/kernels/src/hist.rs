//! Lane-batched frequency counting for the entropy stage.
//!
//! A Huffman histogram over quantization codes is a serial chain in
//! disguise: runs of equal symbols (the common case after a good
//! predictor) make every increment load the counter the previous
//! iteration just stored, so the loop runs at store-forwarding latency,
//! not throughput. Splitting the count across [`HIST_LANES`] partial
//! tables — symbol `i` increments table `i % HIST_LANES` — breaks the
//! dependence: consecutive equal symbols hit different cache lines and
//! the four chains retire in parallel.
//!
//! The merge is exact, not approximate: per-symbol totals are the sum of
//! the lane counts clamped to `u32::MAX`, which equals the reference
//! path's per-increment `saturating_add` result for any input (if any
//! lane saturated, the total is ≥ `u32::MAX` on both paths). Touched-slot
//! bookkeeping mirrors the reference: only slots that were actually hit
//! are visited and re-zeroed, so the tables stay resident and all-zero
//! between calls no matter how the nominal alphabet varies.

/// Number of partial histogram tables (and the symbol-position stride).
pub const HIST_LANES: usize = 4;

/// Reusable lane-table storage for [`LaneHistogram::count`]. All slots are
/// zero between calls; the guarantee is maintained by clearing exactly the
/// touched slots under the same layout that set them.
#[derive(Debug, Default)]
pub struct LaneHistogram {
    /// `HIST_LANES` dense tables, laid out `[lane * alphabet + symbol]`.
    tables: Vec<u32>,
    /// Symbols whose slot in the corresponding lane went 0 → nonzero.
    touched: [Vec<u32>; HIST_LANES],
}

impl LaneHistogram {
    /// Creates an empty histogram; tables grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts `symbols` (each `< alphabet`) and returns sparse
    /// `(symbol, frequency)` pairs in ascending symbol order — the exact
    /// pairs a single dense saturating counter would produce.
    pub fn count(&mut self, symbols: &[u32], alphabet: usize) -> Vec<(u32, u64)> {
        if self.tables.len() < HIST_LANES * alphabet {
            self.tables.resize(HIST_LANES * alphabet, 0);
        }
        let tables = &mut self.tables;
        let mut quads = symbols.chunks_exact(HIST_LANES);
        for quad in &mut quads {
            for (lane, &s) in quad.iter().enumerate() {
                let slot = &mut tables[lane * alphabet + s as usize];
                if *slot == 0 {
                    self.touched[lane].push(s);
                }
                *slot = slot.saturating_add(1);
            }
        }
        for (lane, &s) in quads.remainder().iter().enumerate() {
            let slot = &mut tables[lane * alphabet + s as usize];
            if *slot == 0 {
                self.touched[lane].push(s);
            }
            *slot = slot.saturating_add(1);
        }

        // Merge: one ascending pass over the union of touched symbols.
        let mut union: Vec<u32> = Vec::with_capacity(self.touched.iter().map(Vec::len).sum());
        for lane in &mut self.touched {
            union.append(lane);
        }
        union.sort_unstable();
        union.dedup();
        let pairs: Vec<(u32, u64)> = union
            .iter()
            .map(|&s| {
                let total: u64 = (0..HIST_LANES)
                    .map(|lane| tables[lane * alphabet + s as usize] as u64)
                    .sum();
                (s, total.min(u32::MAX as u64))
            })
            .collect();
        for &s in &union {
            for lane in 0..HIST_LANES {
                tables[lane * alphabet + s as usize] = 0;
            }
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference single-table saturating counter.
    fn dense(symbols: &[u32], alphabet: usize) -> Vec<(u32, u64)> {
        let mut freqs = vec![0u32; alphabet];
        for &s in symbols {
            freqs[s as usize] = freqs[s as usize].saturating_add(1);
        }
        freqs
            .iter()
            .enumerate()
            .filter(|(_, &f)| f > 0)
            .map(|(s, &f)| (s as u32, f as u64))
            .collect()
    }

    #[test]
    fn matches_dense_reference() {
        let syms: Vec<u32> = (0..10_000u32).map(|i| (i * i + 3 * i) % 257).collect();
        let mut h = LaneHistogram::new();
        assert_eq!(h.count(&syms, 300), dense(&syms, 300));
    }

    #[test]
    fn runs_of_equal_symbols() {
        let mut syms = vec![5u32; 1003];
        syms.extend(std::iter::repeat_n(2u32, 7));
        let mut h = LaneHistogram::new();
        assert_eq!(h.count(&syms, 8), vec![(2, 7), (5, 1003)]);
    }

    #[test]
    fn tables_reset_between_calls_and_across_alphabets() {
        let mut h = LaneHistogram::new();
        let a: Vec<u32> = (0..100).map(|i| i % 10).collect();
        let b: Vec<u32> = (0..50).map(|i| i % 33).collect();
        assert_eq!(h.count(&a, 16), dense(&a, 16));
        // Different alphabet re-layouts the tables; counts must not leak.
        assert_eq!(h.count(&b, 40), dense(&b, 40));
        assert_eq!(h.count(&a, 16), dense(&a, 16));
    }

    #[test]
    fn empty_and_short_inputs() {
        let mut h = LaneHistogram::new();
        assert_eq!(h.count(&[], 4), Vec::new());
        assert_eq!(h.count(&[3], 4), vec![(3, 1)]);
        assert_eq!(h.count(&[1, 1, 1], 4), vec![(1, 3)]);
    }
}
