//! The per-field mapping plan and the fused-codec interface.
//!
//! [`LogPlan`] carries everything the log mapping needs that is independent
//! of individual data values: base, kernel, corrected bound, zero sentinel
//! and threshold, and whether the field mixes signs. `pwrel-core` computes
//! it (the bound needs the theory module); the codec crates consume it.
//!
//! [`LogFusedCodec`] is how a compressor advertises a *single-pass* hot
//! path: transform, prediction, and quantization in one streaming sweep,
//! with no intermediate mapped vector and the sign bitmap collected in the
//! same pass. The buffered route (`transform::forward` + `compress_abs`)
//! remains the reference; fused implementations must produce byte-identical
//! streams, which the integration tests assert.

use crate::base::LogBase;
use crate::kernel::Kernel;
use pwrel_data::{CodecError, Dims, Float, Transform};

/// Elements mapped per scratch refill; also the granularity of the batch
/// kernels' inner loops. Fits two f64 cache pages.
pub const CHUNK: usize = 512;

/// Everything the mapping needs that is independent of the data values.
#[derive(Debug, Clone, Copy)]
pub struct LogPlan {
    /// Which log base the mapping uses.
    pub base: LogBase,
    /// The kernel implementing it.
    pub kernel: Kernel,
    /// Corrected absolute bound `b'_a`.
    pub abs_bound: f64,
    /// Log-domain stand-in for zero inputs, `2 b'_a` below the threshold.
    pub sentinel: f64,
    /// Reconstructions at or below this decode to exact zero.
    pub zero_threshold: f64,
    /// Whether any input is negative (drives sign-bitmap collection).
    pub any_negative: bool,
}

impl LogPlan {
    /// Maps one contiguous run of input values into `out` (log domain,
    /// narrowed to `F`), appending sign bits to `signs` when the plan says
    /// the field mixes signs. `scratch` must hold at least `src.len()`
    /// slots and is plain workspace — callers reuse one buffer across
    /// runs. This is the fused sweep: transform + sign collection with no
    /// intermediate allocation.
    pub fn map_chunk<F: Float>(
        &self,
        src: &[F],
        out: &mut [F],
        scratch: &mut [f64],
        signs: &mut Vec<bool>,
    ) {
        let scratch = &mut scratch[..src.len()];
        self.kernel.log_batch(self.base, src, scratch);
        let sentinel = F::from_f64(self.sentinel);
        for ((&x, d), o) in src.iter().zip(scratch.iter()).zip(out.iter_mut()) {
            let zero = x.to_f64() == 0.0;
            *o = if zero { sentinel } else { F::from_f64(*d) };
        }
        if self.any_negative {
            signs.extend(src.iter().map(|x| x.to_f64() < 0.0));
        }
    }

    /// Inverse of [`LogPlan::map_chunk`] for one run. `signs` is the
    /// bitmap slice aligned with `src` (empty when the field had no
    /// negatives).
    pub fn unmap_chunk<F: Float>(
        &self,
        src: &[F],
        out: &mut [F],
        scratch: &mut [f64],
        signs: &[bool],
    ) {
        unmap_chunk(
            self.kernel,
            self.base,
            self.zero_threshold,
            src,
            out,
            scratch,
            signs,
        )
    }
}

/// The log mapping is the value-domain [`Transform`] stage of the
/// pipeline: forward/inverse sweep the data in [`CHUNK`]-sized runs over
/// a stack scratch buffer, so the stage keeps the fused path's
/// allocation profile.
impl<F: Float> Transform<F> for LogPlan {
    fn name(&self) -> &'static str {
        "log"
    }

    fn forward(&self, src: &[F], out: &mut [F], signs: &mut Vec<bool>) {
        let mut scratch = [0.0f64; CHUNK];
        for (s, o) in src.chunks(CHUNK).zip(out.chunks_mut(CHUNK)) {
            self.map_chunk(s, o, &mut scratch, signs);
        }
    }

    fn inverse(&self, src: &[F], out: &mut [F], signs: &[bool]) {
        let mut scratch = [0.0f64; CHUNK];
        let mut done = 0usize;
        for (s, o) in src.chunks(CHUNK).zip(out.chunks_mut(CHUNK)) {
            let bits = if signs.is_empty() {
                &[][..]
            } else {
                &signs[done..done + s.len()]
            };
            self.unmap_chunk(s, o, &mut scratch, bits);
            done += s.len();
        }
    }
}

/// Stateless single-chunk inverse: log-domain values in `src` back to the
/// value domain, zero threshold and signs applied. Used by
/// [`LogPlan::unmap_chunk`] and by decoders, which reconstruct from stream
/// metadata without a plan.
pub fn unmap_chunk<F: Float>(
    kernel: Kernel,
    base: LogBase,
    zero_threshold: f64,
    src: &[F],
    out: &mut [F],
    scratch: &mut [f64],
    signs: &[bool],
) {
    let scratch = &mut scratch[..src.len()];
    kernel.exp_batch(base, src, scratch);
    // Inputs at the top of F's range can reconstruct to a magnitude that
    // rounds up past F::MAX (the true value is ≤ F::MAX, so clamping only
    // moves the reconstruction closer — the relative bound is preserved
    // and infinities never escape).
    if signs.is_empty() {
        // All-positive fields take a branchless select that vectorizes.
        for ((&d, &v), o) in src.iter().zip(scratch.iter()).zip(out.iter_mut()) {
            let dv = d.to_f64();
            let v = v.min(F::MAX_F64);
            *o = F::from_f64(if dv <= zero_threshold { 0.0 } else { v });
        }
    } else {
        let signs = &signs[..src.len()];
        for ((&d, (&v, &neg)), o) in src
            .iter()
            .zip(scratch.iter().zip(signs.iter()))
            .zip(out.iter_mut())
        {
            let dv = d.to_f64();
            let v = v.min(F::MAX_F64);
            let v = if neg { -v } else { v };
            *o = F::from_f64(if dv <= zero_threshold { 0.0 } else { v });
        }
    }
}

/// What a fused compression pass hands back: the inner codec's stream plus
/// the raw sign bitmap it collected along the way (`None` when the field
/// had no negatives). The container layer owns bitmap compression.
#[derive(Debug, Clone)]
pub struct FusedOutput {
    /// Serialized inner-codec stream, identical to what `compress_abs`
    /// would produce on the buffered mapped vector.
    pub stream: Vec<u8>,
    /// Raster-order sign bits, present iff `plan.any_negative`.
    pub signs: Option<Vec<bool>>,
}

/// A codec that can run the log transform inside its own compression
/// sweep: one streaming pass over the original data instead of
/// transform-into-a-buffer followed by compress-the-buffer.
pub trait LogFusedCodec<F: Float> {
    /// Compresses `data` with the transform applied on the fly. Must
    /// produce the same stream bytes as `compress_abs` over the buffered
    /// transform of `data`, plus the sign bitmap from the same sweep.
    fn compress_fused(
        &self,
        data: &[F],
        dims: Dims,
        plan: &LogPlan,
    ) -> Result<FusedOutput, CodecError>;

    /// [`LogFusedCodec::compress_fused`] with per-stage recording on
    /// `rec`. The default ignores the recorder, so implementations only
    /// override it when they have internal stages worth attributing;
    /// the stream bytes must be identical either way.
    fn compress_fused_traced(
        &self,
        data: &[F],
        dims: Dims,
        plan: &LogPlan,
        rec: &dyn pwrel_trace::Recorder,
    ) -> Result<FusedOutput, CodecError> {
        let _ = rec;
        self.compress_fused(data, dims, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(any_negative: bool) -> LogPlan {
        LogPlan {
            base: LogBase::Two,
            kernel: Kernel::Fast,
            abs_bound: 1e-3,
            sentinel: -151.0 - 2e-3,
            zero_threshold: -151.0 - 1e-3,
            any_negative,
        }
    }

    #[test]
    fn map_then_unmap_round_trips() {
        let p = plan(true);
        let data: Vec<f32> = vec![1.5, -2.25, 0.0, 3.7e-4, -9.9e8];
        let mut mapped = vec![0.0f32; data.len()];
        let mut scratch = [0.0f64; CHUNK];
        let mut signs = Vec::new();
        p.map_chunk(&data, &mut mapped, &mut scratch, &mut signs);
        assert_eq!(signs, vec![false, true, false, false, true]);

        let mut back = vec![0.0f32; data.len()];
        p.unmap_chunk(&mapped, &mut back, &mut scratch, &signs);
        for (&a, &b) in data.iter().zip(&back) {
            if a == 0.0 {
                assert_eq!(b, 0.0);
            } else {
                assert!(
                    ((a as f64 - b as f64) / a as f64).abs() < 1e-6,
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn signs_skipped_for_all_positive_plans() {
        let p = plan(false);
        let data: Vec<f64> = vec![0.5, 2.0, 8.0];
        let mut mapped = vec![0.0f64; 3];
        let mut scratch = [0.0f64; CHUNK];
        let mut signs = Vec::new();
        p.map_chunk(&data, &mut mapped, &mut scratch, &mut signs);
        assert!(signs.is_empty());
        assert!((mapped[0] + 1.0).abs() < 1e-9 && (mapped[2] - 3.0).abs() < 1e-9);
    }
}
