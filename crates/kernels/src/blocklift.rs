//! Straight-line, lane-batched ZFP lifting over whole 4^d blocks.
//!
//! The reference transform applies a 4-sample butterfly per line, looping
//! over axes and lines with strided gathers (`fwd_lift(block, base, s)`).
//! That shape serializes on the per-line call overhead and hides the
//! data parallelism: within one separable pass every line is independent.
//!
//! These kernels restructure each pass as structure-of-arrays lanes — the
//! N lines' first samples in `x[0..N]`, second samples in `y[0..N]`, and
//! so on — and run the *identical* butterfly op sequence elementwise over
//! the lanes. Every operation is a wrapping add/sub or arithmetic shift on
//! `i64`, so lane order cannot change any result: the output is
//! bit-identical to the per-line reference by construction, and LLVM
//! auto-vectorizes the lane loops on the baseline ISA (no intrinsics, no
//! `unsafe`). Lane width per pass: 16 lines for 4³ blocks, 4 for 4²;
//! 1D blocks have a single line and stay scalar.

/// ZFP's forward lifting butterfly on one 4-sample line, lane-batched over
/// `N` independent lines. The op sequence matches the reference
/// `fwd_lift` exactly; `>>= 1` steps truncate like the reference.
#[inline(always)]
fn fwd_butterfly<const N: usize>(
    x: &mut [i64; N],
    y: &mut [i64; N],
    z: &mut [i64; N],
    w: &mut [i64; N],
) {
    for l in 0..N {
        let (mut xv, mut yv, mut zv, mut wv) = (x[l], y[l], z[l], w[l]);
        xv = xv.wrapping_add(wv);
        xv >>= 1;
        wv = wv.wrapping_sub(xv);
        zv = zv.wrapping_add(yv);
        zv >>= 1;
        yv = yv.wrapping_sub(zv);
        xv = xv.wrapping_add(zv);
        xv >>= 1;
        zv = zv.wrapping_sub(xv);
        wv = wv.wrapping_add(yv);
        wv >>= 1;
        yv = yv.wrapping_sub(wv);
        wv = wv.wrapping_add(yv >> 1);
        yv = yv.wrapping_sub(wv >> 1);
        x[l] = xv;
        y[l] = yv;
        z[l] = zv;
        w[l] = wv;
    }
}

/// Inverse butterfly (exact inverse of [`fwd_butterfly`]), lane-batched.
#[inline(always)]
fn inv_butterfly<const N: usize>(
    x: &mut [i64; N],
    y: &mut [i64; N],
    z: &mut [i64; N],
    w: &mut [i64; N],
) {
    for l in 0..N {
        let (mut xv, mut yv, mut zv, mut wv) = (x[l], y[l], z[l], w[l]);
        yv = yv.wrapping_add(wv >> 1);
        wv = wv.wrapping_sub(yv >> 1);
        yv = yv.wrapping_add(wv);
        wv <<= 1;
        wv = wv.wrapping_sub(yv);
        zv = zv.wrapping_add(xv);
        xv <<= 1;
        xv = xv.wrapping_sub(zv);
        yv = yv.wrapping_add(zv);
        zv <<= 1;
        zv = zv.wrapping_sub(yv);
        wv = wv.wrapping_add(xv);
        xv <<= 1;
        xv = xv.wrapping_sub(wv);
        x[l] = xv;
        y[l] = yv;
        z[l] = zv;
        w[l] = wv;
    }
}

/// Lane base offsets for one separable pass of a 4³ block: lane `l` is the
/// line starting at `base(l)` with sample stride `s`; samples sit at
/// `base + {0, s, 2s, 3s}`.
#[inline(always)]
fn pass16(block: &mut [i64; 64], s: usize, base: impl Fn(usize) -> usize, forward: bool) {
    let (mut x, mut y, mut z, mut w) = ([0i64; 16], [0i64; 16], [0i64; 16], [0i64; 16]);
    for l in 0..16 {
        let b = base(l);
        x[l] = block[b];
        y[l] = block[b + s];
        z[l] = block[b + 2 * s];
        w[l] = block[b + 3 * s];
    }
    if forward {
        fwd_butterfly(&mut x, &mut y, &mut z, &mut w);
    } else {
        inv_butterfly(&mut x, &mut y, &mut z, &mut w);
    }
    for l in 0..16 {
        let b = base(l);
        block[b] = x[l];
        block[b + s] = y[l];
        block[b + 2 * s] = z[l];
        block[b + 3 * s] = w[l];
    }
}

/// Like [`pass16`] for the 4 lines of a 4² block.
#[inline(always)]
fn pass4(block: &mut [i64; 16], s: usize, base: impl Fn(usize) -> usize, forward: bool) {
    let (mut x, mut y, mut z, mut w) = ([0i64; 4], [0i64; 4], [0i64; 4], [0i64; 4]);
    for l in 0..4 {
        let b = base(l);
        x[l] = block[b];
        y[l] = block[b + s];
        z[l] = block[b + 2 * s];
        w[l] = block[b + 3 * s];
    }
    if forward {
        fwd_butterfly(&mut x, &mut y, &mut z, &mut w);
    } else {
        inv_butterfly(&mut x, &mut y, &mut z, &mut w);
    }
    for l in 0..4 {
        let b = base(l);
        block[b] = x[l];
        block[b + s] = y[l];
        block[b + 2 * s] = z[l];
        block[b + 3 * s] = w[l];
    }
}

/// Fused forward transform over a 4¹ block.
pub fn fwd_xform_1d(block: &mut [i64; 4]) {
    let (mut x, mut y, mut z, mut w) = ([block[0]], [block[1]], [block[2]], [block[3]]);
    fwd_butterfly(&mut x, &mut y, &mut z, &mut w);
    *block = [x[0], y[0], z[0], w[0]];
}

/// Fused inverse transform over a 4¹ block.
pub fn inv_xform_1d(block: &mut [i64; 4]) {
    let (mut x, mut y, mut z, mut w) = ([block[0]], [block[1]], [block[2]], [block[3]]);
    inv_butterfly(&mut x, &mut y, &mut z, &mut w);
    *block = [x[0], y[0], z[0], w[0]];
}

/// Fused forward transform over a 4² block (rows then columns).
pub fn fwd_xform_2d(block: &mut [i64; 16]) {
    pass4(block, 1, |j| 4 * j, true); // rows (x)
    pass4(block, 4, |i| i, true); // columns (y)
}

/// Fused inverse transform over a 4² block (columns then rows).
pub fn inv_xform_2d(block: &mut [i64; 16]) {
    pass4(block, 4, |i| i, false);
    pass4(block, 1, |j| 4 * j, false);
}

/// Fused forward transform over a 4³ block (x, y, then z lines).
pub fn fwd_xform_3d(block: &mut [i64; 64]) {
    pass16(block, 1, |l| 4 * l, true); // x lines: base 16k + 4j
    pass16(block, 4, |l| 16 * (l / 4) + (l % 4), true); // y lines: base 16k + i
    pass16(block, 16, |l| l, true); // z lines: base 4j + i
}

/// Fused inverse transform over a 4³ block (z, y, then x lines).
pub fn inv_xform_3d(block: &mut [i64; 64]) {
    pass16(block, 16, |l| l, false);
    pass16(block, 4, |l| 16 * (l / 4) + (l % 4), false);
    pass16(block, 1, |l| 4 * l, false);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference per-line forward lift (transcribed from the separable
    /// implementation in `pwrel-zfp`); the kernels must match it
    /// bit-for-bit.
    fn ref_fwd_lift(p: &mut [i64], base: usize, s: usize) {
        let (mut x, mut y, mut z, mut w) = (p[base], p[base + s], p[base + 2 * s], p[base + 3 * s]);
        x = x.wrapping_add(w);
        x >>= 1;
        w = w.wrapping_sub(x);
        z = z.wrapping_add(y);
        z >>= 1;
        y = y.wrapping_sub(z);
        x = x.wrapping_add(z);
        x >>= 1;
        z = z.wrapping_sub(x);
        w = w.wrapping_add(y);
        w >>= 1;
        y = y.wrapping_sub(w);
        w = w.wrapping_add(y >> 1);
        y = y.wrapping_sub(w >> 1);
        p[base] = x;
        p[base + s] = y;
        p[base + 2 * s] = z;
        p[base + 3 * s] = w;
    }

    fn ref_inv_lift(p: &mut [i64], base: usize, s: usize) {
        let (mut x, mut y, mut z, mut w) = (p[base], p[base + s], p[base + 2 * s], p[base + 3 * s]);
        y = y.wrapping_add(w >> 1);
        w = w.wrapping_sub(y >> 1);
        y = y.wrapping_add(w);
        w <<= 1;
        w = w.wrapping_sub(y);
        z = z.wrapping_add(x);
        x <<= 1;
        x = x.wrapping_sub(z);
        y = y.wrapping_add(z);
        z <<= 1;
        z = z.wrapping_sub(y);
        w = w.wrapping_add(x);
        x <<= 1;
        x = x.wrapping_sub(w);
        p[base] = x;
        p[base + s] = y;
        p[base + 2 * s] = z;
        p[base + 3 * s] = w;
    }

    fn ref_fwd_xform(block: &mut [i64], rank: u8) {
        match rank {
            1 => ref_fwd_lift(block, 0, 1),
            2 => {
                for j in 0..4 {
                    ref_fwd_lift(block, 4 * j, 1);
                }
                for i in 0..4 {
                    ref_fwd_lift(block, i, 4);
                }
            }
            _ => {
                for k in 0..4 {
                    for j in 0..4 {
                        ref_fwd_lift(block, 16 * k + 4 * j, 1);
                    }
                }
                for k in 0..4 {
                    for i in 0..4 {
                        ref_fwd_lift(block, 16 * k + i, 4);
                    }
                }
                for j in 0..4 {
                    for i in 0..4 {
                        ref_fwd_lift(block, 4 * j + i, 16);
                    }
                }
            }
        }
    }

    fn ref_inv_xform(block: &mut [i64], rank: u8) {
        match rank {
            1 => ref_inv_lift(block, 0, 1),
            2 => {
                for i in 0..4 {
                    ref_inv_lift(block, i, 4);
                }
                for j in 0..4 {
                    ref_inv_lift(block, 4 * j, 1);
                }
            }
            _ => {
                for j in 0..4 {
                    for i in 0..4 {
                        ref_inv_lift(block, 4 * j + i, 16);
                    }
                }
                for k in 0..4 {
                    for i in 0..4 {
                        ref_inv_lift(block, 16 * k + i, 4);
                    }
                }
                for k in 0..4 {
                    for j in 0..4 {
                        ref_inv_lift(block, 16 * k + 4 * j, 1);
                    }
                }
            }
        }
    }

    fn pseudo(seed: u64, n: usize) -> Vec<i64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x as i64) >> 3
            })
            .collect()
    }

    #[test]
    fn fused_matches_reference_1d() {
        for seed in 1..50u64 {
            let v = pseudo(seed, 4);
            let mut a: [i64; 4] = v.clone().try_into().unwrap();
            let mut b = v;
            fwd_xform_1d(&mut a);
            ref_fwd_xform(&mut b, 1);
            assert_eq!(a.as_slice(), b.as_slice(), "fwd seed {seed}");
            inv_xform_1d(&mut a);
            ref_inv_xform(&mut b, 1);
            assert_eq!(a.as_slice(), b.as_slice(), "inv seed {seed}");
        }
    }

    #[test]
    fn fused_matches_reference_2d() {
        for seed in 1..50u64 {
            let v = pseudo(seed, 16);
            let mut a: [i64; 16] = v.clone().try_into().unwrap();
            let mut b = v;
            fwd_xform_2d(&mut a);
            ref_fwd_xform(&mut b, 2);
            assert_eq!(a.as_slice(), b.as_slice(), "fwd seed {seed}");
            inv_xform_2d(&mut a);
            ref_inv_xform(&mut b, 2);
            assert_eq!(a.as_slice(), b.as_slice(), "inv seed {seed}");
        }
    }

    #[test]
    fn fused_matches_reference_3d() {
        for seed in 1..50u64 {
            let v = pseudo(seed, 64);
            let mut a: [i64; 64] = v.clone().try_into().unwrap();
            let mut b = v;
            fwd_xform_3d(&mut a);
            ref_fwd_xform(&mut b, 3);
            assert_eq!(a.as_slice(), b.as_slice(), "fwd seed {seed}");
            inv_xform_3d(&mut a);
            ref_inv_xform(&mut b, 3);
            assert_eq!(a.as_slice(), b.as_slice(), "inv seed {seed}");
        }
    }

    #[test]
    fn extreme_values_match_reference() {
        let mixed: Vec<i64> = (0..64)
            .map(|i| [i64::MAX, i64::MIN, 0, -1][i % 4])
            .collect();
        let patterns: [Vec<i64>; 4] = [vec![i64::MAX; 64], vec![i64::MIN; 64], mixed, vec![1; 64]];
        for (pi, p) in patterns.iter().enumerate() {
            let mut a: [i64; 64] = p.clone().try_into().unwrap();
            let mut b = p.clone();
            fwd_xform_3d(&mut a);
            ref_fwd_xform(&mut b, 3);
            assert_eq!(a.as_slice(), b.as_slice(), "pattern {pi}");
        }
    }
}
