//! The `Fast`/`Libm` kernel selector and its batched entry points.

use crate::base::LogBase;
use crate::fast;
use pwrel_data::Float;

/// Which implementation computes the log mapping.
///
/// `Fast` is the default: the branchless batch kernels from [`crate::fast`]
/// with their documented error constants folded into the bound correction.
/// `Libm` is the exact-reference scalar path (what the seed implementation
/// always used); it remains available for verification and as a fallback
/// where the fast kernels' preconditions cannot be established.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Branchless polynomial kernels, batched over fixed-width chunks.
    #[default]
    Fast,
    /// Scalar libm `log2`/`ln`/`log10` and `exp2`/`exp`/`powf`.
    Libm,
}

impl Kernel {
    /// Reads `PWREL_KERNEL` (`fast` | `libm`) for A/B runs; defaults to
    /// `Fast` when unset or unrecognized.
    pub fn from_env() -> Self {
        match std::env::var("PWREL_KERNEL").as_deref() {
            Ok("libm") | Ok("LIBM") => Kernel::Libm,
            _ => Kernel::Fast,
        }
    }

    /// Additional *absolute* log-domain (base `base`) error this kernel's
    /// forward map can introduce versus the exact logarithm. Subtracted
    /// from the corrected bound (Lemma 2 widening).
    pub fn forward_abs_margin(self, base: LogBase) -> f64 {
        match self {
            // An absolute log2-domain error scales like the logs themselves.
            Kernel::Fast => fast::FAST_LOG2_ABS_ERR * base.log2_scale(),
            // libm's own rounding is covered by the ε0 term of Lemma 2.
            Kernel::Libm => 0.0,
        }
    }

    /// Additional *relative* value-domain error this kernel's inverse map
    /// can introduce versus the exact exponential. Enters the corrected
    /// bound as `margin / ln(base)` (a relative error `ε` displaces the
    /// log-domain value by `≈ ε / ln b`).
    pub fn inverse_rel_margin(self) -> f64 {
        match self {
            Kernel::Fast => fast::FAST_EXP2_REL_ERR,
            Kernel::Libm => 0.0,
        }
    }

    /// Scalar `log_base |x|`; `x` must be nonzero finite. Kept for the odd
    /// one-off value — hot paths use [`Kernel::log_batch`].
    #[inline]
    pub fn log_abs(self, base: LogBase, x: f64) -> f64 {
        match self {
            Kernel::Fast => fast::fast_log2(x.abs()) * base.log2_scale(),
            Kernel::Libm => base.log(x.abs()),
        }
    }

    /// Scalar `base^d` for finite `d` in the transform's log-value range.
    #[inline]
    pub fn exp(self, base: LogBase, d: f64) -> f64 {
        match self {
            Kernel::Fast => fast::fast_exp2(d * base.inv_log2_scale()),
            Kernel::Libm => base.exp(d),
        }
    }

    /// `dst[i] = log_base |src[i]|` for every element, in fixed-width
    /// chunks. Zero elements produce finite placeholders below any zero
    /// threshold under `Fast` and `−∞` under `Libm`; callers overwrite
    /// them with the sentinel either way. Inputs must be finite.
    pub fn log_batch<F: Float>(self, base: LogBase, src: &[F], dst: &mut [f64]) {
        assert_eq!(src.len(), dst.len());
        let scale = base.log2_scale();
        match self {
            Kernel::Fast => {
                let n = src.len() - src.len() % fast::LANES;
                for (s, d) in src[..n]
                    .chunks_exact(fast::LANES)
                    .zip(dst[..n].chunks_exact_mut(fast::LANES))
                {
                    for i in 0..fast::LANES {
                        d[i] = fast::fast_log2(s[i].abs().to_f64()) * scale;
                    }
                }
                for (s, d) in src[n..].iter().zip(&mut dst[n..]) {
                    *d = fast::fast_log2(s.abs().to_f64()) * scale;
                }
            }
            Kernel::Libm => {
                for (s, d) in src.iter().zip(dst.iter_mut()) {
                    *d = base.log(s.abs().to_f64());
                }
            }
        }
    }

    /// `dst[i] = base^(src[i])` for every element, in fixed-width chunks.
    /// Inputs must be finite and within the transform's log-value range.
    pub fn exp_batch<F: Float>(self, base: LogBase, src: &[F], dst: &mut [f64]) {
        assert_eq!(src.len(), dst.len());
        let scale = base.inv_log2_scale();
        match self {
            Kernel::Fast => {
                let n = src.len() - src.len() % fast::LANES;
                for (s, d) in src[..n]
                    .chunks_exact(fast::LANES)
                    .zip(dst[..n].chunks_exact_mut(fast::LANES))
                {
                    for i in 0..fast::LANES {
                        d[i] = fast::fast_exp2(s[i].to_f64() * scale);
                    }
                }
                for (s, d) in src[n..].iter().zip(&mut dst[n..]) {
                    *d = fast::fast_exp2(s.to_f64() * scale);
                }
            }
            Kernel::Libm => {
                for (s, d) in src.iter().zip(dst.iter_mut()) {
                    *d = base.exp(s.to_f64());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASES: [LogBase; 3] = [LogBase::Two, LogBase::E, LogBase::Ten];

    #[test]
    fn fast_scalar_tracks_libm_within_margin() {
        for base in BASES {
            for x in [1e-300, 2.5e-7, 0.5, 1.0, 3.33, 8.1e12, 1.7e300] {
                let fwd_err = (Kernel::Fast.log_abs(base, x) - Kernel::Libm.log_abs(base, x)).abs();
                assert!(
                    fwd_err <= Kernel::Fast.forward_abs_margin(base) + 1e-13,
                    "{base:?} x={x:e} err={fwd_err:e}"
                );
                let d = Kernel::Libm.log_abs(base, x);
                let exact = Kernel::Libm.exp(base, d);
                let rel = ((Kernel::Fast.exp(base, d) - exact) / exact).abs();
                // Allow libm's own ulp next to the fast margin.
                assert!(
                    rel <= Kernel::Fast.inverse_rel_margin() + 1e-16 + 3.0 * f64::EPSILON,
                    "{base:?} d={d} rel={rel:e}"
                );
            }
        }
    }

    #[test]
    fn batch_matches_scalar_both_kernels() {
        let data: Vec<f32> = (1..77).map(|i| (i as f32 - 38.3) * 0.13).collect();
        for kernel in [Kernel::Fast, Kernel::Libm] {
            for base in BASES {
                let mut logd = vec![0.0; data.len()];
                kernel.log_batch(base, &data, &mut logd);
                for (x, d) in data.iter().zip(&logd) {
                    if *x != 0.0 {
                        assert_eq!(*d, kernel.log_abs(base, x.abs() as f64));
                    }
                }
                let mut val = vec![0.0; logd.len()];
                kernel.exp_batch(base, &logd, &mut val);
                for (d, v) in logd.iter().zip(&val) {
                    assert_eq!(*v, kernel.exp(base, *d));
                }
            }
        }
    }

    #[test]
    fn libm_margins_are_zero() {
        for base in BASES {
            assert_eq!(Kernel::Libm.forward_abs_margin(base), 0.0);
        }
        assert_eq!(Kernel::Libm.inverse_rel_margin(), 0.0);
    }
}
