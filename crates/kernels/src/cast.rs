//! Documented numeric casts for the lane-batched kernel hot loops.
//!
//! Audit lint L2 extends to this crate's kernels: a silent truncation in
//! the predict/quantize sweep corrupts an error bound instead of a pixel.
//! `pwrel-kernels` sits *below* `pwrel-core` in the dependency graph, so
//! it cannot use `pwrel_core::cast`; this module is the kernels-local
//! allowlisted home for the same conversions, with identical semantics
//! (the quantizer parity suite pins the two implementations together).

/// Rounded quantization offset → integer code. The caller must already
/// have checked `v.is_finite() && v.abs() < radius` with
/// `radius ≤ 2^31`, so the truncating cast is exact.
#[inline]
pub fn quant_code(v: f64) -> i64 {
    v as i64
}

/// Integer quantization code → `f64` reconstruction arithmetic. Exact:
/// codes are bounded by the interval capacity, `|q| < 2^32 ≪ 2^53`.
#[inline]
pub fn f64_from_quant(q: i64) -> f64 {
    q as f64
}

/// Biased code `radius + q`, in `[0, capacity)` by the quantizer's range
/// check, → `u32` symbol for the entropy stage.
#[inline]
pub fn symbol_u32(v: i64) -> u32 {
    debug_assert!(u32::try_from(v).is_ok(), "code out of symbol range: {v}");
    v as u32
}

/// Grid coordinate → signed neighbour arithmetic. Coordinates come from
/// in-memory grids (`dims.len()` elements exist), so they are far below
/// `isize::MAX` and the cast is lossless.
#[inline]
pub fn grid_isize(v: usize) -> isize {
    debug_assert!(isize::try_from(v).is_ok(), "grid coordinate overflow");
    v as isize
}

/// Signed neighbour coordinate back to an index; the caller has already
/// taken the out-of-grid branch for negatives.
#[inline]
pub fn grid_usize(v: isize) -> usize {
    debug_assert!(v >= 0, "negative coordinate reached an index cast");
    v as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_in_documented_ranges() {
        assert_eq!(quant_code(-3.0), -3);
        assert_eq!(quant_code(2147483647.0), (1 << 31) - 1);
        assert_eq!(f64_from_quant(-(1 << 32)), -4294967296.0);
        assert_eq!(symbol_u32(65535), 65535);
        assert_eq!(grid_isize(7), 7);
        assert_eq!(grid_usize(7), 7);
    }
}
