//! Runtime selection between the batched hot-loop kernels and their
//! scalar reference implementations.
//!
//! Mirrors the [`crate::Kernel`] (`Fast`/`Libm`) pattern: one enum, an
//! environment override for A/B runs, and a cached process-wide default.
//! Unlike `Fast`, the batched kernels here are *bit-identical* to their
//! references by construction (every reordered operation is either an
//! integer op or an FP op whose operand set and evaluation order are
//! preserved), so the selector exists for verification and benchmarking
//! rather than accuracy trade-offs.
//!
//! Both paths are portable safe Rust. The batched kernels are written so
//! LLVM auto-vectorizes them on the baseline ISA (fixed-size lane arrays,
//! no data-dependent branches in the lane loops); there is no
//! `target_feature` specialization because this crate forbids `unsafe`
//! and the autovectorized code already saturates the memory-bound loops.

use std::sync::OnceLock;

/// Which implementation runs a lane-batched hot loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchKernel {
    /// Lane-batched kernels (default): structure-of-arrays fixed-width
    /// loops, bit-identical to the reference.
    #[default]
    Batched,
    /// The scalar per-point/per-line reference path, kept as the parity
    /// oracle and for A/B measurement.
    Reference,
}

impl BatchKernel {
    /// Parses an environment value: `reference` | `scalar` selects
    /// [`BatchKernel::Reference`]; anything else (or unset) the default.
    fn parse(v: Result<String, std::env::VarError>) -> Self {
        match v.as_deref().map(str::to_ascii_lowercase).as_deref() {
            Ok("reference") | Ok("scalar") => BatchKernel::Reference,
            _ => BatchKernel::Batched,
        }
    }
}

/// Kernel for the ZFP block lifting transform; override with
/// `PWREL_LIFT=reference`. Read once per process (the transform runs
/// thousands of times per block sweep).
pub fn lift_kernel() -> BatchKernel {
    static CACHE: OnceLock<BatchKernel> = OnceLock::new();
    *CACHE.get_or_init(|| BatchKernel::parse(std::env::var("PWREL_LIFT")))
}

/// Kernel for the SZ Lorenzo predict/quantize sweep; override with
/// `PWREL_SWEEP=reference`.
pub fn sweep_kernel() -> BatchKernel {
    static CACHE: OnceLock<BatchKernel> = OnceLock::new();
    *CACHE.get_or_init(|| BatchKernel::parse(std::env::var("PWREL_SWEEP")))
}

/// Kernel for the entropy-stage frequency histogram; override with
/// `PWREL_HIST=reference`.
pub fn hist_kernel() -> BatchKernel {
    static CACHE: OnceLock<BatchKernel> = OnceLock::new();
    *CACHE.get_or_init(|| BatchKernel::parse(std::env::var("PWREL_HIST")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_to_batched() {
        assert_eq!(
            BatchKernel::parse(Err(std::env::VarError::NotPresent)),
            BatchKernel::Batched
        );
        assert_eq!(
            BatchKernel::parse(Ok("batched".into())),
            BatchKernel::Batched
        );
        assert_eq!(
            BatchKernel::parse(Ok("REFERENCE".into())),
            BatchKernel::Reference
        );
        assert_eq!(
            BatchKernel::parse(Ok("scalar".into())),
            BatchKernel::Reference
        );
    }
}
