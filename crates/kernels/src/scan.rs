//! Single-pass bit-level field scan.
//!
//! The forward transform needs four facts before it can map anything:
//! whether every value is finite, whether any is negative, whether any is
//! zero, and a bound on `max |log_base x|` for Lemma 2's round-off
//! correction. The seed implementation learned the max by reducing over
//! the *mapped* values, which forces the transform itself to carry a
//! serial max. This scan instead reads each value's exponent field: for
//! normal `x`, `log2 |x| ∈ [e, e+1)`, so tracking the min/max biased
//! exponent over the field bounds `max |log2 x|` with integer compares
//! only. The bound over-estimates by at most 1 (in log2 units), and
//! over-estimating only *shrinks* the corrected absolute bound, so using
//! it keeps the point-wise guarantee intact.

use pwrel_data::{CodecError, Float};

/// Everything the forward transform needs to know about a field, learned
/// in one vectorizable integer pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldScan {
    /// At least one value is strictly negative (−0.0 counts as zero).
    pub any_negative: bool,
    /// At least one value is ±0.0.
    pub any_zero: bool,
    /// Upper bound on `max |log2 |x||` over the nonzero values; `0.0` when
    /// every value is zero (or the field is empty).
    pub max_abs_log2: f64,
}

impl FieldScan {
    /// The bound converted to `log_base` units.
    pub fn max_abs_log(&self, base: crate::LogBase) -> f64 {
        self.max_abs_log2 * base.log2_scale()
    }
}

/// Scans `data`, rejecting non-finite values.
pub fn scan<F: Float>(data: &[F]) -> Result<FieldScan, CodecError> {
    let sign_shift = F::BITS - 1;
    let mant_bits = F::MANT_BITS;
    let exp_all_ones = (1u64 << F::EXP_BITS) - 1;
    let bias = (1i64 << (F::EXP_BITS - 1)) - 1;

    let mut any_negative = false;
    let mut any_zero = false;
    let mut any_subnormal = false;
    let mut max_exp = 0u64;
    let mut min_exp = u64::MAX;
    for &x in data {
        let bits = x.to_bits_u64();
        let mag = bits & !(1u64 << sign_shift);
        let is_zero = mag == 0;
        let exp_field = mag >> mant_bits;
        any_negative |= !is_zero && (bits >> sign_shift) != 0;
        any_zero |= is_zero;
        any_subnormal |= !is_zero && exp_field == 0;
        // Zero slots contribute neutral values to the exponent extrema.
        max_exp = max_exp.max(if is_zero { 0 } else { exp_field });
        min_exp = min_exp.min(if is_zero { u64::MAX } else { exp_field });
    }
    if max_exp == exp_all_ones {
        return Err(CodecError::InvalidArgument(
            "log transform requires finite input",
        ));
    }
    if min_exp == u64::MAX {
        // All zeros (or empty): nothing gets mapped.
        return Ok(FieldScan {
            any_negative,
            any_zero,
            max_abs_log2: 0.0,
        });
    }
    // |log2 x| < e+1 from above; from below, −log2 x ≤ −e for normals and
    // ≤ bias−1+mant_bits for subnormals (value ≥ smallest denormal).
    let hi = max_exp as i64 - bias + 1;
    let lo = if any_subnormal {
        bias - 1 + mant_bits as i64
    } else {
        bias - min_exp as i64
    };
    Ok(FieldScan {
        any_negative,
        any_zero,
        max_abs_log2: hi.max(lo).max(0) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_dominates_true_max() {
        let data: Vec<f32> = vec![1.5, -2.5e10, 3.7e-12, 0.0, -0.0, 1e-42];
        let s = scan(&data).unwrap();
        assert!(s.any_negative && s.any_zero);
        let true_max = data
            .iter()
            .filter(|v| **v != 0.0)
            .map(|v| (v.abs() as f64).log2().abs())
            .fold(0.0, f64::max);
        assert!(s.max_abs_log2 >= true_max);
        // Subnormal present → the denormal floor is the lower bound.
        assert_eq!(s.max_abs_log2, 149.0);
    }

    #[test]
    fn bound_is_tight_without_subnormals() {
        let data: Vec<f64> = vec![2.0f64.powi(100), 2.0f64.powi(-100)];
        let s = scan(&data).unwrap();
        assert!(!s.any_negative && !s.any_zero);
        // max exponent 100 → hi = 101; min exponent −100 → lo = 100.
        assert_eq!(s.max_abs_log2, 101.0);
    }

    #[test]
    fn all_zero_field() {
        let s = scan(&[0.0f32, -0.0]).unwrap();
        assert!(s.any_zero && !s.any_negative);
        assert_eq!(s.max_abs_log2, 0.0);
        let s = scan::<f64>(&[]).unwrap();
        assert_eq!(s.max_abs_log2, 0.0);
    }

    #[test]
    fn negative_zero_is_zero_not_negative() {
        let s = scan(&[-0.0f32, 1.0]).unwrap();
        assert!(s.any_zero && !s.any_negative);
    }

    #[test]
    fn non_finite_rejected() {
        assert!(scan(&[f32::NAN]).is_err());
        assert!(scan(&[f64::INFINITY]).is_err());
        assert!(scan(&[f32::NEG_INFINITY, 1.0]).is_err());
    }

    #[test]
    fn values_near_one_give_small_bound() {
        let s = scan(&[1.0f64, 1.5, 0.75]).unwrap();
        // Exponents −1..0 → hi = 1, lo = 1.
        assert_eq!(s.max_abs_log2, 1.0);
    }
}
