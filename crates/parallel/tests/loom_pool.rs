#![cfg(loom)]
#![forbid(unsafe_code)]

//! Model-checked concurrency tests for [`pwrel_parallel::WorkerPool`].
//!
//! Built only under `RUSTFLAGS="--cfg loom"`, which also switches the
//! pool's internals onto loom's sync primitives (see `pool.rs`). Against
//! the real loom these explore every schedule; against the in-tree shim
//! they degrade to stress iteration. Scenarios mirror the pool's three
//! documented invariants: exactly-once job claiming, panic propagation
//! through `catch_unwind`, and shutdown ordering on drop.

use pwrel_parallel::WorkerPool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Every task index is claimed exactly once and lands in its own slot.
#[test]
fn model_job_claiming_is_exactly_once() {
    loom::model(|| {
        let runs = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new(2);
        let counted = runs.clone();
        let out = pool.map(vec![0usize, 1, 2, 3], move |t| {
            counted.fetch_add(1, Ordering::Relaxed);
            t * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30]);
        assert_eq!(runs.load(Ordering::Relaxed), 4);
    });
}

/// A panicking task must poison exactly that `map` call — the panic
/// crosses threads via the job's flag, and the pool survives for the
/// next submission.
#[test]
fn model_panic_propagates_and_pool_survives() {
    loom::model(|| {
        let pool = WorkerPool::new(2);
        let poisoned = catch_unwind(AssertUnwindSafe(|| {
            pool.map(vec![0u32, 1, 2, 3], |t| {
                if t == 2 {
                    panic!("boom");
                }
                t
            })
        }));
        assert!(poisoned.is_err());
        assert_eq!(pool.map(vec![7u32], |t| t + 1), vec![8]);
    });
}

/// The pipeline primitive must deliver every result, in production
/// order, under every schedule — workers race on the shared queue while
/// the submitter produces and consumes concurrently.
#[test]
fn model_pipeline_is_ordered_and_complete() {
    loom::model(|| {
        let pool = WorkerPool::new(2);
        let mut next = 0u32;
        let mut out = Vec::new();
        pool.pipeline(
            2,
            || -> Result<Option<u32>, ()> {
                next += 1;
                Ok((next <= 3).then_some(next))
            },
            |t| t * 2,
            |r| {
                out.push(r);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(out, vec![2, 4, 6]);
    });
}

/// A panicking pipeline task must poison exactly that call and leave the
/// pool usable, mirroring the `map` contract.
#[test]
fn model_pipeline_panic_propagates_and_pool_survives() {
    loom::model(|| {
        let pool = WorkerPool::new(2);
        let poisoned = catch_unwind(AssertUnwindSafe(|| {
            let mut next = 0u32;
            let _ = pool.pipeline(
                2,
                || -> Result<Option<u32>, ()> {
                    next += 1;
                    Ok((next <= 3).then_some(next))
                },
                |t| {
                    if t == 2 {
                        panic!("boom");
                    }
                    t
                },
                |_| Ok(()),
            );
        }));
        assert!(poisoned.is_err());
        assert_eq!(pool.map(vec![7u32], |t| t + 1), vec![8]);
    });
}

/// Dropping the last pool handle mid-flight must still shut every worker
/// down: shutdown is published under the slot lock before the wake, so no
/// worker can park after missing it.
#[test]
fn model_shutdown_joins_all_workers() {
    loom::model(|| {
        let pool = WorkerPool::new(2);
        let _ = pool.map(vec![1u64, 2, 3], |t| t * t);
        drop(pool); // joins workers; loom fails the model on a leaked thread
    });
}
