//! Chunk-pipelined compression of a single large field over framed
//! streams.
//!
//! The paper parallelizes across *files* (one rank, one field, one
//! file). Within a node it is often preferable to split one large field
//! into slabs along its slowest axis and overlap the slabs' stages:
//! each slab is an independent codec stream (prediction restarts at the
//! boundary, so the error bound is preserved per-slab at a small
//! compression-ratio cost), and decompression pipelines the same way.
//!
//! The container is the framed stream format from
//! [`pwrel_pipeline::stream`] (`PWS1` header + self-describing frames),
//! so everything this wrapper emits is readable by the registry's
//! sequential `decompress_stream` and vice versa — the pipelined and
//! sequential engines are byte-identical for the same chunk size. Chunks
//! flow through [`WorkerPool::pipeline`]: the calling thread reads chunk
//! `k+2` and writes frame `k` while workers compress the chunks in
//! between, with the bounded in-flight window capping peak memory at a
//! few chunks regardless of field size. Chunk buffers recycle through a
//! [`BufferPool`] arena, so the engine's own steady-state allocation per
//! chunk is zero after warm-up.

use crate::pool::WorkerPool;
use pwrel_data::{CodecError, Dims, Float};
use pwrel_pipeline::stream::{self, EXTERNAL_CODEC_ID};
use pwrel_pipeline::{
    BufferPool, ChunkPlan, ChunkSink, ChunkSource, CodecRegistry, CompressOpts, FrameHeader,
    FrameWalker, PipelineElem, SliceSource, StreamHeader, StreamStats, VecSink,
};
use pwrel_trace::{stage, Recorder, Span};
use std::io::{Read, Write};

/// Per-chunk encode hook the pipelined compress engine fans out to
/// workers.
type CompressChunkFn<'a, F> = &'a (dyn Fn(&[F], Dims) -> Result<Vec<u8>, CodecError> + Sync);

/// Per-chunk decode hook the pipelined decompress engine fans out to
/// workers.
type DecompressChunkFn<'a, F> = &'a (dyn Fn(&[u8]) -> Result<(Vec<F>, Dims), CodecError> + Sync);

/// One decoded chunk in flight: recycled payload buffer, expected slab
/// dims, and the worker's decode result.
type DecodedChunk<F> = (Vec<u8>, Dims, Result<(Vec<F>, Dims), CodecError>);

/// Chunk-pipelined wrapper running any per-buffer codec over a framed
/// stream with bounded memory.
#[derive(Debug, Clone)]
pub struct ChunkedCodec {
    /// Worker pool used for both directions.
    pub pool: WorkerPool,
    /// Requested elements per chunk (rounded to whole slices of the
    /// slowest axis; see [`ChunkPlan`]). Zero or more than the field's
    /// total element count is a usage error surfaced as
    /// [`CodecError::InvalidArgument`], never a panic or a silent
    /// single-chunk fallback.
    pub chunk_elems: usize,
    /// Bounded in-flight window for the pipelined executor (clamped to
    /// ≥ 1): peak memory is about `window` chunks plus codec scratch.
    pub window: usize,
}

impl ChunkedCodec {
    /// A chunked codec over `pool` with the given chunk size and a
    /// two-chunks-per-worker window (enough to keep every worker busy
    /// while the caller reads ahead and drains in order).
    pub fn new(pool: WorkerPool, chunk_elems: usize) -> Self {
        Self {
            window: pool.workers() * 2,
            pool,
            chunk_elems,
        }
    }

    /// The chunk-pipelined compress engine: plans slabs, writes the
    /// stream header, then runs read → compress → write-frame over the
    /// pool with frames emitted strictly in chunk order (byte-identical
    /// to the sequential engine in `pwrel-pipeline`). On error the
    /// stream written so far is abandoned mid-frame — callers discard it.
    #[allow(clippy::too_many_arguments)] // mirrors the sequential engine plus identity
    fn run_compress<F: Float>(
        &self,
        codec_id: u8,
        entropy_mode: u8,
        granularity: usize,
        src: &mut dyn ChunkSource<F>,
        out: &mut dyn Write,
        dims: Dims,
        opts: &CompressOpts,
        compress_chunk: CompressChunkFn<'_, F>,
        rec: &dyn Recorder,
    ) -> Result<StreamStats, CodecError> {
        let plan = ChunkPlan::new(dims, self.chunk_elems, granularity)?;
        let header = StreamHeader {
            codec_id,
            elem_bits: F::BITS as u8,
            dims,
            bound: opts.bound,
            base: opts.base,
            entropy_mode,
            n_chunks: plan.n_chunks() as u64,
        };
        let mut head = Vec::with_capacity(48);
        stream::encode_stream_header(&mut head, &header);
        out.write_all(&head).map_err(stream::write_failed)?;

        let arena: BufferPool<F> = BufferPool::new();
        let mut stats = StreamStats {
            chunks: plan.n_chunks() as u64,
            elements: dims.len() as u64,
            bytes_in: (dims.len() * F::NBYTES) as u64,
            bytes_out: head.len() as u64,
        };
        let mut produced = 0usize;
        let mut index = 0u64;
        let mut covered = 0u64;
        self.pool.pipeline_traced(
            self.window.max(1),
            || {
                if produced == plan.n_chunks() {
                    return Ok(None);
                }
                let (_, n) = plan.chunk_range(produced);
                let d = plan.chunk_dims(produced);
                let mut buf = arena.take(n);
                src.next_chunk(n, &mut buf)?;
                if buf.len() != n {
                    return Err(CodecError::InvalidArgument(
                        "chunk source returned the wrong length",
                    ));
                }
                produced += 1;
                Ok(Some((buf, d)))
            },
            |(buf, d): (Vec<F>, Dims)| {
                let _chunk = Span::enter(rec, stage::CHUNK_COMPRESS);
                let payload = compress_chunk(&buf, d);
                (buf, payload)
            },
            |(buf, payload): (Vec<F>, Result<Vec<u8>, CodecError>)| {
                let n = buf.len();
                arena.put(buf);
                let payload = payload?;
                head.clear();
                stream::encode_frame_header(
                    &mut head,
                    &FrameHeader {
                        index,
                        start: covered,
                        n_elems: n as u64,
                        bound: opts.bound,
                        payload_len: payload.len() as u64,
                    },
                );
                out.write_all(&head).map_err(stream::write_failed)?;
                out.write_all(&payload).map_err(stream::write_failed)?;
                stats.bytes_out += (head.len() + payload.len()) as u64;
                index += 1;
                covered += n as u64;
                Ok(())
            },
            rec,
        )?;
        if rec.is_enabled() {
            rec.add(stage::C_STREAM_CHUNKS, stats.chunks);
            rec.add(stage::C_BYTES_IN, stats.bytes_in);
            rec.add(stage::C_BYTES_OUT, stats.bytes_out);
            arena.record(rec);
        }
        Ok(stats)
    }

    /// The chunk-pipelined decompress engine: admits frames through the
    /// shared [`FrameWalker`] rules (sequential indices, contiguous
    /// coverage, payload plausibility) on the reading thread, fans the
    /// payloads out to workers, and delivers chunks to `sink` strictly
    /// in raster order.
    fn run_decompress<F: Float>(
        &self,
        header: &StreamHeader,
        input: &mut dyn Read,
        sink: &mut dyn ChunkSink<F>,
        decompress_chunk: DecompressChunkFn<'_, F>,
        rec: &dyn Recorder,
    ) -> Result<StreamStats, CodecError> {
        if header.elem_bits as u32 != F::BITS {
            return Err(CodecError::Mismatch("element type does not match stream"));
        }
        let mut walker = FrameWalker::new(header);
        let arena: BufferPool<u8> = BufferPool::new();
        let mut stats = StreamStats {
            chunks: header.n_chunks,
            elements: header.dims.len() as u64,
            ..StreamStats::default()
        };
        let mut covered = 0usize;
        self.pool.pipeline_traced(
            self.window.max(1),
            || {
                if walker.remaining() == 0 {
                    return Ok(None);
                }
                let fh = stream::decode_frame_header(input)?;
                let chunk_dims = walker.admit(&fh)?;
                // admit() capped payload_len, so sizing from it is safe.
                let len = fh.payload_len as usize;
                let mut payload = arena.take(len);
                payload.resize(len, 0);
                input
                    .read_exact(&mut payload)
                    .map_err(stream::read_failed)?;
                Ok(Some((payload, chunk_dims)))
            },
            |(payload, d): (Vec<u8>, Dims)| {
                let _chunk = Span::enter(rec, stage::CHUNK_DECOMPRESS);
                let res = decompress_chunk(&payload);
                (payload, d, res)
            },
            |(payload, chunk_dims, res): DecodedChunk<F>| {
                stats.bytes_in += payload.len() as u64;
                arena.put(payload);
                let (data, d) = res?;
                if d != chunk_dims || data.len() != chunk_dims.len() {
                    return Err(CodecError::Corrupt("chunk payload shape mismatch"));
                }
                sink.put_chunk(covered, &data)?;
                covered += data.len();
                stats.bytes_out += (data.len() * F::NBYTES) as u64;
                Ok(())
            },
            rec,
        )?;
        walker.finish()?;
        if rec.is_enabled() {
            rec.add(stage::C_STREAM_CHUNKS, stats.chunks);
            rec.add(stage::C_DECOMP_BYTES_IN, stats.bytes_in);
            rec.add(stage::C_DECOMP_BYTES_OUT, stats.bytes_out);
            arena.record(rec);
        }
        Ok(stats)
    }

    /// Compresses `data` chunk-by-chunk with `compress_chunk` on the
    /// pool, emitting a framed stream under the reserved external codec
    /// id (the closure, not a registry entry, defines the payloads; the
    /// recorded bound is zero because the wrapper cannot know it).
    pub fn compress<F, C>(
        &self,
        data: &[F],
        dims: Dims,
        compress_chunk: C,
    ) -> Result<Vec<u8>, CodecError>
    where
        F: Float,
        C: Fn(&[F], Dims) -> Result<Vec<u8>, CodecError> + Sync,
    {
        self.compress_traced(data, dims, compress_chunk, pwrel_trace::noop())
    }

    /// [`ChunkedCodec::compress`] with per-stage recording: a `chunks`
    /// span brackets the fan-out, each chunk records a `chunk_compress`
    /// span from whichever worker runs it, and the pool adds task
    /// counts. Emits the same bytes.
    pub fn compress_traced<F, C>(
        &self,
        data: &[F],
        dims: Dims,
        compress_chunk: C,
        rec: &dyn Recorder,
    ) -> Result<Vec<u8>, CodecError>
    where
        F: Float,
        C: Fn(&[F], Dims) -> Result<Vec<u8>, CodecError> + Sync,
    {
        if data.len() != dims.len() {
            return Err(CodecError::InvalidArgument("data length != dims"));
        }
        let _chunks = Span::enter(rec, stage::CHUNKS);
        let mut src = SliceSource::new(data);
        let mut out = Vec::new();
        self.run_compress(
            EXTERNAL_CODEC_ID,
            pwrel_pipeline::container::ENTROPY_MODE_SINGLE,
            1,
            &mut src,
            &mut out,
            dims,
            &CompressOpts::rel(0.0),
            &compress_chunk,
            rec,
        )?;
        Ok(out)
    }

    /// Decompresses a framed stream with `decompress_chunk` on the pool.
    pub fn decompress<F, D>(
        &self,
        bytes: &[u8],
        decompress_chunk: D,
    ) -> Result<(Vec<F>, Dims), CodecError>
    where
        F: Float,
        D: Fn(&[u8]) -> Result<(Vec<F>, Dims), CodecError> + Sync,
    {
        self.decompress_traced(bytes, decompress_chunk, pwrel_trace::noop())
    }

    /// [`ChunkedCodec::decompress`] with per-stage recording.
    pub fn decompress_traced<F, D>(
        &self,
        bytes: &[u8],
        decompress_chunk: D,
        rec: &dyn Recorder,
    ) -> Result<(Vec<F>, Dims), CodecError>
    where
        F: Float,
        D: Fn(&[u8]) -> Result<(Vec<F>, Dims), CodecError> + Sync,
    {
        let _chunks = Span::enter(rec, stage::CHUNKS);
        let mut input: &[u8] = bytes;
        let header = stream::decode_stream_header(&mut input)?;
        let mut sink = VecSink::new();
        self.run_decompress(&header, &mut input, &mut sink, &decompress_chunk, rec)?;
        if !input.is_empty() {
            return Err(CodecError::Corrupt("trailing bytes after final frame"));
        }
        Ok((sink.into_inner(), header.dims))
    }

    /// Compresses in-memory data chunk-by-chunk through a registered
    /// codec. The emitted stream is byte-identical to the registry's
    /// sequential [`CodecRegistry::compress_stream`] at the same chunk
    /// size, so either side can decode the other's output.
    pub fn compress_with<F: PipelineElem>(
        &self,
        registry: &CodecRegistry,
        codec: &str,
        data: &[F],
        dims: Dims,
        opts: &CompressOpts,
    ) -> Result<Vec<u8>, CodecError> {
        self.compress_with_traced(registry, codec, data, dims, opts, pwrel_trace::noop())
    }

    /// [`ChunkedCodec::compress_with`] with per-stage recording: a
    /// `chunks` span brackets the fan-out and each chunk records its
    /// codec stages from whichever worker thread runs it. Emits the
    /// same bytes.
    pub fn compress_with_traced<F: PipelineElem>(
        &self,
        registry: &CodecRegistry,
        codec: &str,
        data: &[F],
        dims: Dims,
        opts: &CompressOpts,
        rec: &dyn Recorder,
    ) -> Result<Vec<u8>, CodecError> {
        let c = registry
            .by_name(codec)
            .ok_or(CodecError::InvalidArgument("unknown codec name"))?;
        if data.len() != dims.len() {
            return Err(CodecError::InvalidArgument("data length != dims"));
        }
        let _chunks = Span::enter(rec, stage::CHUNKS);
        let mut src = SliceSource::new(data);
        let mut out = Vec::new();
        self.run_compress(
            c.id(),
            c.entropy_mode(),
            c.chunk_granularity(),
            &mut src,
            &mut out,
            dims,
            opts,
            &|slice: &[F], d: Dims| F::codec_compress_traced(c, slice, d, opts, rec),
            rec,
        )?;
        Ok(out)
    }

    /// Decompresses a framed stream whose codec is resolved from the
    /// stream header via the registry.
    pub fn decompress_with<F: PipelineElem>(
        &self,
        registry: &CodecRegistry,
        bytes: &[u8],
    ) -> Result<(Vec<F>, Dims), CodecError> {
        self.decompress_with_traced(registry, bytes, pwrel_trace::noop())
    }

    /// [`ChunkedCodec::decompress_with`] with per-stage recording.
    pub fn decompress_with_traced<F: PipelineElem>(
        &self,
        registry: &CodecRegistry,
        bytes: &[u8],
        rec: &dyn Recorder,
    ) -> Result<(Vec<F>, Dims), CodecError> {
        let _chunks = Span::enter(rec, stage::CHUNKS);
        let mut input: &[u8] = bytes;
        let header = stream::decode_stream_header(&mut input)?;
        let codec = registry
            .get(header.codec_id)
            .ok_or(CodecError::InvalidArgument("unknown codec id in stream"))?;
        let mut sink = VecSink::new();
        self.run_decompress(
            &header,
            &mut input,
            &mut sink,
            &|p: &[u8]| F::codec_decompress_traced(codec, p, rec),
            rec,
        )?;
        if !input.is_empty() {
            return Err(CodecError::Corrupt("trailing bytes after final frame"));
        }
        Ok((sink.into_inner(), header.dims))
    }

    /// The out-of-core entry point: compresses a chunk source into a
    /// framed stream on `out` with a registered codec, pipelined over
    /// the pool. Peak memory is about `window` chunks — the field is
    /// never resident.
    pub fn compress_stream<F: PipelineElem>(
        &self,
        registry: &CodecRegistry,
        codec: &str,
        src: &mut dyn ChunkSource<F>,
        out: &mut dyn Write,
        dims: Dims,
        opts: &CompressOpts,
    ) -> Result<StreamStats, CodecError> {
        self.compress_stream_traced(registry, codec, src, out, dims, opts, pwrel_trace::noop())
    }

    /// [`ChunkedCodec::compress_stream`] with per-stage recording.
    /// Emits the same bytes.
    #[allow(clippy::too_many_arguments)] // mirrors compress_stream plus the recorder
    pub fn compress_stream_traced<F: PipelineElem>(
        &self,
        registry: &CodecRegistry,
        codec: &str,
        src: &mut dyn ChunkSource<F>,
        out: &mut dyn Write,
        dims: Dims,
        opts: &CompressOpts,
        rec: &dyn Recorder,
    ) -> Result<StreamStats, CodecError> {
        let c = registry
            .by_name(codec)
            .ok_or(CodecError::InvalidArgument("unknown codec name"))?;
        let _root = Span::enter(rec, stage::STREAM_COMPRESS);
        self.run_compress(
            c.id(),
            c.entropy_mode(),
            c.chunk_granularity(),
            src,
            out,
            dims,
            opts,
            &|slice: &[F], d: Dims| F::codec_compress_traced(c, slice, d, opts, rec),
            rec,
        )
    }

    /// The out-of-core decode entry point: decompresses a framed stream
    /// from `input` into `sink`, pipelined over the pool, returning the
    /// stream header and the run counters.
    pub fn decompress_stream<F: PipelineElem>(
        &self,
        registry: &CodecRegistry,
        input: &mut dyn Read,
        sink: &mut dyn ChunkSink<F>,
    ) -> Result<(StreamHeader, StreamStats), CodecError> {
        self.decompress_stream_traced(registry, input, sink, pwrel_trace::noop())
    }

    /// [`ChunkedCodec::decompress_stream`] with per-stage recording.
    pub fn decompress_stream_traced<F: PipelineElem>(
        &self,
        registry: &CodecRegistry,
        input: &mut dyn Read,
        sink: &mut dyn ChunkSink<F>,
        rec: &dyn Recorder,
    ) -> Result<(StreamHeader, StreamStats), CodecError> {
        let _root = Span::enter(rec, stage::STREAM_DECOMPRESS);
        let header = stream::decode_stream_header(input)?;
        let stats = self.decompress_stream_body_traced(registry, &header, input, sink, rec)?;
        Ok((header, stats))
    }

    /// Pool-pipelined counterpart of
    /// [`CodecRegistry::decompress_stream_body_traced`]: decompresses
    /// the frames of a stream whose header the caller already decoded
    /// and vetted, with `input` positioned at the first frame marker.
    /// Lets a server impose its own shape limits between header and
    /// body without re-buffering the header bytes.
    pub fn decompress_stream_body_traced<F: PipelineElem>(
        &self,
        registry: &CodecRegistry,
        header: &StreamHeader,
        input: &mut dyn Read,
        sink: &mut dyn ChunkSink<F>,
        rec: &dyn Recorder,
    ) -> Result<StreamStats, CodecError> {
        if header.elem_bits as u32 != F::BITS {
            return Err(CodecError::Mismatch("element type does not match stream"));
        }
        let codec = registry
            .get(header.codec_id)
            .ok_or(CodecError::InvalidArgument("unknown codec id in stream"))?;
        self.run_decompress(
            header,
            input,
            sink,
            &|p: &[u8]| F::codec_decompress_traced(codec, p, rec),
            rec,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwrel_core::{LogBase, PwRelCompressor};
    use pwrel_data::grf;
    use pwrel_pipeline::{global, ReadSource, WriteSink};
    use pwrel_sz::SzCompressor;

    fn sz_t() -> PwRelCompressor<SzCompressor> {
        PwRelCompressor::new(SzCompressor::default(), LogBase::Two)
    }

    #[test]
    fn chunked_round_trip_preserves_bound_3d() {
        let dims = Dims::d3(24, 16, 16);
        let data = grf::gaussian_field(dims, 42, 2, 2);
        let positive: Vec<f32> = data.iter().map(|v| v.abs() + 0.1).collect();
        let codec = sz_t();
        // 6 slices of 256 elements per chunk -> 4 chunks.
        let chunked = ChunkedCodec::new(WorkerPool::new(4), 6 * 256);
        let br = 1e-3;
        let stream = chunked
            .compress(&positive, dims, |slice, d| codec.compress(slice, d, br))
            .unwrap();
        let (dec, d2) = chunked
            .decompress::<f32, _>(&stream, |s| codec.decompress_full(s))
            .unwrap();
        assert_eq!(d2, dims);
        for (&a, &b) in positive.iter().zip(&dec) {
            assert!(((a as f64 - b as f64) / a as f64).abs() <= br);
        }
    }

    #[test]
    fn chunked_output_is_deterministic_across_worker_counts() {
        let dims = Dims::d2(40, 32);
        let data = grf::gaussian_field(dims, 7, 3, 2);
        let codec = sz_t();
        let br = 1e-2;
        let one = ChunkedCodec::new(WorkerPool::new(1), 8 * 32);
        let four = ChunkedCodec::new(WorkerPool::new(4), 8 * 32);
        let a = one
            .compress(&data, dims, |s, d| codec.compress(s, d, br))
            .unwrap();
        let b = four
            .compress(&data, dims, |s, d| codec.compress(s, d, br))
            .unwrap();
        assert_eq!(a, b, "stream must not depend on scheduling");
    }

    #[test]
    fn pipelined_bytes_match_sequential_registry_stream() {
        use pwrel_pipeline::CompressOpts;
        let dims = Dims::d2(32, 24);
        let data: Vec<f32> = grf::gaussian_field(dims, 3, 2, 2)
            .iter()
            .map(|v| v.abs() + 0.5)
            .collect();
        let chunk_elems = 8 * 24;
        let chunked = ChunkedCodec::new(WorkerPool::new(4), chunk_elems);
        let opts = CompressOpts::rel(1e-2);
        for codec in global().iter() {
            let pipelined = chunked
                .compress_with(global(), codec.name(), &data, dims, &opts)
                .unwrap_or_else(|e| panic!("{}: {e:?}", codec.name()));
            let mut sequential = Vec::new();
            let mut src = SliceSource::new(&data[..]);
            global()
                .compress_stream::<f32>(
                    codec.name(),
                    &mut src,
                    &mut sequential,
                    dims,
                    &opts,
                    chunk_elems,
                )
                .unwrap_or_else(|e| panic!("{}: {e:?}", codec.name()));
            assert_eq!(
                pipelined,
                sequential,
                "{}: pipelined and sequential engines must emit identical streams",
                codec.name()
            );
        }
    }

    #[test]
    fn chunked_1d_and_partial_chunks() {
        let dims = Dims::d1(1001);
        let data: Vec<f32> = (0..1001).map(|i| (i as f32 + 2.0).ln()).collect();
        let codec = sz_t();
        let chunked = ChunkedCodec::new(WorkerPool::new(3), 150);
        let stream = chunked
            .compress(&data, dims, |s, d| codec.compress(s, d, 1e-2))
            .unwrap();
        let (dec, _) = chunked
            .decompress::<f32, _>(&stream, |s| codec.decompress_full(s))
            .unwrap();
        assert_eq!(dec.len(), data.len());
        for (&a, &b) in data.iter().zip(&dec) {
            assert!(((a - b) / a).abs() <= 1e-2);
        }
    }

    #[test]
    fn chunk_size_usage_errors_not_panics() {
        let dims = Dims::d2(16, 16);
        let data = vec![1.0f32; dims.len()];
        let codec = sz_t();
        for bad in [0usize, dims.len() + 1, dims.len() * 10] {
            let chunked = ChunkedCodec::new(WorkerPool::new(2), bad);
            let r = chunked.compress(&data, dims, |s, d| codec.compress(s, d, 1e-2));
            assert!(
                matches!(r, Err(CodecError::InvalidArgument(_))),
                "chunk_elems={bad} must be a usage error, got {r:?}"
            );
        }
        // A full-field chunk is legal: exactly one frame.
        let chunked = ChunkedCodec::new(WorkerPool::new(2), dims.len());
        assert!(chunked
            .compress(&data, dims, |s, d| codec.compress(s, d, 1e-2))
            .is_ok());
    }

    #[test]
    fn registry_round_trip_every_codec() {
        use pwrel_pipeline::CompressOpts;
        let dims = Dims::d2(24, 32);
        let data: Vec<f32> = grf::gaussian_field(dims, 11, 2, 2)
            .iter()
            .map(|v| v.abs() + 0.25)
            .collect();
        let chunked = ChunkedCodec::new(WorkerPool::new(3), 6 * 32);
        let opts = CompressOpts::rel(1e-2);
        for codec in global().iter() {
            let stream = chunked
                .compress_with(global(), codec.name(), &data, dims, &opts)
                .unwrap_or_else(|e| panic!("{}: {e:?}", codec.name()));
            let (dec, d2) = chunked
                .decompress_with::<f32>(global(), &stream)
                .unwrap_or_else(|e| panic!("{}: {e:?}", codec.name()));
            assert_eq!(d2, dims, "{}", codec.name());
            assert_eq!(dec.len(), data.len(), "{}", codec.name());
            // The registry's one-shot decoder reads the same stream.
            let (dec2, d3) = global().decompress::<f32>(&stream).unwrap();
            assert_eq!(d3, dims, "{}", codec.name());
            assert_eq!(dec2, dec, "{}", codec.name());
        }
    }

    #[test]
    fn out_of_core_round_trip_via_read_write() {
        use pwrel_pipeline::CompressOpts;
        let dims = Dims::d3(16, 8, 8);
        let data: Vec<f32> = grf::gaussian_field(dims, 9, 2, 2)
            .iter()
            .map(|v| v.abs() + 0.5)
            .collect();
        let mut le = Vec::with_capacity(data.len() * 4);
        for &v in &data {
            v.write_le(&mut le);
        }
        let chunked = ChunkedCodec::new(WorkerPool::new(3), 4 * 64);
        let opts = CompressOpts::rel(1e-2);

        // Compress from a byte reader: the field is never resident.
        let mut src: ReadSource<&[u8]> = ReadSource::new(&le[..]);
        let mut stream_bytes = Vec::new();
        let stats = chunked
            .compress_stream::<f32>(global(), "sz_t", &mut src, &mut stream_bytes, dims, &opts)
            .unwrap();
        assert_eq!(stats.chunks, 4);
        assert_eq!(stats.elements, dims.len() as u64);
        assert_eq!(stats.bytes_out, stream_bytes.len() as u64);

        // Decompress into a byte writer.
        let mut input: &[u8] = &stream_bytes;
        let mut sink: WriteSink<Vec<u8>> = WriteSink::new(Vec::new());
        let (header, _) = chunked
            .decompress_stream::<f32>(global(), &mut input, &mut sink)
            .unwrap();
        assert_eq!(header.dims, dims);
        assert!(input.is_empty(), "reader must stop at the final frame");
        let out_le = sink.into_inner();
        assert_eq!(out_le.len(), le.len());
        for (a, b) in le.chunks_exact(4).zip(out_le.chunks_exact(4)) {
            let (a, b) = (f32::read_le(a).unwrap(), f32::read_le(b).unwrap());
            assert!(((a as f64 - b as f64) / a as f64).abs() <= 1e-2);
        }
    }

    #[test]
    fn traced_chunked_round_trip_records_fanout() {
        use pwrel_pipeline::CompressOpts;
        use pwrel_trace::{stage, TraceSink};
        let dims = Dims::d2(40, 32);
        let data: Vec<f32> = grf::gaussian_field(dims, 5, 2, 2)
            .iter()
            .map(|v| v.abs() + 0.25)
            .collect();
        let chunked = ChunkedCodec::new(WorkerPool::new(4), 10 * 32);
        let opts = CompressOpts::rel(1e-2);
        let sink = TraceSink::new();
        let stream = chunked
            .compress_with_traced(global(), "sz_t", &data, dims, &opts, &sink)
            .unwrap();
        let plain = chunked
            .compress_with(global(), "sz_t", &data, dims, &opts)
            .unwrap();
        assert_eq!(stream, plain, "tracing must not change the stream");
        let (dec, d2) = chunked
            .decompress_with_traced::<f32>(global(), &stream, &sink)
            .unwrap();
        assert_eq!(d2, dims);
        assert_eq!(dec.len(), data.len());

        let rows = pwrel_trace::export::stage_rows(&sink);
        // Two chunks spans (one per direction), one chunk span per frame
        // per direction, pool tasks from both pipelined fan-outs.
        assert_eq!(rows[stage::CHUNKS].calls, 2);
        assert_eq!(rows[stage::CHUNK_COMPRESS].calls, 4);
        assert_eq!(rows[stage::CHUNK_DECOMPRESS].calls, 4);
        let counters: std::collections::BTreeMap<_, _> = sink.counters().into_iter().collect();
        assert_eq!(counters[stage::C_POOL_TASKS], 8);
        assert_eq!(counters[stage::C_STREAM_CHUNKS], 8);
        // The arena recycles once the window wraps; every take is
        // accounted as a hit or a miss.
        assert_eq!(
            counters[stage::C_ARENA_HITS] + counters[stage::C_ARENA_MISSES],
            8
        );
    }

    #[test]
    fn corrupt_stream_rejected() {
        let dims = Dims::d1(100);
        let data = vec![1.5f32; 100];
        let codec = sz_t();
        let chunked = ChunkedCodec::new(WorkerPool::new(2), 25);
        let stream = chunked
            .compress(&data, dims, |s, d| codec.compress(s, d, 1e-2))
            .unwrap();
        let dec = |s: &[u8]| codec.decompress_full::<f32>(s);
        assert!(chunked.decompress::<f32, _>(&stream[..10], dec).is_err());
        let mut bad = stream.clone();
        bad[0] = b'X';
        assert!(chunked.decompress::<f32, _>(&bad, dec).is_err());
        // f64 element type mismatch.
        assert!(chunked
            .decompress::<f64, _>(&stream, |s| codec.decompress_full::<f64>(s))
            .is_err());
        // Truncation after a whole frame must still be caught.
        for cut in [stream.len() - 1, stream.len() / 2] {
            assert!(
                chunked.decompress::<f32, _>(&stream[..cut], dec).is_err(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn more_chunks_cost_some_ratio_but_not_much() {
        let dims = Dims::d2(128, 64);
        let data: Vec<f32> = grf::gaussian_field(dims, 9, 4, 3)
            .iter()
            .map(|v| v.abs() + 0.5)
            .collect();
        let codec = sz_t();
        let whole = codec.compress(&data, dims, 1e-2).unwrap();
        let chunked = ChunkedCodec::new(WorkerPool::new(4), dims.len() / 8);
        let split = chunked
            .compress(&data, dims, |s, d| codec.compress(s, d, 1e-2))
            .unwrap();
        assert!(
            split.len() < whole.len() * 2,
            "{} vs {}",
            split.len(),
            whole.len()
        );
    }
}
