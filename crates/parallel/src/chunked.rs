//! Chunked parallel compression of a single large field.
//!
//! The paper parallelizes across *files* (one rank, one field, one file).
//! Within a node it is often preferable to split one large field into
//! slabs along its slowest axis and compress the slabs concurrently: each
//! slab is an independent stream (prediction restarts at the boundary, so
//! the error bound is preserved per-slab at a small compression-ratio
//! cost), and decompression parallelizes the same way.
//!
//! Container: `magic "PWC1" | elem u8 | dims header | n_chunks uvarint |
//! (slab_extent uvarint, stream_len uvarint)* | streams...`

use crate::pool::WorkerPool;
use pwrel_bitstream::varint;
use pwrel_data::{CodecError, Dims, Float};

const MAGIC: &[u8; 4] = b"PWC1";

/// Splits `dims` into at most `target_chunks` slabs along the slowest
/// axis, returning each slab's extent along that axis.
pub fn slab_extents(dims: Dims, target_chunks: usize) -> Vec<usize> {
    let slow = match dims.rank() {
        1 => dims.nx,
        2 => dims.ny,
        _ => dims.nz,
    };
    if slow == 0 {
        return Vec::new();
    }
    let n = target_chunks.clamp(1, slow);
    let base = slow / n;
    let extra = slow % n;
    (0..n)
        .map(|i| base + usize::from(i < extra))
        .filter(|&e| e > 0)
        .collect()
}

/// Dims of one slab of `extent` slices.
fn slab_dims(dims: Dims, extent: usize) -> Dims {
    match dims.rank() {
        1 => Dims::d1(extent),
        2 => Dims::d2(extent, dims.nx),
        _ => Dims::d3(extent, dims.ny, dims.nx),
    }
}

/// Points per unit of the slowest axis.
fn slice_len(dims: Dims) -> usize {
    match dims.rank() {
        1 => 1,
        2 => dims.nx,
        _ => dims.nx * dims.ny,
    }
}

/// Chunked-parallel wrapper around any per-buffer codec.
#[derive(Debug, Clone)]
pub struct ChunkedCodec {
    /// Worker pool used for both directions.
    pub pool: WorkerPool,
    /// Desired number of slabs (clamped to the slowest-axis extent).
    pub target_chunks: usize,
}

impl ChunkedCodec {
    /// Creates a chunked codec with one chunk per worker by default.
    pub fn new(pool: WorkerPool) -> Self {
        Self {
            target_chunks: pool.workers() * 2,
            pool,
        }
    }

    /// Compresses `data` slab-by-slab with `compress_chunk` in parallel.
    pub fn compress<F, C>(
        &self,
        data: &[F],
        dims: Dims,
        compress_chunk: C,
    ) -> Result<Vec<u8>, CodecError>
    where
        F: Float,
        C: Fn(&[F], Dims) -> Result<Vec<u8>, CodecError> + Sync,
    {
        self.compress_traced(data, dims, compress_chunk, pwrel_trace::noop())
    }

    /// [`ChunkedCodec::compress`] with per-task queue-wait recording on
    /// the worker pool. Emits the same bytes.
    pub fn compress_traced<F, C>(
        &self,
        data: &[F],
        dims: Dims,
        compress_chunk: C,
        rec: &dyn pwrel_trace::Recorder,
    ) -> Result<Vec<u8>, CodecError>
    where
        F: Float,
        C: Fn(&[F], Dims) -> Result<Vec<u8>, CodecError> + Sync,
    {
        if data.len() != dims.len() {
            return Err(CodecError::InvalidArgument("data length != dims"));
        }
        let extents = slab_extents(dims, self.target_chunks);
        let sl = slice_len(dims);

        // Build (slab dims, slice of data) tasks.
        let mut tasks = Vec::with_capacity(extents.len());
        let mut offset = 0usize;
        for &e in &extents {
            let len = e * sl;
            tasks.push((slab_dims(dims, e), &data[offset..offset + len]));
            offset += len;
        }

        let results: Vec<Result<Vec<u8>, CodecError>> =
            self.pool
                .map_traced(tasks, |(d, slice)| compress_chunk(slice, d), rec);
        let mut streams = Vec::with_capacity(results.len());
        for r in results {
            streams.push(r?);
        }

        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(F::BITS as u8);
        let (rank, nx, ny, nz) = dims.to_header();
        out.push(rank);
        varint::write_uvarint(&mut out, nx);
        varint::write_uvarint(&mut out, ny);
        varint::write_uvarint(&mut out, nz);
        varint::write_uvarint(&mut out, streams.len() as u64);
        for (&e, s) in extents.iter().zip(&streams) {
            varint::write_uvarint(&mut out, e as u64);
            varint::write_uvarint(&mut out, s.len() as u64);
        }
        for s in &streams {
            out.extend_from_slice(s);
        }
        Ok(out)
    }

    /// Compresses slab-by-slab through a registered codec: every slab
    /// becomes its own unified container, so the archive stays
    /// self-describing per chunk.
    pub fn compress_with<F: pwrel_pipeline::PipelineElem>(
        &self,
        registry: &pwrel_pipeline::CodecRegistry,
        codec: &str,
        data: &[F],
        dims: Dims,
        opts: &pwrel_pipeline::CompressOpts,
    ) -> Result<Vec<u8>, CodecError> {
        self.compress_with_traced(registry, codec, data, dims, opts, pwrel_trace::noop())
    }

    /// [`ChunkedCodec::compress_with`] with per-stage recording: a
    /// `chunks` span brackets the fan-out, each slab records its codec
    /// stages from whichever worker thread runs it, and the pool adds
    /// queue-wait observations. Emits the same bytes.
    pub fn compress_with_traced<F: pwrel_pipeline::PipelineElem>(
        &self,
        registry: &pwrel_pipeline::CodecRegistry,
        codec: &str,
        data: &[F],
        dims: Dims,
        opts: &pwrel_pipeline::CompressOpts,
        rec: &dyn pwrel_trace::Recorder,
    ) -> Result<Vec<u8>, CodecError> {
        let _chunks = pwrel_trace::Span::enter(rec, pwrel_trace::stage::CHUNKS);
        self.compress_traced(
            data,
            dims,
            |slice, d| registry.compress_traced(codec, slice, d, opts, rec),
            rec,
        )
    }

    /// Decompresses a chunked container whose slabs are unified (or
    /// legacy) streams via the registry.
    pub fn decompress_with<F: pwrel_pipeline::PipelineElem>(
        &self,
        registry: &pwrel_pipeline::CodecRegistry,
        bytes: &[u8],
    ) -> Result<(Vec<F>, Dims), CodecError> {
        self.decompress_with_traced(registry, bytes, pwrel_trace::noop())
    }

    /// [`ChunkedCodec::decompress_with`] with per-stage recording.
    pub fn decompress_with_traced<F: pwrel_pipeline::PipelineElem>(
        &self,
        registry: &pwrel_pipeline::CodecRegistry,
        bytes: &[u8],
        rec: &dyn pwrel_trace::Recorder,
    ) -> Result<(Vec<F>, Dims), CodecError> {
        let _chunks = pwrel_trace::Span::enter(rec, pwrel_trace::stage::CHUNKS);
        self.decompress_traced(bytes, |s| registry.decompress_traced(s, rec), rec)
    }

    /// Decompresses a chunked container with `decompress_chunk` in parallel.
    pub fn decompress<F, D>(
        &self,
        bytes: &[u8],
        decompress_chunk: D,
    ) -> Result<(Vec<F>, Dims), CodecError>
    where
        F: Float,
        D: Fn(&[u8]) -> Result<(Vec<F>, Dims), CodecError> + Sync,
    {
        self.decompress_traced(bytes, decompress_chunk, pwrel_trace::noop())
    }

    /// [`ChunkedCodec::decompress`] with per-task queue-wait recording
    /// on the worker pool.
    pub fn decompress_traced<F, D>(
        &self,
        bytes: &[u8],
        decompress_chunk: D,
        rec: &dyn pwrel_trace::Recorder,
    ) -> Result<(Vec<F>, Dims), CodecError>
    where
        F: Float,
        D: Fn(&[u8]) -> Result<(Vec<F>, Dims), CodecError> + Sync,
    {
        if bytes.len() < 7 || &bytes[..4] != MAGIC {
            return Err(CodecError::Mismatch("bad chunked magic"));
        }
        let mut pos = 4usize;
        let elem = bytes[pos];
        pos += 1;
        if elem as u32 != F::BITS {
            return Err(CodecError::Mismatch("element type differs from stream"));
        }
        let rank = bytes[pos];
        pos += 1;
        let nx = varint::read_uvarint(bytes, &mut pos)?;
        let ny = varint::read_uvarint(bytes, &mut pos)?;
        let nz = varint::read_uvarint(bytes, &mut pos)?;
        let dims = Dims::from_header(rank, nx, ny, nz).ok_or(CodecError::Corrupt("bad dims"))?;
        let n_chunks = varint::read_uvarint(bytes, &mut pos)? as usize;
        if n_chunks > bytes.len() {
            return Err(CodecError::Corrupt("chunk count exceeds stream"));
        }
        let mut meta = Vec::with_capacity(n_chunks);
        for _ in 0..n_chunks {
            let extent = varint::read_uvarint(bytes, &mut pos)? as usize;
            let len = varint::read_uvarint(bytes, &mut pos)? as usize;
            meta.push((extent, len));
        }
        let slow_total: usize = meta.iter().map(|(e, _)| e).sum();
        let expected_slow = match dims.rank() {
            1 => dims.nx,
            2 => dims.ny,
            _ => dims.nz,
        };
        if slow_total != expected_slow {
            return Err(CodecError::Corrupt("slab extents do not cover the grid"));
        }

        let mut tasks = Vec::with_capacity(n_chunks);
        for &(extent, len) in &meta {
            let end = pos.checked_add(len).ok_or(CodecError::Corrupt("eof"))?;
            if end > bytes.len() {
                return Err(CodecError::Corrupt("truncated chunk"));
            }
            tasks.push((extent, &bytes[pos..end]));
            pos = end;
        }

        let results: Vec<Result<(Vec<F>, Dims), CodecError>> = self.pool.map_traced(
            tasks,
            |(extent, stream)| {
                let (data, d) = decompress_chunk(stream)?;
                if d != slab_dims(dims, extent) || data.len() != d.len() {
                    return Err(CodecError::Corrupt("chunk dims mismatch"));
                }
                Ok((data, d))
            },
            rec,
        );

        let mut out = Vec::with_capacity(dims.len());
        for r in results {
            out.extend(r?.0);
        }
        Ok((out, dims))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwrel_core::{LogBase, PwRelCompressor};
    use pwrel_data::grf;
    use pwrel_sz::SzCompressor;

    fn sz_t() -> PwRelCompressor<SzCompressor> {
        PwRelCompressor::new(SzCompressor::default(), LogBase::Two)
    }

    #[test]
    fn slab_extents_cover_and_balance() {
        assert_eq!(slab_extents(Dims::d3(10, 4, 4), 4), vec![3, 3, 2, 2]);
        assert_eq!(slab_extents(Dims::d3(2, 4, 4), 8), vec![1, 1]);
        assert_eq!(slab_extents(Dims::d1(7), 3), vec![3, 2, 2]);
        assert_eq!(slab_extents(Dims::d2(5, 9), 1), vec![5]);
    }

    #[test]
    fn chunked_round_trip_preserves_bound_3d() {
        let dims = Dims::d3(24, 16, 16);
        let data = grf::gaussian_field(dims, 42, 2, 2);
        let positive: Vec<f32> = data.iter().map(|v| v.abs() + 0.1).collect();
        let codec = sz_t();
        let chunked = ChunkedCodec::new(WorkerPool::new(4));
        let br = 1e-3;
        let stream = chunked
            .compress(&positive, dims, |slice, d| codec.compress(slice, d, br))
            .unwrap();
        let (dec, d2) = chunked
            .decompress::<f32, _>(&stream, |s| codec.decompress_full(s))
            .unwrap();
        assert_eq!(d2, dims);
        for (&a, &b) in positive.iter().zip(&dec) {
            assert!(((a as f64 - b as f64) / a as f64).abs() <= br);
        }
    }

    #[test]
    fn chunked_output_is_deterministic_across_worker_counts() {
        let dims = Dims::d2(40, 32);
        let data = grf::gaussian_field(dims, 7, 3, 2);
        let codec = sz_t();
        let br = 1e-2;
        let one = ChunkedCodec {
            pool: WorkerPool::new(1),
            target_chunks: 5,
        };
        let four = ChunkedCodec {
            pool: WorkerPool::new(4),
            target_chunks: 5,
        };
        let a = one
            .compress(&data, dims, |s, d| codec.compress(s, d, br))
            .unwrap();
        let b = four
            .compress(&data, dims, |s, d| codec.compress(s, d, br))
            .unwrap();
        assert_eq!(a, b, "stream must not depend on scheduling");
    }

    #[test]
    fn chunked_1d_and_partial_chunks() {
        let dims = Dims::d1(1001);
        let data: Vec<f32> = (0..1001).map(|i| (i as f32 + 2.0).ln()).collect();
        let codec = sz_t();
        let chunked = ChunkedCodec {
            pool: WorkerPool::new(3),
            target_chunks: 7,
        };
        let stream = chunked
            .compress(&data, dims, |s, d| codec.compress(s, d, 1e-2))
            .unwrap();
        let (dec, _) = chunked
            .decompress::<f32, _>(&stream, |s| codec.decompress_full(s))
            .unwrap();
        assert_eq!(dec.len(), data.len());
        for (&a, &b) in data.iter().zip(&dec) {
            assert!(((a - b) / a).abs() <= 1e-2);
        }
    }

    #[test]
    fn registry_round_trip_every_codec() {
        use pwrel_pipeline::{global, CompressOpts};
        let dims = Dims::d2(24, 32);
        let data: Vec<f32> = grf::gaussian_field(dims, 11, 2, 2)
            .iter()
            .map(|v| v.abs() + 0.25)
            .collect();
        let chunked = ChunkedCodec {
            pool: WorkerPool::new(3),
            target_chunks: 4,
        };
        let opts = CompressOpts::rel(1e-2);
        for codec in global().iter() {
            let stream = chunked
                .compress_with(global(), codec.name(), &data, dims, &opts)
                .unwrap_or_else(|e| panic!("{}: {e:?}", codec.name()));
            let (dec, d2) = chunked
                .decompress_with::<f32>(global(), &stream)
                .unwrap_or_else(|e| panic!("{}: {e:?}", codec.name()));
            assert_eq!(d2, dims, "{}", codec.name());
            assert_eq!(dec.len(), data.len(), "{}", codec.name());
        }
    }

    #[test]
    fn traced_chunked_round_trip_records_fanout() {
        use pwrel_pipeline::{global, CompressOpts};
        use pwrel_trace::{stage, TraceSink};
        let dims = Dims::d2(40, 32);
        let data: Vec<f32> = grf::gaussian_field(dims, 5, 2, 2)
            .iter()
            .map(|v| v.abs() + 0.25)
            .collect();
        let chunked = ChunkedCodec {
            pool: WorkerPool::new(4),
            target_chunks: 4,
        };
        let opts = CompressOpts::rel(1e-2);
        let sink = TraceSink::new();
        let stream = chunked
            .compress_with_traced(global(), "sz_t", &data, dims, &opts, &sink)
            .unwrap();
        let plain = chunked
            .compress_with(global(), "sz_t", &data, dims, &opts)
            .unwrap();
        assert_eq!(stream, plain, "tracing must not change the stream");
        let (dec, d2) = chunked
            .decompress_with_traced::<f32>(global(), &stream, &sink)
            .unwrap();
        assert_eq!(d2, dims);
        assert_eq!(dec.len(), data.len());

        let rows = pwrel_trace::export::stage_rows(&sink);
        // Two chunks spans (one per direction), one compress/decompress
        // root per slab, pool counters from both fan-outs.
        assert_eq!(rows[stage::CHUNKS].calls, 2);
        assert_eq!(rows[stage::COMPRESS].calls, 4);
        assert_eq!(rows[stage::DECOMPRESS].calls, 4);
        let counters = sink.counters();
        assert!(counters.contains(&(stage::C_POOL_TASKS, 8)));
    }

    #[test]
    fn corrupt_container_rejected() {
        let dims = Dims::d1(100);
        let data = vec![1.5f32; 100];
        let codec = sz_t();
        let chunked = ChunkedCodec::new(WorkerPool::new(2));
        let stream = chunked
            .compress(&data, dims, |s, d| codec.compress(s, d, 1e-2))
            .unwrap();
        let dec = |s: &[u8]| codec.decompress_full::<f32>(s);
        assert!(chunked.decompress::<f32, _>(&stream[..10], dec).is_err());
        let mut bad = stream.clone();
        bad[0] = b'X';
        assert!(chunked.decompress::<f32, _>(&bad, dec).is_err());
        // f64 element type mismatch.
        assert!(chunked
            .decompress::<f64, _>(&stream, |s| codec.decompress_full::<f64>(s))
            .is_err());
    }

    #[test]
    fn more_chunks_cost_some_ratio_but_not_much() {
        let dims = Dims::d2(128, 64);
        let data: Vec<f32> = grf::gaussian_field(dims, 9, 4, 3)
            .iter()
            .map(|v| v.abs() + 0.5)
            .collect();
        let codec = sz_t();
        let whole = codec.compress(&data, dims, 1e-2).unwrap();
        let chunked = ChunkedCodec {
            pool: WorkerPool::new(4),
            target_chunks: 8,
        };
        let split = chunked
            .compress(&data, dims, |s, d| codec.compress(s, d, 1e-2))
            .unwrap();
        assert!(
            split.len() < whole.len() * 2,
            "{} vs {}",
            split.len(),
            whole.len()
        );
    }
}
