#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

//! Parallel execution and the simulated parallel-file-system experiment.
//!
//! The paper's Figure 6 measures *data dumping* (compression + parallel
//! write) and *data loading* (parallel read + decompression) for NYX on
//! 1,024–4,096 cores of the Bebop supercomputer with GPFS storage, one file
//! per process. We do not have 128 nodes; we reproduce the experiment's
//! mechanism instead:
//!
//! * **compute** is real: per-rank compression/decompression is executed on
//!   this machine by a [`pool`] of worker threads and timed (weak scaling —
//!   every rank holds an equally-sized shard, so one rank's wall time
//!   stands for all),
//! * **I/O** is modeled: GPFS-style shared aggregate bandwidth plus
//!   per-file latency ([`pfs::PfsModel`]). With thousands of ranks the
//!   shared link is the bottleneck, so dump/load time is dominated by
//!   `total_bytes / aggregate_bandwidth` — exactly the regime where a
//!   higher compression ratio wins, which is the effect Figure 6 reports.

pub mod chunked;
pub mod experiment;
pub mod pfs;
pub mod pool;

pub use chunked::ChunkedCodec;
pub use experiment::{DumpReport, LoadReport, ScalingExperiment};
pub use pfs::PfsModel;
pub use pool::WorkerPool;
