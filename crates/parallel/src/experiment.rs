//! Weak-scaling dump/load experiment (Figure 6).
//!
//! Each simulated rank holds one copy of the per-rank dataset (the paper
//! gives every rank a 3 GB NYX shard). Compression is *executed and timed*
//! on this machine with a worker pool over the rank's fields; because the
//! scaling is weak and compute is embarrassingly parallel across ranks, one
//! rank's wall-clock time stands for the compute phase at any scale. The
//! I/O phase comes from the [`PfsModel`] with the aggregate volume
//! `ranks × compressed_bytes`.

use crate::pfs::PfsModel;
use crate::pool::WorkerPool;
use pwrel_data::Field;
use std::time::Instant;

/// One codec under test: closures for per-field compress and decompress.
pub struct ScalingExperiment<'a> {
    /// Label used in reports (e.g. `SZ_T`).
    pub name: &'a str,
    /// The per-rank dataset.
    pub fields: &'a [Field<f32>],
    /// Storage model.
    pub pfs: PfsModel,
    /// Worker threads for the compute phase.
    pub pool: WorkerPool,
}

/// Result of a dump (compress + write) run at one scale.
#[derive(Debug, Clone, Copy)]
pub struct DumpReport {
    /// Simulated rank count.
    pub ranks: usize,
    /// Measured per-rank compression wall time (s).
    pub compress_seconds: f64,
    /// Modeled parallel write time (s).
    pub write_seconds: f64,
    /// Compressed bytes per rank.
    pub compressed_bytes_per_rank: u64,
    /// Raw bytes per rank.
    pub raw_bytes_per_rank: u64,
}

impl DumpReport {
    /// Total dump time (s).
    pub fn total(&self) -> f64 {
        self.compress_seconds + self.write_seconds
    }

    /// Achieved compression ratio.
    pub fn ratio(&self) -> f64 {
        self.raw_bytes_per_rank as f64 / self.compressed_bytes_per_rank as f64
    }
}

/// Result of a load (read + decompress) run at one scale.
#[derive(Debug, Clone, Copy)]
pub struct LoadReport {
    /// Simulated rank count.
    pub ranks: usize,
    /// Modeled parallel read time (s).
    pub read_seconds: f64,
    /// Measured per-rank decompression wall time (s).
    pub decompress_seconds: f64,
    /// Compressed bytes per rank.
    pub compressed_bytes_per_rank: u64,
}

impl LoadReport {
    /// Total load time (s).
    pub fn total(&self) -> f64 {
        self.read_seconds + self.decompress_seconds
    }
}

impl<'a> ScalingExperiment<'a> {
    /// Runs the dump phase at each rank count, compressing each field with
    /// `compress` (which returns the compressed stream).
    ///
    /// Returns the per-scale reports and the compressed streams (for a
    /// follow-up [`ScalingExperiment::load`]).
    pub fn dump<C>(&self, ranks: &[usize], compress: C) -> (Vec<DumpReport>, Vec<Vec<u8>>)
    where
        C: Fn(&Field<f32>) -> Vec<u8> + Sync,
    {
        let t0 = Instant::now();
        let streams: Vec<Vec<u8>> = self.pool.map(self.fields.iter().collect(), compress);
        let compress_seconds = t0.elapsed().as_secs_f64();

        let compressed: u64 = streams.iter().map(|s| s.len() as u64).sum();
        let raw: u64 = self.fields.iter().map(|f| f.nbytes() as u64).sum();
        let reports = ranks
            .iter()
            .map(|&r| DumpReport {
                ranks: r,
                compress_seconds,
                write_seconds: self.pfs.write_time(compressed * r as u64, r),
                compressed_bytes_per_rank: compressed,
                raw_bytes_per_rank: raw,
            })
            .collect();
        (reports, streams)
    }

    /// Runs the load phase at each rank count, decompressing each stream.
    pub fn load<D>(&self, ranks: &[usize], streams: &[Vec<u8>], decompress: D) -> Vec<LoadReport>
    where
        D: Fn(&[u8]) -> usize + Sync,
    {
        let t0 = Instant::now();
        let decoded: Vec<usize> = self.pool.map(streams.iter().collect(), |s| decompress(s));
        let decompress_seconds = t0.elapsed().as_secs_f64();
        let expected: usize = self.fields.iter().map(|f| f.data.len()).sum();
        let got: usize = decoded.iter().sum();
        assert_eq!(got, expected, "decompression returned wrong point count");

        let compressed: u64 = streams.iter().map(|s| s.len() as u64).sum();
        ranks
            .iter()
            .map(|&r| LoadReport {
                ranks: r,
                read_seconds: self.pfs.read_time(compressed * r as u64, r),
                decompress_seconds,
                compressed_bytes_per_rank: compressed,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwrel_core::{LogBase, PwRelCompressor};
    use pwrel_data::{nyx, Scale};
    use pwrel_sz::SzCompressor;

    #[test]
    fn dump_and_load_round_trip_with_sz_t() {
        let ds = nyx::dataset(Scale::Small);
        let exp = ScalingExperiment {
            name: "SZ_T",
            fields: &ds.fields,
            pfs: PfsModel::default(),
            pool: WorkerPool::new(2),
        };
        let codec = PwRelCompressor::new(SzCompressor::default(), LogBase::Two);
        let ranks = [1024usize, 2048, 4096];
        let (dumps, streams) = exp.dump(&ranks, |f| codec.compress(&f.data, f.dims, 1e-2).unwrap());
        assert_eq!(dumps.len(), 3);
        assert!(dumps[0].ratio() > 1.5, "ratio = {}", dumps[0].ratio());
        // Weak scaling: write time grows with ranks, compute does not.
        assert!(dumps[2].write_seconds > dumps[0].write_seconds);
        assert_eq!(dumps[0].compress_seconds, dumps[2].compress_seconds);

        let loads = exp.load(&ranks, &streams, |s| {
            codec.decompress::<f32>(s).unwrap().len()
        });
        assert_eq!(loads.len(), 3);
        assert!(loads[2].read_seconds > loads[0].read_seconds);
    }

    #[test]
    fn higher_ratio_codec_dumps_faster_at_scale() {
        // The Figure 6 story with two synthetic codecs: same compute, 2x
        // ratio difference -> the better ratio wins at 4096 ranks.
        let ds = nyx::dataset(Scale::Small);
        let exp = ScalingExperiment {
            name: "toy",
            fields: &ds.fields,
            pfs: PfsModel::default(),
            pool: WorkerPool::new(1),
        };
        // Use MB-scale streams so bandwidth (not per-file metadata)
        // dominates, as it does at the paper's 3 GB/rank sizes.
        let (d_half, _) = exp.dump(&[4096], |_| vec![0u8; 8 << 20]);
        let (d_quarter, _) = exp.dump(&[4096], |_| vec![0u8; 2 << 20]);
        assert!(d_quarter[0].write_seconds < d_half[0].write_seconds * 0.6);
    }
}
