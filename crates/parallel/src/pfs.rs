//! Analytic parallel-file-system model (GPFS-style shared storage).
//!
//! File-per-process I/O on a shared parallel file system saturates the
//! aggregate backend bandwidth once enough ranks write simultaneously; each
//! file also pays metadata/open latency. The model is deliberately simple —
//! the paper's Figure 6 behaviour only needs the bandwidth-bound regime:
//!
//! `time = latency(n_files) + total_bytes / aggregate_bandwidth`

/// Shared-storage performance model.
#[derive(Debug, Clone, Copy)]
pub struct PfsModel {
    /// Aggregate write bandwidth (bytes/s) across all ranks.
    pub write_bw: f64,
    /// Aggregate read bandwidth (bytes/s).
    pub read_bw: f64,
    /// Per-file metadata overhead (seconds), divided by the metadata
    /// servers' parallelism (files are opened concurrently).
    pub per_file_latency: f64,
    /// Effective metadata parallelism.
    pub metadata_parallelism: f64,
}

impl Default for PfsModel {
    /// Roughly a mid-size GPFS installation: 80 GB/s writes, 100 GB/s
    /// reads, 1 ms/file metadata over 64-way parallel metadata service.
    fn default() -> Self {
        Self {
            write_bw: 80.0e9,
            read_bw: 100.0e9,
            per_file_latency: 1.0e-3,
            metadata_parallelism: 64.0,
        }
    }
}

impl PfsModel {
    fn metadata_time(&self, n_files: usize) -> f64 {
        self.per_file_latency * n_files as f64 / self.metadata_parallelism
    }

    /// Wall time for `n_files` ranks writing `total_bytes` in aggregate.
    pub fn write_time(&self, total_bytes: u64, n_files: usize) -> f64 {
        self.metadata_time(n_files) + total_bytes as f64 / self.write_bw
    }

    /// Wall time for `n_files` ranks reading `total_bytes` in aggregate.
    pub fn read_time(&self, total_bytes: u64, n_files: usize) -> f64 {
        self.metadata_time(n_files) + total_bytes as f64 / self.read_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_bound_regime() {
        let pfs = PfsModel::default();
        // 12 TB over 80 GB/s = 150 s (plus small metadata term).
        let t = pfs.write_time(12_000_000_000_000, 4096);
        assert!((150.0..151.0).contains(&t), "t = {t}");
    }

    #[test]
    fn write_time_scales_linearly_with_bytes() {
        let pfs = PfsModel::default();
        let t1 = pfs.write_time(1_000_000_000, 1024);
        let t2 = pfs.write_time(2_000_000_000, 1024);
        assert!(t2 > t1);
        let fixed = pfs.write_time(0, 1024);
        assert!(((t2 - fixed) / (t1 - fixed) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reads_faster_than_writes_by_default() {
        let pfs = PfsModel::default();
        assert!(pfs.read_time(1 << 30, 64) < pfs.write_time(1 << 30, 64));
    }

    #[test]
    fn compression_ratio_cuts_io_time() {
        // The Figure 6 mechanism in one assertion: a 13.5x-ratio codec
        // spends ~half the I/O of an 8x-ratio codec on the same raw data.
        let pfs = PfsModel::default();
        let raw: u64 = 3 << 40; // 3 TB
        let t_8x = pfs.write_time(raw / 8, 1024);
        let t_13x = pfs.write_time(raw / 13, 1024);
        assert!(t_13x < t_8x * 0.7);
    }
}
