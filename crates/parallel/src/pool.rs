//! A small ordered-result worker pool on crossbeam channels.
//!
//! Built from scratch (no rayon): scoped worker threads pull `(index, task)`
//! pairs from a shared channel and push `(index, result)` back; the caller
//! reassembles results in input order. Workers inherit panics: a panicking
//! task poisons the pool and the call panics, rather than silently dropping
//! a result.

use crossbeam::channel;
use std::num::NonZeroUsize;

/// Fixed-size pool configuration (threads are spawned per call, scoped).
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    workers: NonZeroUsize,
}

impl WorkerPool {
    /// Creates a pool with `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: NonZeroUsize::new(workers.max(1)).unwrap(),
        }
    }

    /// One thread per available CPU.
    pub fn per_cpu() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.get()
    }

    /// Runs `f` over `tasks` on the pool, returning results in input order.
    pub fn map<T, R, F>(&self, tasks: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let n_workers = self.workers.get().min(n);
        if n_workers == 1 {
            return tasks.into_iter().map(f).collect();
        }

        let (task_tx, task_rx) = channel::unbounded::<(usize, T)>();
        let (res_tx, res_rx) = channel::unbounded::<(usize, R)>();
        for pair in tasks.into_iter().enumerate() {
            task_tx.send(pair).expect("queue send");
        }
        drop(task_tx);

        let results: Vec<Option<R>> = std::thread::scope(|s| {
            for _ in 0..n_workers {
                let task_rx = task_rx.clone();
                let res_tx = res_tx.clone();
                let f = &f;
                s.spawn(move || {
                    while let Ok((i, t)) = task_rx.recv() {
                        let r = f(t);
                        if res_tx.send((i, r)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(res_tx);
            let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
            while let Ok((i, r)) = res_rx.recv() {
                out[i] = Some(r);
            }
            out
        });

        results
            .into_iter()
            .map(|r| r.expect("worker task panicked"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_keep_input_order() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<u64> = (0..1000).collect();
        let out = pool.map(tasks, |t| t * t);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn empty_input() {
        let pool = WorkerPool::new(3);
        let out: Vec<u32> = pool.map(Vec::<u32>::new(), |t| t);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_is_sequential_path() {
        let pool = WorkerPool::new(1);
        let out = pool.map(vec![1, 2, 3], |t| t + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn all_tasks_run_exactly_once() {
        let count = AtomicUsize::new(0);
        let pool = WorkerPool::new(8);
        let out = pool.map((0..500).collect::<Vec<_>>(), |t| {
            count.fetch_add(1, Ordering::Relaxed);
            t
        });
        assert_eq!(out.len(), 500);
        assert_eq!(count.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn workers_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn parallel_speedup_on_cpu_bound_work() {
        // Not a strict benchmark — just verify the pool actually uses
        // multiple threads by observing concurrent execution.
        use std::sync::atomic::AtomicUsize;
        static CONCURRENT: AtomicUsize = AtomicUsize::new(0);
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        let pool = WorkerPool::new(4);
        pool.map((0..16).collect::<Vec<_>>(), |_| {
            let now = CONCURRENT.fetch_add(1, Ordering::SeqCst) + 1;
            PEAK.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
            CONCURRENT.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(PEAK.load(Ordering::SeqCst) >= 2, "no observed concurrency");
    }
}
