//! A persistent ordered-result worker pool on `std` primitives.
//!
//! Built from scratch (no rayon, no channels): `new` spawns the worker
//! threads once and every [`WorkerPool::map`] call reuses them, instead of
//! paying a thread spawn/join plus two unbounded-channel round trips per
//! call like the original scoped design. A `map` publishes one type-erased
//! *job*: workers claim task indices from a shared atomic cursor and write
//! results straight into a pre-sized slot vector, so task distribution and
//! result reassembly are allocation-free and input order is preserved by
//! construction. The submitting thread participates in execution, which
//! keeps a 1-worker pool fully functional and lets small pools finish
//! tail tasks without idling the caller.
//!
//! Workers inherit panics: a panicking task poisons the job and the `map`
//! call panics, rather than silently dropping a result.
//!
//! A second primitive, [`WorkerPool::pipeline`], streams an unbounded
//! sequence of items through the same threads with a bounded in-flight
//! window: the producer and the in-order consumer stay on the submitting
//! thread while workers overlap `f` across items, so stages of
//! *different* chunks execute concurrently without the whole stream ever
//! being resident (backpressure pauses the producer when the window is
//! full).

use std::cell::UnsafeCell;
use std::collections::{BTreeMap, VecDeque};
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

// Under `RUSTFLAGS="--cfg loom"` every sync primitive and thread handle
// comes from loom, whose model tests (tests/loom_pool.rs) drive this pool
// through schedule exploration; the source is otherwise identical.
#[cfg(loom)]
use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
#[cfg(loom)]
use loom::sync::{Arc, Condvar, Mutex, MutexGuard};
#[cfg(loom)]
use loom::thread::{spawn, JoinHandle};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
#[cfg(not(loom))]
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
#[cfg(not(loom))]
use std::thread::{spawn, JoinHandle};

/// Locks ignoring poison: a `map` that panics out (by design, when a task
/// panics) must not brick the pool for later calls.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One published `map` call, type-erased so workers need no generics.
///
/// `run` executes task `i` against `ctx`, a pointer into the submitting
/// call's stack frame. The frame is guaranteed live while `remaining > 0`
/// because the submitter blocks until every claimed task has finished.
struct Job {
    /// Type-erased task runner.
    ///
    // SAFETY: callers of `run` must pass the `ctx` pointer stored beside
    // it (which the thunk casts back to its concrete `MapCtx`) and a task
    // index claimed exactly once from `next`, while the submitting frame
    // is still alive (`remaining > 0`).
    run: unsafe fn(*const (), usize),
    ctx: *const (),
    n_tasks: usize,
    /// Next task index to claim.
    next: AtomicUsize,
    /// Tasks claimed-or-unclaimed that have not finished yet.
    remaining: AtomicUsize,
    /// Set when any task panicked; checked by the submitter.
    panicked: AtomicBool,
}

// SAFETY: `Job` is only non-auto-Send because of `ctx`, a pointer into
// the submitting `map` call's stack frame. That frame outlives the job:
// the submitter blocks until `remaining == 0` before returning. The data
// behind `ctx` is `MapCtx<T, R, F>` whose `T: Send`, `R: Send`, `F: Sync`
// bounds are enforced by `WorkerPool::map` before the thunk is erased.
// Modeled by the loom test `model_job_claiming_is_exactly_once` in
// tests/loom_pool.rs.
unsafe impl Send for Job {}
// SAFETY: concurrent `&Job` access is confined to the atomics (claim
// cursor, remaining count, panic flag) and to `run`, which partitions the
// `UnsafeCell` task/result slots by claimed index so no two threads touch
// the same cell (see `run_one`). Modeled by the loom tests
// `model_job_claiming_is_exactly_once` and
// `model_panic_propagates_and_pool_survives` in tests/loom_pool.rs.
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs tasks until the cursor is exhausted. Returns after
    /// contributing; completion is signalled by whoever finishes last.
    fn work(&self, shared: &Shared) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n_tasks {
                return;
            }
            // SAFETY: `i` was claimed from `next` exactly once, `ctx` is
            // the pointer `run` was erased with, and the submitting frame
            // is alive because it blocks until `remaining` hits zero.
            let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (self.run)(self.ctx, i) }));
            if outcome.is_err() {
                self.panicked.store(true, Ordering::Release);
            }
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last task done: retire the job so idle workers stop
                // seeing it, and wake the submitter.
                let mut slot = lock(&shared.slot);
                slot.task = None;
                drop(slot);
                shared.done.notify_all();
            }
        }
    }
}

/// One published `pipeline` call, type-erased like [`Job`]: workers call
/// `step` repeatedly until it returns `false` (stream closed or
/// poisoned), then disengage.
struct StreamJob {
    /// Type-erased single-step runner: waits for one queued item, runs
    /// the pipeline's `f` on it, and files the result.
    ///
    // SAFETY: callers of `step` must pass the `ctx` pointer stored
    // beside it (which the thunk casts back to its concrete `PipeCtx`)
    // while the submitting frame is alive; the submitter guarantees that
    // by waiting for `engaged == 0` before returning.
    step: unsafe fn(*const ()) -> bool,
    ctx: *const (),
    /// Workers currently inside (or committed to entering) `step`.
    /// Incremented under the slot lock at claim time so the submitter's
    /// retire-then-drain sequence can never miss a late joiner.
    engaged: AtomicUsize,
}

// SAFETY: `StreamJob` is only non-auto-Send because of `ctx`, a pointer
// into the submitting `pipeline` call's stack frame. That frame outlives
// the job: workers register in `engaged` under the slot lock before
// touching `ctx`, and the submitter retires the task and then blocks
// until `engaged` drops to zero before its frame unwinds. Modeled by the
// loom test `model_pipeline_is_ordered_and_complete` in
// tests/loom_pool.rs.
unsafe impl Send for StreamJob {}
// SAFETY: concurrent `&StreamJob` access is confined to the `engaged`
// atomic and to `step`, whose target (`PipeCtx`) serializes every shared
// field behind its own mutex. The `T: Send`, `R: Send`, `F: Sync` bounds
// are enforced by `WorkerPool::pipeline` before the thunk is erased.
// Modeled by the loom tests `model_pipeline_is_ordered_and_complete` and
// `model_pipeline_panic_propagates_and_pool_survives` in
// tests/loom_pool.rs.
unsafe impl Sync for StreamJob {}

/// What the job slot currently holds.
#[derive(Clone)]
enum Task {
    /// A `map` batch: claim indices until the cursor is exhausted.
    Batch(Arc<Job>),
    /// A `pipeline` stream: step until the stream closes.
    Stream(Arc<StreamJob>),
}

/// Current-task slot guarded by `Shared::slot`.
#[derive(Default)]
struct JobSlot {
    task: Option<Task>,
    /// Bumped per submission so a worker never re-enters a job it already
    /// drained (its cursor stays exhausted but the Arc may still be live).
    epoch: u64,
    shutdown: bool,
}

struct Shared {
    slot: Mutex<JobSlot>,
    /// Workers park here between jobs.
    work: Condvar,
    /// Submitters park here until their job retires.
    done: Condvar,
}

impl Shared {
    fn worker_loop(&self) {
        let mut seen_epoch = 0u64;
        loop {
            let task = {
                let mut slot = lock(&self.slot);
                loop {
                    if slot.shutdown {
                        return;
                    }
                    if slot.epoch != seen_epoch {
                        if let Some(task) = &slot.task {
                            seen_epoch = slot.epoch;
                            // Register on stream tasks while still under
                            // the slot lock: the submitter retires the
                            // task under this lock, so it either sees
                            // this engagement or we never saw the task.
                            if let Task::Stream(sjob) = task {
                                sjob.engaged.fetch_add(1, Ordering::AcqRel);
                            }
                            break task.clone();
                        }
                        // Job already retired; skip to its epoch so we
                        // don't spin on the stale slot.
                        seen_epoch = slot.epoch;
                    }
                    slot = self.work.wait(slot).unwrap_or_else(|e| e.into_inner());
                }
            };
            match task {
                Task::Batch(job) => job.work(self),
                Task::Stream(sjob) => {
                    // SAFETY: this worker is registered in `engaged`, so
                    // the submitting frame (and the `ctx` it owns) stays
                    // alive until we disengage below.
                    while unsafe { (sjob.step)(sjob.ctx) } {}
                    sjob.engaged.fetch_sub(1, Ordering::AcqRel);
                    // Synchronize with a submitter parked in its
                    // retire-and-drain wait, mirroring the batch retire.
                    drop(lock(&self.slot));
                    self.done.notify_all();
                }
            }
        }
    }
}

/// Owns the threads; dropped when the last pool clone goes away.
struct PoolInner {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Serializes `map` calls: the job slot holds one job at a time.
    submit: Mutex<()>,
}

impl Drop for PoolInner {
    fn drop(&mut self) {
        {
            let mut slot = lock(&self.shared.slot);
            slot.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in lock(&self.handles).drain(..) {
            let _ = handle.join();
        }
    }
}

/// Fixed-size pool whose threads persist across `map` calls. Cloning is
/// cheap and shares the same threads.
#[derive(Clone)]
pub struct WorkerPool {
    workers: NonZeroUsize,
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.get())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool with `workers` threads (clamped to ≥ 1), spawned
    /// immediately and reused by every `map` on this pool or its clones.
    pub fn new(workers: usize) -> Self {
        let workers = NonZeroUsize::new(workers.max(1)).unwrap();
        let shared = Arc::new(Shared {
            slot: Mutex::new(JobSlot::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..workers.get())
            .map(|_| {
                let shared = shared.clone();
                spawn(move || shared.worker_loop())
            })
            .collect();
        Self {
            workers,
            inner: Arc::new(PoolInner {
                shared,
                handles: Mutex::new(handles),
                submit: Mutex::new(()),
            }),
        }
    }

    /// One thread per available CPU.
    pub fn per_cpu() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.get()
    }

    /// Runs `f` over `tasks` on the pool, returning results in input order.
    pub fn map<T, R, F>(&self, tasks: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        if self.workers.get() == 1 || n == 1 {
            return tasks.into_iter().map(f).collect();
        }

        struct MapCtx<T, R, F> {
            tasks: Vec<UnsafeCell<Option<T>>>,
            results: Vec<UnsafeCell<Option<R>>>,
            f: F,
        }
        // SAFETY contract: `ctx` must point at a live `MapCtx<T, R, F>`
        // and `i` must be a task index claimed exactly once, so the cells
        // at `i` are touched by exactly one thread.
        unsafe fn run_one<T, R, F: Fn(T) -> R>(ctx: *const (), i: usize) {
            // SAFETY: per the contract, `ctx` is the submitter's live
            // `MapCtx` erased in `map` below.
            let ctx = unsafe { &*(ctx as *const MapCtx<T, R, F>) };
            // SAFETY: index `i` is claimed exactly once, making this
            // thread the sole accessor of the cells at `i`.
            let task = unsafe { (*ctx.tasks[i].get()).take() }.expect("task claimed twice");
            let result = (ctx.f)(task);
            // SAFETY: same exclusive claim on the result cell at `i`.
            unsafe { *ctx.results[i].get() = Some(result) };
        }

        let ctx = MapCtx {
            tasks: tasks
                .into_iter()
                .map(|t| UnsafeCell::new(Some(t)))
                .collect(),
            results: (0..n).map(|_| UnsafeCell::new(None)).collect::<Vec<_>>(),
            f,
        };
        let job = Arc::new(Job {
            run: run_one::<T, R, F>,
            ctx: &ctx as *const MapCtx<T, R, F> as *const (),
            n_tasks: n,
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(n),
            panicked: AtomicBool::new(false),
        });

        let shared = &self.inner.shared;
        let _submit = lock(&self.inner.submit);
        {
            let mut slot = lock(&shared.slot);
            slot.task = Some(Task::Batch(job.clone()));
            slot.epoch = slot.epoch.wrapping_add(1);
        }
        shared.work.notify_all();

        // Participate, then wait for stragglers still running claimed tasks.
        job.work(shared);
        let mut slot = lock(&shared.slot);
        while job.remaining.load(Ordering::Acquire) > 0 {
            slot = shared.done.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
        drop(slot);

        if job.panicked.load(Ordering::Acquire) {
            // audit:allow(L6): deliberate panic propagation, not protocol
            // state. The job is already drained (`remaining == 0` above)
            // and retired from the slot by the last finisher, so unwinding
            // here cannot leave a worker waiting on a missed notification.
            panic!("worker task panicked");
        }
        ctx.results
            .into_iter()
            // audit:allow(L6): unreachable unless a task panicked, and that
            // path already unwound above; the drain invariant (job retired,
            // `remaining == 0`) holds before any of these expects run.
            .map(|cell| cell.into_inner().expect("worker task panicked"))
            .collect()
    }

    /// [`WorkerPool::map`] with per-task recording: each task observes
    /// its queue wait (submission to claim, microseconds) and the task
    /// count is added to the pool-task counter. With a disabled recorder
    /// this is exactly `map` — no clock reads, no wrapper closure.
    pub fn map_traced<T, R, F>(
        &self,
        tasks: Vec<T>,
        f: F,
        rec: &dyn pwrel_trace::Recorder,
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        if !rec.is_enabled() {
            return self.map(tasks, f);
        }
        let n = tasks.len() as u64;
        let submitted = std::time::Instant::now();
        let out = self.map(tasks, |t| {
            // Elapsed-at-claim covers the time the task sat behind
            // earlier tasks — the queue wait an operator tunes chunk
            // size / worker count against.
            let wait_us = submitted.elapsed().as_micros() as f64;
            rec.observe(pwrel_trace::stage::O_QUEUE_WAIT_US, wait_us);
            f(t)
        });
        rec.add(pwrel_trace::stage::C_POOL_TASKS, n);
        out
    }

    /// Runs a bounded-window streaming pipeline on the pool: `producer`
    /// yields items on the calling thread, workers apply `f`
    /// concurrently, and `consumer` receives every result on the calling
    /// thread in production order.
    ///
    /// At most `window` items (clamped to ≥ 1) are in flight — queued,
    /// executing, or finished-but-unconsumed — so peak memory is bounded
    /// by `window` items regardless of stream length: once the window is
    /// full the producer is not polled again until the oldest result has
    /// been consumed (backpressure). Ordering is by construction, not by
    /// scheduling: results are filed by sequence number and handed to
    /// `consumer` strictly in production order.
    ///
    /// A `producer` or `consumer` error returns immediately with that
    /// error; results still in flight are drained and dropped. A
    /// panicking `f` poisons the call, which panics with
    /// `"worker task panicked"` after draining — the pool itself
    /// survives for the next submission, exactly like [`WorkerPool::map`].
    pub fn pipeline<T, R, E, P, F, C>(
        &self,
        window: usize,
        mut producer: P,
        f: F,
        mut consumer: C,
    ) -> Result<(), E>
    where
        T: Send,
        R: Send,
        P: FnMut() -> Result<Option<T>, E>,
        F: Fn(T) -> R + Sync,
        C: FnMut(R) -> Result<(), E>,
    {
        struct PipeState<T, R> {
            queue: VecDeque<(u64, T)>,
            done: BTreeMap<u64, R>,
            /// No more items will be queued (stream over, error, or
            /// poisoned); parked workers should disengage.
            closed: bool,
            /// Some `f` call panicked; surfaced by the submitter.
            panicked: bool,
        }
        struct PipeCtx<T, R, F> {
            state: Mutex<PipeState<T, R>>,
            /// Workers park here for the next queued item.
            task_ready: Condvar,
            /// The submitter parks here for the next filed result.
            result_ready: Condvar,
            f: F,
        }
        // SAFETY contract: `ctx` must point at a live `PipeCtx<T, R, F>`.
        // The submitting frame keeps it alive until every engaged worker
        // has left this function (it drains `engaged` to zero).
        unsafe fn step_one<T, R, F: Fn(T) -> R>(ctx: *const ()) -> bool {
            // SAFETY: per the contract, `ctx` is the submitter's live
            // `PipeCtx` erased in `pipeline` below.
            let ctx = unsafe { &*(ctx as *const PipeCtx<T, R, F>) };
            let (idx, item) = {
                let mut st = lock(&ctx.state);
                loop {
                    if st.panicked {
                        return false;
                    }
                    if let Some(pair) = st.queue.pop_front() {
                        break pair;
                    }
                    if st.closed {
                        return false;
                    }
                    st = ctx.task_ready.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            match catch_unwind(AssertUnwindSafe(|| (ctx.f)(item))) {
                Ok(r) => {
                    let mut st = lock(&ctx.state);
                    st.done.insert(idx, r);
                    drop(st);
                    ctx.result_ready.notify_all();
                    true
                }
                Err(_) => {
                    let mut st = lock(&ctx.state);
                    st.panicked = true;
                    st.closed = true;
                    drop(st);
                    ctx.task_ready.notify_all();
                    ctx.result_ready.notify_all();
                    false
                }
            }
        }

        let window = window.max(1) as u64;
        let ctx = PipeCtx {
            state: Mutex::new(PipeState {
                queue: VecDeque::new(),
                done: BTreeMap::new(),
                closed: false,
                panicked: false,
            }),
            task_ready: Condvar::new(),
            result_ready: Condvar::new(),
            f,
        };
        let sjob = Arc::new(StreamJob {
            step: step_one::<T, R, F>,
            ctx: &ctx as *const PipeCtx<T, R, F> as *const (),
            engaged: AtomicUsize::new(0),
        });

        let shared = &self.inner.shared;
        let _submit = lock(&self.inner.submit);
        {
            let mut slot = lock(&shared.slot);
            slot.task = Some(Task::Stream(sjob.clone()));
            slot.epoch = slot.epoch.wrapping_add(1);
        }
        shared.work.notify_all();

        // The loop runs user closures on this frame, so even a panicking
        // producer/consumer must drain the workers before `ctx` unwinds.
        let run = catch_unwind(AssertUnwindSafe(|| -> Result<(), E> {
            let mut next_in = 0u64;
            let mut next_out = 0u64;
            let mut source_done = false;
            loop {
                // Keep the bounded window full.
                while !source_done && next_in - next_out < window {
                    match producer()? {
                        Some(item) => {
                            let mut st = lock(&ctx.state);
                            if st.panicked {
                                // Surfaced as a panic after the drain.
                                return Ok(());
                            }
                            st.queue.push_back((next_in, item));
                            drop(st);
                            ctx.task_ready.notify_one();
                            next_in += 1;
                        }
                        None => source_done = true,
                    }
                }
                if next_out == next_in {
                    return Ok(());
                }
                // Consume the next result in production order.
                let r = {
                    let mut st = lock(&ctx.state);
                    loop {
                        if st.panicked {
                            return Ok(());
                        }
                        if let Some(r) = st.done.remove(&next_out) {
                            break r;
                        }
                        st = ctx.result_ready.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                };
                next_out += 1;
                consumer(r)?;
            }
        }));

        // Close the stream, retire the slot task, and wait until no
        // worker is inside `step_one` before `ctx` leaves this frame.
        {
            let mut st = lock(&ctx.state);
            st.closed = true;
            st.queue.clear();
        }
        ctx.task_ready.notify_all();
        {
            let mut slot = lock(&shared.slot);
            slot.task = None;
            while sjob.engaged.load(Ordering::Acquire) > 0 {
                slot = shared.done.wait(slot).unwrap_or_else(|e| e.into_inner());
            }
        }
        let panicked = lock(&ctx.state).panicked;
        match run {
            Err(payload) => resume_unwind(payload),
            Ok(result) => {
                if panicked {
                    // audit:allow(L6): deliberate panic propagation, not
                    // protocol state. The stream is retired from the slot
                    // and fully drained (`engaged == 0` above) before this
                    // runs, so no worker is parked on this call's condvars.
                    panic!("worker task panicked");
                }
                result
            }
        }
    }

    /// [`WorkerPool::pipeline`] with pool-task counting: every consumed
    /// item is added to the pool-task counter. With a disabled recorder
    /// this is exactly `pipeline`.
    pub fn pipeline_traced<T, R, E, P, F, C>(
        &self,
        window: usize,
        producer: P,
        f: F,
        mut consumer: C,
        rec: &dyn pwrel_trace::Recorder,
    ) -> Result<(), E>
    where
        T: Send,
        R: Send,
        P: FnMut() -> Result<Option<T>, E>,
        F: Fn(T) -> R + Sync,
        C: FnMut(R) -> Result<(), E>,
    {
        if !rec.is_enabled() {
            return self.pipeline(window, producer, f, consumer);
        }
        let consumed = std::cell::Cell::new(0u64);
        let out = self.pipeline(window, producer, f, |r| {
            consumed.set(consumed.get() + 1);
            consumer(r)
        });
        rec.add(pwrel_trace::stage::C_POOL_TASKS, consumed.get());
        out
    }
}

impl pwrel_data::LaneExecutor for WorkerPool {
    /// Fans the lane closures across the pool via [`WorkerPool::map`].
    ///
    /// Must only be called from a thread *outside* the pool's workers: a
    /// `map` call serializes on the pool's submit lock, which is held for
    /// the whole duration of any in-flight `map`/`pipeline`, so nested
    /// submission from a worker thread deadlocks. The codec plumbing
    /// honors this by routing pooled lane decode only through the
    /// sequential engines, never from inside `ChunkedCodec` worker tasks.
    fn run_lanes(&self, lanes: &mut [&mut (dyn FnMut() + Send)]) {
        let tasks: Vec<&mut (dyn FnMut() + Send)> = lanes.iter_mut().map(|l| &mut **l).collect();
        self.map(tasks, |lane| lane());
    }

    fn width(&self) -> usize {
        self.workers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn lane_executor_runs_all_lanes_on_the_pool() {
        use pwrel_data::LaneExecutor;
        let pool = WorkerPool::new(4);
        assert_eq!(LaneExecutor::width(&pool), 4);
        let mut hits = [0u32; 4];
        {
            let [h0, h1, h2, h3] = &mut hits;
            let mut l0 = || *h0 += 1;
            let mut l1 = || *h1 += 2;
            let mut l2 = || *h2 += 3;
            let mut l3 = || *h3 += 4;
            pool.run_lanes(&mut [&mut l0, &mut l1, &mut l2, &mut l3]);
        }
        assert_eq!(hits, [1, 2, 3, 4]);
    }

    #[test]
    fn results_keep_input_order() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<u64> = (0..1000).collect();
        let out = pool.map(tasks, |t| t * t);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn empty_input() {
        let pool = WorkerPool::new(3);
        let out: Vec<u32> = pool.map(Vec::<u32>::new(), |t| t);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_is_sequential_path() {
        let pool = WorkerPool::new(1);
        let out = pool.map(vec![1, 2, 3], |t| t + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn all_tasks_run_exactly_once() {
        let count = AtomicUsize::new(0);
        let pool = WorkerPool::new(8);
        let out = pool.map((0..500).collect::<Vec<_>>(), |t| {
            count.fetch_add(1, Ordering::Relaxed);
            t
        });
        assert_eq!(out.len(), 500);
        assert_eq!(count.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn workers_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn threads_persist_across_map_calls() {
        let pool = WorkerPool::new(4);
        // Run several maps back-to-back on the same pool; every call must
        // produce complete, ordered results from the same worker threads.
        for round in 0..20u64 {
            let out = pool.map((0..64u64).collect::<Vec<_>>(), |t| t + round);
            assert_eq!(out, (0..64u64).map(|t| t + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn clones_share_the_pool() {
        let pool = WorkerPool::new(3);
        let cloned = pool.clone();
        assert_eq!(cloned.workers(), 3);
        let out = cloned.map(vec![5, 6], |t| t * 10);
        assert_eq!(out, vec![50, 60]);
        let out = pool.map(vec![7], |t| t * 10);
        assert_eq!(out, vec![70]);
    }

    #[test]
    #[should_panic(expected = "worker task panicked")]
    fn task_panic_propagates_to_caller() {
        let pool = WorkerPool::new(4);
        pool.map((0..16).collect::<Vec<_>>(), |t| {
            if t == 7 {
                panic!("boom");
            }
            t
        });
    }

    #[test]
    fn pool_survives_a_panicked_map() {
        let pool = WorkerPool::new(4);
        let poisoned = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map(vec![0, 1, 2, 3], |t| {
                if t == 2 {
                    panic!("boom");
                }
                t
            })
        }));
        assert!(poisoned.is_err());
        let out = pool.map(vec![10, 20], |t| t + 1);
        assert_eq!(out, vec![11, 21]);
    }

    #[test]
    fn map_traced_records_queue_waits_from_worker_threads() {
        use pwrel_trace::{stage, TraceSink};
        let pool = WorkerPool::new(4);
        let sink = TraceSink::new();
        let out = pool.map_traced((0..200u64).collect::<Vec<_>>(), |t| t * 2, &sink);
        assert_eq!(out.len(), 200);
        assert_eq!(out[7], 14);
        let counters = sink.counters();
        assert!(counters.contains(&(stage::C_POOL_TASKS, 200)));
        let obs = sink.observations();
        let (_, wait) = obs
            .iter()
            .find(|(name, _)| *name == stage::O_QUEUE_WAIT_US)
            .expect("queue-wait observations");
        assert_eq!(wait.count, 200);
        assert!(wait.min >= 0.0 && wait.max >= wait.min);
    }

    #[test]
    fn map_traced_with_noop_matches_map() {
        let pool = WorkerPool::new(4);
        let traced = pool.map_traced(
            (0..64u64).collect::<Vec<_>>(),
            |t| t + 1,
            pwrel_trace::noop(),
        );
        let plain = pool.map((0..64u64).collect::<Vec<_>>(), |t| t + 1);
        assert_eq!(traced, plain);
    }

    #[test]
    fn pipeline_consumes_in_production_order() {
        let pool = WorkerPool::new(4);
        let mut next = 0u64;
        let mut seen = Vec::new();
        pool.pipeline(
            4,
            || -> Result<Option<u64>, ()> {
                next += 1;
                Ok((next <= 200).then_some(next - 1))
            },
            |t| t * 3,
            |r| {
                seen.push(r);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(seen, (0..200).map(|t| t * 3).collect::<Vec<_>>());
    }

    #[test]
    fn pipeline_window_bounds_in_flight_items() {
        let pool = WorkerPool::new(4);
        let window = 3usize;
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let mut next = 0u32;
        pool.pipeline(
            window,
            || -> Result<Option<u32>, ()> {
                next += 1;
                if next > 64 {
                    return Ok(None);
                }
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                Ok(Some(next))
            },
            |t| t,
            |_| {
                live.fetch_sub(1, Ordering::SeqCst);
                Ok(())
            },
        )
        .unwrap();
        assert!(
            peak.load(Ordering::SeqCst) <= window,
            "window exceeded: {} in flight",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn pipeline_empty_stream_never_calls_f_or_consumer() {
        let pool = WorkerPool::new(2);
        pool.pipeline(
            4,
            || -> Result<Option<u32>, ()> { Ok(None) },
            |_| panic!("no items to run"),
            |_: u32| panic!("no results to consume"),
        )
        .unwrap();
    }

    #[test]
    fn pipeline_producer_error_propagates() {
        let pool = WorkerPool::new(2);
        let mut n = 0u32;
        let r = pool.pipeline(
            2,
            || {
                n += 1;
                if n > 5 {
                    Err("producer failed")
                } else {
                    Ok(Some(n))
                }
            },
            |t| t,
            |_| Ok(()),
        );
        assert_eq!(r, Err("producer failed"));
    }

    #[test]
    fn pipeline_consumer_error_propagates() {
        let pool = WorkerPool::new(3);
        let mut n = 0u32;
        let r = pool.pipeline(
            2,
            || {
                n += 1;
                Ok((n <= 50).then_some(n))
            },
            |t| t,
            |r| {
                if r == 10 {
                    Err("consumer failed")
                } else {
                    Ok(())
                }
            },
        );
        assert_eq!(r, Err("consumer failed"));
    }

    #[test]
    #[should_panic(expected = "worker task panicked")]
    fn pipeline_task_panic_propagates_to_caller() {
        let pool = WorkerPool::new(3);
        let mut n = 0u32;
        let _ = pool.pipeline(
            4,
            || -> Result<Option<u32>, ()> {
                n += 1;
                Ok((n <= 32).then_some(n))
            },
            |t| {
                if t == 9 {
                    panic!("boom");
                }
                t
            },
            |_| Ok(()),
        );
    }

    #[test]
    fn pool_survives_a_panicked_pipeline_and_alternates_with_map() {
        let pool = WorkerPool::new(3);
        let poisoned = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut n = 0u32;
            let _ = pool.pipeline(
                2,
                || -> Result<Option<u32>, ()> {
                    n += 1;
                    Ok((n <= 8).then_some(n))
                },
                |t| {
                    if t == 3 {
                        panic!("boom");
                    }
                    t
                },
                |_| Ok(()),
            );
        }));
        assert!(poisoned.is_err());
        // Batch and stream submissions share the slot; both must work
        // after the poisoned call.
        assert_eq!(pool.map(vec![1, 2], |t| t * 2), vec![2, 4]);
        let mut n = 0u32;
        let mut sum = 0u32;
        pool.pipeline(
            2,
            || -> Result<Option<u32>, ()> {
                n += 1;
                Ok((n <= 10).then_some(n))
            },
            |t| t,
            |r| {
                sum += r;
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(sum, 55);
    }

    #[test]
    fn pipeline_traced_counts_consumed_items() {
        use pwrel_trace::{stage, TraceSink};
        let pool = WorkerPool::new(2);
        let sink = TraceSink::new();
        let mut n = 0u64;
        pool.pipeline_traced(
            3,
            || -> Result<Option<u64>, ()> {
                n += 1;
                Ok((n <= 40).then_some(n))
            },
            |t| t,
            |_| Ok(()),
            &sink,
        )
        .unwrap();
        assert!(sink.counters().contains(&(stage::C_POOL_TASKS, 40)));
    }

    #[test]
    fn parallel_speedup_on_cpu_bound_work() {
        // Not a strict benchmark — just verify the pool actually uses
        // multiple threads by observing concurrent execution.
        use std::sync::atomic::AtomicUsize;
        static CONCURRENT: AtomicUsize = AtomicUsize::new(0);
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        let pool = WorkerPool::new(4);
        pool.map((0..16).collect::<Vec<_>>(), |_| {
            let now = CONCURRENT.fetch_add(1, Ordering::SeqCst) + 1;
            PEAK.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
            CONCURRENT.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(PEAK.load(Ordering::SeqCst) >= 2, "no observed concurrency");
    }
}
