//! The audit lint catalog (L1–L4) over a set of [`FileModel`]s.
//!
//! These are repo-policy lints clippy cannot express because they need
//! cross-function reachability (L1), module-scoped cast policy (L2),
//! comment text (L3), or the live codec registry (L4).

use crate::model::{FileModel, SiteKind};
use std::collections::{HashMap, HashSet, VecDeque};

/// Crates whose decode paths L1 polices. `cli`/`bench`/`metrics` sit above
/// the codec boundary (they may unwrap: errors there are app-level), and
/// `parallel` is covered by L3/loom instead. `trace` is policed through
/// its exporter entry points rather than decoders (see
/// [`is_decode_entry`]): exporters run at the end of long jobs, where a
/// panic throws away the whole run's recording. `serve` is policed both
/// through its wire decoders and through the per-request `handle_*`
/// dispatchers: a panic there kills a worker thread mid-connection and
/// strands every queued client.
const L1_CRATES: &[&str] = &[
    "bitstream",
    "lossless",
    "sz",
    "zfp",
    "fpzip",
    "isabela",
    "pipeline",
    "core",
    "datagen",
    "kernels",
    "trace",
    "serve",
];

/// Bound-arithmetic modules where bare numeric `as` casts are forbidden
/// (L2): the Lemma 2 correction lives here, and a silent narrowing or
/// float↔int truncation bypasses it.
const L2_FILES: &[&str] = &[
    "crates/core/src/transform.rs",
    "crates/core/src/pwrel.rs",
    "crates/core/src/theory.rs",
    "crates/sz/src/stages.rs",
    "crates/kernels/src/predict.rs",
    "crates/kernels/src/blocklift.rs",
];

/// The allowlisted cast-helper modules: the only places `as` is legal in
/// bound arithmetic, with each conversion documented. `pwrel-kernels`
/// carries its own copy (it sits below `pwrel-core` in the dependency
/// graph and cannot import the original).
const CAST_HELPERS: &[&str] = &["crates/core/src/cast.rs", "crates/kernels/src/cast.rs"];

/// Macros that abort decoding with a panic.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Unqualified call names too ubiquitous to resolve by name alone; edges
/// through them are dropped (documented approximation — they are
/// constructor/std-trait shaped and not decode logic). Shared with the
/// L5 taint engine's call resolution.
pub(crate) const RESOLVE_STOPLIST: &[&str] = &[
    "new",
    "default",
    "fmt",
    "clone",
    "drop",
    "next",
    "from",
    "into",
    "len",
    "is_empty",
    "get",
    "iter",
    "push",
    "pop",
    "extend",
    "insert",
    "remove",
    "min",
    "max",
    "abs",
    "clamp",
    "map",
    "collect",
    "to_vec",
    "to_string",
    "as_ref",
    "as_mut",
    "eq",
    "ne",
    "hash",
    "write",
    "flush",
    // `Option::take`/`Iterator::take` and the `Index` trait shadow the
    // workspace's same-named helpers (`BufferPool::take`, `Dims::index`);
    // qualified calls still resolve.
    "take",
    "index",
];

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Lint id: `"L1"`…`"L4"`.
    pub lint: &'static str,
    /// Repo-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Enclosing function name (allowlist key component).
    pub func: String,
    /// Stable kind key (allowlist key component), e.g. `"unwrap"`.
    pub kind: String,
    /// Human message.
    pub msg: String,
    /// Optional note (e.g. the reachability chain).
    pub note: Option<String>,
    /// True when suppressed by the allowlist file.
    pub allowed: bool,
    /// True when suppressed by an inline `audit:allow(Ln)` comment.
    pub waived: bool,
}

impl Finding {
    /// The stable allowlist key for this finding.
    pub fn key(&self) -> String {
        format!("{} {} {} {}", self.lint, self.path, self.func, self.kind)
    }
}

/// How a file participates in the lints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FileClass {
    /// Normal workspace source: all lints apply.
    Source,
    /// Integration tests / benches / examples: L3 only.
    TestOnly,
    /// Vendored stand-ins (`crates/shims`), the frozen seed engine
    /// (`bench/src/baseline.rs`), and the audit tool itself: L3 only.
    Exempt,
}

/// Classifies a repo-relative path.
pub fn classify(path: &str) -> FileClass {
    if path.starts_with("crates/shims/")
        || path.starts_with("crates/audit/")
        || path.starts_with("crates/fuzz/")
        || path == "crates/bench/src/baseline.rs"
    {
        return FileClass::Exempt;
    }
    if path.contains("/tests/")
        || path.contains("/benches/")
        || path.starts_with("tests/")
        || path.starts_with("examples/")
        || path.starts_with("crates/bench/")
    {
        return FileClass::TestOnly;
    }
    FileClass::Source
}

/// The crate directory name of a repo-relative path (`"sz"` for
/// `crates/sz/src/lib.rs`), or `""` for root-package files.
pub(crate) fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("")
}

/// True when `name` marks an untrusted-input decode entry point.
fn is_decode_entry(path: &str, name: &str) -> bool {
    name.contains("decompress")
        || name.contains("decode")
        || name.contains("deserialize")
        || (name == "unwrap" && path.ends_with("pipeline/src/container.rs"))
        || (path.ends_with("trace/src/export.rs")
            && matches!(name, "summary_table" | "chrome_trace_json" | "stage_rows"))
        || (path.ends_with("serve/src/server.rs") && name.starts_with("handle_"))
}

/// Global function id: (file index, fn index).
type FnId = (usize, usize);

/// Runs L1: no panic-capable construct reachable from a decode path.
pub fn lint_l1(files: &[(FileModel, FileClass)]) -> Vec<Finding> {
    // Definition tables over non-test, non-exempt fns.
    let mut by_name: HashMap<&str, Vec<FnId>> = HashMap::new();
    let mut by_qual_name: HashMap<(&str, &str), Vec<FnId>> = HashMap::new();
    for (fi, (fm, class)) in files.iter().enumerate() {
        if *class == FileClass::Exempt {
            continue;
        }
        for (gi, f) in fm.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            by_name.entry(&f.name).or_default().push((fi, gi));
            if let Some(q) = &f.qualifier {
                by_qual_name.entry((q, &f.name)).or_default().push((fi, gi));
            }
        }
    }

    // Edges: caller -> callees, resolved syntactically.
    let mut edges: HashMap<FnId, Vec<FnId>> = HashMap::new();
    for (fi, (fm, class)) in files.iter().enumerate() {
        if *class == FileClass::Exempt {
            continue;
        }
        for site in &fm.sites {
            let SiteKind::Call { name, qual, .. } = &site.kind else {
                continue;
            };
            let Some(local) = site.fn_idx else { continue };
            if fm.fns[local].is_test {
                continue;
            }
            let caller: FnId = (fi, local);
            let targets: Option<&Vec<FnId>> = match qual {
                Some(q) => by_qual_name
                    .get(&(q.as_str(), name.as_str()))
                    .or_else(|| by_name.get(name.as_str())),
                None if RESOLVE_STOPLIST.contains(&name.as_str()) => None,
                None => by_name.get(name.as_str()),
            };
            if let Some(ts) = targets {
                // Over 6 same-named defs is too ambiguous to be signal.
                if qual.is_none() && ts.len() > 6 {
                    continue;
                }
                edges.entry(caller).or_default().extend(ts.iter().copied());
            }
        }
    }

    // BFS from decode entries, remembering one example parent per fn.
    let mut parent: HashMap<FnId, Option<FnId>> = HashMap::new();
    let mut queue: VecDeque<FnId> = VecDeque::new();
    for (fi, (fm, class)) in files.iter().enumerate() {
        if *class != FileClass::Source || !L1_CRATES.contains(&crate_of(&fm.path)) {
            continue;
        }
        for (gi, f) in fm.fns.iter().enumerate() {
            if !f.is_test && is_decode_entry(&fm.path, &f.name) {
                parent.entry((fi, gi)).or_insert(None);
                queue.push_back((fi, gi));
            }
        }
    }
    while let Some(id) = queue.pop_front() {
        if let Some(callees) = edges.get(&id) {
            for &c in callees {
                if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(c) {
                    e.insert(Some(id));
                    queue.push_back(c);
                }
            }
        }
    }

    let chain = |mut id: FnId| -> String {
        let mut names = vec![files[id.0].0.fns[id.1].name.clone()];
        while let Some(Some(p)) = parent.get(&id) {
            names.push(files[p.0].0.fns[p.1].name.clone());
            id = *p;
            if names.len() > 8 {
                break;
            }
        }
        names.reverse();
        format!("reachable via: {}", names.join(" → "))
    };

    // Flag panic-capable sites inside reachable fns of policed crates.
    let mut out = Vec::new();
    for (fi, (fm, class)) in files.iter().enumerate() {
        if *class != FileClass::Source || !L1_CRATES.contains(&crate_of(&fm.path)) {
            continue;
        }
        for site in &fm.sites {
            let Some(local) = site.fn_idx else { continue };
            if fm.fns[local].is_test || !parent.contains_key(&(fi, local)) {
                continue;
            }
            let (kind, msg) = match &site.kind {
                SiteKind::Macro(m) if PANIC_MACROS.contains(&m.as_str()) => (
                    format!("panic-macro-{m}"),
                    format!("`{m}!` on a decode-reachable path"),
                ),
                SiteKind::Call { name, method, .. } if *method && name == "unwrap" => (
                    "unwrap".to_string(),
                    "`.unwrap()` on a decode-reachable path".to_string(),
                ),
                SiteKind::Call { name, method, .. } if *method && name == "expect" => (
                    "expect".to_string(),
                    "`.expect(..)` on a decode-reachable path".to_string(),
                ),
                SiteKind::Index => (
                    "index".to_string(),
                    "unchecked `[..]` indexing on a decode-reachable path".to_string(),
                ),
                _ => continue,
            };
            out.push(Finding {
                lint: "L1",
                path: fm.path.clone(),
                line: site.line,
                func: fm.fns[local].name.clone(),
                kind,
                msg,
                note: Some(chain((fi, local))),
                allowed: false,
                waived: false,
            });
        }
    }
    out
}

/// Runs L2: bare numeric casts in bound-arithmetic modules.
pub fn lint_l2(files: &[(FileModel, FileClass)]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (fm, class) in files {
        if *class != FileClass::Source
            || !L2_FILES.contains(&fm.path.as_str())
            || CAST_HELPERS.contains(&fm.path.as_str())
        {
            continue;
        }
        for site in &fm.sites {
            let SiteKind::Cast(ty) = &site.kind else {
                continue;
            };
            if fm.site_in_test(site) {
                continue;
            }
            out.push(Finding {
                lint: "L2",
                path: fm.path.clone(),
                line: site.line,
                func: fm.fn_name(site).to_string(),
                kind: format!("cast-{ty}"),
                msg: format!("bare `as {ty}` in a bound-arithmetic module; use `pwrel_core::cast`"),
                note: None,
                allowed: false,
                waived: false,
            });
        }
    }
    out
}

/// Runs L3: `unsafe` confined to `pwrel-parallel`, and every site there
/// carries a `SAFETY:` comment within the preceding four lines.
pub fn lint_l3(files: &[(FileModel, FileClass)]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (fm, _) in files {
        // Shim crates are vendored stand-ins for external deps, but they
        // still must not smuggle `unsafe` into the build.
        let in_parallel = fm.path.starts_with("crates/parallel/");
        for site in &fm.sites {
            if site.kind != SiteKind::Unsafe {
                continue;
            }
            if !in_parallel {
                out.push(Finding {
                    lint: "L3",
                    path: fm.path.clone(),
                    line: site.line,
                    func: fm.fn_name(site).to_string(),
                    kind: "unsafe-outside-parallel".to_string(),
                    msg: "`unsafe` outside pwrel-parallel (crate roots carry \
                          #![forbid(unsafe_code)])"
                        .to_string(),
                    note: None,
                    allowed: false,
                    waived: false,
                });
                continue;
            }
            // Accept a SAFETY marker anywhere in the contiguous comment
            // block ending on the site's line or directly above it
            // (line comments lex one `Comment` per line).
            let is_safety = |c: &crate::lexer::Comment| {
                c.text.contains("SAFETY") || c.text.contains("# Safety")
            };
            let mut documented = fm
                .comments
                .iter()
                .any(|c| c.end_line == site.line && is_safety(c));
            let mut l = site.line;
            while !documented {
                let Some(c) = fm.comments.iter().find(|c| c.end_line + 1 == l) else {
                    break;
                };
                documented = is_safety(c);
                l = c.line;
            }
            if !documented {
                out.push(Finding {
                    lint: "L3",
                    path: fm.path.clone(),
                    line: site.line,
                    func: fm.fn_name(site).to_string(),
                    kind: "missing-safety-comment".to_string(),
                    msg: "`unsafe` site without a `// SAFETY:` comment on the \
                          same or directly preceding line"
                        .to_string(),
                    note: None,
                    allowed: false,
                    waived: false,
                });
            }
        }
    }
    out
}

/// Runs L4: every codec name in `registered` has all six golden-stream
/// fixtures (`{f32,f64} × {1d,2d,3d}`) under `fixtures_dir`.
pub fn lint_l4(registered: &[String], fixtures_dir: &std::path::Path) -> Vec<Finding> {
    let mut out = Vec::new();
    for name in registered {
        for elem in ["f32", "f64"] {
            for nd in ["1d", "2d", "3d"] {
                let file = format!("{name}_{elem}_{nd}.bin");
                if !fixtures_dir.join(&file).is_file() {
                    out.push(Finding {
                        lint: "L4",
                        path: format!("tests/fixtures/{file}"),
                        line: 0,
                        func: "<registry>".to_string(),
                        kind: format!("fixture-{name}-{elem}-{nd}"),
                        msg: format!(
                            "registered codec `{name}` lacks golden-stream fixture `{file}`"
                        ),
                        note: Some(
                            "regenerate with: cargo test --test golden_streams -- --ignored \
                             (see tests/golden_streams.rs)"
                                .to_string(),
                        ),
                        allowed: false,
                        waived: false,
                    });
                }
            }
        }
    }
    out
}

/// Method names that participate in the pipeline executor's channel and
/// condvar protocol; a panic inside a fn that drives this protocol can
/// strand peers blocked on the other end (L6).
const PROTOCOL_CALLS: &[&str] = &[
    "send",
    "recv",
    "try_recv",
    "recv_timeout",
    "wait",
    "wait_while",
    "wait_timeout",
    "notify_one",
    "notify_all",
];

/// Runs L6: parallel-discipline rules inside `crates/parallel`.
///
/// - `lock-unwrap`: `.lock().unwrap()` / `.try_lock().unwrap()` outside
///   the documented poisoning policy (the poison-tolerant `lock()` helper
///   is the only sanctioned way to take a mutex).
/// - `unsafe-impl-unmodeled`: an `unsafe impl Send/Sync` whose SAFETY
///   comment block does not name a loom model test.
/// - `protocol-panic`: a panic-capable construct (`unwrap`/`expect`/panic
///   macro) inside a non-test fn that drives the executor's channel or
///   condvar protocol — a panic there strands blocked peers.
pub fn lint_l6(files: &[(FileModel, FileClass)]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (fm, _) in files {
        if !fm.path.starts_with("crates/parallel/") {
            continue;
        }
        // Fns that touch the channel/condvar protocol.
        let mut protocol_fns: HashMap<usize, &str> = HashMap::new();
        for site in &fm.sites {
            let SiteKind::Call { name, method, .. } = &site.kind else {
                continue;
            };
            if *method && PROTOCOL_CALLS.contains(&name.as_str()) {
                if let Some(fi) = site.fn_idx {
                    protocol_fns.entry(fi).or_insert(name.as_str());
                }
            }
        }
        for site in &fm.sites {
            if fm.site_in_test(site) {
                continue;
            }
            match &site.kind {
                SiteKind::LockUnwrap => {
                    out.push(Finding {
                        lint: "L6",
                        path: fm.path.clone(),
                        line: site.line,
                        func: fm.fn_name(site).to_string(),
                        kind: "lock-unwrap".to_string(),
                        msg: "`.lock().unwrap()` outside the documented poisoning policy"
                            .to_string(),
                        note: Some(
                            "use the poison-tolerant `lock()` helper (pool.rs) so a panicked \
                             worker cannot wedge its peers"
                                .to_string(),
                        ),
                        allowed: false,
                        waived: false,
                    });
                }
                SiteKind::UnsafeImpl(header)
                    if header.contains("Send") || header.contains("Sync") =>
                {
                    // The contiguous comment block ending on the impl line
                    // or directly above it must name a loom model test.
                    let names_loom = |c: &crate::lexer::Comment| c.text.contains("loom");
                    let mut modeled = fm
                        .comments
                        .iter()
                        .any(|c| c.end_line == site.line && names_loom(c));
                    let mut l = site.line;
                    while !modeled {
                        let Some(c) = fm.comments.iter().find(|c| c.end_line + 1 == l) else {
                            break;
                        };
                        modeled = names_loom(c);
                        l = c.line;
                    }
                    if !modeled {
                        out.push(Finding {
                            lint: "L6",
                            path: fm.path.clone(),
                            line: site.line,
                            func: fm.fn_name(site).to_string(),
                            kind: "unsafe-impl-unmodeled".to_string(),
                            msg: format!(
                                "`unsafe impl {header}` without a loom model test named in \
                                 its SAFETY comment"
                            ),
                            note: Some(
                                "name the covering test from tests/loom_pool.rs in the \
                                 comment block above the impl"
                                    .to_string(),
                            ),
                            allowed: false,
                            waived: false,
                        });
                    }
                }
                SiteKind::Macro(m) if PANIC_MACROS.contains(&m.as_str()) => {
                    if let Some(proto) = site.fn_idx.and_then(|fi| protocol_fns.get(&fi)) {
                        out.push(Finding {
                            lint: "L6",
                            path: fm.path.clone(),
                            line: site.line,
                            func: fm.fn_name(site).to_string(),
                            kind: format!("protocol-panic-{m}"),
                            msg: format!(
                                "`{m}!` inside a fn driving the channel/condvar protocol \
                                 (calls `.{proto}()`)"
                            ),
                            note: Some(
                                "a panic between send/recv pairs strands blocked peers; \
                                 propagate an error or document the drain invariant"
                                    .to_string(),
                            ),
                            allowed: false,
                            waived: false,
                        });
                    }
                }
                SiteKind::Call { name, method, .. }
                    if *method && (name == "unwrap" || name == "expect") =>
                {
                    if let Some(proto) = site.fn_idx.and_then(|fi| protocol_fns.get(&fi)) {
                        out.push(Finding {
                            lint: "L6",
                            path: fm.path.clone(),
                            line: site.line,
                            func: fm.fn_name(site).to_string(),
                            kind: format!("protocol-{name}"),
                            msg: format!(
                                "`.{name}()` inside a fn driving the channel/condvar \
                                 protocol (calls `.{proto}()`)"
                            ),
                            note: Some(
                                "a panic between send/recv pairs strands blocked peers; \
                                 propagate an error or document the drain invariant"
                                    .to_string(),
                            ),
                            allowed: false,
                            waived: false,
                        });
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// Applies inline comment waivers.
///
/// - `audit:allow(Ln[, Lm…]): reason` suppresses matching findings from
///   the marker through the end of its contiguous comment block and the
///   first code line after it — documented invariants routinely span
///   several `//` lines, which the lexer keeps as separate comments.
/// - `audit:allow-fn(Ln[, Lm…]): reason`, placed inside a function or in
///   the doc/attribute block directly above it, suppresses the whole
///   function — for guarded hot loops where one invariant covers every
///   site.
pub fn apply_waivers(files: &[(FileModel, FileClass)], findings: &mut [Finding]) {
    let mut lines: HashSet<(String, &'static str, u32)> = HashSet::new();
    let mut fns: HashSet<(String, &'static str, String)> = HashSet::new();
    for (fm, _) in files {
        for c in &fm.comments {
            for (marker, fn_scope) in [("audit:allow(", false), ("audit:allow-fn(", true)] {
                let Some(idx) = c.text.find(marker) else {
                    continue;
                };
                let rest = &c.text[idx + marker.len()..];
                let Some(close) = rest.find(')') else {
                    continue;
                };
                for lint in rest[..close].split(',') {
                    let lint: &'static str = match lint.trim() {
                        "L1" => "L1",
                        "L2" => "L2",
                        "L3" => "L3",
                        "L4" => "L4",
                        "L5" => "L5",
                        "L6" => "L6",
                        _ => continue,
                    };
                    if fn_scope {
                        // Innermost fn whose span covers the comment; when
                        // the comment sits above the item (doc/attribute
                        // position), the next `fn` within 10 lines.
                        let target = fm
                            .fns
                            .iter()
                            .filter(|f| f.line <= c.line && c.line <= f.end_line)
                            .min_by_key(|f| f.end_line.saturating_sub(f.line))
                            .or_else(|| {
                                fm.fns
                                    .iter()
                                    .filter(|f| f.line > c.line && f.line - c.line <= 10)
                                    .min_by_key(|f| f.line)
                            });
                        if let Some(f) = target {
                            fns.insert((fm.path.clone(), lint, f.name.clone()));
                        }
                    } else {
                        // Extend through the contiguous comment run below
                        // the marker, then one code line past it.
                        let mut last = c.end_line;
                        while let Some(n) = fm.comments.iter().find(|n| n.line == last + 1) {
                            last = n.end_line;
                        }
                        for l in c.line..=last + 1 {
                            lines.insert((fm.path.clone(), lint, l));
                        }
                    }
                }
            }
        }
    }
    for f in findings.iter_mut() {
        if lines.contains(&(f.path.clone(), f.lint, f.line))
            || fns.contains(&(f.path.clone(), f.lint, f.func.clone()))
        {
            f.waived = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::analyze_source;

    fn run_l1(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<_> = srcs
            .iter()
            .map(|(p, s)| (analyze_source(p, s, false), classify(p)))
            .collect();
        lint_l1(&files)
    }

    #[test]
    fn l1_flags_unwrap_reachable_from_decode() {
        let f = run_l1(&[(
            "crates/sz/src/x.rs",
            "pub fn decompress(b: &[u8]) { helper(b); }\n\
             fn helper(b: &[u8]) { b.first().unwrap(); }",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].kind, "unwrap");
        assert_eq!(f[0].func, "helper");
        assert!(f[0]
            .note
            .as_deref()
            .unwrap()
            .contains("decompress → helper"));
    }

    #[test]
    fn l1_ignores_compress_only_panics() {
        let f = run_l1(&[(
            "crates/sz/src/x.rs",
            "pub fn compress(b: &[u8]) { b.first().unwrap(); }\n\
             pub fn decompress(b: &[u8]) { let _ = b.len(); }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn l1_flags_indexing_and_panic_macros() {
        let f = run_l1(&[(
            "crates/zfp/src/x.rs",
            "pub fn decode_block(b: &[u8]) -> u8 { if b.len() < 2 { panic!(\"no\") } b[1] }",
        )]);
        let kinds: Vec<_> = f.iter().map(|x| x.kind.as_str()).collect();
        assert!(kinds.contains(&"panic-macro-panic"), "{kinds:?}");
        assert!(kinds.contains(&"index"), "{kinds:?}");
    }

    #[test]
    fn l1_cross_file_reachability() {
        let f = run_l1(&[
            (
                "crates/pipeline/src/a.rs",
                "pub fn decompress(b: &[u8]) { read_header(b); }",
            ),
            (
                "crates/bitstream/src/b.rs",
                "pub fn read_header(b: &[u8]) { b.iter().next().expect(\"hdr\"); }",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].kind, "expect");
        assert_eq!(f[0].path, "crates/bitstream/src/b.rs");
    }

    #[test]
    fn l1_skips_test_code_and_exempt_files() {
        let f = run_l1(&[
            (
                "crates/sz/src/x.rs",
                "#[cfg(test)]\nmod tests { fn decompress_helper(b: &[u8]) { b.first().unwrap(); } }",
            ),
            (
                "crates/bench/src/baseline.rs",
                "pub fn decompress(b: &[u8]) { b.first().unwrap(); }",
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn l2_flags_bare_casts_outside_helper() {
        let src = "pub fn correct(eb: f64) -> i64 { eb as i64 }";
        let files = vec![(
            analyze_source("crates/core/src/pwrel.rs", src, false),
            FileClass::Source,
        )];
        let f = lint_l2(&files);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, "cast-i64");
    }

    #[test]
    fn l2_ignores_unlisted_modules() {
        let src = "pub fn f(x: f64) -> i64 { x as i64 }";
        let files = vec![(
            analyze_source("crates/sz/src/engine.rs", src, false),
            FileClass::Source,
        )];
        assert!(lint_l2(&files).is_empty());
    }

    #[test]
    fn l3_unsafe_outside_parallel_and_missing_safety() {
        let files = vec![
            (
                analyze_source(
                    "crates/bitstream/src/x.rs",
                    "fn f(p: *const u8) { unsafe { p.read() }; }",
                    false,
                ),
                FileClass::Source,
            ),
            (
                analyze_source(
                    "crates/parallel/src/pool.rs",
                    "fn g(p: *const u8) {\n// SAFETY: p is valid.\nunsafe { p.read() };\nunsafe { p.read() };\n}",
                    false,
                ),
                FileClass::Source,
            ),
        ];
        let f = lint_l3(&files);
        let kinds: Vec<_> = f
            .iter()
            .map(|x| (x.path.as_str(), x.kind.as_str()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("crates/bitstream/src/x.rs", "unsafe-outside-parallel"),
                ("crates/parallel/src/pool.rs", "missing-safety-comment"),
            ],
            "{f:?}"
        );
    }

    #[test]
    fn waiver_comment_suppresses_same_and_next_line() {
        let src = "pub fn decompress(b: &[u8]) {\n\
                   // audit:allow(L1): length pre-validated by header check\n\
                   let _ = b[0];\n\
                   let _ = b[1];\n}";
        let files = vec![(
            analyze_source("crates/sz/src/x.rs", src, false),
            FileClass::Source,
        )];
        let mut f = lint_l1(&files);
        apply_waivers(&files, &mut f);
        let waived: Vec<_> = f.iter().map(|x| (x.line, x.waived)).collect();
        assert_eq!(waived, vec![(3, true), (4, false)], "{f:?}");
    }

    #[test]
    fn fn_scoped_waiver_covers_whole_function() {
        let src = "pub fn decompress(b: &[u8]) {\n\
                   // audit:allow-fn(L1): indices bounded by the header check\n\
                   let _ = b[0];\n\
                   let _ = b[1];\n}\n\
                   pub fn decode_other(b: &[u8]) { let _ = b[0]; }";
        let files = vec![(
            analyze_source("crates/sz/src/x.rs", src, false),
            FileClass::Source,
        )];
        let mut f = lint_l1(&files);
        apply_waivers(&files, &mut f);
        for x in &f {
            if x.func == "decompress" {
                assert!(x.waived, "{x:?}");
            } else {
                assert!(!x.waived, "{x:?}");
            }
        }
        assert_eq!(f.iter().filter(|x| !x.waived).count(), 1);
    }

    #[test]
    fn l6_lock_unwrap_flagged_but_poison_helper_clean() {
        let files = vec![(
            analyze_source(
                "crates/parallel/src/pool.rs",
                "fn bad(m: &Mutex<u8>) { let _ = m.lock().unwrap(); }\n\
                 fn good(m: &Mutex<u8>) { let _ = m.lock().unwrap_or_else(|e| e.into_inner()); }",
                false,
            ),
            FileClass::Source,
        )];
        let f = lint_l6(&files);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].kind, "lock-unwrap");
        assert_eq!(f[0].func, "bad");
    }

    #[test]
    fn l6_unsafe_send_impl_requires_loom_reference() {
        let files = vec![(
            analyze_source(
                "crates/parallel/src/pool.rs",
                "// SAFETY: modeled by loom_pool::send_sync.\n\
                 unsafe impl Send for A {}\n\
                 // SAFETY: the pointer is never aliased.\n\
                 unsafe impl Sync for B {}\n\
                 unsafe impl Other for C {}",
                false,
            ),
            FileClass::Source,
        )];
        let f = lint_l6(&files);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].kind, "unsafe-impl-unmodeled");
        assert!(f[0].msg.contains("Sync for B"), "{f:?}");
    }

    #[test]
    fn l6_panic_in_protocol_fn_flagged_elsewhere_not() {
        let files = vec![(
            analyze_source(
                "crates/parallel/src/pool.rs",
                "fn drive(rx: &Receiver<u8>) { let v = rx.recv().unwrap(); drop(v); }\n\
                 fn plain(x: Option<u8>) { x.unwrap(); }",
                false,
            ),
            FileClass::Source,
        )];
        let f = lint_l6(&files);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].kind, "protocol-unwrap");
        assert_eq!(f[0].func, "drive");
    }

    #[test]
    fn l6_outside_parallel_is_ignored() {
        let files = vec![(
            analyze_source(
                "crates/sz/src/engine.rs",
                "fn f(m: &Mutex<u8>) { let _ = m.lock().unwrap(); }",
                false,
            ),
            FileClass::Source,
        )];
        assert!(lint_l6(&files).is_empty());
    }

    #[test]
    fn l4_reports_missing_fixtures() {
        let dir = std::env::temp_dir().join("pwrel_audit_l4_test");
        let _ = std::fs::create_dir_all(&dir);
        for nd in ["1d", "2d", "3d"] {
            let _ = std::fs::write(dir.join(format!("have_f32_{nd}.bin")), b"x");
            let _ = std::fs::write(dir.join(format!("have_f64_{nd}.bin")), b"x");
        }
        let f = lint_l4(&["have".into(), "missing".into()], &dir);
        assert_eq!(f.len(), 6, "{f:?}");
        assert!(f.iter().all(|x| x.kind.starts_with("fixture-missing")));
    }
}
