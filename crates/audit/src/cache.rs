//! On-disk incremental cache for the audit (`--cache <dir>`).
//!
//! Two layers:
//!
//! - **Per-file model cache** — every analyzed [`FileModel`] is stored
//!   under its source's FNV-1a content hash, with a manifest mapping
//!   `path → (mtime, size, hash)`. A warm run stats each file; when
//!   mtime+size match the manifest the stored hash is trusted and the
//!   file is neither read nor re-lexed. Content hashing (not mtime) keys
//!   the models themselves, so a `touch` costs one hash, not a re-lex.
//! - **Full-result record** — the final findings + stale keys, keyed by
//!   a run hash over all (path, content-hash) pairs, the allowlist
//!   bytes, the registered codec list, the fixtures directory listing,
//!   and [`LINT_REV`]. When nothing changed, the lints are skipped
//!   entirely; this is what makes the warm/cold ratio large.
//!
//! Everything is serialized as a versioned line-based text format (the
//! workspace has no serde). Corrupt or version-mismatched entries are
//! treated as misses, never errors.

use crate::dataflow::{FlowEvent, FnFlow};
use crate::lints::Finding;
use crate::model::{FileModel, FnDef, Site, SiteKind};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::time::UNIX_EPOCH;

/// Bump when lint/model/flow semantics change so stale cached results
/// cannot survive an audit upgrade.
pub const LINT_REV: &str = "pwrel-audit-rev9";

const MANIFEST_MAGIC: &str = "PWAUDIT-MANIFEST v1";
const MODEL_MAGIC: &str = "PWAUDIT-MODEL v1";
const RESULT_MAGIC: &str = "PWAUDIT-RESULT v1";

/// FNV-1a 64-bit over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Handle on an open cache directory.
pub struct Cache {
    dir: PathBuf,
    manifest: HashMap<String, (u128, u64, u64)>, // path -> (mtime_ns, size, hash)
    dirty: bool,
}

impl Cache {
    /// Opens (creating if needed) the cache at `dir`; a missing or
    /// corrupt manifest is an empty one.
    pub fn open(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut manifest = HashMap::new();
        if let Ok(text) = std::fs::read_to_string(dir.join("manifest.v1")) {
            let mut lines = text.lines();
            if lines.next() == Some(MANIFEST_MAGIC) {
                for l in lines {
                    let mut it = l.splitn(4, '|');
                    let (Some(m), Some(s), Some(h), Some(p)) =
                        (it.next(), it.next(), it.next(), it.next())
                    else {
                        continue;
                    };
                    let (Ok(m), Ok(s), Ok(h)) = (
                        m.parse::<u128>(),
                        s.parse::<u64>(),
                        u64::from_str_radix(h, 16),
                    ) else {
                        continue;
                    };
                    manifest.insert(p.to_string(), (m, s, h));
                }
            }
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            manifest,
            dirty: false,
        })
    }

    /// Returns the stored content hash when `(mtime, size)` match the
    /// manifest entry for `rel`.
    pub fn stat_hash(&self, rel: &str, mtime_ns: u128, size: u64) -> Option<u64> {
        self.manifest
            .get(rel)
            .filter(|(m, s, _)| *m == mtime_ns && *s == size)
            .map(|(_, _, h)| *h)
    }

    /// Records the manifest entry for `rel`.
    pub fn note_file(&mut self, rel: &str, mtime_ns: u128, size: u64, hash: u64) {
        let entry = (mtime_ns, size, hash);
        if self.manifest.get(rel) != Some(&entry) {
            self.manifest.insert(rel.to_string(), entry);
            self.dirty = true;
        }
    }

    fn model_path(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("m{hash:016x}.mdl"))
    }

    /// Loads the cached model for a content hash, if present and intact.
    pub fn load_model(&self, hash: u64) -> Option<FileModel> {
        let text = std::fs::read_to_string(self.model_path(hash)).ok()?;
        deserialize_model(&text)
    }

    /// Stores a model under its source's content hash.
    pub fn store_model(&self, hash: u64, model: &FileModel) -> io::Result<()> {
        std::fs::write(self.model_path(hash), serialize_model(model))
    }

    /// Loads the full-result record when its key matches `key`.
    pub fn load_result(&self, key: u64) -> Option<(Vec<Finding>, Vec<String>)> {
        let text = std::fs::read_to_string(self.dir.join("result.v1")).ok()?;
        let mut lines = text.lines();
        if lines.next() != Some(RESULT_MAGIC) {
            return None;
        }
        let stored = lines.next()?.strip_prefix("key ")?;
        if u64::from_str_radix(stored, 16).ok()? != key {
            return None;
        }
        let mut findings = Vec::new();
        let mut stale = Vec::new();
        for l in lines {
            if let Some(rest) = l.strip_prefix("F ") {
                findings.push(deserialize_finding(rest)?);
            } else if let Some(rest) = l.strip_prefix("S ") {
                stale.push(unesc(rest));
            }
        }
        Some((findings, stale))
    }

    /// Stores the full-result record under `key`.
    pub fn store_result(&self, key: u64, findings: &[Finding], stale: &[String]) -> io::Result<()> {
        let mut out = format!("{RESULT_MAGIC}\nkey {key:016x}\n");
        for f in findings {
            out.push_str("F ");
            out.push_str(&serialize_finding(f));
            out.push('\n');
        }
        for s in stale {
            out.push_str("S ");
            out.push_str(&esc(s));
            out.push('\n');
        }
        std::fs::write(self.dir.join("result.v1"), out)
    }

    /// Writes the manifest back if any entry changed.
    pub fn save(&self) -> io::Result<()> {
        if !self.dirty {
            return Ok(());
        }
        let mut entries: Vec<_> = self.manifest.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut out = String::from(MANIFEST_MAGIC);
        out.push('\n');
        for (p, (m, s, h)) in entries {
            out.push_str(&format!("{m}|{s}|{h:016x}|{p}\n"));
        }
        std::fs::write(self.dir.join("manifest.v1"), out)
    }
}

/// `(mtime_ns, size)` of a file, for manifest matching.
pub fn stat_key(path: &Path) -> io::Result<(u128, u64)> {
    let md = std::fs::metadata(path)?;
    let mtime = md
        .modified()
        .ok()
        .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
        .map_or(0, |d| d.as_nanos());
    Ok((mtime, md.len()))
}

// ---------------------------------------------------------------------------
// Text (de)serialization
// ---------------------------------------------------------------------------

/// Escapes `\`, newline, tab, and `|` (the field separator).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '|' => out.push_str("\\p"),
            c => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('p') => out.push('|'),
            Some(c) => out.push(c),
            None => {}
        }
    }
    out
}

fn opt(s: &Option<String>) -> String {
    s.as_deref().map_or_else(|| "-".to_string(), esc)
}

fn unopt(s: &str) -> Option<String> {
    (s != "-").then(|| unesc(s))
}

fn csv(v: &[String]) -> String {
    v.join(",")
}

fn uncsv(s: &str) -> Vec<String> {
    if s.is_empty() {
        Vec::new()
    } else {
        s.split(',').map(str::to_string).collect()
    }
}

/// `name:qual` pairs joined with `,` (idents contain neither).
fn calls_ser(v: &[(String, Option<String>)]) -> String {
    v.iter()
        .map(|(n, q)| format!("{n}:{}", q.as_deref().unwrap_or("-")))
        .collect::<Vec<_>>()
        .join(",")
}

fn calls_de(s: &str) -> Option<Vec<(String, Option<String>)>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split(',')
        .map(|p| {
            let (n, q) = p.split_once(':')?;
            Some((n.to_string(), (q != "-").then(|| q.to_string())))
        })
        .collect()
}

fn site_ser(k: &SiteKind) -> String {
    match k {
        SiteKind::Call { name, qual, method } => {
            format!("call|{}|{}|{}", esc(name), opt(qual), method)
        }
        SiteKind::Macro(m) => format!("macro|{}", esc(m)),
        SiteKind::Index => "index".to_string(),
        SiteKind::Cast(t) => format!("cast|{}", esc(t)),
        SiteKind::Unsafe => "unsafe".to_string(),
        SiteKind::LockUnwrap => "lockunwrap".to_string(),
        SiteKind::UnsafeImpl(h) => format!("unsafeimpl|{}", esc(h)),
    }
}

fn site_de(s: &str) -> Option<SiteKind> {
    let mut it = s.split('|');
    Some(match it.next()? {
        "call" => SiteKind::Call {
            name: unesc(it.next()?),
            qual: unopt(it.next()?),
            method: it.next()? == "true",
        },
        "macro" => SiteKind::Macro(unesc(it.next()?)),
        "index" => SiteKind::Index,
        "cast" => SiteKind::Cast(unesc(it.next()?)),
        "unsafe" => SiteKind::Unsafe,
        "lockunwrap" => SiteKind::LockUnwrap,
        "unsafeimpl" => SiteKind::UnsafeImpl(unesc(it.next()?)),
        _ => return None,
    })
}

fn event_ser(e: &FlowEvent) -> String {
    match e {
        FlowEvent::Assign {
            line,
            bounded,
            lhs,
            rhs,
            rhs_calls,
        } => format!(
            "assign|{line}|{bounded}|{}|{}|{}",
            csv(lhs),
            csv(rhs),
            calls_ser(rhs_calls)
        ),
        FlowEvent::Validate { line, vars } => format!("validate|{line}|{}", csv(vars)),
        FlowEvent::Sink { line, kind, vars } => {
            format!("sink|{line}|{}|{}", esc(kind), csv(vars))
        }
        FlowEvent::Call {
            line,
            name,
            qual,
            method,
            args,
        } => format!(
            "fcall|{line}|{}|{}|{method}|{}|{}",
            esc(name),
            opt(qual),
            args.len(),
            args.iter().map(|a| csv(a)).collect::<Vec<_>>().join(";")
        ),
        FlowEvent::Return { line, vars, calls } => {
            format!("return|{line}|{}|{}", csv(vars), calls_ser(calls))
        }
    }
}

fn event_de(s: &str) -> Option<FlowEvent> {
    let mut it = s.split('|');
    Some(match it.next()? {
        "assign" => FlowEvent::Assign {
            line: it.next()?.parse().ok()?,
            bounded: it.next()? == "true",
            lhs: uncsv(it.next()?),
            rhs: uncsv(it.next()?),
            rhs_calls: calls_de(it.next()?)?,
        },
        "validate" => FlowEvent::Validate {
            line: it.next()?.parse().ok()?,
            vars: uncsv(it.next()?),
        },
        "sink" => FlowEvent::Sink {
            line: it.next()?.parse().ok()?,
            kind: unesc(it.next()?),
            vars: uncsv(it.next()?),
        },
        "fcall" => {
            let line = it.next()?.parse().ok()?;
            let name = unesc(it.next()?);
            let qual = unopt(it.next()?);
            let method = it.next()? == "true";
            let n: usize = it.next()?.parse().ok()?;
            let rest = it.next().unwrap_or("");
            let args: Vec<Vec<String>> = if n == 0 {
                Vec::new()
            } else {
                let parts: Vec<_> = rest.split(';').collect();
                if parts.len() != n {
                    return None;
                }
                parts.into_iter().map(uncsv).collect()
            };
            FlowEvent::Call {
                line,
                name,
                qual,
                method,
                args,
            }
        }
        "return" => FlowEvent::Return {
            line: it.next()?.parse().ok()?,
            vars: uncsv(it.next()?),
            calls: calls_de(it.next()?)?,
        },
        _ => return None,
    })
}

/// Serializes a [`FileModel`] into the versioned text format.
pub fn serialize_model(m: &FileModel) -> String {
    // The revision rides in the header: model files are keyed by source
    // content hash, so without it an audit upgrade that changes the
    // model/flow extraction would keep serving pre-upgrade models.
    let mut out = format!("{MODEL_MAGIC} {LINT_REV}\nP {}\n", esc(&m.path));
    for f in &m.fns {
        out.push_str(&format!(
            "F {}|{}|{}|{}|{}|{}|{}\n",
            esc(&f.name),
            opt(&f.qualifier),
            f.line,
            f.end_line,
            f.body.0,
            f.body.1,
            f.is_test
        ));
    }
    for s in &m.sites {
        out.push_str(&format!(
            "S {}|{}|{}\n",
            s.line,
            s.fn_idx.map_or_else(|| "-".to_string(), |i| i.to_string()),
            site_ser(&s.kind)
        ));
    }
    for c in &m.comments {
        out.push_str(&format!("C {}|{}|{}\n", c.line, c.end_line, esc(&c.text)));
    }
    for fl in &m.flows {
        out.push_str(&format!("L {}\n", csv(&fl.params)));
        for e in &fl.events {
            out.push_str(&format!("E {}\n", event_ser(e)));
        }
    }
    out
}

/// Parses the text format back; `None` on any corruption.
pub fn deserialize_model(text: &str) -> Option<FileModel> {
    let mut lines = text.lines();
    if lines.next() != Some(format!("{MODEL_MAGIC} {LINT_REV}").as_str()) {
        return None;
    }
    let path = unesc(lines.next()?.strip_prefix("P ")?);
    let mut fns = Vec::new();
    let mut sites = Vec::new();
    let mut comments = Vec::new();
    let mut flows: Vec<FnFlow> = Vec::new();
    for l in lines {
        if let Some(rest) = l.strip_prefix("F ") {
            let mut it = rest.split('|');
            fns.push(FnDef {
                name: unesc(it.next()?),
                qualifier: unopt(it.next()?),
                line: it.next()?.parse().ok()?,
                end_line: it.next()?.parse().ok()?,
                body: (it.next()?.parse().ok()?, it.next()?.parse().ok()?),
                is_test: it.next()? == "true",
            });
        } else if let Some(rest) = l.strip_prefix("S ") {
            let mut it = rest.splitn(3, '|');
            let line = it.next()?.parse().ok()?;
            let fn_idx = match it.next()? {
                "-" => None,
                n => Some(n.parse().ok()?),
            };
            sites.push(Site {
                kind: site_de(it.next()?)?,
                line,
                fn_idx,
            });
        } else if let Some(rest) = l.strip_prefix("C ") {
            let mut it = rest.splitn(3, '|');
            comments.push(crate::lexer::Comment {
                line: it.next()?.parse().ok()?,
                end_line: it.next()?.parse().ok()?,
                text: unesc(it.next()?),
            });
        } else if let Some(rest) = l.strip_prefix("L ") {
            flows.push(FnFlow {
                params: uncsv(rest),
                events: Vec::new(),
            });
        } else if let Some(rest) = l.strip_prefix("E ") {
            flows.last_mut()?.events.push(event_de(rest)?);
        }
    }
    if flows.len() != fns.len() {
        return None;
    }
    Some(FileModel {
        path,
        fns,
        sites,
        comments,
        flows,
    })
}

fn serialize_finding(f: &Finding) -> String {
    format!(
        "{}|{}|{}|{}|{}|{}|{}|{}|{}",
        f.lint,
        f.line,
        f.allowed,
        f.waived,
        esc(&f.path),
        esc(&f.func),
        esc(&f.kind),
        esc(&f.msg),
        opt(&f.note)
    )
}

fn deserialize_finding(s: &str) -> Option<Finding> {
    let mut it = s.split('|');
    let lint: &'static str = match it.next()? {
        "L1" => "L1",
        "L2" => "L2",
        "L3" => "L3",
        "L4" => "L4",
        "L5" => "L5",
        "L6" => "L6",
        _ => return None,
    };
    Some(Finding {
        lint,
        line: it.next()?.parse().ok()?,
        allowed: it.next()? == "true",
        waived: it.next()? == "true",
        path: unesc(it.next()?),
        func: unesc(it.next()?),
        kind: unesc(it.next()?),
        msg: unesc(it.next()?),
        note: unopt(it.next()?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::analyze_source;

    #[test]
    fn model_roundtrips_through_text() {
        let src = "impl Foo {\n\
                   // SAFETY: modeled by loom | pipe test.\n\
                   unsafe impl Send for X {}\n\
                   fn decode(&self, data: &[u8]) -> Vec<u8> {\n\
                   let mut pos = 0;\n\
                   let n = read_uvarint(data, &mut pos) as usize;\n\
                   if n > data.len() { return Vec::new(); }\n\
                   let mut out = vec![0u8; n];\n\
                   out[0] = data[0];\n\
                   out } }";
        let m = analyze_source("crates/lossless/src/x.rs", src, false);
        let round = deserialize_model(&serialize_model(&m)).expect("roundtrip");
        assert_eq!(format!("{m:?}"), format!("{round:?}"));
    }

    #[test]
    fn corrupt_model_is_a_miss_not_a_panic() {
        assert!(deserialize_model("garbage").is_none());
        let hdr = format!("PWAUDIT-MODEL v1 {LINT_REV}");
        assert!(deserialize_model(&format!("{hdr}\nP x\nF broken")).is_none());
        assert!(deserialize_model(&format!("{hdr}\nP x\nE assign|zz")).is_none());
        // A model written by a different audit revision is stale.
        assert!(deserialize_model("PWAUDIT-MODEL v1 other-rev\nP x\n").is_none());
    }

    #[test]
    fn finding_roundtrips_with_separator_chars() {
        let f = Finding {
            lint: "L5",
            path: "crates/sz/src/x.rs".into(),
            line: 42,
            func: "decode".into(),
            kind: "taint-vec".into(),
            msg: "pipe | and\nnewline".into(),
            note: Some("origin `read_u32()` at a.rs:7".into()),
            allowed: true,
            waived: false,
        };
        let round = deserialize_finding(&serialize_finding(&f)).expect("roundtrip");
        assert_eq!(format!("{f:?}"), format!("{round:?}"));
    }

    #[test]
    fn cache_end_to_end() {
        let dir = std::env::temp_dir().join(format!("pwrel_audit_cache_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = Cache::open(&dir).unwrap();
        let src = "fn f() { g(); }";
        let h = fnv1a(src.as_bytes());
        assert!(c.load_model(h).is_none());
        let m = analyze_source("x.rs", src, false);
        c.store_model(h, &m).unwrap();
        c.note_file("x.rs", 1234, src.len() as u64, h);
        c.save().unwrap();

        let c2 = Cache::open(&dir).unwrap();
        assert_eq!(c2.stat_hash("x.rs", 1234, src.len() as u64), Some(h));
        assert_eq!(c2.stat_hash("x.rs", 9999, src.len() as u64), None);
        let loaded = c2.load_model(h).expect("model hit");
        assert_eq!(format!("{m:?}"), format!("{loaded:?}"));

        assert!(c2.load_result(7).is_none());
        c2.store_result(7, &[], &["L1 a b c".into()]).unwrap();
        let (f, s) = c2.load_result(7).expect("result hit");
        assert!(f.is_empty());
        assert_eq!(s, vec!["L1 a b c".to_string()]);
        assert!(c2.load_result(8).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
