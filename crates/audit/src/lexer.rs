//! A minimal Rust lexer sufficient for the audit lints.
//!
//! Not a full grammar: it splits source into identifier / punctuation /
//! literal tokens with line numbers, strips strings and comments so brace
//! matching and keyword scans cannot be fooled by their contents, and keeps
//! every comment (with its line) on the side — the `SAFETY:` lint and the
//! inline `audit:allow` waivers both live in comments, which is exactly the
//! information a full parser like `syn` throws away.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `r#`-escaped identifiers).
    Ident,
    /// Lifetime such as `'a` (quote included in the text).
    Lifetime,
    /// Single punctuation character.
    Punct,
    /// Numeric literal.
    Num,
    /// String, byte-string, or char literal (contents dropped).
    Str,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Token text. For [`TokKind::Str`] this is a placeholder, never the
    /// literal contents.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True when the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// A comment with its position, `//`/`/*` markers stripped.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (differs for block comments).
    pub end_line: u32,
    /// Comment body.
    pub text: String,
}

/// Lexed view of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub toks: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Malformed input (unterminated string, stray byte) never
/// panics; the lexer resynchronizes at the next character so the audit can
/// still report on the rest of the file.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    text: src[start..i].trim().to_string(),
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start_line = line;
                let text_start = i + 2;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text_end = i.saturating_sub(2).max(text_start);
                out.comments.push(Comment {
                    line: start_line,
                    end_line: line,
                    text: src[text_start..text_end].trim().to_string(),
                });
            }
            b'"' => {
                i = skip_string(b, i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: "\"..\"".into(),
                    line,
                });
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let start_line = line;
                i = skip_raw_or_byte_string(b, i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: "\"..\"".into(),
                    line: start_line,
                });
            }
            b'\'' => {
                // Char literal vs lifetime. A char literal closes with a
                // quote after one (possibly escaped) character; anything
                // else is a lifetime / loop label.
                if let Some(end) = char_literal_end(b, i) {
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: "'.'".into(),
                        line,
                    });
                    i = end;
                } else {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[start..i].to_string(),
                        line,
                    });
                }
            }
            b'0'..=b'9' => {
                let start = i;
                i = skip_number(b, i);
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                // r#ident raw identifiers were handled above only when they
                // begin a raw string; `r#fn` style idents land here via the
                // starts_raw_or_byte_string guard rejecting them.
                if (c == b'r' || c == b'b') && i + 1 < b.len() && b[i + 1] == b'#' {
                    i += 2;
                }
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].trim_start_matches("r#").to_string(),
                    line,
                });
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// True when position `i` (at `r` or `b`) begins a raw string (`r"`,
/// `r#"`, `br"`, …) or byte string (`b"`, `b'`) rather than an identifier.
fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j < b.len() && b[j] == b'\'' {
            return true; // byte char literal b'x'
        }
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        j += 1;
        hashes += 1;
    }
    // `r#ident` is a raw identifier, not a raw string.
    if hashes > 0 && (j >= b.len() || b[j] != b'"') {
        return false;
    }
    j < b.len() && b[j] == b'"' && (hashes > 0 || j > i)
}

/// Skips a `"…"` string starting at `i`; returns the index after it.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw/byte string starting at `i` (pointing at `r` or `b`).
fn skip_raw_or_byte_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    if b[i] == b'b' {
        i += 1;
        if i < b.len() && b[i] == b'\'' {
            // b'x' byte literal
            return char_literal_end(b, i).unwrap_or(i + 1);
        }
    }
    let raw = i < b.len() && b[i] == b'r';
    if raw {
        i += 1;
    }
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() || b[i] != b'"' {
        return i;
    }
    if !raw {
        return skip_string(b, i, line);
    }
    i += 1;
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < b.len() && b[j] == b'#' && seen < hashes {
                j += 1;
                seen += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// If a char literal starts at `i` (at the `'`), returns the index after
/// its closing quote; `None` when it is a lifetime instead.
fn char_literal_end(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if j >= b.len() {
        return None;
    }
    if b[j] == b'\\' {
        j += 2;
        // \u{…} escapes
        while j < b.len() && b[j] != b'\'' && b[j] != b'\n' {
            j += 1;
        }
        return (j < b.len() && b[j] == b'\'').then_some(j + 1);
    }
    if b[j] == b'\'' {
        return None; // empty — not a valid literal, treat as lifetime-ish
    }
    // Multi-byte UTF-8 chars: advance one scalar value.
    let width = utf8_width(b[j]);
    j += width;
    (j < b.len() && b[j] == b'\'').then_some(j + 1)
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Skips a numeric literal starting at `i`.
fn skip_number(b: &[u8], mut i: usize) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                // `1e-3` / `1E+9` exponents
                if (b[i] == b'e' || b[i] == b'E')
                    && i + 1 < b.len()
                    && (b[i + 1] == b'+' || b[i + 1] == b'-')
                    && i + 2 < b.len()
                    && b[i + 2].is_ascii_digit()
                {
                    i += 2;
                }
                i += 1;
            }
            b'.' => {
                // `0..n` range: the dot belongs to `..`, not the number.
                if i + 1 < b.len() && (b[i + 1] == b'.' || !b[i + 1].is_ascii_digit()) {
                    // `1.` float (e.g. `1.` followed by non-digit non-dot)
                    // is rare in this codebase; treat trailing dot before a
                    // second dot or identifier as not part of the number.
                    if i + 1 < b.len() && b[i + 1] == b'.' {
                        return i;
                    }
                    // method call on literal like `1.to_string()`
                    if i + 1 < b.len() && (b[i + 1] == b'_' || b[i + 1].is_ascii_alphabetic()) {
                        return i;
                    }
                    i += 1;
                } else {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let l = lex("let x = \"unwrap() /* not code */\"; // panic! here\nfoo();");
        assert!(idents("let x = \"unwrap()\"; foo();").contains(&"foo".to_string()));
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("panic!"));
        assert!(!l.toks.iter().any(|t| t.text.contains("unwrap")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex("let s = r#\"a \" b\"#; next");
        assert!(l.toks.iter().any(|t| t.is_ident("next")));
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let l = lex("fn f<'a>(x: &'a u8) { let c = 'x'; let q = '\\n'; }");
        let lifetimes: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        let l = lex("for i in 0..n { a[i] = i as u64; }");
        let texts: Vec<_> = l.toks.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"0"));
        assert!(texts.contains(&"n"));
        assert_eq!(texts.iter().filter(|t| **t == ".").count(), 2);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still */ fn f() {}");
        assert_eq!(l.comments.len(), 1);
        assert!(l.toks.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn floats_and_exponents() {
        let l = lex("1.5e-3 2.0f64 0x_ff 1u64");
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Num).count(), 4);
    }

    #[test]
    fn byte_strings() {
        let l = lex("let m = b\"PWU1\"; let c = b'x'; tail");
        assert!(l.toks.iter().any(|t| t.is_ident("tail")));
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
    }
}
