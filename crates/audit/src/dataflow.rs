//! Interprocedural data-flow (taint) analysis for lint L5.
//!
//! Built on the same token stream as the structural model: each function
//! body is reduced to an ordered list of [`FlowEvent`]s — assignments,
//! recognized validations, sinks, call-argument positions, and returns.
//! The L5 engine then runs a flow-sensitive walk over each function
//! (events fire in source order, so a validation clears a variable only
//! for the events *after* it — a bound check after the allocation does
//! not retroactively excuse it) and iterates call-site argument and
//! return-value taint across the syntactic call graph to a fixpoint.
//!
//! Everything here is a deliberate, conservative over-approximation of
//! real Rust semantics:
//!
//! - variables are names, not places — `h.n_elems` taints/reads the base
//!   ident `h`, and shadowing is a plain reassignment;
//! - control flow is ignored except for statement order (back edges and
//!   branch joins collapse into "validated once, validated after");
//! - call resolution reuses L1's name/`Type::` matching with the same
//!   stoplist and ambiguity cutoff.
//!
//! The recognizer catalog (what counts as a *source*, a *validation*,
//! and a *sink*) is documented in `DESIGN.md` §16.

use crate::lexer::{Tok, TokKind};
use crate::lints::{crate_of, FileClass, Finding, RESOLVE_STOPLIST};
use crate::model::{FileModel, FnDef, NUMERIC_TYPES};
use std::collections::{HashMap, HashSet};

/// Calls whose return value is untrusted stream data: the byte/bit read
/// primitives of `pwrel-bitstream` plus the local `Read`-based wrappers
/// in `pipeline::stream`. Float reads (`read_f64`, `get_f32`/`get_f64`)
/// are deliberately excluded — a float cannot reach a length/index sink
/// without an `as` cast through an integer, and including them drowns
/// the report in error-bound arithmetic.
const SOURCE_CALLS: &[&str] = &[
    "read_uvarint",
    "read_ivarint",
    "read_bit",
    "read_bits",
    "read_bits_lsb",
    "peek_bits",
    "peek_word",
    "read_aligned_bytes",
    "get_u16",
    "get_u32",
    "get_u64",
    "get_bytes",
    "read_u8",
    "read_u16",
    "read_u32",
    "read_u64",
];

/// Method/assoc-fn calls recognized as validating every variable they
/// touch (receiver and arguments). `checked_*` is in the ISSUE contract;
/// `min`/`clamp` impose a bound directly; `try_from`/`try_into` impose
/// the target type's range.
const VALIDATOR_CALLS: &[&str] = &[
    "min",
    "clamp",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "checked_div",
    "checked_rem",
    "checked_pow",
    "checked_shl",
    "checked_shr",
    "try_from",
    "try_into",
    // `(lo..=hi).contains(&x)` is the clippy-preferred spelling of a
    // double comparison; the argument is range-checked. (Coarse: a
    // collection-membership `contains` also matches.)
    "contains",
    // `FrameWalker::admit` is the pipeline's plausibility cap: it bounds
    // the frame header's payload length against the container budget, so
    // a header that survives it is validated (ISSUE contract).
    "admit",
];

/// Keywords and primitives excluded from variable-ident collection.
const IDENT_SKIP: &[&str] = &[
    "let", "mut", "ref", "if", "else", "match", "return", "in", "for", "while", "loop", "as",
    "move", "break", "continue", "fn", "pub", "use", "where", "impl", "dyn", "unsafe", "const",
    "static", "struct", "enum", "trait", "mod", "true", "false", "crate", "super", "box", "async",
    "await", "_",
];

/// Lowercase type-ish idents that close generics (`Vec<u8>`); a `>` whose
/// left neighbor is one of these is a generic bracket, not a comparison.
/// [`NUMERIC_TYPES`] is appended at the check site.
const TYPEISH: &[&str] = &["bool", "str", "char"];

/// Crates whose sinks L5 reports on (taint *propagates* through every
/// Source-class file, but findings outside the decode surface are noise).
pub const L5_CRATES: &[&str] = &[
    "bitstream",
    "lossless",
    "sz",
    "zfp",
    "fpzip",
    "isabela",
    "pipeline",
    "core",
    "serve",
];

/// One ordered def-use event inside a function body.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowEvent {
    /// `lhs = rhs` (incl. `let`, compound `+=`, and `if let` bindings).
    Assign {
        /// 1-based source line.
        line: u32,
        /// True when the rhs is mask/shift/modulo-derived and therefore
        /// bounded by construction.
        bounded: bool,
        /// Idents bound on the left.
        lhs: Vec<String>,
        /// Idents read on the right.
        rhs: Vec<String>,
        /// Calls on the right, as `(name, qualifier)` for resolution.
        rhs_calls: Vec<(String, Option<String>)>,
    },
    /// A recognized validation touching `vars` (comparison, `match`
    /// scrutinee, or a `VALIDATOR_CALLS` call).
    Validate {
        /// 1-based source line.
        line: u32,
        /// Validated idents.
        vars: Vec<String>,
    },
    /// Tainted data reaching this is an L5 finding.
    Sink {
        /// 1-based source line.
        line: u32,
        /// Stable finding kind, e.g. `"taint-with_capacity"`.
        kind: String,
        /// Idents feeding the sink (capacity arg, index expression, …).
        vars: Vec<String>,
    },
    /// A call with per-argument-position ident sets, for interprocedural
    /// parameter taint.
    Call {
        /// 1-based source line.
        line: u32,
        /// Callee name (last path segment).
        name: String,
        /// `Type::` qualifier when syntactically present.
        qual: Option<String>,
        /// True for `.name(..)` method syntax (affects the arg→param
        /// position mapping when the callee takes `self`).
        method: bool,
        /// Idents per argument position.
        args: Vec<Vec<String>>,
    },
    /// `return expr` or the function's tail expression.
    Return {
        /// 1-based source line.
        line: u32,
        /// Idents flowing out.
        vars: Vec<String>,
        /// Calls flowing out, as `(name, qualifier)`.
        calls: Vec<(String, Option<String>)>,
    },
}

/// Per-function def-use chain: parameter names plus ordered events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FnFlow {
    /// Parameter names in declaration order (`self` included).
    pub params: Vec<String>,
    /// Events in source (token) order.
    pub events: Vec<FlowEvent>,
}

// ---------------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------------

fn is_lowercase_ident(t: &Tok) -> bool {
    t.kind == TokKind::Ident
        && t.text
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
}

/// True when the token can end a value expression (left side of a binary
/// comparison / shift / mask).
fn value_ish(t: &Tok) -> bool {
    matches!(t.kind, TokKind::Num)
        || t.is_punct(')')
        || t.is_punct(']')
        || (is_lowercase_ident(t)
            && !TYPEISH.contains(&t.text.as_str())
            && !NUMERIC_TYPES.contains(&t.text.as_str()))
}

/// Collects variable idents in `[a, b)`, skipping keywords, call names
/// (ident followed by `(`), macro names (ident followed by `!`), and
/// field names (`dims.nz` reads the base `dims`, not `nz` — but a `.`
/// preceded by another `.` is a range, whose bound *is* a variable).
///
/// With `skip_len_recv`, the receiver of `.len()`/`.is_empty()` is
/// dropped too: a materialized buffer's length is bounded by an
/// allocation that already succeeded. Validation contexts pass `false`
/// so `if codes.len() != n` still validates `codes`.
fn collect_idents(toks: &[Tok], a: usize, b: usize, out: &mut Vec<String>, skip_len_recv: bool) {
    for i in a..b.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Ident || IDENT_SKIP.contains(&t.text.as_str()) {
            continue;
        }
        if i.checked_sub(1).is_some_and(|p| toks[p].is_punct('.'))
            && !i.checked_sub(2).is_some_and(|p| toks[p].is_punct('.'))
        {
            continue;
        }
        if let Some(n) = toks.get(i + 1) {
            if n.is_punct('(') || n.is_punct('!') {
                continue;
            }
        }
        if skip_len_recv
            && toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && toks
                .get(i + 2)
                .is_some_and(|n| n.is_ident("len") || n.is_ident("is_empty"))
            && toks.get(i + 3).is_some_and(|n| n.is_punct('('))
        {
            continue;
        }
        if !out.contains(&t.text) {
            out.push(t.text.clone());
        }
    }
}

/// True when the expression ending at `i` (exclusive) is value-shaped:
/// [`value_ish`] final token, or a cast's numeric type (`x as u64 > y` is
/// a comparison even though a bare `u64` left of `>` reads as a generic).
fn value_before(toks: &[Tok], a: usize, i: usize) -> bool {
    let Some(p) = i.checked_sub(1).filter(|p| *p >= a) else {
        return false;
    };
    if value_ish(&toks[p]) {
        return true;
    }
    NUMERIC_TYPES.contains(&toks[p].text.as_str())
        && p.checked_sub(1)
            .filter(|q| *q >= a)
            .is_some_and(|q| toks[q].is_ident("as"))
}

/// True when `[a, b)` contains a value comparison (`<`, `>`, `<=`, `>=`,
/// `==`, `!=`) as opposed to generics, shifts, or arrows.
fn has_comparison(toks: &[Tok], a: usize, b: usize) -> bool {
    for i in a..b.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Punct {
            continue;
        }
        let prev = i.checked_sub(1).filter(|p| *p >= a).map(|p| &toks[p]);
        let next = toks.get(i + 1).filter(|_| i + 1 < b);
        match t.text.as_str() {
            "="
                // `==` (skip the `=` of `<=`/`>=`/`!=`/`=>` — those are
                // counted at their first character).
                if next.is_some_and(|n| n.is_punct('='))
                    && prev.is_none_or(|p| {
                        !p.is_punct('=') && !p.is_punct('!') && !p.is_punct('<') && !p.is_punct('>')
                    })
                => {
                    return true;
                }
            "!"
                if next.is_some_and(|n| n.is_punct('=')) => {
                    return true;
                }
            "<" | ">" => {
                // Shifts (`<<`, `>>`) and arrows (`->`, `=>`) are not
                // comparisons; generic brackets are filtered by requiring
                // a value-shaped left neighbor (`Vec<u8>` fails it).
                let same = |p: &Tok| p.text == t.text;
                if prev.is_some_and(same) || next.is_some_and(same) {
                    continue;
                }
                if t.text == ">" && prev.is_some_and(|p| p.is_punct('-') || p.is_punct('=')) {
                    continue;
                }
                if value_before(toks, a, i) {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// True when `[a, b)` derives its value by mask/shift/modulo — bounded by
/// construction, so the assigned variable is treated as validated.
fn bounded_expr(toks: &[Tok], a: usize, b: usize) -> bool {
    for i in a..b.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Punct {
            continue;
        }
        let next = toks.get(i + 1).filter(|_| i + 1 < b);
        match t.text.as_str() {
            "%" => return true,
            ">"
                // Right shift `x >> k`: value-shaped left operand keeps
                // `Vec<Vec<u8>>`'s nested closers out.
                if next.is_some_and(|n| n.is_punct('>')) && value_before(toks, a, i) => {
                    return true;
                }
            "&"
                // Binary and (mask): `x & 0xFF`. A `&` after a non-value
                // token is a reference; `&&` is boolean.
                if value_before(toks, a, i)
                    && next.is_some_and(|n| !n.is_punct('&') && !n.is_punct('='))
                => {
                    return true;
                }
            _ => {}
        }
    }
    false
}

/// Splits the top-level comma groups of the paren/bracket group opening
/// at `open`; returns (per-group idents, close index).
fn group_args(toks: &[Tok], open: usize, limit: usize) -> (Vec<Vec<String>>, usize) {
    let mut args: Vec<Vec<String>> = Vec::new();
    let mut depth = 0i64;
    let mut start = open + 1;
    let mut i = open;
    while i < limit.min(toks.len()) {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                if i > start {
                    let mut v = Vec::new();
                    collect_idents(toks, start, i, &mut v, true);
                    args.push(v);
                }
                return (args, i);
            }
        } else if t.is_punct(',') && depth == 1 {
            let mut v = Vec::new();
            collect_idents(toks, start, i, &mut v, true);
            args.push(v);
            start = i + 1;
        }
        i += 1;
    }
    (args, limit.saturating_sub(1))
}

/// Which argument of a sink call carries the length/count.
fn sink_call(name: &str) -> Option<(&'static str, bool)> {
    // (kind, use_last_arg)
    match name {
        "with_capacity" => Some(("taint-with_capacity", false)),
        "resize" | "resize_with" => Some(("taint-resize", false)),
        "reserve" | "reserve_exact" => Some(("taint-reserve", false)),
        "repeat_n" => Some(("taint-repeat_n", true)),
        _ => None,
    }
}

/// Parses the parameter names of the fn whose `fn` keyword is at `kw`.
fn parse_params(toks: &[Tok], kw: usize, body_open: usize) -> Vec<String> {
    let mut params = Vec::new();
    let mut i = kw + 2; // past `fn name`
                        // Skip generic params `<..>`.
    if toks.get(i).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i64;
        while i < body_open {
            if toks[i].is_punct('<') {
                depth += 1;
            } else if toks[i].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    while i < body_open && !toks[i].is_punct('(') {
        i += 1;
    }
    if i >= body_open {
        return params;
    }
    // Walk the paren group; each top-level comma chunk contributes the
    // idents of its pattern (everything before the top-level `:`).
    let mut depth = 0i64;
    let mut in_pattern = true;
    let mut chunk: Vec<String> = Vec::new();
    while i < body_open {
        let t = &toks[i];
        // `->` inside a higher-order parameter type (`&dyn Fn(u8) -> u8`)
        // must not close a bracket level.
        let arrow_close = t.is_punct('>')
            && i.checked_sub(1)
                .is_some_and(|p| toks[p].is_punct('-') || toks[p].is_punct('='));
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')')
            || t.is_punct(']')
            || t.is_punct('}')
            || (t.is_punct('>') && !arrow_close)
        {
            depth -= 1;
            if depth == 0 {
                params.append(&mut chunk);
                break;
            }
        } else if depth == 1 {
            if t.is_punct(',') {
                params.append(&mut chunk);
                in_pattern = true;
            } else if t.is_punct(':') && !toks.get(i + 1).is_some_and(|n| n.is_punct(':')) {
                in_pattern = false;
            } else if in_pattern
                && t.kind == TokKind::Ident
                && !IDENT_SKIP.contains(&t.text.as_str())
            {
                chunk.push(t.text.clone());
            }
        } else if depth == 2 && in_pattern && t.kind == TokKind::Ident {
            // Destructured tuple patterns `(a, b): (usize, usize)`.
            if !IDENT_SKIP.contains(&t.text.as_str()) {
                chunk.push(t.text.clone());
            }
        }
        i += 1;
    }
    params
}

/// Extracts [`FnFlow`]s for every fn in the file. `fn_kws[i]` is the token
/// index of `fns[i]`'s `fn` keyword.
pub fn extract_flows(toks: &[Tok], fns: &[FnDef], fn_kws: &[usize]) -> Vec<FnFlow> {
    fns.iter()
        .enumerate()
        .map(|(fi, f)| {
            let nested: Vec<(usize, usize)> = fns
                .iter()
                .filter(|g| g.body.0 > f.body.0 && g.body.1 < f.body.1)
                .map(|g| g.body)
                .collect();
            extract_one(toks, f, fn_kws[fi], &nested)
        })
        .collect()
}

fn extract_one(toks: &[Tok], f: &FnDef, kw: usize, nested: &[(usize, usize)]) -> FnFlow {
    let (open, close) = f.body;
    let params = parse_params(toks, kw, open);
    // Event list as (token position, priority, event): validations of a
    // statement fire before its sinks/calls, assignments fire last.
    let mut evs: Vec<(usize, u8, FlowEvent)> = Vec::new();

    // Pass A: statement splitting (boundaries: `;`, `{`, `}`), skipping
    // nested fn bodies. Struct-literal braces over-split; the call/sink
    // pass below matches parens over the full stream so argument capture
    // is unaffected.
    let mut stmts: Vec<(usize, usize)> = Vec::new();
    {
        let mut s = open + 1;
        let mut i = open + 1;
        while i < close {
            if let Some(&(_, nc)) = nested.iter().find(|(no, _)| *no == i) {
                if i > s {
                    stmts.push((s, i));
                }
                i = nc + 1;
                s = i;
                continue;
            }
            let t = &toks[i];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                if i > s {
                    stmts.push((s, i));
                }
                s = i + 1;
            }
            i += 1;
        }
        if close > s {
            stmts.push((s, close));
        }
    }

    for &(a, b) in &stmts {
        process_stmt(toks, a, b, &mut evs);
    }

    // Fn-tail return: everything after the last depth-0 `;`/`}` inside the
    // body (`Ok(out)` tails; call idents are collected by paren matching
    // in pass B, so here plain idents suffice).
    {
        let mut depth = 0i64;
        let mut tail = open + 1;
        let mut i = open + 1;
        while i < close {
            if let Some(&(_, nc)) = nested.iter().find(|(no, _)| *no == i) {
                i = nc + 1;
                tail = i;
                continue;
            }
            let t = &toks[i];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
                if depth == 0 && t.is_punct('}') {
                    tail = i + 1;
                }
            } else if depth == 0 && t.is_punct(';') {
                tail = i + 1;
            }
            i += 1;
        }
        if tail < close {
            let mut vars = Vec::new();
            collect_idents(toks, tail, close, &mut vars, true);
            let calls = calls_in(toks, tail, close);
            if !vars.is_empty() || !calls.is_empty() {
                evs.push((
                    close,
                    2,
                    FlowEvent::Return {
                        line: toks[close.min(toks.len() - 1)].line,
                        vars,
                        calls,
                    },
                ));
            }
        }
    }

    // Pass B: calls, sinks, and call-derived validations over the whole
    // body (paren groups matched on the full token stream so they cross
    // statement splits).
    let stmt_start = |i: usize| -> usize {
        stmts
            .iter()
            .rev()
            .find(|&&(a, b)| a <= i && i < b)
            .map(|&(a, _)| a)
            .unwrap_or(i)
    };
    let mut i = open + 1;
    while i < close {
        if let Some(&(_, nc)) = nested.iter().find(|(no, _)| *no == i) {
            i = nc + 1;
            continue;
        }
        let t = &toks[i];
        let next = toks.get(i + 1);
        let prev = i.checked_sub(1).map(|p| &toks[p]);
        if t.kind == TokKind::Ident
            && t.text == "vec"
            && next.is_some_and(|n| n.is_punct('!'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct('['))
        {
            // `vec![init; n]` — the count is everything after the
            // top-level `;`; `vec![a, b]` literals have no count.
            let (_, close_idx) = group_args(toks, i + 2, close);
            let mut semi = None;
            let mut depth = 0i64;
            for (j, u) in toks.iter().enumerate().take(close_idx).skip(i + 2) {
                if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') {
                    depth += 1;
                } else if u.is_punct(')') || u.is_punct(']') || u.is_punct('}') {
                    depth -= 1;
                } else if u.is_punct(';') && depth == 1 {
                    semi = Some(j);
                }
            }
            if let Some(s) = semi {
                let mut vars = Vec::new();
                collect_idents(toks, s + 1, close_idx, &mut vars, true);
                if !vars.is_empty() {
                    evs.push((
                        i,
                        1,
                        FlowEvent::Sink {
                            line: t.line,
                            kind: "taint-vec".to_string(),
                            vars,
                        },
                    ));
                }
            }
            i += 3;
            continue;
        }
        if t.kind == TokKind::Ident
            && next.is_some_and(|n| n.is_punct('('))
            && !crate::model::NON_CALL_KEYWORDS.contains(&t.text.as_str())
            && prev.is_none_or(|p| !p.is_ident("fn"))
        {
            let method = prev.is_some_and(|p| p.is_punct('.'));
            let qual =
                if !method && i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
                    i.checked_sub(3)
                        .map(|q| &toks[q])
                        .filter(|q| q.kind == TokKind::Ident)
                        .map(|q| q.text.clone())
                } else {
                    None
                };
            let (args, _) = group_args(toks, i + 1, close + 1);
            if VALIDATOR_CALLS.contains(&t.text.as_str()) {
                let mut vars: Vec<String> = Vec::new();
                if method {
                    if let Some(r) = i.checked_sub(2).map(|p| &toks[p]) {
                        if r.kind == TokKind::Ident && !IDENT_SKIP.contains(&r.text.as_str()) {
                            vars.push(r.text.clone());
                        }
                    }
                }
                for a in &args {
                    for v in a {
                        if !vars.contains(v) {
                            vars.push(v.clone());
                        }
                    }
                }
                if !vars.is_empty() {
                    evs.push((stmt_start(i), 0, FlowEvent::Validate { line: t.line, vars }));
                }
            }
            if let Some((kind, last)) = sink_call(&t.text) {
                let vars = if last {
                    args.last().cloned().unwrap_or_default()
                } else {
                    args.first().cloned().unwrap_or_default()
                };
                if !vars.is_empty() {
                    evs.push((
                        i,
                        1,
                        FlowEvent::Sink {
                            line: t.line,
                            kind: kind.to_string(),
                            vars,
                        },
                    ));
                }
            }
            evs.push((
                i,
                1,
                FlowEvent::Call {
                    line: t.line,
                    name: t.text.clone(),
                    qual,
                    method,
                    args,
                },
            ));
        }
        // Index sink: same prev-token rule as the structural model.
        if t.is_punct('[') {
            let is_index = match prev {
                Some(p) if p.kind == TokKind::Ident => {
                    !crate::model::NON_INDEX_KEYWORDS.contains(&p.text.as_str())
                }
                Some(p) if p.is_punct(')') || p.is_punct(']') => true,
                _ => false,
            };
            if is_index {
                let (args, _) = group_args(toks, i, close + 1);
                let vars: Vec<String> = args.into_iter().flatten().collect();
                if !vars.is_empty() {
                    evs.push((
                        i,
                        1,
                        FlowEvent::Sink {
                            line: t.line,
                            kind: "taint-index".to_string(),
                            vars,
                        },
                    ));
                }
            }
        }
        i += 1;
    }

    evs.sort_by_key(|(pos, prio, _)| (*pos, *prio));
    FnFlow {
        params,
        events: evs.into_iter().map(|(_, _, e)| e).collect(),
    }
}

/// Calls in `[a, b)` as `(name, qualifier)` pairs.
fn calls_in(toks: &[Tok], a: usize, b: usize) -> Vec<(String, Option<String>)> {
    let mut out = Vec::new();
    for i in a..b.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Ident
            || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            || crate::model::NON_CALL_KEYWORDS.contains(&t.text.as_str())
        {
            continue;
        }
        if i.checked_sub(1).is_some_and(|p| toks[p].is_ident("fn")) {
            continue;
        }
        let qual = if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
            i.checked_sub(3)
                .map(|q| &toks[q])
                .filter(|q| q.kind == TokKind::Ident)
                .map(|q| q.text.clone())
        } else {
            None
        };
        out.push((t.text.clone(), qual));
    }
    out
}

/// Processes one statement slice into events (validation, assignment,
/// loop bound, return). Calls/sinks come from pass B.
fn process_stmt(toks: &[Tok], a: usize, b: usize, evs: &mut Vec<(usize, u8, FlowEvent)>) {
    let mut start = a;
    // Skip attributes `#[..]` and a leading `else`.
    while start < b {
        let t = &toks[start];
        if t.is_punct('#') && toks.get(start + 1).is_some_and(|n| n.is_punct('[')) {
            let (_, c) = group_args(toks, start + 1, b);
            start = c + 1;
            continue;
        }
        if t.is_ident("else") {
            start += 1;
            continue;
        }
        break;
    }
    if start >= b {
        return;
    }
    let line = toks[start].line;
    let kw = if toks[start].kind == TokKind::Ident {
        Some(toks[start].text.as_str())
    } else {
        None
    };
    if kw == Some("fn") || kw == Some("use") || kw == Some("mod") {
        return;
    }

    // `for PAT in LO..HI {` — the upper bound drives the loop.
    if kw == Some("for") {
        let mut j = start + 1;
        while j < b && !toks[j].is_ident("in") {
            j += 1;
        }
        let mut k = j;
        while k + 1 < b {
            if toks[k].is_punct('.') && toks[k + 1].is_punct('.') {
                let mut hi = k + 2;
                if toks.get(hi).is_some_and(|t| t.is_punct('=')) {
                    hi += 1;
                }
                let mut vars = Vec::new();
                collect_idents(toks, hi, b, &mut vars, true);
                if !vars.is_empty() {
                    evs.push((
                        k,
                        1,
                        FlowEvent::Sink {
                            line: toks[k].line,
                            kind: "taint-loop-bound".to_string(),
                            vars,
                        },
                    ));
                }
                break;
            }
            k += 1;
        }
    }

    // Comparison anywhere in the statement validates its idents; `match`
    // validates its scrutinee (enum/range dispatch is validation).
    if has_comparison(toks, start, b) {
        let mut vars = Vec::new();
        collect_idents(toks, start, b, &mut vars, false);
        if !vars.is_empty() {
            evs.push((start, 0, FlowEvent::Validate { line, vars }));
        }
    } else if kw == Some("match") {
        let mut vars = Vec::new();
        collect_idents(toks, start + 1, b, &mut vars, false);
        if !vars.is_empty() {
            evs.push((start, 0, FlowEvent::Validate { line, vars }));
        }
    }

    if kw == Some("return") {
        let mut vars = Vec::new();
        collect_idents(toks, start + 1, b, &mut vars, true);
        let calls = calls_in(toks, start + 1, b);
        if !vars.is_empty() || !calls.is_empty() {
            evs.push((b, 2, FlowEvent::Return { line, vars, calls }));
        }
        return;
    }

    // Assignment: first eligible top-level `=`.
    let mut depth = 0i64;
    let mut eq = None;
    for i in start..b {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct('=') && depth == 0 {
            let prev = i.checked_sub(1).filter(|p| *p >= start).map(|p| &toks[p]);
            let next = toks.get(i + 1).filter(|_| i + 1 < b);
            let cmp_prev = prev.is_some_and(|p| {
                p.is_punct('=') || p.is_punct('!') || p.is_punct('<') || p.is_punct('>')
            });
            let dotdot = prev.is_some_and(|p| p.is_punct('.'));
            let arrow_or_eq = next.is_some_and(|n| n.is_punct('=') || n.is_punct('>'));
            if cmp_prev || dotdot || arrow_or_eq {
                continue;
            }
            let compound = prev.is_some_and(|p| {
                ["+", "-", "*", "/", "%", "&", "|", "^"]
                    .iter()
                    .any(|c| p.is_punct(c.chars().next().unwrap()))
            });
            eq = Some((i, compound));
            break;
        }
    }
    if let Some((i, compound)) = eq {
        // lhs: pattern idents before any top-level type annotation `:`.
        let mut lhs_end = i;
        let mut d = 0i64;
        for j in start..i {
            let t = &toks[j];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                d += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                d -= 1;
            } else if t.is_punct(':')
                && d == 0
                && !toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
                && j.checked_sub(1).is_none_or(|p| !toks[p].is_punct(':'))
            {
                lhs_end = j;
                break;
            }
        }
        // `arr[idx] = v` writes *through* `idx`: the index idents are
        // reads (the index-sink pass covers them), not binding targets,
        // so bracket groups are excluded from the lhs.
        let mut lhs = Vec::new();
        {
            let mut j = start;
            while j < lhs_end {
                if toks[j].is_punct('[') {
                    let (_, c) = group_args(toks, j, lhs_end + 1);
                    j = c + 1;
                    continue;
                }
                collect_idents(toks, j, j + 1, &mut lhs, true);
                j += 1;
            }
        }
        let mut rhs = Vec::new();
        collect_idents(toks, i + 1, b, &mut rhs, true);
        if compound {
            for v in &lhs {
                if !rhs.contains(v) {
                    rhs.push(v.clone());
                }
            }
        }
        let rhs_calls = calls_in(toks, i + 1, b);
        if !lhs.is_empty() {
            evs.push((
                b,
                2,
                FlowEvent::Assign {
                    line,
                    bounded: bounded_expr(toks, i + 1, b),
                    lhs,
                    rhs,
                    rhs_calls,
                },
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// L5 engine
// ---------------------------------------------------------------------------

/// Global function id: (file index, fn index).
type FnId = (usize, usize);

#[derive(Debug, Default, Clone)]
struct Summary {
    param_taint: Vec<Option<String>>, // origin per tainted param
    taints_ret: bool,
    ret_origin: Option<String>,
}

struct SinkHit {
    file: usize,
    func: usize,
    line: u32,
    kind: String,
    vars: Vec<(String, String)>, // (var, origin)
}

/// Runs L5 over the workspace: interprocedural taint from stream reads to
/// allocation/index/loop-bound sinks.
pub fn lint_l5(files: &[(FileModel, FileClass)]) -> Vec<Finding> {
    // Universe: non-test fns in non-exempt files (TestOnly files mark all
    // fns as test, so they drop out here).
    let mut ids: Vec<FnId> = Vec::new();
    let mut by_name: HashMap<&str, Vec<FnId>> = HashMap::new();
    let mut by_qual: HashMap<(&str, &str), Vec<FnId>> = HashMap::new();
    for (fi, (fm, class)) in files.iter().enumerate() {
        if *class == FileClass::Exempt {
            continue;
        }
        for (gi, f) in fm.fns.iter().enumerate() {
            if f.is_test || gi >= fm.flows.len() {
                continue;
            }
            ids.push((fi, gi));
            by_name.entry(&f.name).or_default().push((fi, gi));
            if let Some(q) = &f.qualifier {
                by_qual.entry((q, &f.name)).or_default().push((fi, gi));
            }
        }
    }
    let resolve = |name: &str, qual: &Option<String>| -> Vec<FnId> {
        let targets = match qual {
            Some(q) => by_qual
                .get(&(q.as_str(), name))
                .or_else(|| by_name.get(name)),
            None if RESOLVE_STOPLIST.contains(&name) => None,
            None => by_name.get(name),
        };
        match targets {
            Some(ts) if qual.is_some() || ts.len() <= 6 => ts.clone(),
            _ => Vec::new(),
        }
    };

    let mut summaries: HashMap<FnId, Summary> = ids
        .iter()
        .map(|&id| {
            let params = &files[id.0].0.flows[id.1].params;
            (
                id,
                Summary {
                    param_taint: vec![None; params.len()],
                    taints_ret: false,
                    ret_origin: None,
                },
            )
        })
        .collect();

    // Fixpoint: walk every fn, propagating return taint and call-argument
    // taint until nothing changes (bounded — taint flags only ever flip
    // from clean to tainted).
    for _ in 0..16 {
        let mut changed = false;
        for &id in &ids {
            let out = walk_fn(files, id, &summaries, &resolve);
            let s = summaries.get_mut(&id).unwrap();
            if out.taints_ret && !s.taints_ret {
                s.taints_ret = true;
                s.ret_origin = out.ret_origin.clone();
                changed = true;
            }
            for (name, qual, method, line, arg_origins) in &out.calls_out {
                for tid in resolve(name, qual) {
                    let tparams = files[tid.0].0.flows[tid.1].params.clone();
                    let takes_self = tparams.first().is_some_and(|p| p == "self");
                    // Same-name fns split across method/free calling
                    // conventions are different fns: `batch.scatter(..)`
                    // must not taint the free `blocks::scatter`. A
                    // matching `Type::` qualifier readmits UFCS calls.
                    let qual_matches = qual
                        .as_deref()
                        .is_some_and(|q| files[tid.0].0.fns[tid.1].qualifier.as_deref() == Some(q));
                    if *method != takes_self && !qual_matches {
                        continue;
                    }
                    let off = usize::from(*method && takes_self);
                    let ts = summaries.get_mut(&tid).unwrap();
                    for (ai, origin) in arg_origins.iter().enumerate() {
                        let Some(origin) = origin else { continue };
                        let pi = ai + off;
                        if pi < ts.param_taint.len() && ts.param_taint[pi].is_none() {
                            let pname = &tparams[pi];
                            let caller = &files[id.0].0.fns[id.1].name;
                            let path = &files[id.0].0.path;
                            ts.param_taint[pi] = Some(trim_origin(&format!(
                                "param `{pname}` via `{caller}` ({path}:{line}): {origin}"
                            )));
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Final pass: collect sink hits, report only inside the L5 crates.
    let mut out = Vec::new();
    let mut seen: HashSet<(usize, u32, String)> = HashSet::new();
    for &id in &ids {
        let (fm, class) = &files[id.0];
        if *class != FileClass::Source || !L5_CRATES.contains(&crate_of(&fm.path)) {
            continue;
        }
        let res = walk_fn(files, id, &summaries, &resolve);
        for hit in res.sinks {
            if !seen.insert((hit.file, hit.line, hit.kind.clone())) {
                continue;
            }
            let vars: Vec<&str> = hit.vars.iter().map(|(v, _)| v.as_str()).collect();
            let origin = &hit.vars[0].1;
            let sink_desc = hit.kind.trim_start_matches("taint-").replace('-', " ");
            out.push(Finding {
                lint: "L5",
                path: fm.path.clone(),
                line: hit.line,
                func: fm.fns[hit.func].name.clone(),
                kind: hit.kind,
                msg: format!(
                    "stream-derived `{}` reaches {} before any recognized bound check",
                    vars.join("`/`"),
                    sink_desc
                ),
                note: Some(format!("tainted by {origin}")),
                allowed: false,
                waived: false,
            });
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

struct WalkOut {
    taints_ret: bool,
    ret_origin: Option<String>,
    sinks: Vec<SinkHit>,
    // (name, qual, method, line, per-arg origin)
    #[allow(clippy::type_complexity)]
    calls_out: Vec<(String, Option<String>, bool, u32, Vec<Option<String>>)>,
}

fn trim_origin(s: &str) -> String {
    if s.len() > 160 {
        let mut end = 157;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}...", &s[..end])
    } else {
        s.to_string()
    }
}

fn walk_fn(
    files: &[(FileModel, FileClass)],
    id: FnId,
    summaries: &HashMap<FnId, Summary>,
    resolve: &dyn Fn(&str, &Option<String>) -> Vec<FnId>,
) -> WalkOut {
    let (fm, _) = &files[id.0];
    let flow = &fm.flows[id.1];
    let summary = &summaries[&id];
    let mut taint: HashMap<&str, String> = HashMap::new();
    let mut validated: HashSet<&str> = HashSet::new();
    for (pi, p) in flow.params.iter().enumerate() {
        if let Some(origin) = summary.param_taint.get(pi).and_then(|o| o.as_ref()) {
            taint.insert(p.as_str(), origin.clone());
        }
    }
    let mut out = WalkOut {
        taints_ret: false,
        ret_origin: None,
        sinks: Vec::new(),
        calls_out: Vec::new(),
    };
    let active = |taint: &HashMap<&str, String>, validated: &HashSet<&str>, v: &str| {
        if validated.contains(v) {
            None
        } else {
            taint.get(v).cloned()
        }
    };
    let call_taint = |name: &str, qual: &Option<String>, line: u32| -> Option<String> {
        if SOURCE_CALLS.contains(&name) {
            return Some(format!("`{name}()` at {}:{line}", fm.path));
        }
        for tid in resolve(name, qual) {
            if let Some(s) = summaries.get(&tid) {
                if s.taints_ret {
                    return Some(s.ret_origin.clone().unwrap_or_else(|| {
                        format!("return of `{}`", files[tid.0].0.fns[tid.1].name)
                    }));
                }
            }
        }
        None
    };
    for ev in &flow.events {
        match ev {
            FlowEvent::Validate { vars, .. } => {
                for v in vars {
                    // Re-borrow from the flow so the lifetime outlives
                    // the loop iteration.
                    validated.insert(v.as_str());
                }
            }
            FlowEvent::Assign {
                line,
                bounded,
                lhs,
                rhs,
                rhs_calls,
            } => {
                let mut origin = None;
                for v in rhs {
                    if let Some(o) = active(&taint, &validated, v) {
                        origin = Some(o);
                        break;
                    }
                }
                if origin.is_none() {
                    for (name, qual) in rhs_calls {
                        if let Some(o) = call_taint(name, qual, *line) {
                            origin = Some(o);
                            break;
                        }
                    }
                }
                // A recognized validator anywhere in the rhs bounds the
                // whole assignment: `let n = (read_uvarint(..) as
                // usize).min(max)` is the dominant single-expression
                // validation idiom. Coarse — the validator might guard
                // only a sub-expression — but decode headers are short
                // arithmetic, and missing it would force a two-statement
                // rewrite of every capped read.
                let validator_in_rhs = rhs_calls
                    .iter()
                    .any(|(n, _)| VALIDATOR_CALLS.contains(&n.as_str()));
                for l in lhs {
                    validated.remove(l.as_str());
                    if *bounded || validator_in_rhs {
                        taint.remove(l.as_str());
                    } else if let Some(o) = &origin {
                        taint.insert(l.as_str(), o.clone());
                    } else {
                        taint.remove(l.as_str());
                    }
                }
            }
            FlowEvent::Sink { line, kind, vars } => {
                let hits: Vec<(String, String)> = vars
                    .iter()
                    .filter_map(|v| active(&taint, &validated, v).map(|o| (v.clone(), o)))
                    .collect();
                if !hits.is_empty() {
                    out.sinks.push(SinkHit {
                        file: id.0,
                        func: id.1,
                        line: *line,
                        kind: kind.clone(),
                        vars: hits,
                    });
                }
            }
            FlowEvent::Call {
                line,
                name,
                qual,
                method,
                args,
            } => {
                let origins: Vec<Option<String>> = args
                    .iter()
                    .map(|a| a.iter().find_map(|v| active(&taint, &validated, v)))
                    .collect();
                if origins.iter().any(Option::is_some) {
                    out.calls_out
                        .push((name.clone(), qual.clone(), *method, *line, origins));
                }
            }
            FlowEvent::Return { line, vars, calls } => {
                if !out.taints_ret {
                    for v in vars {
                        if let Some(o) = active(&taint, &validated, v) {
                            out.taints_ret = true;
                            out.ret_origin = Some(o);
                            break;
                        }
                    }
                    if !out.taints_ret {
                        for (name, qual) in calls {
                            if let Some(o) = call_taint(name, qual, *line) {
                                out.taints_ret = true;
                                out.ret_origin = Some(o);
                                break;
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::classify;
    use crate::model::analyze_source;

    fn run(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<_> = srcs
            .iter()
            .map(|(p, s)| (analyze_source(p, s, false), classify(p)))
            .collect();
        lint_l5(&files)
    }

    #[test]
    fn unvalidated_capacity_from_uvarint_is_flagged() {
        let f = run(&[(
            "crates/lossless/src/x.rs",
            "pub fn decompress(data: &[u8]) -> Vec<u8> {\n\
             let mut pos = 0;\n\
             let n = read_uvarint(data, &mut pos) as usize;\n\
             let out: Vec<u8> = Vec::with_capacity(n);\n\
             out }",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].kind, "taint-with_capacity");
        assert!(f[0].note.as_deref().unwrap().contains("read_uvarint"));
    }

    #[test]
    fn comparison_before_sink_validates() {
        let f = run(&[(
            "crates/lossless/src/x.rs",
            "pub fn decompress(data: &[u8]) -> Vec<u8> {\n\
             let mut pos = 0;\n\
             let n = read_uvarint(data, &mut pos) as usize;\n\
             if n > data.len() { return Vec::new(); }\n\
             let out: Vec<u8> = Vec::with_capacity(n);\n\
             out }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn comparison_after_sink_does_not_excuse_it() {
        let f = run(&[(
            "crates/lossless/src/x.rs",
            "pub fn decompress(data: &[u8]) -> Vec<u8> {\n\
             let mut pos = 0;\n\
             let n = read_uvarint(data, &mut pos) as usize;\n\
             let out: Vec<u8> = Vec::with_capacity(n);\n\
             if n > data.len() { return Vec::new(); }\n\
             out }",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn generic_annotation_is_not_a_comparison() {
        // `Vec<u8> =` must not read as `>=`-style validation.
        let f = run(&[(
            "crates/lossless/src/x.rs",
            "pub fn decompress(data: &[u8]) -> Vec<u8> {\n\
             let mut pos = 0;\n\
             let n = read_uvarint(data, &mut pos) as usize;\n\
             let mut out: Vec<u8> = Vec::with_capacity(n);\n\
             out.push(1); out }",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn taint_propagates_through_call_arguments() {
        let f = run(&[(
            "crates/lossless/src/x.rs",
            "pub fn decompress(data: &[u8]) -> Vec<u8> {\n\
             let mut pos = 0;\n\
             let n = read_uvarint(data, &mut pos) as usize;\n\
             build(data, n) }\n\
             fn build(data: &[u8], count: usize) -> Vec<u8> {\n\
             Vec::with_capacity(count) }",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].func, "build");
        assert!(f[0].note.as_deref().unwrap().contains("decompress"));
    }

    #[test]
    fn taint_propagates_through_returns() {
        let f = run(&[(
            "crates/lossless/src/x.rs",
            "fn header_len(data: &[u8]) -> usize {\n\
             let mut pos = 0;\n\
             read_uvarint(data, &mut pos) as usize }\n\
             pub fn decompress(data: &[u8]) -> Vec<u8> {\n\
             let n = header_len(data);\n\
             Vec::with_capacity(n) }",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].func, "decompress");
    }

    #[test]
    fn min_clamp_and_shift_launder_taint() {
        let f = run(&[(
            "crates/lossless/src/x.rs",
            "pub fn decompress(data: &[u8]) -> Vec<u8> {\n\
             let mut pos = 0;\n\
             let n = read_uvarint(data, &mut pos) as usize;\n\
             let a: Vec<u8> = Vec::with_capacity(n.min(4096));\n\
             let prefix = n >> 53;\n\
             let b = a[prefix];\n\
             vec![b; 1] }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn tainted_index_and_loop_bound_are_sinks() {
        let f = run(&[(
            "crates/zfp/src/x.rs",
            "pub fn decode(data: &[u8], lut: &[u8]) -> u8 {\n\
             let mut pos = 0;\n\
             let i = read_uvarint(data, &mut pos) as usize;\n\
             let m = read_uvarint(data, &mut pos) as usize;\n\
             let mut acc = 0;\n\
             for _ in 0..m { acc += 1; }\n\
             lut[i] + acc }",
        )]);
        let kinds: Vec<_> = f.iter().map(|x| x.kind.as_str()).collect();
        assert!(kinds.contains(&"taint-index"), "{f:?}");
        assert!(kinds.contains(&"taint-loop-bound"), "{f:?}");
    }

    #[test]
    fn vec_macro_count_is_a_sink_but_literals_are_not() {
        let f = run(&[(
            "crates/sz/src/x.rs",
            "pub fn decompress(data: &[u8]) -> Vec<u32> {\n\
             let mut pos = 0;\n\
             let n = read_uvarint(data, &mut pos) as usize;\n\
             let lit = vec![1, 2, 3];\n\
             let mut out = vec![0u32; n];\n\
             out[0] = lit[0]; out }",
        )]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].kind, "taint-vec");
    }

    #[test]
    fn sinks_outside_l5_crates_are_not_reported() {
        let f = run(&[(
            "crates/cli/src/x.rs",
            "pub fn decompress(data: &[u8]) -> Vec<u8> {\n\
             let mut pos = 0;\n\
             let n = read_uvarint(data, &mut pos) as usize;\n\
             Vec::with_capacity(n) }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn reassignment_after_validation_keeps_the_clean_state() {
        // `let n = n.min(cap);` — the validator fires at statement start,
        // so the reassigned `n` is clean downstream.
        let f = run(&[(
            "crates/lossless/src/x.rs",
            "pub fn decompress(data: &[u8]) -> Vec<u8> {\n\
             let mut pos = 0;\n\
             let n = read_uvarint(data, &mut pos) as usize;\n\
             let n = n.min(1024);\n\
             Vec::with_capacity(n) }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn match_scrutiny_counts_as_validation() {
        let f = run(&[(
            "crates/lossless/src/x.rs",
            "pub fn decompress(data: &[u8]) -> Vec<u8> {\n\
             let mut pos = 0;\n\
             let mode = read_uvarint(data, &mut pos) as usize;\n\
             match mode { 0 => Vec::new(), _ => Vec::with_capacity(mode) } }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cast_comparison_is_recognized() {
        // `n as u64 > cap` — the numeric type left of `>` belongs to a
        // cast, not a generic bracket.
        let f = run(&[(
            "crates/zfp/src/x.rs",
            "pub fn decompress(data: &[u8]) -> Vec<u8> {\n\
             let mut pos = 0;\n\
             let n = read_uvarint(data, &mut pos) as usize;\n\
             if n as u64 * 2 as u64 > data.len() as u64 { return Vec::new(); }\n\
             Vec::with_capacity(n) }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn indexed_store_does_not_retaint_the_index() {
        // `out[idx] = v` writes through `idx`; it must stay validated.
        let f = run(&[(
            "crates/sz/src/x.rs",
            "pub fn decompress(data: &[u8]) -> Vec<u8> {\n\
             let mut pos = 0;\n\
             let idx = read_uvarint(data, &mut pos) as usize;\n\
             let mut out = vec![0u8; 16];\n\
             if idx >= out.len() { return out; }\n\
             out[idx] = 1;\n\
             out[idx] = 2;\n\
             out }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn field_reads_taint_only_the_base() {
        // Validating `dims` validates `dims.nz` — the field ident itself
        // must not surface as an independent (never-validated) variable.
        let f = run(&[(
            "crates/fpzip/src/x.rs",
            "pub fn decompress(data: &[u8], dims: Hdr) -> usize {\n\
             let mut pos = 0;\n\
             let dims = read_hdr(read_uvarint(data, &mut pos));\n\
             if dims.nz > 64 { return 0; }\n\
             let mut acc = 0;\n\
             for _ in 0..dims.nz { acc += 1; }\n\
             acc }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn len_of_materialized_buffer_is_clean() {
        // `get_bytes` taints `payload`, but `payload.len()` is bounded by
        // the allocation that already succeeded.
        let f = run(&[(
            "crates/zfp/src/x.rs",
            "pub fn decompress(data: &[u8]) -> Vec<u8> {\n\
             let mut pos = 0;\n\
             let payload = get_bytes(data, &mut pos);\n\
             let n = payload.len();\n\
             vec![0u8; n] }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn admit_call_validates_its_args() {
        let f = run(&[(
            "crates/pipeline/src/x.rs",
            "pub fn next_frame(data: &[u8], w: &mut Walker) -> Vec<u8> {\n\
             let mut pos = 0;\n\
             let fh = read_u32(data, &mut pos) as usize;\n\
             w.admit(fh);\n\
             Vec::with_capacity(fh) }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn method_call_does_not_taint_same_named_free_fn() {
        // `b.scatter(n)` (method) must not taint the free `scatter`'s
        // params — they are different functions.
        let f = run(&[(
            "crates/zfp/src/x.rs",
            "impl Batch { pub fn scatter(&self, n: usize) -> usize { n } }\n\
             pub fn decompress(data: &[u8], b: &Batch) -> Vec<u8> {\n\
             let mut pos = 0;\n\
             let n = read_uvarint(data, &mut pos) as usize;\n\
             let _ = b.scatter(n);\n\
             Vec::new() }\n\
             pub fn scatter(count: usize) -> Vec<u8> {\n\
             Vec::with_capacity(count) }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn params_parse_with_generics_and_self() {
        let m = analyze_source(
            "x.rs",
            "impl Foo { fn f<T: Clone>(&self, n: usize, (a, b): (u8, u8)) -> T { todo!() } }",
            false,
        );
        assert_eq!(m.flows[0].params, vec!["self", "n", "a", "b"]);
    }
}
