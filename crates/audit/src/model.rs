//! Structural view of one lexed file: function spans, impl contexts,
//! test-code spans, and the lint-relevant sites inside them.

use crate::dataflow::{extract_flows, FnFlow};
use crate::lexer::{lex, Comment, Tok, TokKind};

/// Keywords that can precede `[` without the bracket being an index
/// expression (patterns, types, array literals).
pub(crate) const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "in", "if", "else", "match", "return", "move", "ref", "as", "impl", "dyn", "for",
    "while", "loop", "where", "use", "pub", "unsafe", "break", "continue", "const", "static",
    "type", "enum", "struct", "trait", "mod", "fn",
];

/// Keywords that look like calls when followed by `(`.
pub(crate) const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "fn", "loop", "move", "in", "let", "as", "where",
    "impl", "dyn", "pub", "unsafe", "use", "mod", "break", "continue",
];

/// Primitive numeric types for the cast lint.
pub const NUMERIC_TYPES: &[&str] = &[
    "f32", "f64", "i8", "i16", "i32", "i64", "i128", "u8", "u16", "u32", "u64", "u128", "usize",
    "isize",
];

/// A function definition found in the file.
#[derive(Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type name, when inside an impl block.
    pub qualifier: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based line of the body's closing brace.
    pub end_line: u32,
    /// Token-index range of the body, inclusive of both braces.
    pub body: (usize, usize),
    /// True when the fn is test-only code (`#[test]`, `#[cfg(test)]`
    /// item or module, or a file under `tests/` / `benches/`).
    pub is_test: bool,
}

/// What a lint-relevant site is.
#[derive(Debug, PartialEq)]
pub enum SiteKind {
    /// A call `name(..)`, `qual::name(..)` or `.name(..)`.
    Call {
        /// Last path segment before the parenthesis.
        name: String,
        /// `Type::` qualifier when syntactically present.
        qual: Option<String>,
        /// True for `.name(..)` method-call syntax.
        method: bool,
    },
    /// A macro invocation `name!`.
    Macro(String),
    /// An index expression `expr[..]`.
    Index,
    /// `as` cast to a primitive numeric type.
    Cast(String),
    /// An `unsafe` keyword (block, fn, impl, or fn-pointer type).
    Unsafe,
    /// A `.lock().unwrap()` / `.try_lock().unwrap()` chain (L6).
    LockUnwrap,
    /// An `unsafe impl …` item with its header text, e.g.
    /// `"Send for Job"` (L6).
    UnsafeImpl(String),
}

/// One occurrence of a [`SiteKind`] with its position.
#[derive(Debug)]
pub struct Site {
    /// Site kind.
    pub kind: SiteKind,
    /// 1-based source line.
    pub line: u32,
    /// Index into [`FileModel::fns`] of the innermost enclosing fn.
    pub fn_idx: Option<usize>,
}

/// Parsed model of one source file.
#[derive(Debug)]
pub struct FileModel {
    /// Repo-relative path, used in diagnostics and allowlist keys.
    pub path: String,
    /// Functions defined in the file.
    pub fns: Vec<FnDef>,
    /// Lint-relevant sites.
    pub sites: Vec<Site>,
    /// All comments (for `SAFETY:` and `audit:allow` scanning).
    pub comments: Vec<Comment>,
    /// Per-function def-use chains (`flows[i]` belongs to `fns[i]`).
    pub flows: Vec<FnFlow>,
}

impl FileModel {
    /// The innermost function containing token index `tok_idx`, if any.
    fn innermost_fn(fns: &[FnDef], tok_idx: usize) -> Option<usize> {
        fns.iter()
            .enumerate()
            .filter(|(_, f)| f.body.0 <= tok_idx && tok_idx <= f.body.1)
            .min_by_key(|(_, f)| f.body.1 - f.body.0)
            .map(|(i, _)| i)
    }

    /// Name of the fn a site belongs to, or `"<file>"` for file scope.
    pub fn fn_name(&self, site: &Site) -> &str {
        site.fn_idx
            .map(|i| self.fns[i].name.as_str())
            .unwrap_or("<file>")
    }

    /// True when the site sits in test-only code.
    pub fn site_in_test(&self, site: &Site) -> bool {
        site.fn_idx.map(|i| self.fns[i].is_test).unwrap_or(false)
    }
}

/// Span (token range) during scanning, for impl blocks and test mods.
#[derive(Debug)]
struct TokSpan {
    start: usize,
    end: usize,
}

fn contains(span: &TokSpan, idx: usize) -> bool {
    span.start <= idx && idx <= span.end
}

/// Finds the token index of the brace that closes the block opened at the
/// first `{` at or after `from`. Returns the last token when unbalanced.
fn matching_brace(toks: &[Tok], from: usize) -> (usize, usize) {
    let mut i = from;
    while i < toks.len() && !toks[i].is_punct('{') {
        // A `;` before any `{` means there is no block (trait method decl,
        // `struct X;`, …).
        if toks[i].is_punct(';') {
            return (i, i);
        }
        i += 1;
    }
    if i >= toks.len() {
        let last = toks.len().saturating_sub(1);
        return (last, last);
    }
    let open = i;
    let mut depth = 0i64;
    while i < toks.len() {
        if toks[i].is_punct('{') {
            depth += 1;
        } else if toks[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return (open, i);
            }
        }
        i += 1;
    }
    (open, toks.len().saturating_sub(1))
}

/// Parses `src` into a [`FileModel`].
///
/// `force_test` marks the whole file as test code (integration tests,
/// benches).
pub fn analyze_source(path: &str, src: &str, force_test: bool) -> FileModel {
    let lexed = lex(src);
    let toks = &lexed.toks;

    // Pass 1: spans — test mods/items and impl blocks.
    let mut test_spans: Vec<TokSpan> = Vec::new();
    let mut impl_spans: Vec<(TokSpan, String)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            // Attribute: find its item and, for test attrs, span it.
            let mut j = i + 2;
            let mut depth = 1i64;
            let attr_start = j;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                }
                j += 1;
            }
            // A source truncated right after `#[` leaves the attribute
            // empty with `attr_start` past the last token.
            let attr_end = j.saturating_sub(1).max(attr_start);
            let attr_toks = toks.get(attr_start..attr_end).unwrap_or_default();
            let is_test_attr = attr_toks.iter().any(|t| t.is_ident("test"))
                && attr_toks
                    .iter()
                    .all(|t| !t.is_ident("not") && !t.is_ident("miri"));
            if is_test_attr {
                let (_, close) = matching_brace(toks, j);
                test_spans.push(TokSpan {
                    start: i,
                    end: close,
                });
            }
            i = j;
            continue;
        }
        if toks[i].is_ident("impl") {
            // `impl<T> Type<..>` or `impl Trait for Type<..>`.
            let mut j = i + 1;
            // Skip generic params.
            if j < toks.len() && toks[j].is_punct('<') {
                let mut depth = 0i64;
                while j < toks.len() {
                    if toks[j].is_punct('<') {
                        depth += 1;
                    } else if toks[j].is_punct('>') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            // The self type is the last path segment before `{`/`for`; if a
            // `for` appears, the type follows it.
            let mut ty = String::new();
            let mut k = j;
            let mut after_for = false;
            while k < toks.len() && !toks[k].is_punct('{') && !toks[k].is_punct(';') {
                if toks[k].is_ident("for") {
                    after_for = true;
                    ty.clear();
                } else if toks[k].kind == TokKind::Ident && !toks[k].is_ident("where") {
                    // Before `for` the last segment wins (trait path); after
                    // `for` keep only the first segment (the self type).
                    if ty.is_empty() || !after_for {
                        ty = toks[k].text.clone();
                    }
                } else if toks[k].is_punct('<') {
                    // stop updating inside generic args of the self type
                    break;
                }
                k += 1;
            }
            let (open, close) = matching_brace(toks, i + 1);
            if !ty.is_empty() && open != close {
                impl_spans.push((
                    TokSpan {
                        start: open,
                        end: close,
                    },
                    ty,
                ));
            }
        }
        i += 1;
    }

    // Pass 2: function definitions (plus the `fn` keyword token index of
    // each, which the data-flow pass needs for parameter parsing).
    let mut fns: Vec<FnDef> = Vec::new();
    let mut fn_kws: Vec<usize> = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") || i + 1 >= toks.len() {
            continue;
        }
        let name_tok = &toks[i + 1];
        if name_tok.kind != TokKind::Ident {
            continue; // `unsafe fn(..)` fn-pointer type
        }
        let (open, close) = matching_brace(toks, i + 2);
        if open == close {
            continue; // bodyless trait method
        }
        let qualifier = impl_spans
            .iter()
            .filter(|(s, _)| contains(s, i))
            .min_by_key(|(s, _)| s.end - s.start)
            .map(|(_, ty)| ty.clone());
        let is_test = force_test || test_spans.iter().any(|s| contains(s, i));
        fns.push(FnDef {
            name: name_tok.text.clone(),
            qualifier,
            line: toks[i].line,
            end_line: toks[close].line,
            body: (open, close),
            is_test,
        });
        fn_kws.push(i);
    }

    // Pass 3: sites.
    let mut sites: Vec<Site> = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        let next = toks.get(i + 1);
        let prev = i.checked_sub(1).map(|p| &toks[p]);
        match t.kind {
            TokKind::Ident if t.text == "unsafe" => {
                sites.push(Site {
                    kind: SiteKind::Unsafe,
                    line: t.line,
                    fn_idx: FileModel::innermost_fn(&fns, i),
                });
                // `unsafe impl Trait for Type` additionally records an
                // UnsafeImpl site carrying the header text for L6.
                if next.is_some_and(|n| n.is_ident("impl")) {
                    let mut header = Vec::new();
                    let mut j = i + 2;
                    while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                        if toks[j].kind == TokKind::Ident {
                            header.push(toks[j].text.as_str());
                        }
                        j += 1;
                    }
                    sites.push(Site {
                        kind: SiteKind::UnsafeImpl(header.join(" ")),
                        line: t.line,
                        fn_idx: FileModel::innermost_fn(&fns, i),
                    });
                }
            }
            TokKind::Ident if t.text == "as" => {
                if let Some(n) = next {
                    if n.kind == TokKind::Ident && NUMERIC_TYPES.contains(&n.text.as_str()) {
                        sites.push(Site {
                            kind: SiteKind::Cast(n.text.clone()),
                            line: t.line,
                            fn_idx: FileModel::innermost_fn(&fns, i),
                        });
                    }
                }
            }
            TokKind::Ident => {
                // `.lock().unwrap()` / `.try_lock().unwrap()` chain (L6):
                // matched at the lock ident so the site survives alongside
                // the plain Call sites of both methods.
                if (t.text == "lock" || t.text == "try_lock")
                    && prev.is_some_and(|p| p.is_punct('.'))
                    && next.is_some_and(|n| n.is_punct('('))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct(')'))
                    && toks.get(i + 3).is_some_and(|n| n.is_punct('.'))
                    && toks.get(i + 4).is_some_and(|n| n.is_ident("unwrap"))
                {
                    sites.push(Site {
                        kind: SiteKind::LockUnwrap,
                        line: t.line,
                        fn_idx: FileModel::innermost_fn(&fns, i),
                    });
                }
                // Macro invocation `name!` (not `!=`).
                if next.is_some_and(|n| n.is_punct('!'))
                    && toks.get(i + 2).is_none_or(|n| !n.is_punct('='))
                {
                    sites.push(Site {
                        kind: SiteKind::Macro(t.text.clone()),
                        line: t.line,
                        fn_idx: FileModel::innermost_fn(&fns, i),
                    });
                    continue;
                }
                // Call `name(` — skip keywords and definitions `fn name(`.
                if next.is_some_and(|n| n.is_punct('('))
                    && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
                    && prev.is_none_or(|p| !p.is_ident("fn"))
                {
                    let method = prev.is_some_and(|p| p.is_punct('.'));
                    let qual = if !method
                        && i >= 2
                        && toks[i - 1].is_punct(':')
                        && toks[i - 2].is_punct(':')
                    {
                        i.checked_sub(3)
                            .map(|q| &toks[q])
                            .filter(|q| q.kind == TokKind::Ident)
                            .map(|q| q.text.clone())
                    } else {
                        None
                    };
                    sites.push(Site {
                        kind: SiteKind::Call {
                            name: t.text.clone(),
                            qual,
                            method,
                        },
                        line: t.line,
                        fn_idx: FileModel::innermost_fn(&fns, i),
                    });
                }
            }
            TokKind::Punct if t.text == "[" => {
                // Index expression: `ident[`, `)[`, `][` — but not slice
                // types, array literals, attributes, or patterns.
                let is_index = match prev {
                    Some(p) if p.kind == TokKind::Ident => {
                        !NON_INDEX_KEYWORDS.contains(&p.text.as_str())
                    }
                    Some(p) if p.is_punct(')') || p.is_punct(']') => true,
                    _ => false,
                };
                if is_index {
                    sites.push(Site {
                        kind: SiteKind::Index,
                        line: t.line,
                        fn_idx: FileModel::innermost_fn(&fns, i),
                    });
                }
            }
            _ => {}
        }
    }

    // Pass 4: per-function def-use chains for the L5 taint engine.
    let flows = extract_flows(toks, &fns, &fn_kws);

    FileModel {
        path: path.to_string(),
        fns,
        sites,
        comments: lexed.comments,
        flows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_fns_and_impl_qualifier() {
        let m = analyze_source(
            "x.rs",
            "impl Foo { fn bar(&self) { baz(); } }\nfn free() {}",
            false,
        );
        assert_eq!(m.fns.len(), 2);
        assert_eq!(m.fns[0].name, "bar");
        assert_eq!(m.fns[0].qualifier.as_deref(), Some("Foo"));
        assert_eq!(m.fns[1].name, "free");
        assert!(m.fns[1].qualifier.is_none());
    }

    #[test]
    fn test_mod_marks_fns_as_test() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { #[test] fn t() { x.unwrap(); } }";
        let m = analyze_source("x.rs", src, false);
        assert!(!m.fns.iter().find(|f| f.name == "live").unwrap().is_test);
        assert!(m.fns.iter().find(|f| f.name == "t").unwrap().is_test);
    }

    #[test]
    fn cfg_not_miri_is_not_test() {
        let src = "#[cfg(not(miri))] fn real() {}";
        let m = analyze_source("x.rs", src, false);
        assert!(!m.fns[0].is_test);
    }

    #[test]
    fn sites_index_vs_types_and_macros() {
        let src = "fn f(a: &[u8], b: [u8; 4]) { let v = vec![1]; let x = a[0]; g(&v)[1]; }";
        let m = analyze_source("x.rs", src, false);
        let n_index = m.sites.iter().filter(|s| s.kind == SiteKind::Index).count();
        assert_eq!(n_index, 2, "{:?}", m.sites);
    }

    #[test]
    fn calls_with_qualifiers_and_methods() {
        let src = "fn f() { Foo::make(); helper(); x.decode(); }";
        let m = analyze_source("x.rs", src, false);
        let calls: Vec<_> = m
            .sites
            .iter()
            .filter_map(|s| match &s.kind {
                SiteKind::Call { name, qual, method } => {
                    Some((name.clone(), qual.clone(), *method))
                }
                _ => None,
            })
            .collect();
        assert!(calls.contains(&("make".into(), Some("Foo".into()), false)));
        assert!(calls.contains(&("helper".into(), None, false)));
        assert!(calls.contains(&("decode".into(), None, true)));
    }

    #[test]
    fn casts_to_numeric_only() {
        let src = "fn f(x: f64) -> usize { let b = x as f32; y as Foo; x as usize }";
        let m = analyze_source("x.rs", src, false);
        let casts: Vec<_> = m
            .sites
            .iter()
            .filter_map(|s| match &s.kind {
                SiteKind::Cast(t) => Some(t.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(casts, vec!["f32".to_string(), "usize".to_string()]);
    }

    #[test]
    fn unsafe_sites_counted_everywhere() {
        let src =
            "unsafe impl Send for X {}\nfn f() { unsafe { g() } }\nstruct J { r: unsafe fn() }";
        let m = analyze_source("x.rs", src, false);
        let n = m
            .sites
            .iter()
            .filter(|s| s.kind == SiteKind::Unsafe)
            .count();
        assert_eq!(n, 3);
    }

    #[test]
    fn nested_fn_attribution_is_innermost() {
        let src = "fn outer() { fn inner() { x.unwrap(); } inner(); }";
        let m = analyze_source("x.rs", src, false);
        let unwrap_site = m
            .sites
            .iter()
            .find(|s| matches!(&s.kind, SiteKind::Call { name, .. } if name == "unwrap"))
            .unwrap();
        assert_eq!(m.fn_name(unwrap_site), "inner");
    }
}
