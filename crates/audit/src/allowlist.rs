//! The committed allowlist of grandfathered findings.
//!
//! Format: one key per line — `<lint> <path> <function> <kind>` — with
//! `#` comments. Keys are line-number-free so routine edits don't churn
//! the file; a finding is identified by where it lives (file + fn) and
//! what it is. Policy: the file only shrinks. New code must be clean or
//! carry an inline `audit:allow(Ln): reason` waiver that survives review.

use crate::lints::Finding;
use std::collections::BTreeSet;
use std::path::Path;

/// Parsed allowlist: the set of grandfathered finding keys.
#[derive(Debug, Default)]
pub struct Allowlist {
    keys: BTreeSet<String>,
}

impl Allowlist {
    /// Loads the allowlist, tolerating a missing file (empty list).
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        let keys = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect();
        Ok(Self { keys })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Marks findings whose key is grandfathered.
    pub fn apply(&self, findings: &mut [Finding]) {
        for f in findings.iter_mut() {
            if self.keys.contains(&f.key()) {
                f.allowed = true;
            }
        }
    }

    /// Entries that no longer match any current finding — these must be
    /// deleted (the allowlist only shrinks).
    pub fn stale<'a>(&'a self, findings: &[Finding]) -> Vec<&'a str> {
        let live: BTreeSet<String> = findings.iter().map(Finding::key).collect();
        self.keys
            .iter()
            .filter(|k| !live.contains(*k))
            .map(String::as_str)
            .collect()
    }

    /// Serializes the current unwaived findings as a fresh allowlist.
    pub fn render(findings: &[Finding]) -> String {
        let mut out = String::from(
            "# pwrel-audit allowlist — grandfathered findings, one key per line:\n\
             #   <lint> <path> <function> <kind>\n\
             # Policy: this file only shrinks. Fix the site or add an inline\n\
             # `audit:allow(Ln): reason` waiver instead of growing it.\n",
        );
        let keys: BTreeSet<String> = findings
            .iter()
            .filter(|f| !f.waived)
            .map(Finding::key)
            .collect();
        for k in keys {
            out.push_str(&k);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: &'static str, path: &str, func: &str, kind: &str) -> Finding {
        Finding {
            lint,
            path: path.into(),
            line: 1,
            func: func.into(),
            kind: kind.into(),
            msg: String::new(),
            note: None,
            allowed: false,
            waived: false,
        }
    }

    #[test]
    fn apply_marks_only_matching_keys() {
        let mut al = Allowlist::default();
        al.keys
            .insert("L1 crates/sz/src/x.rs helper unwrap".to_string());
        let mut fs = vec![
            finding("L1", "crates/sz/src/x.rs", "helper", "unwrap"),
            finding("L1", "crates/sz/src/x.rs", "helper", "index"),
        ];
        al.apply(&mut fs);
        assert!(fs[0].allowed);
        assert!(!fs[1].allowed);
    }

    #[test]
    fn stale_entries_are_reported() {
        let mut al = Allowlist::default();
        al.keys.insert("L1 gone.rs dead unwrap".to_string());
        let fs = vec![finding("L1", "live.rs", "f", "unwrap")];
        assert_eq!(al.stale(&fs), vec!["L1 gone.rs dead unwrap"]);
    }

    #[test]
    fn render_dedups_and_skips_waived() {
        let mut a = finding("L1", "a.rs", "f", "index");
        let b = finding("L1", "a.rs", "f", "index");
        let mut c = finding("L2", "b.rs", "g", "cast-f32");
        c.waived = true;
        a.line = 9;
        let text = Allowlist::render(&[a, b, c]);
        let body: Vec<_> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(body, vec!["L1 a.rs f index"]);
    }
}
