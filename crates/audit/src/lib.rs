//! `pwrel-audit`: workspace-specific static analysis.
//!
//! Four lints clippy cannot express (see `DESIGN.md` §10):
//!
//! - **L1** — no `panic!`-family macro, `.unwrap()`, `.expect(..)`, or
//!   unchecked `[..]` indexing reachable from a decode/decompress entry
//!   point. Hostile-input paths must return `CodecError`.
//! - **L2** — no bare numeric `as` cast in the bound-arithmetic modules
//!   (`core::transform`, `core::pwrel`, `core::theory`, the quantizers);
//!   conversions go through the documented `pwrel_core::cast` helpers so
//!   the Lemma 2 correction cannot be silently bypassed.
//! - **L3** — `unsafe` is confined to `pwrel-parallel`, and every site
//!   there carries a `// SAFETY:` comment.
//! - **L4** — every codec registered in `CodecRegistry::builtin` has all
//!   six golden-stream fixtures under `tests/fixtures`.
//!
//! The analysis is a purpose-built lexer + token-level model rather than
//! a full parser: the build environment vendors no `syn`, and two of the
//! lints (L3, inline waivers) need comment text a parser drops anyway.
//! Reachability (L1) is a syntactic over-approximation by function name
//! and `Type::` qualifier, with ubiquitous constructor-shaped names
//! excluded; its misses are covered dynamically by the fuzz targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod lexer;
pub mod lints;
pub mod model;
pub mod report;

use allowlist::Allowlist;
use lints::{classify, Finding};
use std::path::{Path, PathBuf};

/// Audit configuration.
pub struct Config {
    /// Workspace root.
    pub root: PathBuf,
    /// Allowlist file (repo-relative to `root`).
    pub allowlist: PathBuf,
    /// Where to write the JSON report, if anywhere.
    pub json: Option<PathBuf>,
    /// Rewrite the allowlist from the current findings.
    pub update_allowlist: bool,
    /// Itemize allowed/waived findings too.
    pub verbose: bool,
}

impl Config {
    /// Default configuration rooted at the cargo workspace.
    pub fn new(root: PathBuf) -> Self {
        let allowlist = root.join("audit.allow");
        Self {
            root,
            allowlist,
            json: None,
            update_allowlist: false,
            verbose: false,
        }
    }
}

/// Collects every `.rs` file the audit covers, as repo-relative paths.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(Path::to_path_buf))
        .collect())
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `target` dirs can nest under crates when building in-tree.
            if name == "target" || name == ".git" {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the full audit; returns all findings (allow/waive flags applied)
/// plus the number of stale allowlist entries.
pub fn run(cfg: &Config, registered_codecs: &[String]) -> std::io::Result<(Vec<Finding>, usize)> {
    let mut files = Vec::new();
    for rel in collect_files(&cfg.root)? {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let class = classify(&rel_str);
        let src = std::fs::read_to_string(cfg.root.join(&rel))?;
        let force_test = class == lints::FileClass::TestOnly;
        files.push((model::analyze_source(&rel_str, &src, force_test), class));
    }

    let mut findings = Vec::new();
    findings.extend(lints::lint_l1(&files));
    findings.extend(lints::lint_l2(&files));
    findings.extend(lints::lint_l3(&files));
    findings.extend(lints::lint_l4(
        registered_codecs,
        &cfg.root.join("tests/fixtures"),
    ));

    lints::apply_waivers(&files, &mut findings);

    let allow = Allowlist::load(&cfg.allowlist)?;
    allow.apply(&mut findings);
    let stale = allow.stale(&findings).len();

    if cfg.update_allowlist {
        std::fs::write(&cfg.allowlist, Allowlist::render(&findings))?;
    }
    if let Some(json) = &cfg.json {
        std::fs::write(json, report::render_json(&findings))?;
    }
    Ok((findings, stale))
}
