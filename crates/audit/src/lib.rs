//! `pwrel-audit`: workspace-specific static analysis.
//!
//! Six lints clippy cannot express (see `DESIGN.md` §10 and §16):
//!
//! - **L1** — no `panic!`-family macro, `.unwrap()`, `.expect(..)`, or
//!   unchecked `[..]` indexing reachable from a decode/decompress entry
//!   point. Hostile-input paths must return `CodecError`.
//! - **L2** — no bare numeric `as` cast in the bound-arithmetic modules
//!   (`core::transform`, `core::pwrel`, `core::theory`, the quantizers);
//!   conversions go through the documented `pwrel_core::cast` helpers so
//!   the Lemma 2 correction cannot be silently bypassed.
//! - **L3** — `unsafe` is confined to `pwrel-parallel`, and every site
//!   there carries a `// SAFETY:` comment.
//! - **L4** — every codec registered in `CodecRegistry::builtin` has all
//!   six golden-stream fixtures under `tests/fixtures`.
//! - **L5** — interprocedural taint: a value read from an untrusted
//!   stream (uvarints, header fields, bit reads) must pass a recognized
//!   validation before reaching an allocation size, slice index, or loop
//!   bound anywhere downstream, across function boundaries.
//! - **L6** — parallel discipline in `pwrel-parallel`: no
//!   `.lock().unwrap()` outside the poisoning policy, no panic-capable
//!   construct in fns driving the executor's channel/condvar protocol,
//!   and every `unsafe impl Send/Sync` names its loom model test.
//!
//! The analysis is a purpose-built lexer + token-level model rather than
//! a full parser: the build environment vendors no `syn`, and two of the
//! lints (L3, inline waivers) need comment text a parser drops anyway.
//! Reachability (L1) and taint propagation (L5) are syntactic
//! over-approximations by function name and `Type::` qualifier, with
//! ubiquitous constructor-shaped names excluded; their misses are
//! covered dynamically by the fuzz targets.
//!
//! With `--cache <dir>` the audit keeps an incremental on-disk cache
//! (see [`cache`]) so warm runs re-lex only changed files and skip the
//! lints entirely when nothing changed at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod cache;
pub mod dataflow;
pub mod lexer;
pub mod lints;
pub mod model;
pub mod report;

use allowlist::Allowlist;
use lints::{classify, Finding};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Audit configuration.
pub struct Config {
    /// Workspace root.
    pub root: PathBuf,
    /// Allowlist file (repo-relative to `root`).
    pub allowlist: PathBuf,
    /// Where to write the JSON report, if anywhere.
    pub json: Option<PathBuf>,
    /// Rewrite the allowlist from the current findings.
    pub update_allowlist: bool,
    /// Itemize allowed/waived findings too.
    pub verbose: bool,
    /// Incremental cache directory (`--cache`), if enabled.
    pub cache: Option<PathBuf>,
}

impl Config {
    /// Default configuration rooted at the cargo workspace.
    pub fn new(root: PathBuf) -> Self {
        let allowlist = root.join("audit.allow");
        Self {
            root,
            allowlist,
            json: None,
            update_allowlist: false,
            verbose: false,
            cache: None,
        }
    }
}

/// Wall-clock and cache counters for one audit run (reported in the
/// `--json` output so CI logs show the warm-run speedup).
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// File discovery walk, milliseconds.
    pub collect_ms: f64,
    /// Lex + model + flow extraction (or cache load), milliseconds.
    pub analyze_ms: f64,
    /// Per-lint wall clock, milliseconds, in execution order.
    pub lint_ms: Vec<(&'static str, f64)>,
    /// Whole `run()`, milliseconds.
    pub total_ms: f64,
    /// True when a cache directory was configured.
    pub cache_enabled: bool,
    /// Files served from the model cache.
    pub file_hits: usize,
    /// Files that had to be (re-)analyzed.
    pub file_misses: usize,
    /// True when the full-result record short-circuited the lints.
    pub full_result_hit: bool,
}

/// Everything `run` produces.
#[derive(Debug)]
pub struct RunOutput {
    /// All findings, with allow/waive flags applied.
    pub findings: Vec<Finding>,
    /// Allowlist keys that matched no finding (stale — the file only
    /// shrinks, so these must be deleted).
    pub stale: Vec<String>,
    /// Timing and cache counters.
    pub stats: RunStats,
}

/// Collects every `.rs` file the audit covers, as repo-relative paths.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(Path::to_path_buf))
        .collect())
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `target` dirs can nest under crates when building in-tree.
            if name == "target" || name == ".git" {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The run key folds everything a cached result depends on: file content
/// hashes, the allowlist, the codec list (L4), the fixtures listing
/// (L4), and the lint revision.
fn run_key(
    hashes: &[(String, u64)],
    allowlist_bytes: &[u8],
    codecs: &[String],
    fixtures_dir: &Path,
) -> u64 {
    let mut buf = String::new();
    for (p, h) in hashes {
        buf.push_str(p);
        buf.push_str(&format!(":{h:016x}\n"));
    }
    buf.push_str(cache::LINT_REV);
    buf.push('\n');
    for c in codecs {
        buf.push_str(c);
        buf.push(',');
    }
    buf.push('\n');
    let mut fixtures: Vec<String> = std::fs::read_dir(fixtures_dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.file_name().to_string_lossy().into_owned()))
                .collect()
        })
        .unwrap_or_default();
    fixtures.sort();
    for f in fixtures {
        buf.push_str(&f);
        buf.push(',');
    }
    let mut h = cache::fnv1a(buf.as_bytes());
    h ^= cache::fnv1a(allowlist_bytes).rotate_left(17);
    h
}

/// One scanned file: repo-relative path, content hash, lazily read
/// source (`None` on a manifest stat hit), and the `(mtime, size)`
/// stat key that vouched for the hash.
type FileEntry = (String, u64, Option<String>, (u128, u64));

/// Runs the full audit.
pub fn run(cfg: &Config, registered_codecs: &[String]) -> std::io::Result<RunOutput> {
    let t_run = Instant::now();
    let mut stats = RunStats {
        cache_enabled: cfg.cache.is_some(),
        ..RunStats::default()
    };

    let t = Instant::now();
    let rels = collect_files(&cfg.root)?;
    stats.collect_ms = t.elapsed().as_secs_f64() * 1e3;

    let mut cache = match &cfg.cache {
        Some(dir) => Some(cache::Cache::open(dir)?),
        None => None,
    };
    let allowlist_bytes = std::fs::read(&cfg.allowlist).unwrap_or_default();
    let fixtures_dir = cfg.root.join("tests/fixtures");

    let t = Instant::now();
    // Per-file content hash, trusting manifest mtime+size where possible.
    // `src` is read lazily: a manifest hit never touches the file bytes.
    let mut entries: Vec<FileEntry> = Vec::new();
    for rel in &rels {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let abs = cfg.root.join(rel);
        let (mtime, size) = cache::stat_key(&abs)?;
        let known = cache
            .as_ref()
            .and_then(|c| c.stat_hash(&rel_str, mtime, size));
        match known {
            Some(h) => entries.push((rel_str, h, None, (mtime, size))),
            None => {
                let src = std::fs::read_to_string(&abs)?;
                let h = cache::fnv1a(src.as_bytes());
                entries.push((rel_str, h, Some(src), (mtime, size)));
            }
        }
    }
    let hashes: Vec<(String, u64)> = entries.iter().map(|e| (e.0.clone(), e.1)).collect();
    let key = run_key(&hashes, &allowlist_bytes, registered_codecs, &fixtures_dir);

    // Full-result fast path: nothing changed since the stored run.
    if let Some(c) = &cache {
        if let Some((findings, stale)) = c.load_result(key) {
            stats.full_result_hit = true;
            stats.file_hits = entries.len();
            stats.analyze_ms = t.elapsed().as_secs_f64() * 1e3;
            stats.total_ms = t_run.elapsed().as_secs_f64() * 1e3;
            if let Some(json) = &cfg.json {
                std::fs::write(json, report::render_json(&findings, &stale, Some(&stats)))?;
            }
            return Ok(RunOutput {
                findings,
                stale,
                stats,
            });
        }
    }

    // Per-file models: cache by content hash, analyze on miss.
    let mut files = Vec::new();
    for (rel_str, hash, src, (mtime, size)) in entries {
        let class = classify(&rel_str);
        // The model cache is keyed by content hash; the stored path must
        // match too (identical bytes at two paths classify differently).
        let cached = cache
            .as_ref()
            .and_then(|c| c.load_model(hash).filter(|m| m.path == rel_str));
        let model = match cached {
            Some(m) => {
                stats.file_hits += 1;
                m
            }
            None => {
                let src = match src {
                    Some(s) => s,
                    None => std::fs::read_to_string(cfg.root.join(&rel_str))?,
                };
                let force_test = class == lints::FileClass::TestOnly;
                let m = model::analyze_source(&rel_str, &src, force_test);
                if let Some(c) = &cache {
                    c.store_model(hash, &m)?;
                }
                stats.file_misses += 1;
                m
            }
        };
        if let Some(c) = &mut cache {
            c.note_file(&rel_str, mtime, size, hash);
        }
        files.push((model, class));
    }
    stats.analyze_ms = t.elapsed().as_secs_f64() * 1e3;

    let mut findings = Vec::new();
    let timed = |name: &'static str, f: Vec<Finding>, stats: &mut RunStats, t0: Instant| {
        stats.lint_ms.push((name, t0.elapsed().as_secs_f64() * 1e3));
        f
    };
    let t0 = Instant::now();
    findings.extend(timed("L1", lints::lint_l1(&files), &mut stats, t0));
    let t0 = Instant::now();
    findings.extend(timed("L2", lints::lint_l2(&files), &mut stats, t0));
    let t0 = Instant::now();
    findings.extend(timed("L3", lints::lint_l3(&files), &mut stats, t0));
    let t0 = Instant::now();
    findings.extend(timed(
        "L4",
        lints::lint_l4(registered_codecs, &fixtures_dir),
        &mut stats,
        t0,
    ));
    let t0 = Instant::now();
    findings.extend(timed("L5", dataflow::lint_l5(&files), &mut stats, t0));
    let t0 = Instant::now();
    findings.extend(timed("L6", lints::lint_l6(&files), &mut stats, t0));

    lints::apply_waivers(&files, &mut findings);

    let allow = Allowlist::load(&cfg.allowlist)?;
    allow.apply(&mut findings);
    let stale: Vec<String> = allow
        .stale(&findings)
        .into_iter()
        .map(str::to_string)
        .collect();

    if cfg.update_allowlist {
        std::fs::write(&cfg.allowlist, Allowlist::render(&findings))?;
    }
    if let Some(c) = &cache {
        c.store_result(key, &findings, &stale)?;
        c.save()?;
    }
    stats.total_ms = t_run.elapsed().as_secs_f64() * 1e3;
    if let Some(json) = &cfg.json {
        std::fs::write(json, report::render_json(&findings, &stale, Some(&stats)))?;
    }
    Ok(RunOutput {
        findings,
        stale,
        stats,
    })
}
