//! CLI driver for the workspace audit. Exit code 1 on any active
//! (non-allowlisted, non-waived) finding or stale allowlist entry.

#![forbid(unsafe_code)]

use pwrel_audit::{report, Config, RunOutput};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: cargo run -p pwrel-audit [--] [options]\n\
         \n\
         options:\n\
           --root <dir>          workspace root (default: auto-detected)\n\
           --json <file>         write the machine-readable report\n\
           --cache <dir>         incremental cache (warm runs re-lex only\n\
                                 changed files)\n\
           --stale               check only for stale allowlist keys; print\n\
                                 them and fail if any exist\n\
           --bench-cache <n>     run cold then warm with --cache and fail\n\
                                 unless warm is >= n times faster\n\
           --update-allowlist    rewrite audit.allow from current findings\n\
           --verbose             itemize allowlisted/waived findings too"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    // `cargo run -p pwrel-audit` sets CARGO_MANIFEST_DIR to crates/audit;
    // the workspace root is two levels up.
    let default_root = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(|d| {
            PathBuf::from(d)
                .join("../..")
                .canonicalize()
                .unwrap_or_else(|_| PathBuf::from("."))
        })
        .unwrap_or_else(|| PathBuf::from("."));
    let mut cfg = Config::new(default_root);
    let mut stale_only = false;
    let mut bench_factor: Option<f64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(r) => {
                    cfg.root = PathBuf::from(r);
                    cfg.allowlist = cfg.root.join("audit.allow");
                }
                None => usage(),
            },
            "--json" => match args.next() {
                Some(j) => cfg.json = Some(PathBuf::from(j)),
                None => usage(),
            },
            "--cache" => match args.next() {
                Some(c) => cfg.cache = Some(PathBuf::from(c)),
                None => usage(),
            },
            "--stale" => stale_only = true,
            "--bench-cache" => match args.next().and_then(|n| n.parse::<f64>().ok()) {
                Some(n) if n >= 1.0 => bench_factor = Some(n),
                _ => usage(),
            },
            "--update-allowlist" => cfg.update_allowlist = true,
            "--verbose" => cfg.verbose = true,
            _ => usage(),
        }
    }

    // L4 enumerates the live registry, so the lint tracks
    // `CodecRegistry::builtin` with zero parsing drift.
    let codecs: Vec<String> = pwrel_pipeline::registry::global()
        .iter()
        .map(|c| c.name().to_string())
        .collect();

    if let Some(factor) = bench_factor {
        return bench_cache(&mut cfg, &codecs, factor);
    }

    let RunOutput {
        findings,
        stale,
        stats,
    } = match pwrel_audit::run(&cfg, &codecs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("audit: I/O error: {e}");
            return ExitCode::from(2);
        }
    };

    if stale_only {
        // Focused CI mode: report only dead allowlist keys.
        for key in &stale {
            println!("stale: {key}");
        }
        println!(
            "audit --stale: {} stale allowlist key(s) out of scope for current findings",
            stale.len()
        );
        return if stale.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    print!("{}", report::render_text(&findings, cfg.verbose));
    if stats.cache_enabled {
        println!(
            "audit: cache {} file hit(s), {} miss(es){}; analyze {:.1} ms, total {:.1} ms",
            stats.file_hits,
            stats.file_misses,
            if stats.full_result_hit {
                ", full-result hit"
            } else {
                ""
            },
            stats.analyze_ms,
            stats.total_ms
        );
    }
    let (active, _, _) = report::counts(&findings);
    if !stale.is_empty() {
        eprintln!(
            "audit: {} stale allowlist entr{} — the allowlist only \
             shrinks; delete them (or run with --update-allowlist)",
            stale.len(),
            if stale.len() == 1 { "y" } else { "ies" }
        );
    }
    if active > 0 || !stale.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Cold-then-warm benchmark of the incremental cache: clears the cache
/// dir, runs twice, prints both timings, and fails unless the warm run
/// is at least `factor` times faster.
fn bench_cache(cfg: &mut Config, codecs: &[String], factor: f64) -> ExitCode {
    let dir = cfg
        .cache
        .clone()
        .unwrap_or_else(|| cfg.root.join(".audit-cache"));
    cfg.cache = Some(dir.clone());
    let _ = std::fs::remove_dir_all(&dir);

    let cold = match pwrel_audit::run(cfg, codecs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("audit: I/O error (cold run): {e}");
            return ExitCode::from(2);
        }
    };
    let warm = match pwrel_audit::run(cfg, codecs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("audit: I/O error (warm run): {e}");
            return ExitCode::from(2);
        }
    };
    let speedup = cold.stats.total_ms / warm.stats.total_ms.max(1e-6);
    println!(
        "audit --bench-cache: cold {:.1} ms ({} misses), warm {:.1} ms ({} hits, \
         full-result hit: {}), speedup {:.1}x (required ≥ {:.1}x)",
        cold.stats.total_ms,
        cold.stats.file_misses,
        warm.stats.total_ms,
        warm.stats.file_hits,
        warm.stats.full_result_hit,
        speedup,
        factor
    );
    if !warm.stats.full_result_hit {
        eprintln!("audit --bench-cache: warm run missed the full-result record");
        return ExitCode::FAILURE;
    }
    if speedup < factor {
        eprintln!("audit --bench-cache: speedup below the required factor");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
