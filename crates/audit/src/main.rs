//! CLI driver for the workspace audit. Exit code 1 on any active
//! (non-allowlisted, non-waived) finding or stale allowlist entry.

#![forbid(unsafe_code)]

use pwrel_audit::{report, Config};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: cargo run -p pwrel-audit [--] [options]\n\
         \n\
         options:\n\
           --root <dir>          workspace root (default: auto-detected)\n\
           --json <file>         write the machine-readable report\n\
           --update-allowlist    rewrite audit.allow from current findings\n\
           --verbose             itemize allowlisted/waived findings too"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    // `cargo run -p pwrel-audit` sets CARGO_MANIFEST_DIR to crates/audit;
    // the workspace root is two levels up.
    let default_root = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(|d| {
            PathBuf::from(d)
                .join("../..")
                .canonicalize()
                .unwrap_or_else(|_| PathBuf::from("."))
        })
        .unwrap_or_else(|| PathBuf::from("."));
    let mut cfg = Config::new(default_root);

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(r) => {
                    cfg.root = PathBuf::from(r);
                    cfg.allowlist = cfg.root.join("audit.allow");
                }
                None => usage(),
            },
            "--json" => match args.next() {
                Some(j) => cfg.json = Some(PathBuf::from(j)),
                None => usage(),
            },
            "--update-allowlist" => cfg.update_allowlist = true,
            "--verbose" => cfg.verbose = true,
            _ => usage(),
        }
    }

    // L4 enumerates the live registry, so the lint tracks
    // `CodecRegistry::builtin` with zero parsing drift.
    let codecs: Vec<String> = pwrel_pipeline::registry::global()
        .iter()
        .map(|c| c.name().to_string())
        .collect();

    let (findings, stale) = match pwrel_audit::run(&cfg, &codecs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("audit: I/O error: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", report::render_text(&findings, cfg.verbose));
    let (active, _, _) = report::counts(&findings);
    if stale > 0 {
        eprintln!(
            "audit: {stale} stale allowlist entr{} — the allowlist only \
             shrinks; delete them (or run with --update-allowlist)",
            if stale == 1 { "y" } else { "ies" }
        );
    }
    if active > 0 || stale > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
