//! Diagnostic rendering: rustc-style text and a machine-readable JSON
//! report (hand-serialized — the workspace has no serde).

use crate::lints::Finding;
use crate::RunStats;
use std::fmt::Write as _;

/// Renders findings as rustc-style diagnostics. Allowed/waived findings
/// are summarized, not itemized, unless `verbose`.
pub fn render_text(findings: &[Finding], verbose: bool) -> String {
    let mut out = String::new();
    let mut shown: Vec<&Finding> = findings
        .iter()
        .filter(|f| verbose || (!f.allowed && !f.waived))
        .collect();
    shown.sort_by(|a, b| (&a.path, a.line, a.lint).cmp(&(&b.path, b.line, b.lint)));
    for f in &shown {
        let sev = if f.allowed {
            "allowed"
        } else if f.waived {
            "waived"
        } else {
            "error"
        };
        let _ = writeln!(out, "{sev}[{}]: {}", f.lint, f.msg);
        if f.line > 0 {
            let _ = writeln!(out, "  --> {}:{} (in `{}`)", f.path, f.line, f.func);
        } else {
            let _ = writeln!(out, "  --> {}", f.path);
        }
        if let Some(n) = &f.note {
            let _ = writeln!(out, "  note: {n}");
        }
    }
    let (active, allowed, waived) = counts(findings);
    let _ = writeln!(
        out,
        "audit: {active} error(s), {allowed} allowlisted, {waived} inline-waived"
    );
    out
}

/// (active, allowlisted, waived) counts.
pub fn counts(findings: &[Finding]) -> (usize, usize, usize) {
    let active = findings.iter().filter(|f| !f.allowed && !f.waived).count();
    let allowed = findings.iter().filter(|f| f.allowed).count();
    let waived = findings.iter().filter(|f| f.waived).count();
    (active, allowed, waived)
}

/// Renders the machine-readable JSON report: findings, stale allowlist
/// keys, summary counts, and (when available) per-lint timings plus
/// cache hit/miss counters so CI logs show the warm-run speedup.
pub fn render_json(findings: &[Finding], stale: &[String], stats: Option<&RunStats>) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        let _ = write!(
            out,
            "\"lint\": {}, \"path\": {}, \"line\": {}, \"function\": {}, \
             \"kind\": {}, \"message\": {}, \"allowed\": {}, \"waived\": {}",
            json_str(f.lint),
            json_str(&f.path),
            f.line,
            json_str(&f.func),
            json_str(&f.kind),
            json_str(&f.msg),
            f.allowed,
            f.waived,
        );
        if let Some(n) = &f.note {
            let _ = write!(out, ", \"note\": {}", json_str(n));
        }
        out.push('}');
    }
    out.push_str("\n  ],\n  \"stale_allowlist_keys\": [");
    for (i, s) in stale.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_str(s));
    }
    out.push(']');
    let (active, allowed, waived) = counts(findings);
    let _ = write!(
        out,
        ",\n  \"summary\": {{\"errors\": {active}, \"allowlisted\": {allowed}, \
         \"waived\": {waived}}}"
    );
    if let Some(s) = stats {
        let _ = write!(
            out,
            ",\n  \"timings_ms\": {{\"collect\": {:.3}, \"analyze\": {:.3}",
            s.collect_ms, s.analyze_ms
        );
        for (lint, ms) in &s.lint_ms {
            let _ = write!(out, ", \"{lint}\": {ms:.3}");
        }
        let _ = write!(out, ", \"total\": {:.3}}}", s.total_ms);
        let _ = write!(
            out,
            ",\n  \"cache\": {{\"enabled\": {}, \"file_hits\": {}, \"file_misses\": {}, \
             \"full_result_hit\": {}}}",
            s.cache_enabled, s.file_hits, s.file_misses, s.full_result_hit
        );
    }
    out.push_str("\n}\n");
    out
}

/// JSON string escaping (control chars, quote, backslash).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            lint: "L1",
            path: "crates/sz/src/x.rs".into(),
            line: 7,
            func: "helper".into(),
            kind: "unwrap".into(),
            msg: "`.unwrap()` on a decode-reachable path".into(),
            note: Some("reachable via: decompress → helper".into()),
            allowed: false,
            waived: false,
        }
    }

    #[test]
    fn text_shows_location_and_note() {
        let t = render_text(&[finding()], false);
        assert!(t.contains("error[L1]"));
        assert!(t.contains("crates/sz/src/x.rs:7"));
        assert!(t.contains("decompress → helper"));
        assert!(t.contains("1 error(s)"));
    }

    #[test]
    fn allowed_findings_hidden_unless_verbose() {
        let mut f = finding();
        f.allowed = true;
        assert!(!render_text(&[f.clone()], false).contains("allowed[L1]"));
        assert!(render_text(&[f], true).contains("allowed[L1]"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut f = finding();
        f.msg = "quote \" and\nnewline".into();
        let j = render_json(&[f], &[], None);
        assert!(j.contains("quote \\\" and\\nnewline"));
        assert!(j.contains("\"errors\": 1"));
        assert!(!j.contains("timings_ms"));
    }

    #[test]
    fn json_includes_stale_keys_and_stats() {
        let stats = RunStats {
            collect_ms: 1.0,
            analyze_ms: 2.0,
            lint_ms: vec![("L1", 3.5), ("L5", 0.25)],
            total_ms: 7.0,
            cache_enabled: true,
            file_hits: 10,
            file_misses: 2,
            full_result_hit: false,
        };
        let j = render_json(&[], &["L1 a b index".into()], Some(&stats));
        assert!(
            j.contains("\"stale_allowlist_keys\": [\"L1 a b index\"]"),
            "{j}"
        );
        assert!(j.contains("\"L5\": 0.250"), "{j}");
        assert!(j.contains("\"file_hits\": 10"), "{j}");
        assert!(j.contains("\"full_result_hit\": false"), "{j}");
    }
}
