//! Golden snapshot of the `--json` report over a miniature crate tree.
//!
//! The fixture workspace is materialized under `CARGO_TARGET_TMPDIR` (so
//! the deliberately-broken sources are never scanned by the real audit)
//! and exercises every lint family with at least one finding: an L1
//! panic-capable index on a decode path, an L3 unsafe block without a
//! SAFETY comment, an L5 tainted allocation, plus an allowlisted finding
//! and a stale allowlist key. Timings are omitted (`stats: None`) so the
//! report is byte-deterministic.
//!
//! Regenerate after an intentional lint change with:
//! `PWREL_AUDIT_BLESS=1 cargo test -p pwrel-audit --test golden_json`

use pwrel_audit::{report, run, Config};
use std::fs;
use std::path::Path;

/// A decode module with one violation per lint family. `read_uvarint`
/// matches the taint engine's source catalog by name; `decode_block`
/// lets the count reach an allocation and a slice index unvalidated,
/// while `decode_bounded` shows the clean path the lint must not flag.
const DECODE_RS: &str = r#"//! Golden-test decode module (deliberately broken).

fn read_uvarint(data: &[u8], pos: &mut usize) -> u64 {
    let b = data[*pos];
    *pos += 1;
    b as u64
}

pub fn decode_block(data: &[u8]) -> Vec<u64> {
    let mut pos = 0;
    let n = read_uvarint(data, &mut pos) as usize;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(data[i] as u64);
    }
    out
}

pub fn decode_bounded(data: &[u8], max: usize) -> Vec<u64> {
    let mut pos = 0;
    let n = (read_uvarint(data, &mut pos) as usize).min(max);
    Vec::with_capacity(n)
}

pub fn decode_raw(data: &[u8]) -> u32 {
    unsafe { std::ptr::read_unaligned(data.as_ptr() as *const u32) }
}
"#;

/// One live key (matches the `read_uvarint` index finding) and one stale
/// key (its file does not exist) so both report sections are exercised.
const ALLOWLIST: &str = "\
L1 crates/lossless/src/decode.rs read_uvarint index
L1 crates/lossless/src/removed.rs gone index
";

fn materialize(root: &Path) {
    let src_dir = root.join("crates/lossless/src");
    fs::create_dir_all(&src_dir).unwrap();
    fs::create_dir_all(root.join("tests/fixtures")).unwrap();
    fs::write(src_dir.join("decode.rs"), DECODE_RS).unwrap();
    fs::write(root.join("audit.allow"), ALLOWLIST).unwrap();
}

#[test]
fn json_report_matches_golden() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("audit-golden-mini");
    if root.exists() {
        fs::remove_dir_all(&root).unwrap();
    }
    materialize(&root);

    let cfg = Config::new(root.clone());
    let out = run(&cfg, &[]).unwrap();
    let json = report::render_json(&out.findings, &out.stale, None);

    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mini.golden.json");
    if std::env::var_os("PWREL_AUDIT_BLESS").is_some() {
        fs::write(&golden_path, &json).unwrap();
        return;
    }
    let golden = fs::read_to_string(&golden_path)
        .expect("golden file present; bless with PWREL_AUDIT_BLESS=1");
    assert_eq!(
        json, golden,
        "JSON report drifted from the golden snapshot; if the change is \
         intentional, re-bless with PWREL_AUDIT_BLESS=1"
    );
}

/// The fixture tree must actually produce findings from the families the
/// golden is meant to pin down — guards against the snapshot silently
/// degenerating to an empty report.
#[test]
fn fixture_tree_exercises_the_lint_families() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("audit-golden-families");
    if root.exists() {
        fs::remove_dir_all(&root).unwrap();
    }
    materialize(&root);
    let cfg = Config::new(root.clone());
    let out = run(&cfg, &[]).unwrap();
    for lint in ["L1", "L3", "L5"] {
        assert!(
            out.findings.iter().any(|f| f.lint == lint),
            "fixture produced no {lint} finding"
        );
    }
    assert!(
        out.findings.iter().any(|f| f.allowed),
        "allowlisted finding missing"
    );
    assert_eq!(out.stale, ["L1 crates/lossless/src/removed.rs gone index"]);
    assert!(
        !out.findings
            .iter()
            .any(|f| f.func == "decode_bounded" && f.lint == "L5"),
        "validated path must stay clean"
    );
}
