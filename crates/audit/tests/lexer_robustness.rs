//! The lexer (and the model built on it) must never panic, whatever
//! bytes it is fed: the audit runs over every source file in the tree,
//! including ones mid-edit, so a torn or corrupted file must degrade to
//! a partial model, not kill the run.

use proptest::prelude::*;
use pwrel_audit::lexer::lex;
use pwrel_audit::model::analyze_source;

/// Realistic seeds: actual audit sources, covering strings, lifetimes,
/// nested generics, block comments, and raw strings.
const SEEDS: [&str; 3] = [
    include_str!("../src/lexer.rs"),
    include_str!("../src/dataflow.rs"),
    include_str!("golden_json.rs"),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // Byte-level mutations of real Rust source (re-validated as UTF-8
    // lossily, since `lex` takes `&str`).
    #[test]
    fn lexer_never_panics_on_mutated_source(
        seed in 0usize..SEEDS.len(),
        mutations in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..24)
    ) {
        let mut bytes = SEEDS[seed].as_bytes().to_vec();
        for (idx, byte) in mutations {
            let i = idx.index(bytes.len());
            bytes[i] = byte;
        }
        let src = String::from_utf8_lossy(&bytes);
        let lexed = lex(&src);
        // Line numbers stay monotone non-decreasing even on torn input.
        for w in lexed.toks.windows(2) {
            prop_assert!(w[0].line <= w[1].line);
        }
        let _ = analyze_source("crates/lossless/src/mutated.rs", &src, false);
    }

    // Truncations at every byte boundary — unterminated strings, block
    // comments, and split multi-byte tokens.
    #[test]
    fn lexer_never_panics_on_truncated_source(
        seed in 0usize..SEEDS.len(),
        cut in any::<prop::sample::Index>()
    ) {
        let bytes = SEEDS[seed].as_bytes();
        let cut = cut.index(bytes.len() + 1);
        let src = String::from_utf8_lossy(&bytes[..cut]);
        let _ = lex(&src);
        let _ = analyze_source("crates/lossless/src/truncated.rs", &src, false);
    }

    // Pure garbage: arbitrary bytes, lossily decoded.
    #[test]
    fn lexer_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = lex(&src);
        let _ = analyze_source("crates/lossless/src/garbage.rs", &src, false);
    }
}
