//! Hybrid Lorenzo/regression compression pass (SZ 2-style extension).
//!
//! Traversal is block-by-block (6^d blocks in raster order, points in
//! raster order within each block) on both sides. Regression blocks
//! predict from their stored `LinearModel`; Lorenzo blocks predict from
//! the global decompressed buffer, so cross-block stencils see already
//! reconstructed neighbours.

use crate::format::{SzMode, SzStream};
use crate::regression::{self, LinearModel};
use crate::{lorenzo, unpred, SzCompressor};
use pwrel_bitstream::{BitReader, BitWriter};
use pwrel_data::{CodecError, Dims, Float};
use pwrel_lossless::huffman;

/// Reads selector bit `i` (LSB-first within bytes).
// audit:allow-fn(L1): `deserialize` rejects streams whose selector bitmap
// is shorter than div_ceil(n_blocks, 8) and whose n_blocks differs from
// `block_count(dims)`; both callers pass i < n_blocks.
#[inline]
fn selector(selectors: &[u8], i: usize) -> bool {
    (selectors[i / 8] >> (i % 8)) & 1 == 1
}

/// Compresses with the hybrid predictor under an absolute bound.
pub(crate) fn compress<F: Float>(
    data: &[F],
    dims: Dims,
    eb: f64,
    cfg: &SzCompressor,
) -> Result<Vec<u8>, CodecError> {
    let capacity = cfg.capacity;
    let radius = (capacity / 2) as i64;
    let blist = regression::blocks(dims);

    // Stage 0: fit models and select the better predictor per block.
    // The comparison is in estimated *bits*, not raw residuals: a
    // regression block pays 128 bits for its model, and a residual of
    // mean magnitude m costs roughly `log2(1 + m/2eb) + 1` bits per point
    // after quantization + entropy coding.
    let est_bits = |sae: f64, n_pts: usize| -> f64 {
        let mean = sae / n_pts.max(1) as f64;
        n_pts as f64 * ((1.0 + mean / (2.0 * eb)).log2() + 1.0)
    };
    let mut selectors = vec![0u8; blist.len().div_ceil(8)];
    let mut models: Vec<LinearModel> = Vec::new();
    let mut model_bytes: Vec<u8> = Vec::new();
    for (bi, b) in blist.iter().enumerate() {
        let n_pts = b.extent.0 * b.extent.1 * b.extent.2;
        let model = regression::fit(data, dims, b);
        let reg_sae = regression::regression_sae(data, dims, b, &model);
        let lor_sae = regression::lorenzo_sae(data, dims, b);
        let reg_cost = est_bits(reg_sae, n_pts) + (LinearModel::NBYTES * 8) as f64;
        let lor_cost = est_bits(lor_sae, n_pts);
        if reg_cost < lor_cost {
            selectors[bi / 8] |= 1 << (bi % 8);
            model.write(&mut model_bytes);
            models.push(model);
        }
    }

    // Stage 1: predict + quantize in block order.
    let n = data.len();
    let mut codes: Vec<u32> = Vec::with_capacity(n);
    let mut unpred_w = BitWriter::new();
    let mut n_unpred = 0u64;
    let mut dec: Vec<F> = vec![F::zero(); n];
    let mut model_iter = models.iter();

    for (bi, b) in blist.iter().enumerate() {
        let is_reg = selector(&selectors, bi);
        let model = if is_reg { model_iter.next() } else { None };
        let (ox, oy, oz) = b.origin;
        let (ex, ey, ez) = b.extent;
        for dk in 0..ez {
            for dj in 0..ey {
                for di in 0..ex {
                    let (i, j, k) = (ox + di, oy + dj, oz + dk);
                    let idx = dims.index(i, j, k);
                    let x = data[idx];
                    let mut done = false;
                    if x.is_finite() {
                        let pred = match model {
                            Some(m) => m.predict(di, dj, dk),
                            None => lorenzo::predict(&dec, dims, i, j, k),
                        };
                        let qf = ((x.to_f64() - pred) / (2.0 * eb)).round();
                        if qf.is_finite() && qf.abs() < radius as f64 {
                            let q = qf as i64;
                            let val = F::from_f64(pred + 2.0 * eb * q as f64);
                            if val.is_finite() && (val.to_f64() - x.to_f64()).abs() <= eb {
                                codes.push((radius + q) as u32);
                                dec[idx] = val;
                                done = true;
                            }
                        }
                    }
                    if !done {
                        codes.push(0);
                        dec[idx] = unpred::write(&mut unpred_w, x, eb);
                        n_unpred += 1;
                    }
                }
            }
        }
    }

    let stream = SzStream {
        float_bits: F::BITS as u8,
        dims,
        capacity,
        mode: SzMode::AbsHybrid {
            eb,
            selectors,
            n_blocks: blist.len() as u64,
            model_bytes,
        },
        codes_buf: huffman::encode_symbols(&codes, capacity as usize),
        n_unpred,
        unpred_bytes: unpred_w.into_bytes(),
    };
    Ok(stream.serialize(cfg.lossless_pass))
}

/// Decompresses an `AbsHybrid` stream (called from the main decoder after
/// the container is parsed).
// audit:allow-fn(L1,L5): in-range by construction — `codes.len() == n` is
// checked, `dec` holds n elements and `dims.index` stays below n, and
// `model_pos` only advances by NBYTES after `LinearModel::read` proved the
// slice held that many bytes (so the range slice never starts past the end).
// The taint lint sees `idx` derive from header `dims`; the L1 invariant
// above is exactly the missing bound (`dec` is sized from the same dims).
pub(crate) fn decompress<F: Float>(stream: &SzStream) -> Result<(Vec<F>, Dims), CodecError> {
    let (eb, selectors, model_bytes) = match &stream.mode {
        SzMode::AbsHybrid {
            eb,
            selectors,
            model_bytes,
            ..
        } => (*eb, selectors, model_bytes),
        _ => return Err(CodecError::Corrupt("not a hybrid stream")),
    };
    let dims = stream.dims;
    let n = dims.len();
    let radius = (stream.capacity / 2) as i64;
    let blist = regression::blocks(dims);

    let mut pos = 0usize;
    let codes = huffman::decode_symbols(&stream.codes_buf, &mut pos)?;
    if codes.len() != n {
        return Err(CodecError::Corrupt("code count != point count"));
    }

    let mut unpred_r = BitReader::new(&stream.unpred_bytes);
    let mut dec: Vec<F> = vec![F::zero(); n];
    let mut model_pos = 0usize;
    let mut code_idx = 0usize;

    for (bi, b) in blist.iter().enumerate() {
        let model = if selector(selectors, bi) {
            let m = LinearModel::read(&model_bytes[model_pos..])
                .ok_or(CodecError::Corrupt("truncated regression model"))?;
            model_pos += LinearModel::NBYTES;
            Some(m)
        } else {
            None
        };
        let (ox, oy, oz) = b.origin;
        let (ex, ey, ez) = b.extent;
        for dk in 0..ez {
            for dj in 0..ey {
                for di in 0..ex {
                    let (i, j, k) = (ox + di, oy + dj, oz + dk);
                    let idx = dims.index(i, j, k);
                    let code = codes[code_idx];
                    code_idx += 1;
                    let val = if code == 0 {
                        unpred::read::<F>(&mut unpred_r, eb)?
                    } else {
                        if code as i64 >= stream.capacity as i64 {
                            return Err(CodecError::Corrupt("code out of range"));
                        }
                        let q = code as i64 - radius;
                        let pred = match &model {
                            Some(m) => m.predict(di, dj, dk),
                            None => lorenzo::predict(&dec, dims, i, j, k),
                        };
                        F::from_f64(pred + 2.0 * eb * q as f64)
                    };
                    dec[idx] = val;
                }
            }
        }
    }
    Ok((dec, dims))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwrel_data::grf;

    fn cfg() -> SzCompressor {
        SzCompressor::default()
    }

    fn check<F: Float>(data: &[F], dims: Dims, eb: f64) -> Vec<u8> {
        let bytes = cfg().compress_abs_hybrid(data, dims, eb).unwrap();
        let (dec, d2) = cfg().decompress::<F>(&bytes).unwrap();
        assert_eq!(d2, dims);
        for (idx, (&a, &b)) in data.iter().zip(&dec).enumerate() {
            let err = (a.to_f64() - b.to_f64()).abs();
            assert!(err <= eb, "idx {idx}: {a} vs {b} ({err} > {eb})");
        }
        bytes
    }

    #[test]
    fn hybrid_bound_holds_1d_2d_3d() {
        check(
            &(0..5000)
                .map(|i| (i as f32 * 0.02).sin() * 9.0)
                .collect::<Vec<_>>(),
            Dims::d1(5000),
            1e-3,
        );
        let d2 = Dims::d2(50, 70);
        check(&grf::gaussian_field(d2, 8, 3, 2), d2, 1e-3);
        let d3 = Dims::d3(13, 14, 15);
        check(&grf::gaussian_field(d3, 9, 1, 2), d3, 1e-4);
    }

    #[test]
    fn regression_wins_on_noisy_gradients_at_loose_bounds() {
        // 3D Lorenzo sums 7 noisy neighbours, amplifying per-point noise by
        // ~sqrt(8); the regression plane sees only the point's own noise.
        // At a bound comparable to the noise scale this costs Lorenzo ~1.5
        // extra bits/point — far more than the 128-bit model per 216-point
        // block.
        let dims = Dims::d3(24, 24, 24);
        let noise = grf::white_noise(dims.len(), 10);
        let data: Vec<f32> = (0..dims.len())
            .map(|i| {
                let (x, y) = (i % 24, (i / 24) % 24);
                let z = i / (24 * 24);
                3.0 * x as f32 - 2.0 * y as f32 + 1.0 * z as f32 + noise[i]
            })
            .collect();
        let eb = 0.5;
        let hybrid = cfg().compress_abs_hybrid(&data, dims, eb).unwrap();
        let plain = cfg().compress_abs(&data, dims, eb).unwrap();
        let (dec, _) = cfg().decompress::<f32>(&hybrid).unwrap();
        for (&a, &b) in data.iter().zip(&dec) {
            assert!((a as f64 - b as f64).abs() <= eb);
        }
        assert!(
            (hybrid.len() as f64) < plain.len() as f64 * 0.9,
            "hybrid {} vs lorenzo {}",
            hybrid.len(),
            plain.len()
        );
    }

    #[test]
    fn lorenzo_still_used_on_textured_fields() {
        // Smooth-but-curvy data favours Lorenzo; hybrid must not regress
        // badly (selection keeps the better predictor).
        let dims = Dims::d2(96, 96);
        let data = grf::gaussian_field(dims, 11, 2, 3);
        let eb = 1e-3;
        let hybrid = cfg().compress_abs_hybrid(&data, dims, eb).unwrap();
        let plain = cfg().compress_abs(&data, dims, eb).unwrap();
        assert!(
            (hybrid.len() as f64) < plain.len() as f64 * 1.15,
            "hybrid {} vs lorenzo {}",
            hybrid.len(),
            plain.len()
        );
    }

    #[test]
    fn nonfinite_and_empty() {
        let dims = Dims::d1(8);
        let data = vec![1.0f32, f32::NAN, 2.0, -3.0, f32::INFINITY, 0.0, 7.0, 8.0];
        let bytes = cfg().compress_abs_hybrid(&data, dims, 0.1).unwrap();
        let (dec, _) = cfg().decompress::<f32>(&bytes).unwrap();
        assert!(dec[1].is_nan());
        assert_eq!(dec[4], f32::INFINITY);
        let empty = cfg()
            .compress_abs_hybrid::<f32>(&[], Dims::d1(0), 0.1)
            .unwrap();
        let (dec, _) = cfg().decompress::<f32>(&empty).unwrap();
        assert!(dec.is_empty());
    }

    #[test]
    fn f64_hybrid_path() {
        let dims = Dims::d3(7, 9, 11);
        let data: Vec<f64> = (0..dims.len())
            .map(|i| i as f64 * 0.5 - 100.0 + ((i % 13) as f64).sin())
            .collect();
        check(&data, dims, 1e-2);
    }
}
