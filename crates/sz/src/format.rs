//! SZ container format.
//!
//! Layout (before the optional LZ wrapper):
//!
//! ```text
//! magic "SZR1" | float_bits u8 | mode u8 | rank u8 | nx ny nz uvarint
//! capacity uvarint
//! mode=Abs: eb f64
//! mode=Pwr: rel_bound f64 | block_len uvarint | n_blocks uvarint
//!           | per-block exponent ivarint...
//! huffman-coded quantization codes (self-contained block)
//! n_unpred uvarint | raw unpredictable values (BITS/8 bytes each)
//! ```
//!
//! The serialized container is wrapped as `[0u8] ++ payload` (raw) or
//! `[1u8] ++ lz(payload)`, whichever is smaller when the LZ pass is enabled
//! (SZ's optional gzip stage).

use crate::stages::LzStage;
use pwrel_bitstream::{bytesio, varint};
use pwrel_data::{CodecError, Dims, LosslessStage};

const MAGIC: &[u8; 4] = b"SZR1";

/// Decides whether the full LZ pass is likely to pay off by compressing
/// three 21 KiB samples spread across the payload (head, middle, tail):
/// small payloads are always tried (cheap), large ones only when the
/// combined samples shrink by more than ~3%. Sampling all three regions
/// matters for heterogeneous payloads — the Huffman block at the front
/// and the raw unpredictable store at the back compress very differently,
/// and a prefix-only sample mispredicts whichever section it missed.
fn worth_lz_pass(payload: &[u8]) -> bool {
    const SAMPLE: usize = 64 * 1024;
    if payload.len() <= 2 * SAMPLE {
        return true;
    }
    let part = SAMPLE / 3;
    let mid = payload.len() / 2 - part / 2;
    let regions = [
        &payload[..part],
        &payload[mid..mid + part],
        &payload[payload.len() - part..],
    ];
    let mut sampled = 0usize;
    let mut packed = 0usize;
    for region in regions {
        sampled += region.len();
        packed += LzStage.compress(region).len();
    }
    packed * 100 < sampled * 97
}

/// Error-bound mode recorded in the stream.
#[derive(Debug, Clone, PartialEq)]
pub enum SzMode {
    /// Absolute bound.
    Abs {
        /// The bound every point respects.
        eb: f64,
    },
    /// Blockwise point-wise-relative bound (SZ_PWR).
    Pwr {
        /// The requested relative bound (kept for reporting).
        rel_bound: f64,
        /// Points per block, raster order.
        block_len: u64,
        /// Power-of-two exponent of each block's absolute bound.
        block_exps: Vec<i32>,
    },
    /// Blockwise point-wise-relative bound over 6^d *spatial* blocks
    /// (rank ≥ 2; the DRBSD-2 design for multidimensional data).
    PwrSpatial {
        /// The requested relative bound (kept for reporting).
        rel_bound: f64,
        /// Power-of-two exponent of each spatial block's absolute bound.
        block_exps: Vec<i32>,
    },
    /// Absolute bound with the hybrid Lorenzo/regression predictor
    /// (SZ 2-style extension; see `regression`).
    AbsHybrid {
        /// The bound every point respects.
        eb: f64,
        /// One bit per block: 1 = regression, 0 = Lorenzo (packed LSB
        /// first within each byte).
        selectors: Vec<u8>,
        /// Number of blocks (governs the selector bitmap length).
        n_blocks: u64,
        /// Serialized `LinearModel`s for the regression blocks, in block
        /// order.
        model_bytes: Vec<u8>,
    },
}

/// Parsed SZ container.
#[derive(Debug, Clone)]
pub struct SzStream {
    /// 32 or 64.
    pub float_bits: u8,
    /// Grid shape.
    pub dims: Dims,
    /// Quantization interval count.
    pub capacity: u32,
    /// Error-bound mode.
    pub mode: SzMode,
    /// Self-contained Huffman block of quantization codes.
    pub codes_buf: Vec<u8>,
    /// Number of unpredictable (escaped) values.
    pub n_unpred: u64,
    /// Bit-packed unpredictable values (see `unpred`).
    pub unpred_bytes: Vec<u8>,
}

impl SzStream {
    /// Serializes, optionally trying the LZ wrapper.
    pub fn serialize(&self, lossless_pass: bool) -> Vec<u8> {
        self.serialize_traced(lossless_pass, pwrel_trace::noop())
    }

    /// [`SzStream::serialize`] with the wrapper decision and LZ pass
    /// attributed to the [`pwrel_trace::stage::LZ`] span. The span is
    /// emitted even when the pass is disabled or declined, so stage
    /// coverage does not depend on the data.
    pub fn serialize_traced(
        &self,
        lossless_pass: bool,
        rec: &dyn pwrel_trace::Recorder,
    ) -> Vec<u8> {
        let mut p = Vec::with_capacity(self.codes_buf.len() + self.unpred_bytes.len() + 64);
        p.extend_from_slice(MAGIC);
        p.push(self.float_bits);
        let (rank, nx, ny, nz) = self.dims.to_header();
        match &self.mode {
            SzMode::Abs { eb } => {
                p.push(0);
                p.push(rank);
                varint::write_uvarint(&mut p, nx);
                varint::write_uvarint(&mut p, ny);
                varint::write_uvarint(&mut p, nz);
                varint::write_uvarint(&mut p, self.capacity as u64);
                bytesio::put_f64(&mut p, *eb);
            }
            SzMode::Pwr {
                rel_bound,
                block_len,
                block_exps,
            } => {
                p.push(1);
                p.push(rank);
                varint::write_uvarint(&mut p, nx);
                varint::write_uvarint(&mut p, ny);
                varint::write_uvarint(&mut p, nz);
                varint::write_uvarint(&mut p, self.capacity as u64);
                bytesio::put_f64(&mut p, *rel_bound);
                varint::write_uvarint(&mut p, *block_len);
                varint::write_uvarint(&mut p, block_exps.len() as u64);
                let mut prev = 0i64;
                for &e in block_exps {
                    varint::write_ivarint(&mut p, e as i64 - prev);
                    prev = e as i64;
                }
            }
            SzMode::PwrSpatial {
                rel_bound,
                block_exps,
            } => {
                p.push(3);
                p.push(rank);
                varint::write_uvarint(&mut p, nx);
                varint::write_uvarint(&mut p, ny);
                varint::write_uvarint(&mut p, nz);
                varint::write_uvarint(&mut p, self.capacity as u64);
                bytesio::put_f64(&mut p, *rel_bound);
                varint::write_uvarint(&mut p, block_exps.len() as u64);
                let mut prev = 0i64;
                for &e in block_exps {
                    varint::write_ivarint(&mut p, e as i64 - prev);
                    prev = e as i64;
                }
            }
            SzMode::AbsHybrid {
                eb,
                selectors,
                n_blocks,
                model_bytes,
            } => {
                p.push(2);
                p.push(rank);
                varint::write_uvarint(&mut p, nx);
                varint::write_uvarint(&mut p, ny);
                varint::write_uvarint(&mut p, nz);
                varint::write_uvarint(&mut p, self.capacity as u64);
                bytesio::put_f64(&mut p, *eb);
                varint::write_uvarint(&mut p, *n_blocks);
                p.extend_from_slice(selectors);
                varint::write_uvarint(&mut p, model_bytes.len() as u64);
                p.extend_from_slice(model_bytes);
            }
        }
        varint::write_uvarint(&mut p, self.codes_buf.len() as u64);
        p.extend_from_slice(&self.codes_buf);
        varint::write_uvarint(&mut p, self.n_unpred);
        varint::write_uvarint(&mut p, self.unpred_bytes.len() as u64);
        p.extend_from_slice(&self.unpred_bytes);

        // The LZ pass mirrors SZ's optional gzip stage: worthwhile on
        // redundant streams, wasted time on already-dense Huffman output.
        // Decide from a prefix sample before paying for the full pass.
        let _lz = pwrel_trace::Span::enter(rec, pwrel_trace::stage::LZ);
        if lossless_pass && worth_lz_pass(&p) {
            let packed = LzStage.compress(&p);
            if packed.len() + 1 < p.len() + 1 {
                let mut out = Vec::with_capacity(packed.len() + 1);
                out.push(1u8);
                out.extend_from_slice(&packed);
                return out;
            }
        }
        let mut out = Vec::with_capacity(p.len() + 1);
        out.push(0u8);
        out.extend_from_slice(&p);
        out
    }

    /// Parses a stream produced by [`SzStream::serialize`].
    pub fn deserialize(bytes: &[u8]) -> Result<Self, CodecError> {
        Self::deserialize_traced(bytes, pwrel_trace::noop())
    }

    /// [`SzStream::deserialize`] with the LZ unwrap attributed to the
    /// [`pwrel_trace::stage::LZ`] span (emitted for both wrapper kinds).
    pub fn deserialize_traced(
        bytes: &[u8],
        rec: &dyn pwrel_trace::Recorder,
    ) -> Result<Self, CodecError> {
        let (&wrapper, rest) = bytes
            .split_first()
            .ok_or(CodecError::Corrupt("empty stream"))?;
        let unpacked;
        let p: &[u8] = {
            let _lz = pwrel_trace::Span::enter(rec, pwrel_trace::stage::LZ);
            match wrapper {
                0 => rest,
                1 => {
                    unpacked = LzStage.decompress(rest)?;
                    &unpacked
                }
                _ => return Err(CodecError::Corrupt("unknown wrapper byte")),
            }
        };

        if !p.starts_with(MAGIC) {
            return Err(CodecError::Mismatch("bad SZ magic"));
        }
        let mut pos = 4usize;
        let float_bits = *p.get(pos).ok_or(CodecError::Corrupt("eof"))?;
        pos += 1;
        if float_bits != 32 && float_bits != 64 {
            return Err(CodecError::Corrupt("bad float width"));
        }
        let mode_byte = *p.get(pos).ok_or(CodecError::Corrupt("eof"))?;
        pos += 1;
        let rank = *p.get(pos).ok_or(CodecError::Corrupt("eof"))?;
        pos += 1;
        let nx = varint::read_uvarint(p, &mut pos)?;
        let ny = varint::read_uvarint(p, &mut pos)?;
        let nz = varint::read_uvarint(p, &mut pos)?;
        let dims =
            Dims::from_header(rank, nx, ny, nz).ok_or(CodecError::Corrupt("bad dims header"))?;
        let capacity = varint::read_uvarint(p, &mut pos)? as u32;
        if capacity < 4 || !capacity.is_multiple_of(2) {
            return Err(CodecError::Corrupt("bad capacity"));
        }

        let mode = match mode_byte {
            0 => SzMode::Abs {
                eb: bytesio::get_f64(p, &mut pos)?,
            },
            1 => {
                let rel_bound = bytesio::get_f64(p, &mut pos)?;
                let block_len = varint::read_uvarint(p, &mut pos)?;
                if block_len == 0 {
                    return Err(CodecError::Corrupt("zero block_len"));
                }
                let n_blocks = varint::read_uvarint(p, &mut pos)? as usize;
                let expected = dims.len().div_ceil(block_len as usize);
                if n_blocks != expected {
                    return Err(CodecError::Corrupt("block count mismatch"));
                }
                // n_blocks is untrusted; each exponent costs ≥1 byte, so
                // cap the reservation and let varint EOF stop bad claims.
                let mut block_exps = Vec::with_capacity(n_blocks.min(1 << 20));
                let mut prev = 0i64;
                for _ in 0..n_blocks {
                    prev += varint::read_ivarint(p, &mut pos)?;
                    if !(-2000..=2000).contains(&prev) {
                        return Err(CodecError::Corrupt("block exponent out of range"));
                    }
                    block_exps.push(prev as i32);
                }
                SzMode::Pwr {
                    rel_bound,
                    block_len,
                    block_exps,
                }
            }
            3 => {
                let rel_bound = bytesio::get_f64(p, &mut pos)?;
                let n_blocks = varint::read_uvarint(p, &mut pos)? as usize;
                // Count without allocating: dims are untrusted.
                if n_blocks as u64 != crate::regression::block_count(dims) {
                    return Err(CodecError::Corrupt("spatial block count mismatch"));
                }
                // Each exponent costs ≥ 1 byte in the stream.
                if n_blocks > p.len() {
                    return Err(CodecError::Corrupt("spatial block count exceeds payload"));
                }
                let mut block_exps = Vec::with_capacity(n_blocks.min(1 << 20));
                let mut prev = 0i64;
                for _ in 0..n_blocks {
                    prev += varint::read_ivarint(p, &mut pos)?;
                    if !(-2000..=2000).contains(&prev) {
                        return Err(CodecError::Corrupt("block exponent out of range"));
                    }
                    block_exps.push(prev as i32);
                }
                SzMode::PwrSpatial {
                    rel_bound,
                    block_exps,
                }
            }
            2 => {
                let eb = bytesio::get_f64(p, &mut pos)?;
                let n_blocks = varint::read_uvarint(p, &mut pos)?;
                // One selector bit per block; count without allocating
                // (dims are untrusted) and bound by the remaining payload.
                if n_blocks != crate::regression::block_count(dims) {
                    return Err(CodecError::Corrupt("hybrid block count mismatch"));
                }
                if n_blocks.div_ceil(8) > p.len() as u64 {
                    return Err(CodecError::Corrupt(
                        "hybrid selector bitmap exceeds payload",
                    ));
                }
                let sel_bytes = (n_blocks as usize).div_ceil(8);
                let selectors = bytesio::get_bytes(p, &mut pos, sel_bytes)?.to_vec();
                let model_len = varint::read_uvarint(p, &mut pos)? as usize;
                let model_bytes = bytesio::get_bytes(p, &mut pos, model_len)?.to_vec();
                SzMode::AbsHybrid {
                    eb,
                    selectors,
                    n_blocks,
                    model_bytes,
                }
            }
            _ => return Err(CodecError::Corrupt("unknown mode")),
        };

        let codes_len = varint::read_uvarint(p, &mut pos)? as usize;
        let codes_buf = bytesio::get_bytes(p, &mut pos, codes_len)?.to_vec();
        let n_unpred = varint::read_uvarint(p, &mut pos)?;
        let unpred_len = varint::read_uvarint(p, &mut pos)? as usize;
        let unpred_bytes = bytesio::get_bytes(p, &mut pos, unpred_len)?.to_vec();
        // Each packed value costs at least 2 bits; cross-check the count.
        if n_unpred > unpred_bytes.len() as u64 * 8 {
            return Err(CodecError::Corrupt("unpredictable count exceeds payload"));
        }

        Ok(Self {
            float_bits,
            dims,
            capacity,
            mode,
            codes_buf,
            n_unpred,
            unpred_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(mode: SzMode) -> SzStream {
        SzStream {
            float_bits: 32,
            dims: Dims::d2(3, 5),
            capacity: 1024,
            mode,
            codes_buf: vec![1, 2, 3, 4, 5],
            n_unpred: 2,
            unpred_bytes: vec![0u8; 8],
        }
    }

    #[test]
    fn abs_round_trip_both_wrappers() {
        let s = sample(SzMode::Abs { eb: 0.125 });
        for lossless in [false, true] {
            let bytes = s.serialize(lossless);
            let back = SzStream::deserialize(&bytes).unwrap();
            assert_eq!(back.float_bits, 32);
            assert_eq!(back.dims, Dims::d2(3, 5));
            assert_eq!(back.capacity, 1024);
            assert_eq!(back.mode, SzMode::Abs { eb: 0.125 });
            assert_eq!(back.codes_buf, s.codes_buf);
            assert_eq!(back.unpred_bytes, s.unpred_bytes);
        }
    }

    #[test]
    fn pwr_round_trip_with_exponents() {
        let s = SzStream {
            float_bits: 64,
            dims: Dims::d1(1000),
            capacity: 65536,
            mode: SzMode::Pwr {
                rel_bound: 1e-3,
                block_len: 256,
                block_exps: vec![-10, -12, -8, -40],
            },
            codes_buf: vec![9; 100],
            n_unpred: 2,
            unpred_bytes: vec![1u8; 16],
        };
        let bytes = s.serialize(true);
        let back = SzStream::deserialize(&bytes).unwrap();
        assert_eq!(back.mode, s.mode);
        assert_eq!(back.float_bits, 64);
    }

    #[test]
    fn corrupt_magic_rejected() {
        let s = sample(SzMode::Abs { eb: 1.0 });
        let mut bytes = s.serialize(false);
        bytes[1] = b'X';
        assert!(SzStream::deserialize(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let s = sample(SzMode::Abs { eb: 1.0 });
        let bytes = s.serialize(false);
        for cut in [0, 3, 8, bytes.len() - 2] {
            assert!(SzStream::deserialize(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn block_count_must_match_dims() {
        let s = SzStream {
            float_bits: 32,
            dims: Dims::d1(100),
            capacity: 64,
            mode: SzMode::Pwr {
                rel_bound: 0.1,
                block_len: 50,
                block_exps: vec![0, 0, 0], // should be 2 blocks
            },
            codes_buf: vec![],
            n_unpred: 0,
            unpred_bytes: vec![],
        };
        let bytes = s.serialize(false);
        assert!(SzStream::deserialize(&bytes).is_err());
    }
}
