//! Truncated binary storage for unpredictable values.
//!
//! SZ 1.4 does not store escaped ("unpredictable") points as full IEEE
//! floats: it analyses the binary representation and keeps only the
//! leading mantissa bits needed to stay within the error bound. For a
//! value `x = ±1.f × 2^(e-1)` and bound `eb`, rounding the mantissa to
//! `m = e − 2 − floor(log2 eb)` bits leaves error `≤ 2^(e−m−2) ≤ eb`.
//!
//! Encoding per value: `1` + raw IEEE bits (escape: non-finite, zero,
//! values needing full precision, or rounding overflow), or `0` + sign bit
//! plus a biased exponent (9 bits for f32, 12 for f64) and `m` mantissa
//! bits. Encoder and decoder derive `m` from the exponent and the bound,
//! so no length field is stored.

use pwrel_bitstream::{BitReader, BitWriter, Result};
use pwrel_data::Float;

/// Exponent field width: 9 bits cover f32's frexp range [-148, 129]
/// (bias 256), 12 bits cover f64's [-1073, 1025] (bias 2048).
fn exp_field_bits<F: Float>() -> u32 {
    if F::BITS == 32 {
        9
    } else {
        12
    }
}

fn exp_bias<F: Float>() -> i64 {
    1i64 << (exp_field_bits::<F>() - 1)
}

/// frexp-style exponent for finite `m > 0`: `m ∈ [2^(e-1), 2^e)`.
fn frexp_exp(m: f64) -> i32 {
    debug_assert!(m > 0.0 && m.is_finite());
    let bits = m.to_bits();
    let e = ((bits >> 52) & 0x7FF) as i32;
    if e == 0 {
        let mant = bits & ((1u64 << 52) - 1);
        -1022 - (mant.leading_zeros() as i32 - 12) - 1
    } else {
        e - 1022
    }
}

/// Mantissa bits required for bound `2^eb_exp` at value exponent `e`.
#[inline]
fn mantissa_bits(e: i32, eb_exp: i32) -> i64 {
    e as i64 - 2 - eb_exp as i64
}

/// `floor(log2 eb)` shared by encoder and decoder.
#[inline]
pub fn bound_exp(eb: f64) -> i32 {
    debug_assert!(eb > 0.0 && eb.is_finite());
    eb.log2().floor().clamp(-4200.0, 4200.0) as i32
}

/// Writes one unpredictable value with error ≤ `eb`, returning the exact
/// value the decoder will reconstruct (the caller must feed this, not the
/// original, to its prediction state).
pub fn write<F: Float>(w: &mut BitWriter, x: F, eb: f64) -> F {
    let v = x.to_f64();
    let raw = |w: &mut BitWriter| -> F {
        w.write_bit(true);
        w.write_bits(x.to_bits_u64(), F::BITS);
        x
    };
    if !v.is_finite() || v == 0.0 {
        return raw(w);
    }
    let e = frexp_exp(v.abs());
    let bias = exp_bias::<F>();
    let m = mantissa_bits(e, bound_exp(eb));
    if m >= F::MANT_BITS as i64 || !(-bias..bias).contains(&(e as i64)) {
        return raw(w); // needs (almost) full precision anyway
    }
    let m = m.max(0) as u32;
    // Fraction in [1, 2); round its low bits away.
    let frac = v.abs() * ((1 - e) as f64).exp2();
    let scaled = ((frac - 1.0) * (m as f64).exp2()).round();
    if scaled < 0.0 || scaled >= (m as f64).exp2() {
        return raw(w); // rounding overflowed the mantissa (frac → 2.0)
    }
    // Verify in the stored element type before committing.
    let rec = reconstruct::<F>(v < 0.0, e, scaled as u64, m);
    if (rec.to_f64() - v).abs() > eb {
        return raw(w);
    }
    w.write_bit(false);
    w.write_bit(v < 0.0);
    w.write_bits((e as i64 + bias) as u64, exp_field_bits::<F>());
    w.write_bits(scaled as u64, m);
    rec
}

fn reconstruct<F: Float>(neg: bool, e: i32, scaled: u64, m: u32) -> F {
    let frac = 1.0 + scaled as f64 * (-(m as f64)).exp2();
    let mag = frac * ((e - 1) as f64).exp2();
    F::from_f64(if neg { -mag } else { mag })
}

/// Reads one value written by [`write`] under the same bound.
pub fn read<F: Float>(r: &mut BitReader, eb: f64) -> Result<F> {
    if r.read_bit()? {
        return Ok(F::from_bits_u64(r.read_bits(F::BITS)?));
    }
    let neg = r.read_bit()?;
    let e = r.read_bits(exp_field_bits::<F>())? as i64 - exp_bias::<F>();
    let m = mantissa_bits(e as i32, bound_exp(eb)).max(0) as u32;
    let scaled = r.read_bits(m)?;
    Ok(reconstruct::<F>(neg, e as i32, scaled, m))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_f32(vals: &[f32], eb: f64) -> Vec<f32> {
        let mut w = BitWriter::new();
        for &v in vals {
            write(&mut w, v, eb);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        vals.iter()
            .map(|_| read::<f32>(&mut r, eb).unwrap())
            .collect()
    }

    #[test]
    fn error_within_bound_across_magnitudes() {
        let vals: Vec<f32> = (-60..60)
            .map(|e| 1.37f32 * 2f32.powi(e) * if e % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        for eb in [1e-6, 1e-3, 1.0, 1e3] {
            let dec = round_trip_f32(&vals, eb);
            for (&a, &b) in vals.iter().zip(&dec) {
                assert!((a as f64 - b as f64).abs() <= eb, "{a} vs {b} at eb {eb}");
            }
        }
    }

    #[test]
    fn specials_are_exact() {
        let vals = [
            0.0f32,
            -0.0,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            1e-42,
        ];
        let dec = round_trip_f32(&vals, 0.1);
        assert_eq!(dec[0].to_bits(), vals[0].to_bits());
        assert_eq!(dec[1].to_bits(), vals[1].to_bits());
        assert!(dec[2].is_nan());
        assert_eq!(dec[3], f32::INFINITY);
        assert_eq!(dec[4], f32::NEG_INFINITY);
        // Denormals are not special-cased: they are coded like any other
        // value, within the bound.
        assert!((dec[5] as f64 - 1e-42).abs() <= 0.1);
    }

    #[test]
    fn loose_bounds_store_fewer_bits() {
        let vals: Vec<f32> = (0..1000).map(|i| (i as f32 + 1.0) * 1.001).collect();
        let bits_at = |eb: f64| -> u64 {
            let mut w = BitWriter::new();
            for &v in &vals {
                write(&mut w, v, eb);
            }
            w.bit_len()
        };
        let loose = bits_at(1.0);
        let tight = bits_at(1e-4);
        assert!(loose < tight, "{loose} vs {tight}");
        // At eb=1.0 a value ~1000 needs ~8 mantissa bits + 14 header
        // bits ≈ 22 — far below the 33 bits of raw storage.
        assert!(loose < vals.len() as u64 * 26, "loose = {loose}");
    }

    #[test]
    fn tiny_bound_falls_back_to_raw_exactness() {
        let vals = [123.456f32, -0.75];
        let dec = round_trip_f32(&vals, 1e-12);
        for (&a, &b) in vals.iter().zip(&dec) {
            assert_eq!(a.to_bits(), b.to_bits(), "raw escape must be exact");
        }
    }

    #[test]
    fn f64_path_bounded() {
        let vals: Vec<f64> = vec![1e-200, -3.7e150, 2.5, -1.0000001];
        let mut w = BitWriter::new();
        for &v in &vals {
            write(&mut w, v, 1e-3);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &vals {
            let d = read::<f64>(&mut r, 1e-3).unwrap();
            assert!((d - v).abs() <= 1e-3, "{v} vs {d}");
        }
    }
}
